/root/repo/target/debug/examples/patterns-390d7022a144d02b.d: crates/core/../../examples/patterns.rs

/root/repo/target/debug/examples/patterns-390d7022a144d02b: crates/core/../../examples/patterns.rs

crates/core/../../examples/patterns.rs:
