/root/repo/target/debug/examples/generic_collections-fbb5abeadb5cd0d8.d: crates/core/../../examples/generic_collections.rs Cargo.toml

/root/repo/target/debug/examples/libgeneric_collections-fbb5abeadb5cd0d8.rmeta: crates/core/../../examples/generic_collections.rs Cargo.toml

crates/core/../../examples/generic_collections.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
