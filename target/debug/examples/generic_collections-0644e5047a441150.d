/root/repo/target/debug/examples/generic_collections-0644e5047a441150.d: crates/core/../../examples/generic_collections.rs

/root/repo/target/debug/examples/generic_collections-0644e5047a441150: crates/core/../../examples/generic_collections.rs

crates/core/../../examples/generic_collections.rs:
