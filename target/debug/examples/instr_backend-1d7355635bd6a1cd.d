/root/repo/target/debug/examples/instr_backend-1d7355635bd6a1cd.d: crates/core/../../examples/instr_backend.rs Cargo.toml

/root/repo/target/debug/examples/libinstr_backend-1d7355635bd6a1cd.rmeta: crates/core/../../examples/instr_backend.rs Cargo.toml

crates/core/../../examples/instr_backend.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
