/root/repo/target/debug/examples/patterns-62266ab923322002.d: crates/core/../../examples/patterns.rs Cargo.toml

/root/repo/target/debug/examples/libpatterns-62266ab923322002.rmeta: crates/core/../../examples/patterns.rs Cargo.toml

crates/core/../../examples/patterns.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
