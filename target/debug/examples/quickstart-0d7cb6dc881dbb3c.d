/root/repo/target/debug/examples/quickstart-0d7cb6dc881dbb3c.d: crates/core/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-0d7cb6dc881dbb3c.rmeta: crates/core/../../examples/quickstart.rs Cargo.toml

crates/core/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
