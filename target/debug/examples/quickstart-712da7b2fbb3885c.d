/root/repo/target/debug/examples/quickstart-712da7b2fbb3885c.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-712da7b2fbb3885c: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
