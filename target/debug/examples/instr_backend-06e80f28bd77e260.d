/root/repo/target/debug/examples/instr_backend-06e80f28bd77e260.d: crates/core/../../examples/instr_backend.rs

/root/repo/target/debug/examples/instr_backend-06e80f28bd77e260: crates/core/../../examples/instr_backend.rs

crates/core/../../examples/instr_backend.rs:
