/root/repo/target/debug/deps/differential_prop-5ecf96f21e87f2f2.d: tests/tests/differential_prop.rs

/root/repo/target/debug/deps/differential_prop-5ecf96f21e87f2f2: tests/tests/differential_prop.rs

tests/tests/differential_prop.rs:
