/root/repo/target/debug/deps/golden-fb905ae2e51c3419.d: tests/tests/golden.rs

/root/repo/target/debug/deps/golden-fb905ae2e51c3419: tests/tests/golden.rs

tests/tests/golden.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/tests
