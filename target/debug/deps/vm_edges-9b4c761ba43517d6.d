/root/repo/target/debug/deps/vm_edges-9b4c761ba43517d6.d: crates/vgl-vm/tests/vm_edges.rs Cargo.toml

/root/repo/target/debug/deps/libvm_edges-9b4c761ba43517d6.rmeta: crates/vgl-vm/tests/vm_edges.rs Cargo.toml

crates/vgl-vm/tests/vm_edges.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
