/root/repo/target/debug/deps/vgl_passes-7fd1e6139a887830.d: crates/vgl-passes/src/lib.rs crates/vgl-passes/src/mono.rs crates/vgl-passes/src/normalize.rs crates/vgl-passes/src/optimize.rs

/root/repo/target/debug/deps/libvgl_passes-7fd1e6139a887830.rlib: crates/vgl-passes/src/lib.rs crates/vgl-passes/src/mono.rs crates/vgl-passes/src/normalize.rs crates/vgl-passes/src/optimize.rs

/root/repo/target/debug/deps/libvgl_passes-7fd1e6139a887830.rmeta: crates/vgl-passes/src/lib.rs crates/vgl-passes/src/mono.rs crates/vgl-passes/src/normalize.rs crates/vgl-passes/src/optimize.rs

crates/vgl-passes/src/lib.rs:
crates/vgl-passes/src/mono.rs:
crates/vgl-passes/src/normalize.rs:
crates/vgl-passes/src/optimize.rs:
