/root/repo/target/debug/deps/e4_code_expansion-9e7b9ce3caa6f366.d: crates/bench/benches/e4_code_expansion.rs

/root/repo/target/debug/deps/e4_code_expansion-9e7b9ce3caa6f366: crates/bench/benches/e4_code_expansion.rs

crates/bench/benches/e4_code_expansion.rs:
