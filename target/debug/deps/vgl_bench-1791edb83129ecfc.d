/root/repo/target/debug/deps/vgl_bench-1791edb83129ecfc.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/vgl_bench-1791edb83129ecfc: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/workloads.rs:
