/root/repo/target/debug/deps/vgl_obs-9916eebe6863f803.d: crates/vgl-obs/src/lib.rs crates/vgl-obs/src/json.rs

/root/repo/target/debug/deps/libvgl_obs-9916eebe6863f803.rlib: crates/vgl-obs/src/lib.rs crates/vgl-obs/src/json.rs

/root/repo/target/debug/deps/libvgl_obs-9916eebe6863f803.rmeta: crates/vgl-obs/src/lib.rs crates/vgl-obs/src/json.rs

crates/vgl-obs/src/lib.rs:
crates/vgl-obs/src/json.rs:
