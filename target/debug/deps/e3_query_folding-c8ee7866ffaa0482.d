/root/repo/target/debug/deps/e3_query_folding-c8ee7866ffaa0482.d: crates/bench/benches/e3_query_folding.rs Cargo.toml

/root/repo/target/debug/deps/libe3_query_folding-c8ee7866ffaa0482.rmeta: crates/bench/benches/e3_query_folding.rs Cargo.toml

crates/bench/benches/e3_query_folding.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
