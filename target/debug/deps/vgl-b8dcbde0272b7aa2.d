/root/repo/target/debug/deps/vgl-b8dcbde0272b7aa2.d: crates/core/src/lib.rs crates/core/src/report.rs

/root/repo/target/debug/deps/vgl-b8dcbde0272b7aa2: crates/core/src/lib.rs crates/core/src/report.rs

crates/core/src/lib.rs:
crates/core/src/report.rs:
