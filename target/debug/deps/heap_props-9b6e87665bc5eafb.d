/root/repo/target/debug/deps/heap_props-9b6e87665bc5eafb.d: crates/vgl-runtime/tests/heap_props.rs

/root/repo/target/debug/deps/heap_props-9b6e87665bc5eafb: crates/vgl-runtime/tests/heap_props.rs

crates/vgl-runtime/tests/heap_props.rs:
