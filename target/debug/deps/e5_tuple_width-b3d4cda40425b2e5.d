/root/repo/target/debug/deps/e5_tuple_width-b3d4cda40425b2e5.d: crates/bench/benches/e5_tuple_width.rs Cargo.toml

/root/repo/target/debug/deps/libe5_tuple_width-b3d4cda40425b2e5.rmeta: crates/bench/benches/e5_tuple_width.rs Cargo.toml

crates/bench/benches/e5_tuple_width.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
