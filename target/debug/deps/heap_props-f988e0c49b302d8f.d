/root/repo/target/debug/deps/heap_props-f988e0c49b302d8f.d: crates/vgl-runtime/tests/heap_props.rs Cargo.toml

/root/repo/target/debug/deps/libheap_props-f988e0c49b302d8f.rmeta: crates/vgl-runtime/tests/heap_props.rs Cargo.toml

crates/vgl-runtime/tests/heap_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
