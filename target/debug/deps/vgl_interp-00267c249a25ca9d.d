/root/repo/target/debug/deps/vgl_interp-00267c249a25ca9d.d: crates/vgl-interp/src/lib.rs crates/vgl-interp/src/engine.rs Cargo.toml

/root/repo/target/debug/deps/libvgl_interp-00267c249a25ca9d.rmeta: crates/vgl-interp/src/lib.rs crates/vgl-interp/src/engine.rs Cargo.toml

crates/vgl-interp/src/lib.rs:
crates/vgl-interp/src/engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
