/root/repo/target/debug/deps/vgl_integration-a19e9cd682349c22.d: tests/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libvgl_integration-a19e9cd682349c22.rmeta: tests/src/lib.rs Cargo.toml

tests/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
