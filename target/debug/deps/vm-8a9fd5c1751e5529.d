/root/repo/target/debug/deps/vm-8a9fd5c1751e5529.d: crates/vgl-vm/tests/vm.rs Cargo.toml

/root/repo/target/debug/deps/libvm-8a9fd5c1751e5529.rmeta: crates/vgl-vm/tests/vm.rs Cargo.toml

crates/vgl-vm/tests/vm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
