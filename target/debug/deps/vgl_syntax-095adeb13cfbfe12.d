/root/repo/target/debug/deps/vgl_syntax-095adeb13cfbfe12.d: crates/vgl-syntax/src/lib.rs crates/vgl-syntax/src/ast.rs crates/vgl-syntax/src/diag.rs crates/vgl-syntax/src/lexer.rs crates/vgl-syntax/src/parser.rs crates/vgl-syntax/src/printer.rs crates/vgl-syntax/src/span.rs crates/vgl-syntax/src/token.rs

/root/repo/target/debug/deps/vgl_syntax-095adeb13cfbfe12: crates/vgl-syntax/src/lib.rs crates/vgl-syntax/src/ast.rs crates/vgl-syntax/src/diag.rs crates/vgl-syntax/src/lexer.rs crates/vgl-syntax/src/parser.rs crates/vgl-syntax/src/printer.rs crates/vgl-syntax/src/span.rs crates/vgl-syntax/src/token.rs

crates/vgl-syntax/src/lib.rs:
crates/vgl-syntax/src/ast.rs:
crates/vgl-syntax/src/diag.rs:
crates/vgl-syntax/src/lexer.rs:
crates/vgl-syntax/src/parser.rs:
crates/vgl-syntax/src/printer.rs:
crates/vgl-syntax/src/span.rs:
crates/vgl-syntax/src/token.rs:
