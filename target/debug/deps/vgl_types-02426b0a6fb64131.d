/root/repo/target/debug/deps/vgl_types-02426b0a6fb64131.d: crates/vgl-types/src/lib.rs crates/vgl-types/src/hierarchy.rs crates/vgl-types/src/infer.rs crates/vgl-types/src/relations.rs crates/vgl-types/src/store.rs Cargo.toml

/root/repo/target/debug/deps/libvgl_types-02426b0a6fb64131.rmeta: crates/vgl-types/src/lib.rs crates/vgl-types/src/hierarchy.rs crates/vgl-types/src/infer.rs crates/vgl-types/src/relations.rs crates/vgl-types/src/store.rs Cargo.toml

crates/vgl-types/src/lib.rs:
crates/vgl-types/src/hierarchy.rs:
crates/vgl-types/src/infer.rs:
crates/vgl-types/src/relations.rs:
crates/vgl-types/src/store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
