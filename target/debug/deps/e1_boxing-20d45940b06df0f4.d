/root/repo/target/debug/deps/e1_boxing-20d45940b06df0f4.d: crates/bench/benches/e1_boxing.rs

/root/repo/target/debug/deps/e1_boxing-20d45940b06df0f4: crates/bench/benches/e1_boxing.rs

crates/bench/benches/e1_boxing.rs:
