/root/repo/target/debug/deps/vgl_vm-cae9a0d6f3874323.d: crates/vgl-vm/src/lib.rs crates/vgl-vm/src/bytecode.rs crates/vgl-vm/src/disasm.rs crates/vgl-vm/src/lower.rs crates/vgl-vm/src/profile.rs crates/vgl-vm/src/vm.rs Cargo.toml

/root/repo/target/debug/deps/libvgl_vm-cae9a0d6f3874323.rmeta: crates/vgl-vm/src/lib.rs crates/vgl-vm/src/bytecode.rs crates/vgl-vm/src/disasm.rs crates/vgl-vm/src/lower.rs crates/vgl-vm/src/profile.rs crates/vgl-vm/src/vm.rs Cargo.toml

crates/vgl-vm/src/lib.rs:
crates/vgl-vm/src/bytecode.rs:
crates/vgl-vm/src/disasm.rs:
crates/vgl-vm/src/lower.rs:
crates/vgl-vm/src/profile.rs:
crates/vgl-vm/src/vm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
