/root/repo/target/debug/deps/e6_callsite_checks-06ee9214403e3233.d: crates/bench/benches/e6_callsite_checks.rs

/root/repo/target/debug/deps/e6_callsite_checks-06ee9214403e3233: crates/bench/benches/e6_callsite_checks.rs

crates/bench/benches/e6_callsite_checks.rs:
