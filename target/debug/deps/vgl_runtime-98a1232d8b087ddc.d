/root/repo/target/debug/deps/vgl_runtime-98a1232d8b087ddc.d: crates/vgl-runtime/src/lib.rs crates/vgl-runtime/src/heap.rs crates/vgl-runtime/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libvgl_runtime-98a1232d8b087ddc.rmeta: crates/vgl-runtime/src/lib.rs crates/vgl-runtime/src/heap.rs crates/vgl-runtime/src/value.rs Cargo.toml

crates/vgl-runtime/src/lib.rs:
crates/vgl-runtime/src/heap.rs:
crates/vgl-runtime/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
