/root/repo/target/debug/deps/vgl-7aff2773542903b0.d: crates/core/src/lib.rs crates/core/src/report.rs Cargo.toml

/root/repo/target/debug/deps/libvgl-7aff2773542903b0.rmeta: crates/core/src/lib.rs crates/core/src/report.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
