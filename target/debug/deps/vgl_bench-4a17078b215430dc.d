/root/repo/target/debug/deps/vgl_bench-4a17078b215430dc.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/workloads.rs Cargo.toml

/root/repo/target/debug/deps/libvgl_bench-4a17078b215430dc.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/workloads.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/workloads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
