/root/repo/target/debug/deps/vgl_sema-b114bd4137d80a9c.d: crates/vgl-sema/src/lib.rs crates/vgl-sema/src/analyzer.rs crates/vgl-sema/src/check.rs crates/vgl-sema/src/decls.rs crates/vgl-sema/src/expr.rs crates/vgl-sema/src/resolve.rs crates/vgl-sema/src/stmt.rs Cargo.toml

/root/repo/target/debug/deps/libvgl_sema-b114bd4137d80a9c.rmeta: crates/vgl-sema/src/lib.rs crates/vgl-sema/src/analyzer.rs crates/vgl-sema/src/check.rs crates/vgl-sema/src/decls.rs crates/vgl-sema/src/expr.rs crates/vgl-sema/src/resolve.rs crates/vgl-sema/src/stmt.rs Cargo.toml

crates/vgl-sema/src/lib.rs:
crates/vgl-sema/src/analyzer.rs:
crates/vgl-sema/src/check.rs:
crates/vgl-sema/src/decls.rs:
crates/vgl-sema/src/expr.rs:
crates/vgl-sema/src/resolve.rs:
crates/vgl-sema/src/stmt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
