/root/repo/target/debug/deps/vglc-a8e4960ee9b910e8.d: crates/core/src/bin/vglc.rs Cargo.toml

/root/repo/target/debug/deps/libvglc-a8e4960ee9b910e8.rmeta: crates/core/src/bin/vglc.rs Cargo.toml

crates/core/src/bin/vglc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
