/root/repo/target/debug/deps/vgl_runtime-35f5086b17c7ab1b.d: crates/vgl-runtime/src/lib.rs crates/vgl-runtime/src/heap.rs crates/vgl-runtime/src/value.rs

/root/repo/target/debug/deps/libvgl_runtime-35f5086b17c7ab1b.rlib: crates/vgl-runtime/src/lib.rs crates/vgl-runtime/src/heap.rs crates/vgl-runtime/src/value.rs

/root/repo/target/debug/deps/libvgl_runtime-35f5086b17c7ab1b.rmeta: crates/vgl-runtime/src/lib.rs crates/vgl-runtime/src/heap.rs crates/vgl-runtime/src/value.rs

crates/vgl-runtime/src/lib.rs:
crates/vgl-runtime/src/heap.rs:
crates/vgl-runtime/src/value.rs:
