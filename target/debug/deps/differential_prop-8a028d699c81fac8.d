/root/repo/target/debug/deps/differential_prop-8a028d699c81fac8.d: tests/tests/differential_prop.rs Cargo.toml

/root/repo/target/debug/deps/libdifferential_prop-8a028d699c81fac8.rmeta: tests/tests/differential_prop.rs Cargo.toml

tests/tests/differential_prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
