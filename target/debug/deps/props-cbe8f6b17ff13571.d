/root/repo/target/debug/deps/props-cbe8f6b17ff13571.d: crates/vgl-types/tests/props.rs

/root/repo/target/debug/deps/props-cbe8f6b17ff13571: crates/vgl-types/tests/props.rs

crates/vgl-types/tests/props.rs:
