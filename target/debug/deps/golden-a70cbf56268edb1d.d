/root/repo/target/debug/deps/golden-a70cbf56268edb1d.d: tests/tests/golden.rs Cargo.toml

/root/repo/target/debug/deps/libgolden-a70cbf56268edb1d.rmeta: tests/tests/golden.rs Cargo.toml

tests/tests/golden.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/tests
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
