/root/repo/target/debug/deps/sema-839439a5bec32312.d: crates/vgl-sema/tests/sema.rs Cargo.toml

/root/repo/target/debug/deps/libsema-839439a5bec32312.rmeta: crates/vgl-sema/tests/sema.rs Cargo.toml

crates/vgl-sema/tests/sema.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
