/root/repo/target/debug/deps/run-992bc7b3541c1055.d: crates/vgl-interp/tests/run.rs

/root/repo/target/debug/deps/run-992bc7b3541c1055: crates/vgl-interp/tests/run.rs

crates/vgl-interp/tests/run.rs:
