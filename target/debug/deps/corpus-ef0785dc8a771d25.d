/root/repo/target/debug/deps/corpus-ef0785dc8a771d25.d: tests/tests/corpus.rs

/root/repo/target/debug/deps/corpus-ef0785dc8a771d25: tests/tests/corpus.rs

tests/tests/corpus.rs:
