/root/repo/target/debug/deps/e6_callsite_checks-c3b275f552eb3057.d: crates/bench/benches/e6_callsite_checks.rs Cargo.toml

/root/repo/target/debug/deps/libe6_callsite_checks-c3b275f552eb3057.rmeta: crates/bench/benches/e6_callsite_checks.rs Cargo.toml

crates/bench/benches/e6_callsite_checks.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
