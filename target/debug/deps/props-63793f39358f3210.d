/root/repo/target/debug/deps/props-63793f39358f3210.d: crates/vgl-types/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-63793f39358f3210.rmeta: crates/vgl-types/tests/props.rs Cargo.toml

crates/vgl-types/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
