/root/repo/target/debug/deps/vgl_types-aa9e7a3cba438b8d.d: crates/vgl-types/src/lib.rs crates/vgl-types/src/hierarchy.rs crates/vgl-types/src/infer.rs crates/vgl-types/src/relations.rs crates/vgl-types/src/store.rs

/root/repo/target/debug/deps/libvgl_types-aa9e7a3cba438b8d.rlib: crates/vgl-types/src/lib.rs crates/vgl-types/src/hierarchy.rs crates/vgl-types/src/infer.rs crates/vgl-types/src/relations.rs crates/vgl-types/src/store.rs

/root/repo/target/debug/deps/libvgl_types-aa9e7a3cba438b8d.rmeta: crates/vgl-types/src/lib.rs crates/vgl-types/src/hierarchy.rs crates/vgl-types/src/infer.rs crates/vgl-types/src/relations.rs crates/vgl-types/src/store.rs

crates/vgl-types/src/lib.rs:
crates/vgl-types/src/hierarchy.rs:
crates/vgl-types/src/infer.rs:
crates/vgl-types/src/relations.rs:
crates/vgl-types/src/store.rs:
