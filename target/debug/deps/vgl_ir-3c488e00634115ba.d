/root/repo/target/debug/deps/vgl_ir-3c488e00634115ba.d: crates/vgl-ir/src/lib.rs crates/vgl-ir/src/body.rs crates/vgl-ir/src/metrics.rs crates/vgl-ir/src/module.rs crates/vgl-ir/src/ops.rs crates/vgl-ir/src/validate.rs crates/vgl-ir/src/visit.rs

/root/repo/target/debug/deps/vgl_ir-3c488e00634115ba: crates/vgl-ir/src/lib.rs crates/vgl-ir/src/body.rs crates/vgl-ir/src/metrics.rs crates/vgl-ir/src/module.rs crates/vgl-ir/src/ops.rs crates/vgl-ir/src/validate.rs crates/vgl-ir/src/visit.rs

crates/vgl-ir/src/lib.rs:
crates/vgl-ir/src/body.rs:
crates/vgl-ir/src/metrics.rs:
crates/vgl-ir/src/module.rs:
crates/vgl-ir/src/ops.rs:
crates/vgl-ir/src/validate.rs:
crates/vgl-ir/src/visit.rs:
