/root/repo/target/debug/deps/vgl_integration-8b3393da4aeb33c7.d: tests/src/lib.rs

/root/repo/target/debug/deps/vgl_integration-8b3393da4aeb33c7: tests/src/lib.rs

tests/src/lib.rs:
