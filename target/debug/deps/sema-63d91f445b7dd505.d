/root/repo/target/debug/deps/sema-63d91f445b7dd505.d: crates/vgl-sema/tests/sema.rs

/root/repo/target/debug/deps/sema-63d91f445b7dd505: crates/vgl-sema/tests/sema.rs

crates/vgl-sema/tests/sema.rs:
