/root/repo/target/debug/deps/vgl_obs-72b93864a4586906.d: crates/vgl-obs/src/lib.rs crates/vgl-obs/src/json.rs Cargo.toml

/root/repo/target/debug/deps/libvgl_obs-72b93864a4586906.rmeta: crates/vgl-obs/src/lib.rs crates/vgl-obs/src/json.rs Cargo.toml

crates/vgl-obs/src/lib.rs:
crates/vgl-obs/src/json.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
