/root/repo/target/debug/deps/profiling-0bd1bfa95e7fbad1.d: crates/vgl-vm/tests/profiling.rs

/root/repo/target/debug/deps/profiling-0bd1bfa95e7fbad1: crates/vgl-vm/tests/profiling.rs

crates/vgl-vm/tests/profiling.rs:
