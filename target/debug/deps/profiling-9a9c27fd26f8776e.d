/root/repo/target/debug/deps/profiling-9a9c27fd26f8776e.d: crates/vgl-vm/tests/profiling.rs Cargo.toml

/root/repo/target/debug/deps/libprofiling-9a9c27fd26f8776e.rmeta: crates/vgl-vm/tests/profiling.rs Cargo.toml

crates/vgl-vm/tests/profiling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
