/root/repo/target/debug/deps/vgl_integration-170c35bc34459434.d: tests/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libvgl_integration-170c35bc34459434.rmeta: tests/src/lib.rs Cargo.toml

tests/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
