/root/repo/target/debug/deps/vgl_obs-6cfe84812e3e4f4e.d: crates/vgl-obs/src/lib.rs crates/vgl-obs/src/json.rs Cargo.toml

/root/repo/target/debug/deps/libvgl_obs-6cfe84812e3e4f4e.rmeta: crates/vgl-obs/src/lib.rs crates/vgl-obs/src/json.rs Cargo.toml

crates/vgl-obs/src/lib.rs:
crates/vgl-obs/src/json.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
