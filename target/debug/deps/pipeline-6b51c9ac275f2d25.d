/root/repo/target/debug/deps/pipeline-6b51c9ac275f2d25.d: crates/vgl-passes/tests/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline-6b51c9ac275f2d25.rmeta: crates/vgl-passes/tests/pipeline.rs Cargo.toml

crates/vgl-passes/tests/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
