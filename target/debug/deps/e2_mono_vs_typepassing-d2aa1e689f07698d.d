/root/repo/target/debug/deps/e2_mono_vs_typepassing-d2aa1e689f07698d.d: crates/bench/benches/e2_mono_vs_typepassing.rs Cargo.toml

/root/repo/target/debug/deps/libe2_mono_vs_typepassing-d2aa1e689f07698d.rmeta: crates/bench/benches/e2_mono_vs_typepassing.rs Cargo.toml

crates/bench/benches/e2_mono_vs_typepassing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
