/root/repo/target/debug/deps/vgl_syntax-d2f7a5df647ca2b4.d: crates/vgl-syntax/src/lib.rs crates/vgl-syntax/src/ast.rs crates/vgl-syntax/src/diag.rs crates/vgl-syntax/src/lexer.rs crates/vgl-syntax/src/parser.rs crates/vgl-syntax/src/printer.rs crates/vgl-syntax/src/span.rs crates/vgl-syntax/src/token.rs Cargo.toml

/root/repo/target/debug/deps/libvgl_syntax-d2f7a5df647ca2b4.rmeta: crates/vgl-syntax/src/lib.rs crates/vgl-syntax/src/ast.rs crates/vgl-syntax/src/diag.rs crates/vgl-syntax/src/lexer.rs crates/vgl-syntax/src/parser.rs crates/vgl-syntax/src/printer.rs crates/vgl-syntax/src/span.rs crates/vgl-syntax/src/token.rs Cargo.toml

crates/vgl-syntax/src/lib.rs:
crates/vgl-syntax/src/ast.rs:
crates/vgl-syntax/src/diag.rs:
crates/vgl-syntax/src/lexer.rs:
crates/vgl-syntax/src/parser.rs:
crates/vgl-syntax/src/printer.rs:
crates/vgl-syntax/src/span.rs:
crates/vgl-syntax/src/token.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
