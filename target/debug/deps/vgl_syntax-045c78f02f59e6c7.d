/root/repo/target/debug/deps/vgl_syntax-045c78f02f59e6c7.d: crates/vgl-syntax/src/lib.rs crates/vgl-syntax/src/ast.rs crates/vgl-syntax/src/diag.rs crates/vgl-syntax/src/lexer.rs crates/vgl-syntax/src/parser.rs crates/vgl-syntax/src/printer.rs crates/vgl-syntax/src/span.rs crates/vgl-syntax/src/token.rs Cargo.toml

/root/repo/target/debug/deps/libvgl_syntax-045c78f02f59e6c7.rmeta: crates/vgl-syntax/src/lib.rs crates/vgl-syntax/src/ast.rs crates/vgl-syntax/src/diag.rs crates/vgl-syntax/src/lexer.rs crates/vgl-syntax/src/parser.rs crates/vgl-syntax/src/printer.rs crates/vgl-syntax/src/span.rs crates/vgl-syntax/src/token.rs Cargo.toml

crates/vgl-syntax/src/lib.rs:
crates/vgl-syntax/src/ast.rs:
crates/vgl-syntax/src/diag.rs:
crates/vgl-syntax/src/lexer.rs:
crates/vgl-syntax/src/parser.rs:
crates/vgl-syntax/src/printer.rs:
crates/vgl-syntax/src/span.rs:
crates/vgl-syntax/src/token.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
