/root/repo/target/debug/deps/vgl_obs-c1b1785ec8045519.d: crates/vgl-obs/src/lib.rs crates/vgl-obs/src/json.rs

/root/repo/target/debug/deps/vgl_obs-c1b1785ec8045519: crates/vgl-obs/src/lib.rs crates/vgl-obs/src/json.rs

crates/vgl-obs/src/lib.rs:
crates/vgl-obs/src/json.rs:
