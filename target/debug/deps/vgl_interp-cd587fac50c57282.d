/root/repo/target/debug/deps/vgl_interp-cd587fac50c57282.d: crates/vgl-interp/src/lib.rs crates/vgl-interp/src/engine.rs

/root/repo/target/debug/deps/libvgl_interp-cd587fac50c57282.rlib: crates/vgl-interp/src/lib.rs crates/vgl-interp/src/engine.rs

/root/repo/target/debug/deps/libvgl_interp-cd587fac50c57282.rmeta: crates/vgl-interp/src/lib.rs crates/vgl-interp/src/engine.rs

crates/vgl-interp/src/lib.rs:
crates/vgl-interp/src/engine.rs:
