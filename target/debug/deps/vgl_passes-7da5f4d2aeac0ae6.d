/root/repo/target/debug/deps/vgl_passes-7da5f4d2aeac0ae6.d: crates/vgl-passes/src/lib.rs crates/vgl-passes/src/mono.rs crates/vgl-passes/src/normalize.rs crates/vgl-passes/src/optimize.rs

/root/repo/target/debug/deps/vgl_passes-7da5f4d2aeac0ae6: crates/vgl-passes/src/lib.rs crates/vgl-passes/src/mono.rs crates/vgl-passes/src/normalize.rs crates/vgl-passes/src/optimize.rs

crates/vgl-passes/src/lib.rs:
crates/vgl-passes/src/mono.rs:
crates/vgl-passes/src/normalize.rs:
crates/vgl-passes/src/optimize.rs:
