/root/repo/target/debug/deps/errors-e4a62f80926835de.d: tests/tests/errors.rs Cargo.toml

/root/repo/target/debug/deps/liberrors-e4a62f80926835de.rmeta: tests/tests/errors.rs Cargo.toml

tests/tests/errors.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
