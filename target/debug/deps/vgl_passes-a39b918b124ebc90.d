/root/repo/target/debug/deps/vgl_passes-a39b918b124ebc90.d: crates/vgl-passes/src/lib.rs crates/vgl-passes/src/mono.rs crates/vgl-passes/src/normalize.rs crates/vgl-passes/src/optimize.rs Cargo.toml

/root/repo/target/debug/deps/libvgl_passes-a39b918b124ebc90.rmeta: crates/vgl-passes/src/lib.rs crates/vgl-passes/src/mono.rs crates/vgl-passes/src/normalize.rs crates/vgl-passes/src/optimize.rs Cargo.toml

crates/vgl-passes/src/lib.rs:
crates/vgl-passes/src/mono.rs:
crates/vgl-passes/src/normalize.rs:
crates/vgl-passes/src/optimize.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
