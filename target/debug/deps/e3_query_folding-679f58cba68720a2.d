/root/repo/target/debug/deps/e3_query_folding-679f58cba68720a2.d: crates/bench/benches/e3_query_folding.rs

/root/repo/target/debug/deps/e3_query_folding-679f58cba68720a2: crates/bench/benches/e3_query_folding.rs

crates/bench/benches/e3_query_folding.rs:
