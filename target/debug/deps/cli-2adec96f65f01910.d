/root/repo/target/debug/deps/cli-2adec96f65f01910.d: crates/core/tests/cli.rs

/root/repo/target/debug/deps/cli-2adec96f65f01910: crates/core/tests/cli.rs

crates/core/tests/cli.rs:

# env-dep:CARGO_BIN_EXE_vglc=/root/repo/target/debug/vglc
# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/core
