/root/repo/target/debug/deps/vgl_ir-ea81af9ad9daaeb7.d: crates/vgl-ir/src/lib.rs crates/vgl-ir/src/body.rs crates/vgl-ir/src/metrics.rs crates/vgl-ir/src/module.rs crates/vgl-ir/src/ops.rs crates/vgl-ir/src/validate.rs crates/vgl-ir/src/visit.rs

/root/repo/target/debug/deps/libvgl_ir-ea81af9ad9daaeb7.rlib: crates/vgl-ir/src/lib.rs crates/vgl-ir/src/body.rs crates/vgl-ir/src/metrics.rs crates/vgl-ir/src/module.rs crates/vgl-ir/src/ops.rs crates/vgl-ir/src/validate.rs crates/vgl-ir/src/visit.rs

/root/repo/target/debug/deps/libvgl_ir-ea81af9ad9daaeb7.rmeta: crates/vgl-ir/src/lib.rs crates/vgl-ir/src/body.rs crates/vgl-ir/src/metrics.rs crates/vgl-ir/src/module.rs crates/vgl-ir/src/ops.rs crates/vgl-ir/src/validate.rs crates/vgl-ir/src/visit.rs

crates/vgl-ir/src/lib.rs:
crates/vgl-ir/src/body.rs:
crates/vgl-ir/src/metrics.rs:
crates/vgl-ir/src/module.rs:
crates/vgl-ir/src/ops.rs:
crates/vgl-ir/src/validate.rs:
crates/vgl-ir/src/visit.rs:
