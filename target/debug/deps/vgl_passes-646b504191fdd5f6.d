/root/repo/target/debug/deps/vgl_passes-646b504191fdd5f6.d: crates/vgl-passes/src/lib.rs crates/vgl-passes/src/mono.rs crates/vgl-passes/src/normalize.rs crates/vgl-passes/src/optimize.rs

/root/repo/target/debug/deps/libvgl_passes-646b504191fdd5f6.rlib: crates/vgl-passes/src/lib.rs crates/vgl-passes/src/mono.rs crates/vgl-passes/src/normalize.rs crates/vgl-passes/src/optimize.rs

/root/repo/target/debug/deps/libvgl_passes-646b504191fdd5f6.rmeta: crates/vgl-passes/src/lib.rs crates/vgl-passes/src/mono.rs crates/vgl-passes/src/normalize.rs crates/vgl-passes/src/optimize.rs

crates/vgl-passes/src/lib.rs:
crates/vgl-passes/src/mono.rs:
crates/vgl-passes/src/normalize.rs:
crates/vgl-passes/src/optimize.rs:
