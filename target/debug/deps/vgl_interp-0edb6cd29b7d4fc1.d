/root/repo/target/debug/deps/vgl_interp-0edb6cd29b7d4fc1.d: crates/vgl-interp/src/lib.rs crates/vgl-interp/src/engine.rs

/root/repo/target/debug/deps/vgl_interp-0edb6cd29b7d4fc1: crates/vgl-interp/src/lib.rs crates/vgl-interp/src/engine.rs

crates/vgl-interp/src/lib.rs:
crates/vgl-interp/src/engine.rs:
