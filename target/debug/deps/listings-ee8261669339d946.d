/root/repo/target/debug/deps/listings-ee8261669339d946.d: tests/tests/listings.rs Cargo.toml

/root/repo/target/debug/deps/liblistings-ee8261669339d946.rmeta: tests/tests/listings.rs Cargo.toml

tests/tests/listings.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
