/root/repo/target/debug/deps/vgl_runtime-d0dda2d88e5daec0.d: crates/vgl-runtime/src/lib.rs crates/vgl-runtime/src/heap.rs crates/vgl-runtime/src/value.rs

/root/repo/target/debug/deps/vgl_runtime-d0dda2d88e5daec0: crates/vgl-runtime/src/lib.rs crates/vgl-runtime/src/heap.rs crates/vgl-runtime/src/value.rs

crates/vgl-runtime/src/lib.rs:
crates/vgl-runtime/src/heap.rs:
crates/vgl-runtime/src/value.rs:
