/root/repo/target/debug/deps/vgl_sema-be7474ffd8b3138d.d: crates/vgl-sema/src/lib.rs crates/vgl-sema/src/analyzer.rs crates/vgl-sema/src/check.rs crates/vgl-sema/src/decls.rs crates/vgl-sema/src/expr.rs crates/vgl-sema/src/resolve.rs crates/vgl-sema/src/stmt.rs

/root/repo/target/debug/deps/vgl_sema-be7474ffd8b3138d: crates/vgl-sema/src/lib.rs crates/vgl-sema/src/analyzer.rs crates/vgl-sema/src/check.rs crates/vgl-sema/src/decls.rs crates/vgl-sema/src/expr.rs crates/vgl-sema/src/resolve.rs crates/vgl-sema/src/stmt.rs

crates/vgl-sema/src/lib.rs:
crates/vgl-sema/src/analyzer.rs:
crates/vgl-sema/src/check.rs:
crates/vgl-sema/src/decls.rs:
crates/vgl-sema/src/expr.rs:
crates/vgl-sema/src/resolve.rs:
crates/vgl-sema/src/stmt.rs:
