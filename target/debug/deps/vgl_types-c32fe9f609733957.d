/root/repo/target/debug/deps/vgl_types-c32fe9f609733957.d: crates/vgl-types/src/lib.rs crates/vgl-types/src/hierarchy.rs crates/vgl-types/src/infer.rs crates/vgl-types/src/relations.rs crates/vgl-types/src/store.rs

/root/repo/target/debug/deps/vgl_types-c32fe9f609733957: crates/vgl-types/src/lib.rs crates/vgl-types/src/hierarchy.rs crates/vgl-types/src/infer.rs crates/vgl-types/src/relations.rs crates/vgl-types/src/store.rs

crates/vgl-types/src/lib.rs:
crates/vgl-types/src/hierarchy.rs:
crates/vgl-types/src/infer.rs:
crates/vgl-types/src/relations.rs:
crates/vgl-types/src/store.rs:
