/root/repo/target/debug/deps/vgl_vm-c641ca5ba2f22a8b.d: crates/vgl-vm/src/lib.rs crates/vgl-vm/src/bytecode.rs crates/vgl-vm/src/disasm.rs crates/vgl-vm/src/lower.rs crates/vgl-vm/src/profile.rs crates/vgl-vm/src/vm.rs Cargo.toml

/root/repo/target/debug/deps/libvgl_vm-c641ca5ba2f22a8b.rmeta: crates/vgl-vm/src/lib.rs crates/vgl-vm/src/bytecode.rs crates/vgl-vm/src/disasm.rs crates/vgl-vm/src/lower.rs crates/vgl-vm/src/profile.rs crates/vgl-vm/src/vm.rs Cargo.toml

crates/vgl-vm/src/lib.rs:
crates/vgl-vm/src/bytecode.rs:
crates/vgl-vm/src/disasm.rs:
crates/vgl-vm/src/lower.rs:
crates/vgl-vm/src/profile.rs:
crates/vgl-vm/src/vm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
