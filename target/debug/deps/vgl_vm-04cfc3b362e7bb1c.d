/root/repo/target/debug/deps/vgl_vm-04cfc3b362e7bb1c.d: crates/vgl-vm/src/lib.rs crates/vgl-vm/src/bytecode.rs crates/vgl-vm/src/disasm.rs crates/vgl-vm/src/lower.rs crates/vgl-vm/src/profile.rs crates/vgl-vm/src/vm.rs

/root/repo/target/debug/deps/vgl_vm-04cfc3b362e7bb1c: crates/vgl-vm/src/lib.rs crates/vgl-vm/src/bytecode.rs crates/vgl-vm/src/disasm.rs crates/vgl-vm/src/lower.rs crates/vgl-vm/src/profile.rs crates/vgl-vm/src/vm.rs

crates/vgl-vm/src/lib.rs:
crates/vgl-vm/src/bytecode.rs:
crates/vgl-vm/src/disasm.rs:
crates/vgl-vm/src/lower.rs:
crates/vgl-vm/src/profile.rs:
crates/vgl-vm/src/vm.rs:
