/root/repo/target/debug/deps/vglc-7f54b5016c53dc6d.d: crates/core/src/bin/vglc.rs

/root/repo/target/debug/deps/vglc-7f54b5016c53dc6d: crates/core/src/bin/vglc.rs

crates/core/src/bin/vglc.rs:
