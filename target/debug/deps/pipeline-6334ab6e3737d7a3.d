/root/repo/target/debug/deps/pipeline-6334ab6e3737d7a3.d: crates/vgl-passes/tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-6334ab6e3737d7a3: crates/vgl-passes/tests/pipeline.rs

crates/vgl-passes/tests/pipeline.rs:
