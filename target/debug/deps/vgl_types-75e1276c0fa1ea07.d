/root/repo/target/debug/deps/vgl_types-75e1276c0fa1ea07.d: crates/vgl-types/src/lib.rs crates/vgl-types/src/hierarchy.rs crates/vgl-types/src/infer.rs crates/vgl-types/src/relations.rs crates/vgl-types/src/store.rs Cargo.toml

/root/repo/target/debug/deps/libvgl_types-75e1276c0fa1ea07.rmeta: crates/vgl-types/src/lib.rs crates/vgl-types/src/hierarchy.rs crates/vgl-types/src/infer.rs crates/vgl-types/src/relations.rs crates/vgl-types/src/store.rs Cargo.toml

crates/vgl-types/src/lib.rs:
crates/vgl-types/src/hierarchy.rs:
crates/vgl-types/src/infer.rs:
crates/vgl-types/src/relations.rs:
crates/vgl-types/src/store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
