/root/repo/target/debug/deps/vgl_vm-39bf1f4396a87a9b.d: crates/vgl-vm/src/lib.rs crates/vgl-vm/src/bytecode.rs crates/vgl-vm/src/disasm.rs crates/vgl-vm/src/lower.rs crates/vgl-vm/src/profile.rs crates/vgl-vm/src/vm.rs

/root/repo/target/debug/deps/libvgl_vm-39bf1f4396a87a9b.rlib: crates/vgl-vm/src/lib.rs crates/vgl-vm/src/bytecode.rs crates/vgl-vm/src/disasm.rs crates/vgl-vm/src/lower.rs crates/vgl-vm/src/profile.rs crates/vgl-vm/src/vm.rs

/root/repo/target/debug/deps/libvgl_vm-39bf1f4396a87a9b.rmeta: crates/vgl-vm/src/lib.rs crates/vgl-vm/src/bytecode.rs crates/vgl-vm/src/disasm.rs crates/vgl-vm/src/lower.rs crates/vgl-vm/src/profile.rs crates/vgl-vm/src/vm.rs

crates/vgl-vm/src/lib.rs:
crates/vgl-vm/src/bytecode.rs:
crates/vgl-vm/src/disasm.rs:
crates/vgl-vm/src/lower.rs:
crates/vgl-vm/src/profile.rs:
crates/vgl-vm/src/vm.rs:
