/root/repo/target/debug/deps/listings-a8e40c921c8cebf2.d: tests/tests/listings.rs

/root/repo/target/debug/deps/listings-a8e40c921c8cebf2: tests/tests/listings.rs

tests/tests/listings.rs:
