/root/repo/target/debug/deps/errors-6bca3b4dc2ddaeb9.d: tests/tests/errors.rs

/root/repo/target/debug/deps/errors-6bca3b4dc2ddaeb9: tests/tests/errors.rs

tests/tests/errors.rs:
