/root/repo/target/debug/deps/vgl_bench-6ae998baf12538c3.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/libvgl_bench-6ae998baf12538c3.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/libvgl_bench-6ae998baf12538c3.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/workloads.rs:
