/root/repo/target/debug/deps/vgl_ir-f24f4a8df2987eb1.d: crates/vgl-ir/src/lib.rs crates/vgl-ir/src/body.rs crates/vgl-ir/src/metrics.rs crates/vgl-ir/src/module.rs crates/vgl-ir/src/ops.rs crates/vgl-ir/src/validate.rs crates/vgl-ir/src/visit.rs Cargo.toml

/root/repo/target/debug/deps/libvgl_ir-f24f4a8df2987eb1.rmeta: crates/vgl-ir/src/lib.rs crates/vgl-ir/src/body.rs crates/vgl-ir/src/metrics.rs crates/vgl-ir/src/module.rs crates/vgl-ir/src/ops.rs crates/vgl-ir/src/validate.rs crates/vgl-ir/src/visit.rs Cargo.toml

crates/vgl-ir/src/lib.rs:
crates/vgl-ir/src/body.rs:
crates/vgl-ir/src/metrics.rs:
crates/vgl-ir/src/module.rs:
crates/vgl-ir/src/ops.rs:
crates/vgl-ir/src/validate.rs:
crates/vgl-ir/src/visit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
