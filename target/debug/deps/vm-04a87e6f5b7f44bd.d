/root/repo/target/debug/deps/vm-04a87e6f5b7f44bd.d: crates/vgl-vm/tests/vm.rs

/root/repo/target/debug/deps/vm-04a87e6f5b7f44bd: crates/vgl-vm/tests/vm.rs

crates/vgl-vm/tests/vm.rs:
