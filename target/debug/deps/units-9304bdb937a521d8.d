/root/repo/target/debug/deps/units-9304bdb937a521d8.d: crates/vgl-passes/tests/units.rs

/root/repo/target/debug/deps/units-9304bdb937a521d8: crates/vgl-passes/tests/units.rs

crates/vgl-passes/tests/units.rs:
