/root/repo/target/debug/deps/vgl_sema-e83bfb98671911c9.d: crates/vgl-sema/src/lib.rs crates/vgl-sema/src/analyzer.rs crates/vgl-sema/src/check.rs crates/vgl-sema/src/decls.rs crates/vgl-sema/src/expr.rs crates/vgl-sema/src/resolve.rs crates/vgl-sema/src/stmt.rs

/root/repo/target/debug/deps/libvgl_sema-e83bfb98671911c9.rlib: crates/vgl-sema/src/lib.rs crates/vgl-sema/src/analyzer.rs crates/vgl-sema/src/check.rs crates/vgl-sema/src/decls.rs crates/vgl-sema/src/expr.rs crates/vgl-sema/src/resolve.rs crates/vgl-sema/src/stmt.rs

/root/repo/target/debug/deps/libvgl_sema-e83bfb98671911c9.rmeta: crates/vgl-sema/src/lib.rs crates/vgl-sema/src/analyzer.rs crates/vgl-sema/src/check.rs crates/vgl-sema/src/decls.rs crates/vgl-sema/src/expr.rs crates/vgl-sema/src/resolve.rs crates/vgl-sema/src/stmt.rs

crates/vgl-sema/src/lib.rs:
crates/vgl-sema/src/analyzer.rs:
crates/vgl-sema/src/check.rs:
crates/vgl-sema/src/decls.rs:
crates/vgl-sema/src/expr.rs:
crates/vgl-sema/src/resolve.rs:
crates/vgl-sema/src/stmt.rs:
