/root/repo/target/debug/deps/vgl_integration-8e855a9493c01a1c.d: tests/src/lib.rs

/root/repo/target/debug/deps/libvgl_integration-8e855a9493c01a1c.rlib: tests/src/lib.rs

/root/repo/target/debug/deps/libvgl_integration-8e855a9493c01a1c.rmeta: tests/src/lib.rs

tests/src/lib.rs:
