/root/repo/target/debug/deps/vgl_integration-a75b4f316b47f2d3.d: tests/src/lib.rs

/root/repo/target/debug/deps/libvgl_integration-a75b4f316b47f2d3.rlib: tests/src/lib.rs

/root/repo/target/debug/deps/libvgl_integration-a75b4f316b47f2d3.rmeta: tests/src/lib.rs

tests/src/lib.rs:
