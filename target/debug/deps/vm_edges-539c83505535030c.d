/root/repo/target/debug/deps/vm_edges-539c83505535030c.d: crates/vgl-vm/tests/vm_edges.rs

/root/repo/target/debug/deps/vm_edges-539c83505535030c: crates/vgl-vm/tests/vm_edges.rs

crates/vgl-vm/tests/vm_edges.rs:
