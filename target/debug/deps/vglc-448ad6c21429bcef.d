/root/repo/target/debug/deps/vglc-448ad6c21429bcef.d: crates/core/src/bin/vglc.rs

/root/repo/target/debug/deps/vglc-448ad6c21429bcef: crates/core/src/bin/vglc.rs

crates/core/src/bin/vglc.rs:
