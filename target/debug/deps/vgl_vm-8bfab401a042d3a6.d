/root/repo/target/debug/deps/vgl_vm-8bfab401a042d3a6.d: crates/vgl-vm/src/lib.rs crates/vgl-vm/src/bytecode.rs crates/vgl-vm/src/disasm.rs crates/vgl-vm/src/lower.rs crates/vgl-vm/src/profile.rs crates/vgl-vm/src/vm.rs

/root/repo/target/debug/deps/libvgl_vm-8bfab401a042d3a6.rlib: crates/vgl-vm/src/lib.rs crates/vgl-vm/src/bytecode.rs crates/vgl-vm/src/disasm.rs crates/vgl-vm/src/lower.rs crates/vgl-vm/src/profile.rs crates/vgl-vm/src/vm.rs

/root/repo/target/debug/deps/libvgl_vm-8bfab401a042d3a6.rmeta: crates/vgl-vm/src/lib.rs crates/vgl-vm/src/bytecode.rs crates/vgl-vm/src/disasm.rs crates/vgl-vm/src/lower.rs crates/vgl-vm/src/profile.rs crates/vgl-vm/src/vm.rs

crates/vgl-vm/src/lib.rs:
crates/vgl-vm/src/bytecode.rs:
crates/vgl-vm/src/disasm.rs:
crates/vgl-vm/src/lower.rs:
crates/vgl-vm/src/profile.rs:
crates/vgl-vm/src/vm.rs:
