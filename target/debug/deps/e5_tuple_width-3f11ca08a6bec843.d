/root/repo/target/debug/deps/e5_tuple_width-3f11ca08a6bec843.d: crates/bench/benches/e5_tuple_width.rs

/root/repo/target/debug/deps/e5_tuple_width-3f11ca08a6bec843: crates/bench/benches/e5_tuple_width.rs

crates/bench/benches/e5_tuple_width.rs:
