/root/repo/target/debug/deps/run-501b41f435bebe00.d: crates/vgl-interp/tests/run.rs Cargo.toml

/root/repo/target/debug/deps/librun-501b41f435bebe00.rmeta: crates/vgl-interp/tests/run.rs Cargo.toml

crates/vgl-interp/tests/run.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
