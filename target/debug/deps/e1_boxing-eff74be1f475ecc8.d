/root/repo/target/debug/deps/e1_boxing-eff74be1f475ecc8.d: crates/bench/benches/e1_boxing.rs Cargo.toml

/root/repo/target/debug/deps/libe1_boxing-eff74be1f475ecc8.rmeta: crates/bench/benches/e1_boxing.rs Cargo.toml

crates/bench/benches/e1_boxing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
