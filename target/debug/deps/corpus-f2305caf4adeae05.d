/root/repo/target/debug/deps/corpus-f2305caf4adeae05.d: tests/tests/corpus.rs Cargo.toml

/root/repo/target/debug/deps/libcorpus-f2305caf4adeae05.rmeta: tests/tests/corpus.rs Cargo.toml

tests/tests/corpus.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
