/root/repo/target/debug/deps/paper_tables-3846bf1a7f28fa8b.d: crates/bench/src/bin/paper_tables.rs

/root/repo/target/debug/deps/paper_tables-3846bf1a7f28fa8b: crates/bench/src/bin/paper_tables.rs

crates/bench/src/bin/paper_tables.rs:
