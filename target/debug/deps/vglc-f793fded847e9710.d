/root/repo/target/debug/deps/vglc-f793fded847e9710.d: crates/core/src/bin/vglc.rs Cargo.toml

/root/repo/target/debug/deps/libvglc-f793fded847e9710.rmeta: crates/core/src/bin/vglc.rs Cargo.toml

crates/core/src/bin/vglc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
