/root/repo/target/debug/deps/cli-55639ef044fed5bd.d: crates/core/tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-55639ef044fed5bd.rmeta: crates/core/tests/cli.rs Cargo.toml

crates/core/tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_vglc=placeholder:vglc
# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/core
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
