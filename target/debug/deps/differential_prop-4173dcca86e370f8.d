/root/repo/target/debug/deps/differential_prop-4173dcca86e370f8.d: tests/tests/differential_prop.rs

/root/repo/target/debug/deps/differential_prop-4173dcca86e370f8: tests/tests/differential_prop.rs

tests/tests/differential_prop.rs:
