/root/repo/target/debug/deps/paper_tables-a8e2367ce3a4de18.d: crates/bench/src/bin/paper_tables.rs

/root/repo/target/debug/deps/paper_tables-a8e2367ce3a4de18: crates/bench/src/bin/paper_tables.rs

crates/bench/src/bin/paper_tables.rs:
