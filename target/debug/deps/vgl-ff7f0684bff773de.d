/root/repo/target/debug/deps/vgl-ff7f0684bff773de.d: crates/core/src/lib.rs crates/core/src/report.rs Cargo.toml

/root/repo/target/debug/deps/libvgl-ff7f0684bff773de.rmeta: crates/core/src/lib.rs crates/core/src/report.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
