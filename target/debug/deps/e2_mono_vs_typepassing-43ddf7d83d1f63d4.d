/root/repo/target/debug/deps/e2_mono_vs_typepassing-43ddf7d83d1f63d4.d: crates/bench/benches/e2_mono_vs_typepassing.rs

/root/repo/target/debug/deps/e2_mono_vs_typepassing-43ddf7d83d1f63d4: crates/bench/benches/e2_mono_vs_typepassing.rs

crates/bench/benches/e2_mono_vs_typepassing.rs:
