/root/repo/target/debug/deps/e4_code_expansion-049fb0f6c65d3420.d: crates/bench/benches/e4_code_expansion.rs Cargo.toml

/root/repo/target/debug/deps/libe4_code_expansion-049fb0f6c65d3420.rmeta: crates/bench/benches/e4_code_expansion.rs Cargo.toml

crates/bench/benches/e4_code_expansion.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
