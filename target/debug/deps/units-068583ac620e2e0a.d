/root/repo/target/debug/deps/units-068583ac620e2e0a.d: crates/vgl-passes/tests/units.rs Cargo.toml

/root/repo/target/debug/deps/libunits-068583ac620e2e0a.rmeta: crates/vgl-passes/tests/units.rs Cargo.toml

crates/vgl-passes/tests/units.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
