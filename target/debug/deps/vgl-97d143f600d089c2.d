/root/repo/target/debug/deps/vgl-97d143f600d089c2.d: crates/core/src/lib.rs crates/core/src/report.rs

/root/repo/target/debug/deps/libvgl-97d143f600d089c2.rlib: crates/core/src/lib.rs crates/core/src/report.rs

/root/repo/target/debug/deps/libvgl-97d143f600d089c2.rmeta: crates/core/src/lib.rs crates/core/src/report.rs

crates/core/src/lib.rs:
crates/core/src/report.rs:
