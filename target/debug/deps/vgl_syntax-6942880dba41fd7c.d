/root/repo/target/debug/deps/vgl_syntax-6942880dba41fd7c.d: crates/vgl-syntax/src/lib.rs crates/vgl-syntax/src/ast.rs crates/vgl-syntax/src/diag.rs crates/vgl-syntax/src/lexer.rs crates/vgl-syntax/src/parser.rs crates/vgl-syntax/src/printer.rs crates/vgl-syntax/src/span.rs crates/vgl-syntax/src/token.rs

/root/repo/target/debug/deps/libvgl_syntax-6942880dba41fd7c.rlib: crates/vgl-syntax/src/lib.rs crates/vgl-syntax/src/ast.rs crates/vgl-syntax/src/diag.rs crates/vgl-syntax/src/lexer.rs crates/vgl-syntax/src/parser.rs crates/vgl-syntax/src/printer.rs crates/vgl-syntax/src/span.rs crates/vgl-syntax/src/token.rs

/root/repo/target/debug/deps/libvgl_syntax-6942880dba41fd7c.rmeta: crates/vgl-syntax/src/lib.rs crates/vgl-syntax/src/ast.rs crates/vgl-syntax/src/diag.rs crates/vgl-syntax/src/lexer.rs crates/vgl-syntax/src/parser.rs crates/vgl-syntax/src/printer.rs crates/vgl-syntax/src/span.rs crates/vgl-syntax/src/token.rs

crates/vgl-syntax/src/lib.rs:
crates/vgl-syntax/src/ast.rs:
crates/vgl-syntax/src/diag.rs:
crates/vgl-syntax/src/lexer.rs:
crates/vgl-syntax/src/parser.rs:
crates/vgl-syntax/src/printer.rs:
crates/vgl-syntax/src/span.rs:
crates/vgl-syntax/src/token.rs:
