/root/repo/target/release/examples/quickstart-529bc609a01b72ae.d: crates/core/../../examples/quickstart.rs

/root/repo/target/release/examples/quickstart-529bc609a01b72ae: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
