/root/repo/target/release/deps/vgl_integration-222e5e85f6dfd8fb.d: tests/src/lib.rs

/root/repo/target/release/deps/vgl_integration-222e5e85f6dfd8fb: tests/src/lib.rs

tests/src/lib.rs:
