/root/repo/target/release/deps/vgl_sema-dca2efc5fc1c02fb.d: crates/vgl-sema/src/lib.rs crates/vgl-sema/src/analyzer.rs crates/vgl-sema/src/check.rs crates/vgl-sema/src/decls.rs crates/vgl-sema/src/expr.rs crates/vgl-sema/src/resolve.rs crates/vgl-sema/src/stmt.rs

/root/repo/target/release/deps/libvgl_sema-dca2efc5fc1c02fb.rlib: crates/vgl-sema/src/lib.rs crates/vgl-sema/src/analyzer.rs crates/vgl-sema/src/check.rs crates/vgl-sema/src/decls.rs crates/vgl-sema/src/expr.rs crates/vgl-sema/src/resolve.rs crates/vgl-sema/src/stmt.rs

/root/repo/target/release/deps/libvgl_sema-dca2efc5fc1c02fb.rmeta: crates/vgl-sema/src/lib.rs crates/vgl-sema/src/analyzer.rs crates/vgl-sema/src/check.rs crates/vgl-sema/src/decls.rs crates/vgl-sema/src/expr.rs crates/vgl-sema/src/resolve.rs crates/vgl-sema/src/stmt.rs

crates/vgl-sema/src/lib.rs:
crates/vgl-sema/src/analyzer.rs:
crates/vgl-sema/src/check.rs:
crates/vgl-sema/src/decls.rs:
crates/vgl-sema/src/expr.rs:
crates/vgl-sema/src/resolve.rs:
crates/vgl-sema/src/stmt.rs:
