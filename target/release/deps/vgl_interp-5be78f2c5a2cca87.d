/root/repo/target/release/deps/vgl_interp-5be78f2c5a2cca87.d: crates/vgl-interp/src/lib.rs crates/vgl-interp/src/engine.rs

/root/repo/target/release/deps/libvgl_interp-5be78f2c5a2cca87.rlib: crates/vgl-interp/src/lib.rs crates/vgl-interp/src/engine.rs

/root/repo/target/release/deps/libvgl_interp-5be78f2c5a2cca87.rmeta: crates/vgl-interp/src/lib.rs crates/vgl-interp/src/engine.rs

crates/vgl-interp/src/lib.rs:
crates/vgl-interp/src/engine.rs:
