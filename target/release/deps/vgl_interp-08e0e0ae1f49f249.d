/root/repo/target/release/deps/vgl_interp-08e0e0ae1f49f249.d: crates/vgl-interp/src/lib.rs crates/vgl-interp/src/engine.rs

/root/repo/target/release/deps/vgl_interp-08e0e0ae1f49f249: crates/vgl-interp/src/lib.rs crates/vgl-interp/src/engine.rs

crates/vgl-interp/src/lib.rs:
crates/vgl-interp/src/engine.rs:
