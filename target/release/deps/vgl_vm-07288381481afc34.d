/root/repo/target/release/deps/vgl_vm-07288381481afc34.d: crates/vgl-vm/src/lib.rs crates/vgl-vm/src/bytecode.rs crates/vgl-vm/src/disasm.rs crates/vgl-vm/src/lower.rs crates/vgl-vm/src/profile.rs crates/vgl-vm/src/vm.rs

/root/repo/target/release/deps/vgl_vm-07288381481afc34: crates/vgl-vm/src/lib.rs crates/vgl-vm/src/bytecode.rs crates/vgl-vm/src/disasm.rs crates/vgl-vm/src/lower.rs crates/vgl-vm/src/profile.rs crates/vgl-vm/src/vm.rs

crates/vgl-vm/src/lib.rs:
crates/vgl-vm/src/bytecode.rs:
crates/vgl-vm/src/disasm.rs:
crates/vgl-vm/src/lower.rs:
crates/vgl-vm/src/profile.rs:
crates/vgl-vm/src/vm.rs:
