/root/repo/target/release/deps/e6_callsite_checks-e977f7e8fa833d3c.d: crates/bench/benches/e6_callsite_checks.rs

/root/repo/target/release/deps/e6_callsite_checks-e977f7e8fa833d3c: crates/bench/benches/e6_callsite_checks.rs

crates/bench/benches/e6_callsite_checks.rs:
