/root/repo/target/release/deps/vgl_obs-c08ccfef6e00f0bc.d: crates/vgl-obs/src/lib.rs crates/vgl-obs/src/json.rs

/root/repo/target/release/deps/libvgl_obs-c08ccfef6e00f0bc.rlib: crates/vgl-obs/src/lib.rs crates/vgl-obs/src/json.rs

/root/repo/target/release/deps/libvgl_obs-c08ccfef6e00f0bc.rmeta: crates/vgl-obs/src/lib.rs crates/vgl-obs/src/json.rs

crates/vgl-obs/src/lib.rs:
crates/vgl-obs/src/json.rs:
