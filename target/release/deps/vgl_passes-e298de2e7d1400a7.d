/root/repo/target/release/deps/vgl_passes-e298de2e7d1400a7.d: crates/vgl-passes/src/lib.rs crates/vgl-passes/src/mono.rs crates/vgl-passes/src/normalize.rs crates/vgl-passes/src/optimize.rs

/root/repo/target/release/deps/libvgl_passes-e298de2e7d1400a7.rlib: crates/vgl-passes/src/lib.rs crates/vgl-passes/src/mono.rs crates/vgl-passes/src/normalize.rs crates/vgl-passes/src/optimize.rs

/root/repo/target/release/deps/libvgl_passes-e298de2e7d1400a7.rmeta: crates/vgl-passes/src/lib.rs crates/vgl-passes/src/mono.rs crates/vgl-passes/src/normalize.rs crates/vgl-passes/src/optimize.rs

crates/vgl-passes/src/lib.rs:
crates/vgl-passes/src/mono.rs:
crates/vgl-passes/src/normalize.rs:
crates/vgl-passes/src/optimize.rs:
