/root/repo/target/release/deps/vgl_obs-0df218a9274fbd71.d: crates/vgl-obs/src/lib.rs crates/vgl-obs/src/json.rs

/root/repo/target/release/deps/vgl_obs-0df218a9274fbd71: crates/vgl-obs/src/lib.rs crates/vgl-obs/src/json.rs

crates/vgl-obs/src/lib.rs:
crates/vgl-obs/src/json.rs:
