/root/repo/target/release/deps/vglc-07b886b82a46e20f.d: crates/core/src/bin/vglc.rs

/root/repo/target/release/deps/vglc-07b886b82a46e20f: crates/core/src/bin/vglc.rs

crates/core/src/bin/vglc.rs:
