/root/repo/target/release/deps/e4_code_expansion-58b1136858cc4572.d: crates/bench/benches/e4_code_expansion.rs

/root/repo/target/release/deps/e4_code_expansion-58b1136858cc4572: crates/bench/benches/e4_code_expansion.rs

crates/bench/benches/e4_code_expansion.rs:
