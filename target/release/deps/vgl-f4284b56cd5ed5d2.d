/root/repo/target/release/deps/vgl-f4284b56cd5ed5d2.d: crates/core/src/lib.rs crates/core/src/report.rs

/root/repo/target/release/deps/libvgl-f4284b56cd5ed5d2.rlib: crates/core/src/lib.rs crates/core/src/report.rs

/root/repo/target/release/deps/libvgl-f4284b56cd5ed5d2.rmeta: crates/core/src/lib.rs crates/core/src/report.rs

crates/core/src/lib.rs:
crates/core/src/report.rs:
