/root/repo/target/release/deps/vglc-01c05ffc6915cde5.d: crates/core/src/bin/vglc.rs

/root/repo/target/release/deps/vglc-01c05ffc6915cde5: crates/core/src/bin/vglc.rs

crates/core/src/bin/vglc.rs:
