/root/repo/target/release/deps/vgl_integration-d80adcb3ed698401.d: tests/src/lib.rs

/root/repo/target/release/deps/libvgl_integration-d80adcb3ed698401.rlib: tests/src/lib.rs

/root/repo/target/release/deps/libvgl_integration-d80adcb3ed698401.rmeta: tests/src/lib.rs

tests/src/lib.rs:
