/root/repo/target/release/deps/vgl_passes-aef9b31a5e442f0a.d: crates/vgl-passes/src/lib.rs crates/vgl-passes/src/mono.rs crates/vgl-passes/src/normalize.rs crates/vgl-passes/src/optimize.rs

/root/repo/target/release/deps/vgl_passes-aef9b31a5e442f0a: crates/vgl-passes/src/lib.rs crates/vgl-passes/src/mono.rs crates/vgl-passes/src/normalize.rs crates/vgl-passes/src/optimize.rs

crates/vgl-passes/src/lib.rs:
crates/vgl-passes/src/mono.rs:
crates/vgl-passes/src/normalize.rs:
crates/vgl-passes/src/optimize.rs:
