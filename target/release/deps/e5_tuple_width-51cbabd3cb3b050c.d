/root/repo/target/release/deps/e5_tuple_width-51cbabd3cb3b050c.d: crates/bench/benches/e5_tuple_width.rs

/root/repo/target/release/deps/e5_tuple_width-51cbabd3cb3b050c: crates/bench/benches/e5_tuple_width.rs

crates/bench/benches/e5_tuple_width.rs:
