/root/repo/target/release/deps/e2_mono_vs_typepassing-39c754af68b440a4.d: crates/bench/benches/e2_mono_vs_typepassing.rs

/root/repo/target/release/deps/e2_mono_vs_typepassing-39c754af68b440a4: crates/bench/benches/e2_mono_vs_typepassing.rs

crates/bench/benches/e2_mono_vs_typepassing.rs:
