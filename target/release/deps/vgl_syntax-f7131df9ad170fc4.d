/root/repo/target/release/deps/vgl_syntax-f7131df9ad170fc4.d: crates/vgl-syntax/src/lib.rs crates/vgl-syntax/src/ast.rs crates/vgl-syntax/src/diag.rs crates/vgl-syntax/src/lexer.rs crates/vgl-syntax/src/parser.rs crates/vgl-syntax/src/printer.rs crates/vgl-syntax/src/span.rs crates/vgl-syntax/src/token.rs

/root/repo/target/release/deps/libvgl_syntax-f7131df9ad170fc4.rlib: crates/vgl-syntax/src/lib.rs crates/vgl-syntax/src/ast.rs crates/vgl-syntax/src/diag.rs crates/vgl-syntax/src/lexer.rs crates/vgl-syntax/src/parser.rs crates/vgl-syntax/src/printer.rs crates/vgl-syntax/src/span.rs crates/vgl-syntax/src/token.rs

/root/repo/target/release/deps/libvgl_syntax-f7131df9ad170fc4.rmeta: crates/vgl-syntax/src/lib.rs crates/vgl-syntax/src/ast.rs crates/vgl-syntax/src/diag.rs crates/vgl-syntax/src/lexer.rs crates/vgl-syntax/src/parser.rs crates/vgl-syntax/src/printer.rs crates/vgl-syntax/src/span.rs crates/vgl-syntax/src/token.rs

crates/vgl-syntax/src/lib.rs:
crates/vgl-syntax/src/ast.rs:
crates/vgl-syntax/src/diag.rs:
crates/vgl-syntax/src/lexer.rs:
crates/vgl-syntax/src/parser.rs:
crates/vgl-syntax/src/printer.rs:
crates/vgl-syntax/src/span.rs:
crates/vgl-syntax/src/token.rs:
