/root/repo/target/release/deps/vgl_types-a64073abd3543ef2.d: crates/vgl-types/src/lib.rs crates/vgl-types/src/hierarchy.rs crates/vgl-types/src/infer.rs crates/vgl-types/src/relations.rs crates/vgl-types/src/store.rs

/root/repo/target/release/deps/libvgl_types-a64073abd3543ef2.rlib: crates/vgl-types/src/lib.rs crates/vgl-types/src/hierarchy.rs crates/vgl-types/src/infer.rs crates/vgl-types/src/relations.rs crates/vgl-types/src/store.rs

/root/repo/target/release/deps/libvgl_types-a64073abd3543ef2.rmeta: crates/vgl-types/src/lib.rs crates/vgl-types/src/hierarchy.rs crates/vgl-types/src/infer.rs crates/vgl-types/src/relations.rs crates/vgl-types/src/store.rs

crates/vgl-types/src/lib.rs:
crates/vgl-types/src/hierarchy.rs:
crates/vgl-types/src/infer.rs:
crates/vgl-types/src/relations.rs:
crates/vgl-types/src/store.rs:
