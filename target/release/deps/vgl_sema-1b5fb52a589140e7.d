/root/repo/target/release/deps/vgl_sema-1b5fb52a589140e7.d: crates/vgl-sema/src/lib.rs crates/vgl-sema/src/analyzer.rs crates/vgl-sema/src/check.rs crates/vgl-sema/src/decls.rs crates/vgl-sema/src/expr.rs crates/vgl-sema/src/resolve.rs crates/vgl-sema/src/stmt.rs

/root/repo/target/release/deps/vgl_sema-1b5fb52a589140e7: crates/vgl-sema/src/lib.rs crates/vgl-sema/src/analyzer.rs crates/vgl-sema/src/check.rs crates/vgl-sema/src/decls.rs crates/vgl-sema/src/expr.rs crates/vgl-sema/src/resolve.rs crates/vgl-sema/src/stmt.rs

crates/vgl-sema/src/lib.rs:
crates/vgl-sema/src/analyzer.rs:
crates/vgl-sema/src/check.rs:
crates/vgl-sema/src/decls.rs:
crates/vgl-sema/src/expr.rs:
crates/vgl-sema/src/resolve.rs:
crates/vgl-sema/src/stmt.rs:
