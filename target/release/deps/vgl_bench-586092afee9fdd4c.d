/root/repo/target/release/deps/vgl_bench-586092afee9fdd4c.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/workloads.rs

/root/repo/target/release/deps/vgl_bench-586092afee9fdd4c: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/workloads.rs:
