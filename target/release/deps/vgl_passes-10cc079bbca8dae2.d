/root/repo/target/release/deps/vgl_passes-10cc079bbca8dae2.d: crates/vgl-passes/src/lib.rs crates/vgl-passes/src/mono.rs crates/vgl-passes/src/normalize.rs crates/vgl-passes/src/optimize.rs

/root/repo/target/release/deps/libvgl_passes-10cc079bbca8dae2.rlib: crates/vgl-passes/src/lib.rs crates/vgl-passes/src/mono.rs crates/vgl-passes/src/normalize.rs crates/vgl-passes/src/optimize.rs

/root/repo/target/release/deps/libvgl_passes-10cc079bbca8dae2.rmeta: crates/vgl-passes/src/lib.rs crates/vgl-passes/src/mono.rs crates/vgl-passes/src/normalize.rs crates/vgl-passes/src/optimize.rs

crates/vgl-passes/src/lib.rs:
crates/vgl-passes/src/mono.rs:
crates/vgl-passes/src/normalize.rs:
crates/vgl-passes/src/optimize.rs:
