/root/repo/target/release/deps/e1_boxing-03c21d5dd7c7c6f6.d: crates/bench/benches/e1_boxing.rs

/root/repo/target/release/deps/e1_boxing-03c21d5dd7c7c6f6: crates/bench/benches/e1_boxing.rs

crates/bench/benches/e1_boxing.rs:
