/root/repo/target/release/deps/vgl_types-a780da0e30225356.d: crates/vgl-types/src/lib.rs crates/vgl-types/src/hierarchy.rs crates/vgl-types/src/infer.rs crates/vgl-types/src/relations.rs crates/vgl-types/src/store.rs

/root/repo/target/release/deps/vgl_types-a780da0e30225356: crates/vgl-types/src/lib.rs crates/vgl-types/src/hierarchy.rs crates/vgl-types/src/infer.rs crates/vgl-types/src/relations.rs crates/vgl-types/src/store.rs

crates/vgl-types/src/lib.rs:
crates/vgl-types/src/hierarchy.rs:
crates/vgl-types/src/infer.rs:
crates/vgl-types/src/relations.rs:
crates/vgl-types/src/store.rs:
