/root/repo/target/release/deps/e3_query_folding-c6a683780226b43f.d: crates/bench/benches/e3_query_folding.rs

/root/repo/target/release/deps/e3_query_folding-c6a683780226b43f: crates/bench/benches/e3_query_folding.rs

crates/bench/benches/e3_query_folding.rs:
