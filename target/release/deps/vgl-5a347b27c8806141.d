/root/repo/target/release/deps/vgl-5a347b27c8806141.d: crates/core/src/lib.rs crates/core/src/report.rs

/root/repo/target/release/deps/vgl-5a347b27c8806141: crates/core/src/lib.rs crates/core/src/report.rs

crates/core/src/lib.rs:
crates/core/src/report.rs:
