/root/repo/target/release/deps/vgl_types-e0a0c0fc67dd4300.d: crates/vgl-types/src/lib.rs crates/vgl-types/src/hierarchy.rs crates/vgl-types/src/infer.rs crates/vgl-types/src/relations.rs crates/vgl-types/src/store.rs

/root/repo/target/release/deps/libvgl_types-e0a0c0fc67dd4300.rlib: crates/vgl-types/src/lib.rs crates/vgl-types/src/hierarchy.rs crates/vgl-types/src/infer.rs crates/vgl-types/src/relations.rs crates/vgl-types/src/store.rs

/root/repo/target/release/deps/libvgl_types-e0a0c0fc67dd4300.rmeta: crates/vgl-types/src/lib.rs crates/vgl-types/src/hierarchy.rs crates/vgl-types/src/infer.rs crates/vgl-types/src/relations.rs crates/vgl-types/src/store.rs

crates/vgl-types/src/lib.rs:
crates/vgl-types/src/hierarchy.rs:
crates/vgl-types/src/infer.rs:
crates/vgl-types/src/relations.rs:
crates/vgl-types/src/store.rs:
