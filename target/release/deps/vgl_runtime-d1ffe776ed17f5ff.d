/root/repo/target/release/deps/vgl_runtime-d1ffe776ed17f5ff.d: crates/vgl-runtime/src/lib.rs crates/vgl-runtime/src/heap.rs crates/vgl-runtime/src/value.rs

/root/repo/target/release/deps/libvgl_runtime-d1ffe776ed17f5ff.rlib: crates/vgl-runtime/src/lib.rs crates/vgl-runtime/src/heap.rs crates/vgl-runtime/src/value.rs

/root/repo/target/release/deps/libvgl_runtime-d1ffe776ed17f5ff.rmeta: crates/vgl-runtime/src/lib.rs crates/vgl-runtime/src/heap.rs crates/vgl-runtime/src/value.rs

crates/vgl-runtime/src/lib.rs:
crates/vgl-runtime/src/heap.rs:
crates/vgl-runtime/src/value.rs:
