/root/repo/target/release/deps/vgl_bench-9d72b60fd6f66f96.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/workloads.rs

/root/repo/target/release/deps/libvgl_bench-9d72b60fd6f66f96.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/workloads.rs

/root/repo/target/release/deps/libvgl_bench-9d72b60fd6f66f96.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/workloads.rs:
