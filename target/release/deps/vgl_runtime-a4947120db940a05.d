/root/repo/target/release/deps/vgl_runtime-a4947120db940a05.d: crates/vgl-runtime/src/lib.rs crates/vgl-runtime/src/heap.rs crates/vgl-runtime/src/value.rs

/root/repo/target/release/deps/vgl_runtime-a4947120db940a05: crates/vgl-runtime/src/lib.rs crates/vgl-runtime/src/heap.rs crates/vgl-runtime/src/value.rs

crates/vgl-runtime/src/lib.rs:
crates/vgl-runtime/src/heap.rs:
crates/vgl-runtime/src/value.rs:
