/root/repo/target/release/deps/paper_tables-24e10c6203d7cce9.d: crates/bench/src/bin/paper_tables.rs

/root/repo/target/release/deps/paper_tables-24e10c6203d7cce9: crates/bench/src/bin/paper_tables.rs

crates/bench/src/bin/paper_tables.rs:
