/root/repo/target/release/deps/vgl_runtime-65ebb4fb63fe86c3.d: crates/vgl-runtime/src/lib.rs crates/vgl-runtime/src/heap.rs crates/vgl-runtime/src/value.rs

/root/repo/target/release/deps/libvgl_runtime-65ebb4fb63fe86c3.rlib: crates/vgl-runtime/src/lib.rs crates/vgl-runtime/src/heap.rs crates/vgl-runtime/src/value.rs

/root/repo/target/release/deps/libvgl_runtime-65ebb4fb63fe86c3.rmeta: crates/vgl-runtime/src/lib.rs crates/vgl-runtime/src/heap.rs crates/vgl-runtime/src/value.rs

crates/vgl-runtime/src/lib.rs:
crates/vgl-runtime/src/heap.rs:
crates/vgl-runtime/src/value.rs:
