/root/repo/target/release/deps/vgl_obs-904a18fa02d94445.d: crates/vgl-obs/src/lib.rs crates/vgl-obs/src/json.rs

/root/repo/target/release/deps/libvgl_obs-904a18fa02d94445.rlib: crates/vgl-obs/src/lib.rs crates/vgl-obs/src/json.rs

/root/repo/target/release/deps/libvgl_obs-904a18fa02d94445.rmeta: crates/vgl-obs/src/lib.rs crates/vgl-obs/src/json.rs

crates/vgl-obs/src/lib.rs:
crates/vgl-obs/src/json.rs:
