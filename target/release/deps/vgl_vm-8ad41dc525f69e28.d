/root/repo/target/release/deps/vgl_vm-8ad41dc525f69e28.d: crates/vgl-vm/src/lib.rs crates/vgl-vm/src/bytecode.rs crates/vgl-vm/src/disasm.rs crates/vgl-vm/src/lower.rs crates/vgl-vm/src/profile.rs crates/vgl-vm/src/vm.rs

/root/repo/target/release/deps/libvgl_vm-8ad41dc525f69e28.rlib: crates/vgl-vm/src/lib.rs crates/vgl-vm/src/bytecode.rs crates/vgl-vm/src/disasm.rs crates/vgl-vm/src/lower.rs crates/vgl-vm/src/profile.rs crates/vgl-vm/src/vm.rs

/root/repo/target/release/deps/libvgl_vm-8ad41dc525f69e28.rmeta: crates/vgl-vm/src/lib.rs crates/vgl-vm/src/bytecode.rs crates/vgl-vm/src/disasm.rs crates/vgl-vm/src/lower.rs crates/vgl-vm/src/profile.rs crates/vgl-vm/src/vm.rs

crates/vgl-vm/src/lib.rs:
crates/vgl-vm/src/bytecode.rs:
crates/vgl-vm/src/disasm.rs:
crates/vgl-vm/src/lower.rs:
crates/vgl-vm/src/profile.rs:
crates/vgl-vm/src/vm.rs:
