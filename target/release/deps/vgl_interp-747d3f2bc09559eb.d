/root/repo/target/release/deps/vgl_interp-747d3f2bc09559eb.d: crates/vgl-interp/src/lib.rs crates/vgl-interp/src/engine.rs

/root/repo/target/release/deps/libvgl_interp-747d3f2bc09559eb.rlib: crates/vgl-interp/src/lib.rs crates/vgl-interp/src/engine.rs

/root/repo/target/release/deps/libvgl_interp-747d3f2bc09559eb.rmeta: crates/vgl-interp/src/lib.rs crates/vgl-interp/src/engine.rs

crates/vgl-interp/src/lib.rs:
crates/vgl-interp/src/engine.rs:
