/root/repo/target/release/deps/vgl_ir-74615671dcb9685e.d: crates/vgl-ir/src/lib.rs crates/vgl-ir/src/body.rs crates/vgl-ir/src/metrics.rs crates/vgl-ir/src/module.rs crates/vgl-ir/src/ops.rs crates/vgl-ir/src/validate.rs crates/vgl-ir/src/visit.rs

/root/repo/target/release/deps/vgl_ir-74615671dcb9685e: crates/vgl-ir/src/lib.rs crates/vgl-ir/src/body.rs crates/vgl-ir/src/metrics.rs crates/vgl-ir/src/module.rs crates/vgl-ir/src/ops.rs crates/vgl-ir/src/validate.rs crates/vgl-ir/src/visit.rs

crates/vgl-ir/src/lib.rs:
crates/vgl-ir/src/body.rs:
crates/vgl-ir/src/metrics.rs:
crates/vgl-ir/src/module.rs:
crates/vgl-ir/src/ops.rs:
crates/vgl-ir/src/validate.rs:
crates/vgl-ir/src/visit.rs:
