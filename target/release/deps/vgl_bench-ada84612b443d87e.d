/root/repo/target/release/deps/vgl_bench-ada84612b443d87e.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/workloads.rs

/root/repo/target/release/deps/libvgl_bench-ada84612b443d87e.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/workloads.rs

/root/repo/target/release/deps/libvgl_bench-ada84612b443d87e.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/workloads.rs:
