/root/repo/target/release/deps/paper_tables-e85570b4f16d5a3c.d: crates/bench/src/bin/paper_tables.rs

/root/repo/target/release/deps/paper_tables-e85570b4f16d5a3c: crates/bench/src/bin/paper_tables.rs

crates/bench/src/bin/paper_tables.rs:
