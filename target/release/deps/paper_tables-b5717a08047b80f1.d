/root/repo/target/release/deps/paper_tables-b5717a08047b80f1.d: crates/bench/src/bin/paper_tables.rs

/root/repo/target/release/deps/paper_tables-b5717a08047b80f1: crates/bench/src/bin/paper_tables.rs

crates/bench/src/bin/paper_tables.rs:
