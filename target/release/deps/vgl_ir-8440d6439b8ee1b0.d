/root/repo/target/release/deps/vgl_ir-8440d6439b8ee1b0.d: crates/vgl-ir/src/lib.rs crates/vgl-ir/src/body.rs crates/vgl-ir/src/metrics.rs crates/vgl-ir/src/module.rs crates/vgl-ir/src/ops.rs crates/vgl-ir/src/validate.rs crates/vgl-ir/src/visit.rs

/root/repo/target/release/deps/libvgl_ir-8440d6439b8ee1b0.rlib: crates/vgl-ir/src/lib.rs crates/vgl-ir/src/body.rs crates/vgl-ir/src/metrics.rs crates/vgl-ir/src/module.rs crates/vgl-ir/src/ops.rs crates/vgl-ir/src/validate.rs crates/vgl-ir/src/visit.rs

/root/repo/target/release/deps/libvgl_ir-8440d6439b8ee1b0.rmeta: crates/vgl-ir/src/lib.rs crates/vgl-ir/src/body.rs crates/vgl-ir/src/metrics.rs crates/vgl-ir/src/module.rs crates/vgl-ir/src/ops.rs crates/vgl-ir/src/validate.rs crates/vgl-ir/src/visit.rs

crates/vgl-ir/src/lib.rs:
crates/vgl-ir/src/body.rs:
crates/vgl-ir/src/metrics.rs:
crates/vgl-ir/src/module.rs:
crates/vgl-ir/src/ops.rs:
crates/vgl-ir/src/validate.rs:
crates/vgl-ir/src/visit.rs:
