/root/repo/target/release/deps/vgl-aec5a13eea311f55.d: crates/core/src/lib.rs crates/core/src/report.rs

/root/repo/target/release/deps/libvgl-aec5a13eea311f55.rlib: crates/core/src/lib.rs crates/core/src/report.rs

/root/repo/target/release/deps/libvgl-aec5a13eea311f55.rmeta: crates/core/src/lib.rs crates/core/src/report.rs

crates/core/src/lib.rs:
crates/core/src/report.rs:
