/root/repo/target/release/deps/vgl_ir-d95d23b1ed6996bb.d: crates/vgl-ir/src/lib.rs crates/vgl-ir/src/body.rs crates/vgl-ir/src/metrics.rs crates/vgl-ir/src/module.rs crates/vgl-ir/src/ops.rs crates/vgl-ir/src/validate.rs crates/vgl-ir/src/visit.rs

/root/repo/target/release/deps/libvgl_ir-d95d23b1ed6996bb.rlib: crates/vgl-ir/src/lib.rs crates/vgl-ir/src/body.rs crates/vgl-ir/src/metrics.rs crates/vgl-ir/src/module.rs crates/vgl-ir/src/ops.rs crates/vgl-ir/src/validate.rs crates/vgl-ir/src/visit.rs

/root/repo/target/release/deps/libvgl_ir-d95d23b1ed6996bb.rmeta: crates/vgl-ir/src/lib.rs crates/vgl-ir/src/body.rs crates/vgl-ir/src/metrics.rs crates/vgl-ir/src/module.rs crates/vgl-ir/src/ops.rs crates/vgl-ir/src/validate.rs crates/vgl-ir/src/visit.rs

crates/vgl-ir/src/lib.rs:
crates/vgl-ir/src/body.rs:
crates/vgl-ir/src/metrics.rs:
crates/vgl-ir/src/module.rs:
crates/vgl-ir/src/ops.rs:
crates/vgl-ir/src/validate.rs:
crates/vgl-ir/src/visit.rs:
