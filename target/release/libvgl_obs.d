/root/repo/target/release/libvgl_obs.rlib: /root/repo/crates/vgl-obs/src/json.rs /root/repo/crates/vgl-obs/src/lib.rs
