//! The tree-walking evaluation engine.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use vgl_ir::ops::{self, Exception};
use vgl_ir::{
    Body, Builtin, Expr, ExprKind, Method, MethodId, MethodKind, Module, Oper, Stmt,
};
use vgl_runtime::value::{AllocStats, ArrData, Closure, ObjData, Value};
use vgl_types::{ClassId, Type, TypeKind, TypeStore, TypeVarId};

/// Why execution stopped abnormally.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InterpError {
    /// A language-level runtime exception.
    Exception(Exception),
    /// The configured fuel (step budget) ran out.
    OutOfFuel,
    /// The module has no `main`.
    NoMain,
}

impl std::fmt::Display for InterpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterpError::Exception(e) => write!(f, "{e}"),
            InterpError::OutOfFuel => write!(f, "out of fuel"),
            InterpError::NoMain => write!(f, "program has no main"),
        }
    }
}

impl std::error::Error for InterpError {}

/// Costs the interpreter pays that the compiler pipeline removes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InterpStats {
    /// Allocation counters (tuple boxes are the E1 metric).
    pub allocs: AllocStats,
    /// §4.1 dynamic calling-convention checks at first-class call sites
    /// (the E6 metric).
    pub callsite_checks: usize,
    /// Calling-convention *adaptations* performed (boxing or unboxing of an
    /// argument tuple because caller and callee disagreed on arity).
    pub callsite_adaptations: usize,
    /// Runtime type substitutions (the type-argument-passing cost, E2).
    pub type_substitutions: usize,
    /// Type-environment consultations (every substitution walks the frame's
    /// type env — §4.3's "invisible arguments" being read back).
    pub env_lookups: usize,
    /// Cumulative type-env size across consultations; `env_depth_total /
    /// env_lookups` is the mean environment depth paid per lookup.
    pub env_depth_total: usize,
    /// Largest type environment consulted.
    pub max_env_depth: usize,
    /// Expression evaluation steps.
    pub steps: u64,
}

type EResult = Result<Value, Exception>;

enum Flow {
    Next,
    Break,
    Continue,
    Return(Value),
}

type SResult = Result<Flow, Exception>;

struct Frame {
    locals: Vec<Value>,
    type_env: HashMap<TypeVarId, Type>,
}

/// The interpreter. Borrow a typed [`Module`] and run it.
pub struct Interp<'m> {
    module: &'m Module,
    store: TypeStore,
    /// Component variable values.
    globals: Vec<Value>,
    /// Captured `System.puts`/`puti`/... output.
    out: Vec<u8>,
    /// Statistics.
    pub stats: InterpStats,
    fuel: Option<u64>,
}

/// Fuel exhaustion sentinel distinct from language exceptions.
const FUEL_EXCEPTION: Exception = Exception::UserError;

impl<'m> Interp<'m> {
    /// Creates an interpreter for `module`.
    pub fn new(module: &'m Module) -> Interp<'m> {
        Interp {
            module,
            store: module.store.clone(),
            globals: Vec::new(),
            out: Vec::new(),
            stats: InterpStats::default(),
            fuel: None,
        }
    }

    /// Limits execution to `steps` expression evaluations.
    pub fn set_fuel(&mut self, steps: u64) {
        self.fuel = Some(steps);
    }

    /// Captured output so far (everything written via `System.*`).
    pub fn output(&self) -> String {
        String::from_utf8_lossy(&self.out).into_owned()
    }

    /// Initializes globals and runs `main`.
    pub fn run(&mut self) -> Result<Value, InterpError> {
        let Some(main) = self.module.main else {
            return Err(InterpError::NoMain);
        };
        self.init_globals().map_err(|e| self.lift(e))?;
        self.call(main, vec![], vec![]).map_err(|e| self.lift(e))
    }

    /// Initializes globals then calls a component method by name (testing
    /// hook).
    pub fn run_function(&mut self, name: &str, args: Vec<Value>) -> Result<Value, InterpError> {
        let Some(m) = self.module.method_by_name(name) else {
            return Err(InterpError::NoMain);
        };
        self.init_globals().map_err(|e| self.lift(e))?;
        self.call(m, vec![], args).map_err(|e| self.lift(e))
    }

    /// Classifies an unwound exception. The fuel sentinel shares its
    /// `Exception` value with `System.error`, so disambiguate by whether the
    /// budget actually ran out: the per-eval fuel check fires *before* any
    /// builtin can raise, so `steps > fuel` exactly identifies exhaustion —
    /// fuel exhaustion must surface as [`InterpError::OutOfFuel`], never as
    /// the language-level `!Error` trap.
    fn lift(&self, e: Exception) -> InterpError {
        if e == FUEL_EXCEPTION && self.fuel.is_some_and(|f| self.stats.steps > f) {
            InterpError::OutOfFuel
        } else {
            InterpError::Exception(e)
        }
    }

    fn init_globals(&mut self) -> Result<(), Exception> {
        if !self.globals.is_empty() {
            return Ok(());
        }
        // Pre-fill defaults so out-of-order references see zero values.
        let empty = HashMap::new();
        for g in &self.module.globals {
            let d = self.default_value(g.ty, &empty)?;
            self.globals.push(d);
        }
        for (i, g) in self.module.globals.iter().enumerate() {
            if let Some(init) = &g.init {
                let mut frame = Frame {
                    locals: vec![Value::Unit; g.locals.len()],
                    type_env: HashMap::new(),
                };
                let v = self.eval(init, &mut frame)?;
                self.globals[i] = v;
            }
        }
        Ok(())
    }

    // ---- types at runtime ---------------------------------------------------

    fn subst(&mut self, t: Type, env: &HashMap<TypeVarId, Type>) -> Type {
        if env.is_empty() || !self.store.is_polymorphic(t) {
            return t;
        }
        self.stats.type_substitutions += 1;
        self.stats.env_lookups += 1;
        self.stats.env_depth_total += env.len();
        self.stats.max_env_depth = self.stats.max_env_depth.max(env.len());
        self.store.substitute(t, env)
    }

    fn subst_list(&mut self, ts: &[Type], env: &HashMap<TypeVarId, Type>) -> Vec<Type> {
        ts.iter().map(|&t| self.subst(t, env)).collect()
    }

    /// The dynamic type of a value (reconstructed from reified information).
    fn dynamic_type(&mut self, v: &Value) -> Type {
        match v {
            Value::Unit => self.store.void,
            Value::Bool(_) => self.store.bool_,
            Value::Byte(_) => self.store.byte,
            Value::Int(_) => self.store.int,
            Value::Null => self.store.null,
            Value::Tuple(es) => {
                let tys: Vec<Type> = es
                    .iter()
                    .map(|e| self.dynamic_type(e))
                    .collect::<Vec<_>>();
                self.store.tuple(tys)
            }
            Value::Object(o) => {
                let o = o.borrow();
                self.store.class(o.class, o.type_args.clone())
            }
            Value::Array(a) => {
                let elem = a.borrow().elem;
                self.store.array(elem)
            }
            Value::Closure(c) => self.closure_type(c),
        }
    }

    fn closure_type(&mut self, c: &Closure) -> Type {
        match c {
            Closure::Method { method, type_args, recv } => {
                let m = self.module.method(*method);
                let vars = self.module.all_type_params(*method);
                let env: HashMap<TypeVarId, Type> =
                    vars.into_iter().zip(type_args.iter().copied()).collect();
                let start = if m.owner.is_some() && recv.is_some() { 1 } else { 0 };
                let ptys: Vec<Type> = m.locals[start..m.param_count]
                    .iter()
                    .map(|l| l.ty)
                    .collect();
                let ptys: Vec<Type> = ptys
                    .into_iter()
                    .map(|t| self.store.substitute(t, &env))
                    .collect();
                let p = self.store.tuple(ptys);
                let r = self.store.substitute(m.ret, &env);
                self.store.function(p, r)
            }
            Closure::Oper(op) => self.oper_type(*op),
            Closure::Ctor { class, type_args } => {
                let ctor = self.module.class(*class).ctor.expect("class has ctor");
                let m = self.module.method(ctor);
                let params = self.module.class(*class).type_params.clone();
                let env: HashMap<TypeVarId, Type> =
                    params.into_iter().zip(type_args.iter().copied()).collect();
                let ptys: Vec<Type> = m.locals[1..m.param_count].iter().map(|l| l.ty).collect();
                let ptys: Vec<Type> =
                    ptys.into_iter().map(|t| self.store.substitute(t, &env)).collect();
                let p = self.store.tuple(ptys);
                let r = self.store.class(*class, type_args.clone());
                self.store.function(p, r)
            }
            Closure::ArrayNew { elem } => {
                let a = self.store.array(*elem);
                let int = self.store.int;
                self.store.function(int, a)
            }
            Closure::Builtin(b) => {
                let (ps, r) = self.builtin_sig(*b);
                let p = self.store.tuple(ps);
                self.store.function(p, r)
            }
        }
    }

    fn oper_type(&mut self, op: Oper) -> Type {
        let s = &mut self.store;
        let (int, byte, bool_) = (s.int, s.byte, s.bool_);
        match op {
            Oper::IntAdd | Oper::IntSub | Oper::IntMul | Oper::IntDiv | Oper::IntMod
            | Oper::IntAnd | Oper::IntOr | Oper::IntXor | Oper::IntShl | Oper::IntShr => {
                let p = s.tuple(vec![int, int]);
                s.function(p, int)
            }
            Oper::IntLt | Oper::IntLe | Oper::IntGt | Oper::IntGe => {
                let p = s.tuple(vec![int, int]);
                s.function(p, bool_)
            }
            Oper::IntNeg => s.function(int, int),
            Oper::ByteLt | Oper::ByteLe | Oper::ByteGt | Oper::ByteGe => {
                let p = s.tuple(vec![byte, byte]);
                s.function(p, bool_)
            }
            Oper::BoolNot => s.function(bool_, bool_),
            Oper::Eq(t) | Oper::Ne(t) => {
                let p = s.tuple(vec![t, t]);
                s.function(p, bool_)
            }
            Oper::Cast { from, to } => s.function(from, to),
            Oper::Query { from, .. } => s.function(from, bool_),
        }
    }

    fn builtin_sig(&mut self, b: Builtin) -> (Vec<Type>, Type) {
        let s = &mut self.store;
        match b {
            Builtin::Puts | Builtin::Error => (vec![s.string], s.void),
            Builtin::Puti => (vec![s.int], s.void),
            Builtin::Putb => (vec![s.bool_], s.void),
            Builtin::Putc => (vec![s.byte], s.void),
            Builtin::Ln => (vec![], s.void),
            Builtin::Ticks => (vec![], s.int),
        }
    }

    fn default_value(&mut self, t: Type, env: &HashMap<TypeVarId, Type>) -> EResult {
        let t = self.subst(t, env);
        Ok(match self.store.kind(t).clone() {
            TypeKind::Void => Value::Unit,
            TypeKind::Bool => Value::Bool(false),
            TypeKind::Byte => Value::Byte(0),
            TypeKind::Int => Value::Int(0),
            TypeKind::Null
            | TypeKind::Class(..)
            | TypeKind::Array(_)
            | TypeKind::Function(..) => Value::Null,
            TypeKind::Tuple(ts) => {
                let mut vs = Vec::with_capacity(ts.len());
                for e in ts {
                    vs.push(self.default_value(e, env)?);
                }
                self.stats.allocs.tuples += 1;
                Value::Tuple(Rc::new(vs))
            }
            TypeKind::Var(_) => {
                debug_assert!(false, "unsubstituted type variable at runtime");
                Value::Unit
            }
            TypeKind::Error => {
                // Unreachable: a module with error diagnostics never runs.
                debug_assert!(false, "error type at runtime");
                Value::Unit
            }
        })
    }

    // ---- calls -----------------------------------------------------------------

    fn call(&mut self, method: MethodId, type_args: Vec<Type>, args: Vec<Value>) -> EResult {
        let m = self.module.method(method);
        if m.kind == MethodKind::Abstract {
            return Err(Exception::Unimplemented);
        }
        let vars = self.module.all_type_params(method);
        debug_assert_eq!(vars.len(), type_args.len(), "type arity at call of {}", m.name);
        let type_env: HashMap<TypeVarId, Type> =
            vars.into_iter().zip(type_args).collect();
        let mut locals = Vec::with_capacity(m.locals.len());
        debug_assert_eq!(args.len(), m.param_count, "arity at call of {}", m.name);
        locals.extend(args);
        for l in &m.locals[m.param_count..] {
            let d = self.default_value(l.ty, &type_env)?;
            locals.push(d);
        }
        let mut frame = Frame { locals, type_env };
        let body: &Body = m.body.as_ref().expect("non-abstract method has a body");
        match self.exec_block(&body.stmts, &mut frame)? {
            Flow::Return(v) => Ok(v),
            _ => Ok(Value::Unit),
        }
    }

    /// Invokes a first-class function value — the §4.1 dynamic check lives
    /// here: the callee's arity may not match the written argument list, in
    /// which case the arguments are boxed or unboxed on the fly.
    fn invoke(&mut self, f: Value, mut args: Vec<Value>) -> EResult {
        self.stats.callsite_checks += 1;
        let Value::Closure(c) = f else {
            if f.is_null() {
                return Err(Exception::NullCheck);
            }
            unreachable!("typechecked program calls only function values");
        };
        match &*c {
            Closure::Method { method, type_args, recv } => {
                let (method, type_args) = (*method, type_args.clone());
                let m = self.module.method(method);
                let expected = m.param_count - usize::from(recv.is_some());
                args = self.adapt_args(args, expected)?;
                match recv {
                    Some(r) => {
                        let mut all = Vec::with_capacity(args.len() + 1);
                        all.push(r.clone());
                        all.extend(args);
                        self.call(method, type_args, all)
                    }
                    None => {
                        if m.owner.is_some() {
                            // Unbound form: dispatch on the first argument.
                            let recv = args.first().cloned().ok_or(Exception::NullCheck)?;
                            self.call_virtual_on(recv, method, &type_args, args.split_off(1))
                        } else {
                            self.call(method, type_args, args)
                        }
                    }
                }
            }
            Closure::Oper(op) => {
                let op = *op;
                let arity = self.oper_arity(op);
                args = self.adapt_args(args, arity)?;
                self.apply_oper(op, args, &HashMap::new())
            }
            Closure::Ctor { class, type_args } => {
                let (class, type_args) = (*class, type_args.clone());
                let ctor = self.module.class(class).ctor.expect("class has ctor");
                let expected = self.module.method(ctor).param_count - 1;
                args = self.adapt_args(args, expected)?;
                self.instantiate(class, type_args, args)
            }
            Closure::ArrayNew { elem } => {
                let elem = *elem;
                args = self.adapt_args(args, 1)?;
                self.array_new(elem, args[0].as_int())
            }
            Closure::Builtin(b) => {
                let b = *b;
                let (ps, _) = self.builtin_sig(b);
                args = self.adapt_args(args, ps.len())?;
                self.call_builtin(b, args)
            }
        }
    }

    /// The dynamic calling-convention adaptation (§4.1): boxes or unboxes the
    /// argument tuple when the caller's written arity differs from the
    /// callee's.
    fn adapt_args(&mut self, args: Vec<Value>, expected: usize) -> Result<Vec<Value>, Exception> {
        if args.len() == expected {
            return Ok(args);
        }
        self.stats.callsite_adaptations += 1;
        if expected == 1 {
            // Box the written arguments into one tuple value.
            self.stats.allocs.tuples += 1;
            return Ok(vec![Value::Tuple(Rc::new(args))]);
        }
        if args.len() == 1 {
            match args.into_iter().next().expect("one arg") {
                Value::Tuple(es) => {
                    debug_assert_eq!(es.len(), expected);
                    return Ok(es.as_ref().clone());
                }
                Value::Unit if expected == 0 => return Ok(vec![]),
                other => {
                    debug_assert!(false, "cannot adapt {other:?} to arity {expected}");
                    return Ok(vec![other]);
                }
            }
        }
        if expected == 0 {
            // Written args exist (e.g. a single void) — drop them.
            return Ok(vec![]);
        }
        debug_assert!(false, "unadaptable call: {} written vs {expected}", args.len());
        Err(Exception::TypeCheck)
    }

    fn oper_arity(&self, op: Oper) -> usize {
        match op {
            Oper::IntNeg | Oper::BoolNot | Oper::Cast { .. } | Oper::Query { .. } => 1,
            _ => 2,
        }
    }

    fn call_virtual_on(
        &mut self,
        recv: Value,
        declared: MethodId,
        site_type_args: &[Type],
        args: Vec<Value>,
    ) -> EResult {
        let Value::Object(obj) = &recv else {
            return Err(Exception::NullCheck);
        };
        let (dyn_class, dyn_args) = {
            let o = obj.borrow();
            (o.class, o.type_args.clone())
        };
        let target = self.module.resolve_virtual(dyn_class, declared);
        // Type args: the target's owner-class part comes from the receiver's
        // reified type arguments; the method's own part from the call site.
        let declared_m = self.module.method(declared);
        let own_count = declared_m.type_params.len();
        let site_own = &site_type_args[site_type_args.len() - own_count..];
        let target_owner = self.module.method(target).owner.expect("instance method");
        let owner_args = self.class_args_for(dyn_class, &dyn_args, target_owner);
        let mut full = owner_args;
        full.extend_from_slice(site_own);
        // §4.1: an override may declare a tuple parameter where the declared
        // method took scalars (listings p10-p17). Adapt dynamically, counting
        // the check.
        let expected = self.module.method(target).param_count - 1;
        let args = if args.len() == expected {
            args
        } else {
            self.stats.callsite_checks += 1;
            self.adapt_args(args, expected)?
        };
        let mut all = Vec::with_capacity(args.len() + 1);
        all.push(recv);
        all.extend(args);
        self.call(target, full, all)
    }

    /// Given a dynamic class and its args, computes the type arguments of
    /// ancestor `decl`.
    fn class_args_for(&mut self, c: ClassId, args: &[Type], decl: ClassId) -> Vec<Type> {
        let start = self.store.class(c, args.to_vec());
        let sups = self.module.hier.supertypes(&mut self.store, start);
        for s in sups {
            if let TypeKind::Class(sc, sargs) = self.store.kind(s).clone() {
                if sc == decl {
                    return sargs;
                }
            }
        }
        args.to_vec()
    }

    fn instantiate(&mut self, class: ClassId, type_args: Vec<Type>, args: Vec<Value>) -> EResult {
        let size = self.module.object_size(class);
        // Field defaults are per-slot; use each field's substituted type.
        let env: HashMap<TypeVarId, Type> = self
            .module
            .class(class)
            .type_params
            .iter()
            .copied()
            .zip(type_args.iter().copied())
            .collect();
        let mut fields = vec![Value::Unit; size];
        // Walk the chain to default-init every slot properly.
        let mut cur = Some(class);
        let mut chain_args = type_args.clone();
        let mut cur_class = class;
        while let Some(cid) = cur {
            let sub_env: HashMap<TypeVarId, Type> = self
                .module
                .class(cid)
                .type_params
                .iter()
                .copied()
                .zip(chain_args.iter().copied())
                .collect();
            for f in &self.module.class(cid).fields {
                let slot = f.slot;
                let fty = f.ty;
                fields[slot] = self.default_value(fty, &sub_env)?;
            }
            let parent = self.module.class(cid).parent;
            if let Some(p) = parent {
                chain_args = self.class_args_for(cur_class, &chain_args, p);
                cur_class = p;
            }
            cur = parent;
        }
        let _ = env;
        self.stats.allocs.objects += 1;
        let obj = Value::Object(Rc::new(RefCell::new(ObjData {
            class,
            type_args: type_args.clone(),
            fields,
        })));
        if let Some(ctor) = self.module.class(class).ctor {
            let mut all = Vec::with_capacity(args.len() + 1);
            all.push(obj.clone());
            all.extend(args);
            self.call(ctor, type_args, all)?;
        }
        Ok(obj)
    }

    fn array_new(&mut self, elem: Type, len: i32) -> EResult {
        if len < 0 {
            return Err(Exception::BoundsCheck);
        }
        let env = HashMap::new();
        let mut values = Vec::with_capacity(len as usize);
        for _ in 0..len {
            values.push(self.default_value(elem, &env)?);
        }
        self.stats.allocs.arrays += 1;
        Ok(Value::Array(Rc::new(RefCell::new(ArrData { elem, values }))))
    }

    fn call_builtin(&mut self, b: Builtin, args: Vec<Value>) -> EResult {
        match b {
            Builtin::Puts => {
                let Value::Array(a) = &args[0] else {
                    return Err(Exception::NullCheck);
                };
                for v in &a.borrow().values {
                    self.out.push(v.as_byte());
                }
                Ok(Value::Unit)
            }
            Builtin::Puti => {
                let s = args[0].as_int().to_string();
                self.out.extend_from_slice(s.as_bytes());
                Ok(Value::Unit)
            }
            Builtin::Putb => {
                let s = if args[0].as_bool() { "true" } else { "false" };
                self.out.extend_from_slice(s.as_bytes());
                Ok(Value::Unit)
            }
            Builtin::Putc => {
                self.out.push(args[0].as_byte());
                Ok(Value::Unit)
            }
            Builtin::Ln => {
                self.out.push(b'\n');
                Ok(Value::Unit)
            }
            // Saturate: `steps` is u64 and a long-running program would
            // silently wrap a plain `as i32` cast past 2^31 steps.
            Builtin::Ticks => Ok(Value::Int(
                i32::try_from(self.stats.steps).unwrap_or(i32::MAX),
            )),
            Builtin::Error => Err(Exception::UserError),
        }
    }

    // ---- statements ---------------------------------------------------------------

    fn exec_block(&mut self, stmts: &[Stmt], frame: &mut Frame) -> SResult {
        for s in stmts {
            match self.exec(s, frame)? {
                Flow::Next => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Next)
    }

    fn exec(&mut self, s: &Stmt, frame: &mut Frame) -> SResult {
        match s {
            Stmt::Expr(e) => {
                self.eval(e, frame)?;
                Ok(Flow::Next)
            }
            Stmt::Local(l, init) => {
                if let Some(e) = init {
                    let v = self.eval(e, frame)?;
                    frame.locals[l.index()] = v;
                }
                Ok(Flow::Next)
            }
            Stmt::If(c, t, e) => {
                if self.eval(c, frame)?.as_bool() {
                    self.exec_block(t, frame)
                } else {
                    self.exec_block(e, frame)
                }
            }
            Stmt::While(c, body) => {
                loop {
                    if !self.eval(c, frame)?.as_bool() {
                        return Ok(Flow::Next);
                    }
                    match self.exec_block(body, frame)? {
                        Flow::Next | Flow::Continue => {}
                        Flow::Break => return Ok(Flow::Next),
                        r @ Flow::Return(_) => return Ok(r),
                    }
                }
            }
            Stmt::Return(e) => {
                let v = match e {
                    Some(e) => self.eval(e, frame)?,
                    None => Value::Unit,
                };
                Ok(Flow::Return(v))
            }
            Stmt::Break => Ok(Flow::Break),
            Stmt::Continue => Ok(Flow::Continue),
            Stmt::Block(b) => self.exec_block(b, frame),
        }
    }

    // ---- expressions -----------------------------------------------------------------

    fn eval(&mut self, e: &Expr, frame: &mut Frame) -> EResult {
        self.stats.steps += 1;
        if let Some(fuel) = self.fuel {
            if self.stats.steps > fuel {
                return Err(FUEL_EXCEPTION);
            }
        }
        match &e.kind {
            ExprKind::Int(v) => Ok(Value::Int(*v)),
            ExprKind::Byte(v) => Ok(Value::Byte(*v)),
            ExprKind::Bool(v) => Ok(Value::Bool(*v)),
            ExprKind::Unit => Ok(Value::Unit),
            ExprKind::Null => Ok(Value::Null),
            ExprKind::String(bytes) => {
                self.stats.allocs.arrays += 1;
                let byte = self.store.byte;
                Ok(Value::Array(Rc::new(RefCell::new(ArrData {
                    elem: byte,
                    values: bytes.iter().map(|&b| Value::Byte(b)).collect(),
                }))))
            }
            ExprKind::Local(l) => Ok(frame.locals[l.index()].clone()),
            ExprKind::Global(g) => Ok(self.globals[g.index()].clone()),
            ExprKind::LocalSet(l, v) => {
                let val = self.eval(v, frame)?;
                frame.locals[l.index()] = val.clone();
                Ok(val)
            }
            ExprKind::GlobalSet(g, v) => {
                let val = self.eval(v, frame)?;
                self.globals[g.index()] = val.clone();
                Ok(val)
            }
            ExprKind::Tuple(es) => {
                let mut vs = Vec::with_capacity(es.len());
                for x in es {
                    vs.push(self.eval(x, frame)?);
                }
                self.stats.allocs.tuples += 1;
                Ok(Value::Tuple(Rc::new(vs)))
            }
            ExprKind::TupleIndex(b, i) => {
                let v = self.eval(b, frame)?;
                match v {
                    Value::Tuple(es) => Ok(es[*i as usize].clone()),
                    // Degenerate (T) == T: index 0 of a non-tuple is itself.
                    other => Ok(other),
                }
            }
            ExprKind::ArrayLit(es) => {
                let elem_ty = match self.store.kind(e.ty).clone() {
                    TypeKind::Array(t) => t,
                    _ => self.store.void,
                };
                let elem_ty = self.subst(elem_ty, &frame.type_env);
                let mut vs = Vec::with_capacity(es.len());
                for x in es {
                    vs.push(self.eval(x, frame)?);
                }
                self.stats.allocs.arrays += 1;
                Ok(Value::Array(Rc::new(RefCell::new(ArrData {
                    elem: elem_ty,
                    values: vs,
                }))))
            }
            ExprKind::ArrayNew(n) => {
                let len = self.eval(n, frame)?.as_int();
                let elem_ty = match self.store.kind(e.ty).clone() {
                    TypeKind::Array(t) => t,
                    _ => self.store.void,
                };
                let elem_ty = self.subst(elem_ty, &frame.type_env);
                self.array_new(elem_ty, len)
            }
            ExprKind::ArrayLen(a) => {
                let v = self.eval(a, frame)?;
                match v {
                    Value::Array(a) => Ok(Value::Int(a.borrow().values.len() as i32)),
                    Value::Null => Err(Exception::NullCheck),
                    _ => unreachable!("length of non-array"),
                }
            }
            ExprKind::ArrayGet(a, i) => {
                let arr = self.eval(a, frame)?;
                let ix = self.eval(i, frame)?.as_int();
                match arr {
                    Value::Array(a) => {
                        let a = a.borrow();
                        if ix < 0 || ix as usize >= a.values.len() {
                            return Err(Exception::BoundsCheck);
                        }
                        Ok(a.values[ix as usize].clone())
                    }
                    Value::Null => Err(Exception::NullCheck),
                    _ => unreachable!("index of non-array"),
                }
            }
            ExprKind::ArraySet(a, i, v) => {
                let arr = self.eval(a, frame)?;
                let ix = self.eval(i, frame)?.as_int();
                let val = self.eval(v, frame)?;
                match arr {
                    Value::Array(a) => {
                        let mut a = a.borrow_mut();
                        if ix < 0 || ix as usize >= a.values.len() {
                            return Err(Exception::BoundsCheck);
                        }
                        a.values[ix as usize] = val.clone();
                        Ok(val)
                    }
                    Value::Null => Err(Exception::NullCheck),
                    _ => unreachable!("index of non-array"),
                }
            }
            ExprKind::FieldGet(o, fref) => {
                let obj = self.eval(o, frame)?;
                match obj {
                    Value::Object(o) => Ok(o.borrow().fields[fref.slot].clone()),
                    Value::Null => Err(Exception::NullCheck),
                    _ => unreachable!("field of non-object"),
                }
            }
            ExprKind::FieldSet(o, fref, v) => {
                let obj = self.eval(o, frame)?;
                let val = self.eval(v, frame)?;
                match obj {
                    Value::Object(o) => {
                        o.borrow_mut().fields[fref.slot] = val.clone();
                        Ok(val)
                    }
                    Value::Null => Err(Exception::NullCheck),
                    _ => unreachable!("field of non-object"),
                }
            }
            ExprKind::New { class, type_args, args } => {
                let targs = self.subst_list(type_args, &frame.type_env);
                let mut vs = Vec::with_capacity(args.len());
                for a in args {
                    vs.push(self.eval(a, frame)?);
                }
                self.instantiate(*class, targs, vs)
            }
            ExprKind::CallStatic { method, type_args, args } => {
                let targs = self.subst_list(type_args, &frame.type_env);
                let mut vs = Vec::with_capacity(args.len());
                for a in args {
                    vs.push(self.eval(a, frame)?);
                }
                self.call(*method, targs, vs)
            }
            ExprKind::CallVirtual { method, type_args, recv, args } => {
                let targs = self.subst_list(type_args, &frame.type_env);
                let r = self.eval(recv, frame)?;
                if r.is_null() {
                    return Err(Exception::NullCheck);
                }
                let mut vs = Vec::with_capacity(args.len());
                for a in args {
                    vs.push(self.eval(a, frame)?);
                }
                self.call_virtual_on(r, *method, &targs, vs)
            }
            ExprKind::CallClosure { func, args } => {
                let f = self.eval(func, frame)?;
                let mut vs = Vec::with_capacity(args.len());
                for a in args {
                    vs.push(self.eval(a, frame)?);
                }
                self.invoke(f, vs)
            }
            ExprKind::BindMethod { method, type_args, recv } => {
                let targs = self.subst_list(type_args, &frame.type_env);
                let r = self.eval(recv, frame)?;
                let Value::Object(obj) = &r else {
                    return Err(Exception::NullCheck);
                };
                // Resolve the virtual target at bind time.
                let (dyn_class, dyn_args) = {
                    let o = obj.borrow();
                    (o.class, o.type_args.clone())
                };
                let target = self.module.resolve_virtual(dyn_class, *method);
                let declared_m = self.module.method(*method);
                let own_count = declared_m.type_params.len();
                let site_own = &targs[targs.len() - own_count..];
                let target_owner =
                    self.module.method(target).owner.expect("instance method");
                let mut full = self.class_args_for(dyn_class, &dyn_args, target_owner);
                full.extend_from_slice(site_own);
                self.stats.allocs.closures += 1;
                Ok(Value::Closure(Rc::new(Closure::Method {
                    method: target,
                    type_args: full,
                    recv: Some(r.clone()),
                })))
            }
            ExprKind::FuncRef { method, type_args } => {
                let targs = self.subst_list(type_args, &frame.type_env);
                self.stats.allocs.closures += 1;
                Ok(Value::Closure(Rc::new(Closure::Method {
                    method: *method,
                    type_args: targs,
                    recv: None,
                })))
            }
            ExprKind::CtorRef { class, type_args } => {
                let targs = self.subst_list(type_args, &frame.type_env);
                self.stats.allocs.closures += 1;
                Ok(Value::Closure(Rc::new(Closure::Ctor {
                    class: *class,
                    type_args: targs,
                })))
            }
            ExprKind::ArrayNewRef { elem } => {
                let elem = self.subst(*elem, &frame.type_env);
                self.stats.allocs.closures += 1;
                Ok(Value::Closure(Rc::new(Closure::ArrayNew { elem })))
            }
            ExprKind::BuiltinRef(b) => {
                self.stats.allocs.closures += 1;
                Ok(Value::Closure(Rc::new(Closure::Builtin(*b))))
            }
            ExprKind::Apply(op, args) => {
                let mut vs = Vec::with_capacity(args.len());
                for a in args {
                    vs.push(self.eval(a, frame)?);
                }
                let env = frame.type_env.clone();
                self.apply_oper(*op, vs, &env)
            }
            ExprKind::OpClosure(op) => {
                let op = self.subst_oper(*op, &frame.type_env);
                self.stats.allocs.closures += 1;
                Ok(Value::Closure(Rc::new(Closure::Oper(op))))
            }
            ExprKind::CallBuiltin(b, args) => {
                let mut vs = Vec::with_capacity(args.len());
                for a in args {
                    vs.push(self.eval(a, frame)?);
                }
                self.call_builtin(*b, vs)
            }
            ExprKind::And(a, b) => {
                if self.eval(a, frame)?.as_bool() {
                    self.eval(b, frame)
                } else {
                    Ok(Value::Bool(false))
                }
            }
            ExprKind::Or(a, b) => {
                if self.eval(a, frame)?.as_bool() {
                    Ok(Value::Bool(true))
                } else {
                    self.eval(b, frame)
                }
            }
            ExprKind::Ternary { cond, then, els } => {
                if self.eval(cond, frame)?.as_bool() {
                    self.eval(then, frame)
                } else {
                    self.eval(els, frame)
                }
            }
            ExprKind::Trap(x) => Err(*x),
            ExprKind::CheckNull(v) => {
                let val = self.eval(v, frame)?;
                if val.is_null() {
                    Err(Exception::NullCheck)
                } else {
                    Ok(val)
                }
            }
            ExprKind::Let { local, value, body } => {
                let v = self.eval(value, frame)?;
                frame.locals[local.index()] = v;
                self.eval(body, frame)
            }
        }
    }

    fn subst_oper(&mut self, op: Oper, env: &HashMap<TypeVarId, Type>) -> Oper {
        match op {
            Oper::Eq(t) => Oper::Eq(self.subst(t, env)),
            Oper::Ne(t) => Oper::Ne(self.subst(t, env)),
            Oper::Cast { from, to } => Oper::Cast {
                from: self.subst(from, env),
                to: self.subst(to, env),
            },
            Oper::Query { from, to } => Oper::Query {
                from: self.subst(from, env),
                to: self.subst(to, env),
            },
            other => other,
        }
    }

    fn apply_oper(
        &mut self,
        op: Oper,
        args: Vec<Value>,
        env: &HashMap<TypeVarId, Type>,
    ) -> EResult {
        use Oper::*;
        let int2 = |args: &[Value]| (args[0].as_int(), args[1].as_int());
        Ok(match op {
            IntAdd => {
                let (a, b) = int2(&args);
                Value::Int(ops::int_add(a, b))
            }
            IntSub => {
                let (a, b) = int2(&args);
                Value::Int(ops::int_sub(a, b))
            }
            IntMul => {
                let (a, b) = int2(&args);
                Value::Int(ops::int_mul(a, b))
            }
            IntDiv => {
                let (a, b) = int2(&args);
                Value::Int(ops::int_div(a, b)?)
            }
            IntMod => {
                let (a, b) = int2(&args);
                Value::Int(ops::int_mod(a, b)?)
            }
            IntLt => {
                let (a, b) = int2(&args);
                Value::Bool(a < b)
            }
            IntLe => {
                let (a, b) = int2(&args);
                Value::Bool(a <= b)
            }
            IntGt => {
                let (a, b) = int2(&args);
                Value::Bool(a > b)
            }
            IntGe => {
                let (a, b) = int2(&args);
                Value::Bool(a >= b)
            }
            IntAnd => {
                let (a, b) = int2(&args);
                Value::Int(a & b)
            }
            IntOr => {
                let (a, b) = int2(&args);
                Value::Int(a | b)
            }
            IntXor => {
                let (a, b) = int2(&args);
                Value::Int(a ^ b)
            }
            IntShl => {
                let (a, b) = int2(&args);
                Value::Int(ops::int_shl(a, b))
            }
            IntShr => {
                let (a, b) = int2(&args);
                Value::Int(ops::int_shr(a, b))
            }
            IntNeg => Value::Int(ops::int_sub(0, args[0].as_int())),
            ByteLt => Value::Bool(args[0].as_byte() < args[1].as_byte()),
            ByteLe => Value::Bool(args[0].as_byte() <= args[1].as_byte()),
            ByteGt => Value::Bool(args[0].as_byte() > args[1].as_byte()),
            ByteGe => Value::Bool(args[0].as_byte() >= args[1].as_byte()),
            BoolNot => Value::Bool(!args[0].as_bool()),
            Eq(_) => Value::Bool(args[0].value_eq(&args[1])),
            Ne(_) => Value::Bool(!args[0].value_eq(&args[1])),
            Cast { to, .. } => {
                let to = self.subst(to, env);
                return self.runtime_cast(args.into_iter().next().expect("one arg"), to);
            }
            Query { to, .. } => {
                let to = self.subst(to, env);
                let v = args.into_iter().next().expect("one arg");
                Value::Bool(self.runtime_query(&v, to))
            }
        })
    }

    /// Runtime cast: succeeds when the value's dynamic type is a subtype of
    /// the target (plus the checked int↔byte conversions); `null` casts to
    /// any nullable type.
    fn runtime_cast(&mut self, v: Value, to: Type) -> EResult {
        if v.is_null() {
            return if self.store.is_nullable(to) {
                Ok(Value::Null)
            } else {
                Err(Exception::TypeCheck)
            };
        }
        // Value conversions.
        match (&v, self.store.kind(to).clone()) {
            (Value::Int(i), TypeKind::Byte) => return Ok(Value::Byte(ops::int_to_byte(*i)?)),
            (Value::Byte(b), TypeKind::Int) => return Ok(Value::Int(ops::byte_to_int(*b))),
            (Value::Tuple(es), TypeKind::Tuple(ts)) => {
                if es.len() != ts.len() {
                    return Err(Exception::TypeCheck);
                }
                let mut out = Vec::with_capacity(es.len());
                for (x, t) in es.iter().zip(ts) {
                    out.push(self.runtime_cast(x.clone(), t)?);
                }
                self.stats.allocs.tuples += 1;
                return Ok(Value::Tuple(Rc::new(out)));
            }
            _ => {}
        }
        let dyn_ty = self.dynamic_type(&v);
        if vgl_types::is_subtype(&mut self.store, &self.module.hier, dyn_ty, to) {
            Ok(v)
        } else {
            Err(Exception::TypeCheck)
        }
    }

    /// Runtime query: `null` is of no type; otherwise mirrors the cast.
    fn runtime_query(&mut self, v: &Value, to: Type) -> bool {
        if v.is_null() {
            return false;
        }
        // Queries are purely type-based: an int is never *of type* byte,
        // even when its value is representable (only the *cast* converts).
        if let (Value::Tuple(es), TypeKind::Tuple(ts)) = (v, self.store.kind(to).clone()) {
            return es.len() == ts.len()
                && es
                    .iter()
                    .zip(ts)
                    .all(|(x, t)| self.runtime_query(x, t));
        }
        let dyn_ty = self.dynamic_type(v);
        vgl_types::is_subtype(&mut self.store, &self.module.hier, dyn_ty, to)
    }
}

// The public-facing method used by Method in module.rs references locals;
// keep a compile-time check that Method is exported as expected.
const _: fn(&Method) -> usize = |m| m.param_count;

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze(src: &str) -> Module {
        let mut d = vgl_syntax::Diagnostics::new();
        let ast = vgl_syntax::parse_program(src, &mut d);
        vgl_sema::analyze(&ast, &mut d).expect("typechecks")
    }

    #[test]
    fn ticks_saturates_instead_of_wrapping() {
        let module = analyze("def main() -> int { return 0; }");
        let mut i = Interp::new(&module);
        // Pretend a very long run: past 2^31 steps a plain `as i32` cast
        // would go negative; ticks must saturate at i32::MAX instead.
        i.stats.steps = (1u64 << 31) + 17;
        let v = i.call_builtin(Builtin::Ticks, vec![]).expect("ticks");
        assert_eq!(v.as_int(), i32::MAX);
        i.stats.steps = u64::MAX;
        let v = i.call_builtin(Builtin::Ticks, vec![]).expect("ticks");
        assert_eq!(v.as_int(), i32::MAX);
        // Below the boundary the exact count is reported.
        i.stats.steps = 123;
        let v = i.call_builtin(Builtin::Ticks, vec![]).expect("ticks");
        assert_eq!(v.as_int(), 123);
    }

    #[test]
    fn env_lookup_depth_counted_for_generic_calls() {
        let module = analyze(
            "def boxed<A, B>(v: A, w: B) -> A {\n\
                 var a = Array<A>.new(1);\n\
                 a[0] = v;\n\
                 return a[0];\n\
             }\n\
             def main() -> int { return boxed(7, true); }",
        );
        let mut i = Interp::new(&module);
        i.run().expect("runs");
        assert!(i.stats.env_lookups > 0, "generic call must consult the env");
        assert!(i.stats.env_depth_total >= i.stats.env_lookups);
        assert_eq!(i.stats.max_env_depth, 2, "boxed has two type params");
    }
}
