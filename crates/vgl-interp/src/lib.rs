//! # vgl-interp
//!
//! The reference interpreter: executes the typed IR **directly**, using the
//! paper's interpreter strategy (§4.3): "type arguments are passed as
//! invisible arguments to polymorphic function calls and stored as type
//! information within objects, arrays and closures", tuples are **boxed**
//! heap values, and every first-class function call performs the §4.1
//! dynamic calling-convention check. All three costs are counted in
//! [`InterpStats`] so the benchmark harness can show exactly what the
//! compiler pipeline removes.
//!
//! ```
//! use vgl_syntax::{parse_program, Diagnostics};
//! use vgl_sema::analyze;
//! use vgl_interp::Interp;
//!
//! let mut d = Diagnostics::new();
//! let ast = parse_program("def main() -> int { return 6 * 7; }", &mut d);
//! let module = analyze(&ast, &mut d).expect("typechecks");
//! let mut interp = Interp::new(&module);
//! let v = interp.run().expect("runs");
//! assert_eq!(v.as_int(), 42);
//! ```

#![warn(missing_docs)]

mod engine;

pub use engine::{Interp, InterpError, InterpStats};
pub use vgl_runtime::value::Value;
