//! End-to-end interpreter tests: parse → analyze → execute.

use vgl_interp::{Interp, InterpError, Value};
use vgl_ir::ops::Exception;
use vgl_sema::analyze;
use vgl_syntax::{parse_program, Diagnostics};

fn compile(src: &str) -> vgl_ir::Module {
    let mut d = Diagnostics::new();
    let ast = parse_program(src, &mut d);
    assert!(!d.has_errors(), "parse: {:?}", d.into_vec());
    let mut d = Diagnostics::new();
    match analyze(&ast, &mut d) {
        Some(m) => m,
        None => panic!("sema: {:#?}", d.into_vec()),
    }
}

fn run_int(src: &str) -> i32 {
    let m = compile(src);
    let mut i = Interp::new(&m);
    i.set_fuel(50_000_000);
    match i.run() {
        Ok(v) => v.as_int(),
        Err(e) => panic!("runtime error: {e} (output so far: {})", i.output()),
    }
}

fn run_output(src: &str) -> String {
    let m = compile(src);
    let mut i = Interp::new(&m);
    i.set_fuel(50_000_000);
    match i.run() {
        Ok(_) => i.output(),
        Err(e) => panic!("runtime error: {e} (output so far: {})", i.output()),
    }
}

fn run_err(src: &str) -> Exception {
    let m = compile(src);
    let mut i = Interp::new(&m);
    i.set_fuel(50_000_000);
    match i.run() {
        Ok(v) => panic!("expected exception, got {v}"),
        Err(InterpError::Exception(e)) => e,
        Err(other) => panic!("unexpected: {other}"),
    }
}

#[test]
fn arithmetic_and_control_flow() {
    assert_eq!(run_int("def main() -> int { return 6 * 7; }"), 42);
    assert_eq!(
        run_int(
            "def main() -> int {\n\
               var s = 0;\n\
               for (i = 0; i < 10; i = i + 1) s = s + i;\n\
               return s;\n\
             }"
        ),
        45
    );
    assert_eq!(
        run_int(
            "def fib(n: int) -> int { return n < 2 ? n : fib(n - 1) + fib(n - 2); }\n\
             def main() -> int { return fib(15); }"
        ),
        610
    );
}

#[test]
fn listing_b_first_class_functions_run() {
    // (b1-b7) with observable results.
    assert_eq!(
        run_int(
            "class A {\n\
               var f: int;\n\
               def g: int;\n\
               new(f, g) { }\n\
               def m(a: byte) -> int { return f + int.!(a); }\n\
             }\n\
             def main() -> int {\n\
               var a = A.new(100, 1);\n\
               var m1 = a.m;\n\
               var m2 = A.m;\n\
               var x = a.m('\\0');      // 100\n\
               var y = m1('\\0');        // 100\n\
               var z = m2(a, '\\0');     // 100\n\
               var w = A.new;\n\
               var b = w(7, 2);\n\
               return x + y + z + b.f;  // 307\n\
             }"
        ),
        307
    );
}

#[test]
fn operators_as_first_class_functions() {
    // (b8-b11).
    assert_eq!(
        run_int(
            "def fold(f: (int, int) -> int, a: Array<int>, init: int) -> int {\n\
               var acc = init;\n\
               for (i = 0; i < a.length; i = i + 1) acc = f(acc, a[i]);\n\
               return acc;\n\
             }\n\
             def main() -> int {\n\
               var xs = [1, 2, 3, 4];\n\
               return fold(int.+, xs, 0) * fold(int.*, xs, 1);\n\
             }"
        ),
        240
    );
}

#[test]
fn casts_and_queries_b12_b15() {
    assert_eq!(
        run_int(
            "class A { }\n\
             class B extends A { }\n\
             def main() -> int {\n\
               var b = B.new();\n\
               var a: A = b;\n\
               var n = 0;\n\
               if (B.?(a)) n = n + 1;          // true\n\
               var b2 = B.!(a);                 // succeeds\n\
               if (b2 == b) n = n + 10;\n\
               var q = A.?<B>;                  // B -> bool, upcast query\n\
               if (q(b)) n = n + 100;\n\
               return n;\n\
             }"
        ),
        111
    );
}

#[test]
fn int_byte_conversions() {
    assert_eq!(
        run_int(
            "def main() -> int {\n\
               var b = byte.!(200);\n\
               var i = int.!(b);\n\
               var n = i;\n\
               if (byte.?(300)) n = n + 1000;   // false: queries are type-based\n\
               if (byte.?(b)) n = n + 100;      // true: b is a byte\n\
               return n;\n\
             }"
        ),
        300
    );
    assert_eq!(run_err("def main() { var b = byte.!(300); }"), Exception::TypeCheck);
}

#[test]
fn listing_c_tuples_run() {
    assert_eq!(
        run_int(
            "def main() -> int {\n\
               var x: (int, int) = (40, 2);\n\
               var y: (byte, bool) = ('a', true);\n\
               var z = (x, y);\n\
               var u = z.1.0;\n\
               return x.0 + x.1 + int.!(u) - 97;\n\
             }"
        ),
        42
    );
}

#[test]
fn tuple_equality_recursive() {
    assert_eq!(
        run_int(
            "def main() -> int {\n\
               var a = ((1, 2), true);\n\
               var b = ((1, 2), true);\n\
               var c = ((1, 3), true);\n\
               var n = 0;\n\
               if (a == b) n = n + 1;\n\
               if (a != c) n = n + 10;\n\
               return n;\n\
             }"
        ),
        11
    );
}

#[test]
fn tuple_casts_recursive() {
    // §2.3: casts are defined recursively on elements (written through a
    // parameterized helper, since tuple types are not expression heads).
    assert_eq!(
        run_int(
            "def conv<F, T>(x: F) -> T { return T.!<F>(x); }\n\
             def main() -> int {\n\
               var t = (200, 1);\n\
               var u: (byte, int) = conv<(int, int), (byte, int)>(t);\n\
               return int.!(u.0) + u.1;\n\
             }"
        ),
        201
    );
}

#[test]
fn generic_list_and_apply_run() {
    // (d1-d12).
    assert_eq!(
        run_output(
            "class List<T> {\n\
               var head: T;\n\
               var tail: List<T>;\n\
               new(head, tail) { }\n\
             }\n\
             def apply<A>(list: List<A>, f: A -> void) {\n\
               for (l = list; l != null; l = l.tail) f(l.head);\n\
             }\n\
             def print(i: int) { System.puti(i); System.putc(' '); }\n\
             def main() {\n\
               var a = List.new(1, List.new(2, List.new(3, null)));\n\
               apply(a, print);\n\
             }"
        ),
        "1 2 3 "
    );
}

#[test]
fn runtime_type_queries_distinguish_instantiations() {
    // (d13-d14): no erasure.
    assert_eq!(
        run_int(
            "class List<T> { var head: T; var tail: List<T>; new(head, tail) { } }\n\
             def main() -> int {\n\
               var a = List<int>.new(0, null);\n\
               var n = 0;\n\
               if (List<int>.?(a)) n = n + 1;    // true\n\
               if (List<bool>.?(a)) n = n + 10;  // false\n\
               if (List<void>.?(a)) n = n + 100; // false\n\
               return n;\n\
             }"
        ),
        1
    );
}

#[test]
fn listing_e_time_runs() {
    let out = run_output(
        "def time<A, B>(func: A -> B, a: A) -> (B, int) {\n\
           var start = System.ticks();\n\
           return (func(a), System.ticks() - start);\n\
         }\n\
         def sqrt(x: int) -> int { return x / 2; }\n\
         def main() { System.puti(time(sqrt, 36).0); }",
    );
    assert_eq!(out, "18");
}

#[test]
fn pattern_interface_adapter_runs() {
    let out = run_output(
        "class Record { def tag: int; new(tag) { } }\n\
         class DatastoreInterface(\n\
           create: () -> Record,\n\
           load: int -> Record) {\n\
         }\n\
         class DatastoreImpl {\n\
           def create() -> Record { return Record.new(7); }\n\
           def load(k: int) -> Record { return Record.new(k); }\n\
           def adapt() -> DatastoreInterface {\n\
             return DatastoreInterface.new(create, load);\n\
           }\n\
         }\n\
         def main() {\n\
           var ds = DatastoreImpl.new().adapt();\n\
           System.puti(ds.create().tag);\n\
           System.puti(ds.load(42).tag);\n\
         }",
    );
    assert_eq!(out, "742");
}

#[test]
fn pattern_adt_number_interface_runs() {
    let out = run_output(
        "class NumberInterface<T>(\n\
           add: (T, T) -> T,\n\
           sub: (T, T) -> T,\n\
           compare: (T, T) -> bool,\n\
           one: T,\n\
           zero: T) {\n\
         }\n\
         var IntInterface = NumberInterface.new(int.+, int.-, int.==, 1, 0);\n\
         def main() {\n\
           var s = IntInterface.add(20, 22);\n\
           System.puti(s);\n\
           System.putb(IntInterface.compare(s, 42));\n\
         }",
    );
    assert_eq!(out, "42true");
}

#[test]
fn pattern_print1_runs() {
    let out = run_output(
        "def print1<T>(a: T) {\n\
           if (int.?(a)) System.puti(int.!(a));\n\
           if (bool.?(a)) System.putb(bool.!(a));\n\
           if (byte.?(a)) System.putc(byte.!(a));\n\
         }\n\
         def main() {\n\
           print1(7);\n\
           print1(false);\n\
           print1('x');\n\
         }",
    );
    assert_eq!(out, "7falsex");
}

#[test]
fn pattern_polymorphic_matcher_runs() {
    // (k1-m8).
    let out = run_output(
        "class Any { }\n\
         class Box<T> extends Any {\n\
           def val: T;\n\
           new(val) { }\n\
           def unbox() -> T { return val; }\n\
         }\n\
         class List<T> { var head: T; var tail: List<T>; new(head, tail) { } }\n\
         class Matcher {\n\
           var matches: List<Any>;\n\
           def add<T>(f: T -> void) {\n\
             matches = List<Any>.new(Box<T -> void>.new(f), matches);\n\
           }\n\
           def dispatch<T>(v: T) {\n\
             for (l = matches; l != null; l = l.tail) {\n\
               var f = l.head;\n\
               if (Box<T -> void>.?(f)) {\n\
                 Box<T -> void>.!(f).unbox()(v);\n\
                 return;\n\
               }\n\
             }\n\
             System.puts(\"?\");\n\
           }\n\
         }\n\
         def printInt(a: int) { System.puti(a); }\n\
         def printBool(a: bool) { System.putb(a); }\n\
         def main() {\n\
           var m = Matcher.new();\n\
           m.add(printInt);\n\
           m.add(printBool);\n\
           m.dispatch(1);\n\
           m.dispatch(true);\n\
           m.dispatch(\"s\");\n\
         }",
    );
    assert_eq!(out, "1true?");
}

#[test]
fn pattern_variants_run() {
    // (n1-n20): super-closure instruction variants.
    let out = run_output(
        "class Buffer { }\n\
         class Instr { def emit(buf: Buffer); }\n\
         class InstrOf<T> extends Instr {\n\
           var emitFunc: (Buffer, T) -> void;\n\
           var val: T;\n\
           new(emitFunc, val) { }\n\
           def emit(buf: Buffer) { emitFunc(buf, val); }\n\
         }\n\
         class Reg { def n: int; new(n) { } }\n\
         def add(b: Buffer, ops: (Reg, Reg)) { System.puts(\"add \"); System.puti(ops.0.n); System.puti(ops.1.n); }\n\
         def addi(b: Buffer, ops: (Reg, int)) { System.puts(\"addi \"); System.puti(ops.0.n); System.puti(ops.1); }\n\
         def neg(b: Buffer, ops: Reg) { System.puts(\"neg \"); System.puti(ops.n); }\n\
         def main() {\n\
           var rax = Reg.new(0), rbx = Reg.new(1);\n\
           var buf = Buffer.new();\n\
           var i: Instr = InstrOf.new(add, (rax, rbx));\n\
           var j: Instr = InstrOf.new(addi, (rax, 11));\n\
           var k: Instr = InstrOf.new(neg, rax);\n\
           i.emit(buf); System.ln();\n\
           j.emit(buf); System.ln();\n\
           k.emit(buf); System.ln();\n\
           if (InstrOf<Reg>.?(k)) System.puts(\"k is reg\");\n\
           if (InstrOf<(Reg, Reg)>.?(i)) System.puts(\" i is regreg\");\n\
           if (InstrOf<(Reg, int)>.?(i)) System.puts(\" BAD\");\n\
         }",
    );
    assert_eq!(out, "add 01\naddi 011\nneg 0\nk is reg i is regreg");
}

#[test]
fn variance_apply_pattern_runs() {
    // (o7): contravariant function argument.
    let out = run_output(
        "class Animal { def name() -> int { return 0; } }\n\
         class Bat extends Animal { def name() -> int { return 1; } }\n\
         class List<T> { var head: T; var tail: List<T>; new(head, tail) { } }\n\
         def apply<A>(list: List<A>, f: A -> void) {\n\
           for (l = list; l != null; l = l.tail) f(l.head);\n\
         }\n\
         def g(a: Animal) { System.puti(a.name()); }\n\
         def main() {\n\
           var b: List<Bat> = List.new(Bat.new(), List.new(Bat.new(), null));\n\
           apply(b, g);\n\
         }",
    );
    assert_eq!(out, "11");
}

#[test]
fn listing_p_ambiguous_calls_run() {
    // (p1-p8): both calling conventions on the same call site.
    let out = run_output(
        "def f(a: int, b: int) { System.puts(\"f\"); System.puti(a + b); }\n\
         def g(a: (int, int)) { System.puts(\"g\"); System.puti(a.0 * a.1); }\n\
         def pick(z: bool) -> ((int, int) -> void) { return z ? f : g; }\n\
         def main() {\n\
           var t = (3, 4);\n\
           var x = pick(true);\n\
           x(3, 4);   // f7\n\
           x(t);      // f7\n\
           x = pick(false);\n\
           x(3, 4);   // g12\n\
           x(t);      // g12\n\
         }",
    );
    assert_eq!(out, "f7f7g12g12");
}

#[test]
fn listing_p_virtual_override_tuple_scalar() {
    // (p10-p17): ambiguity via overriding.
    let out = run_output(
        "class A {\n\
           def m(a: int, b: int) { System.puts(\"A\"); System.puti(a + b); }\n\
         }\n\
         class B extends A {\n\
           def m(a: (int, int)) { System.puts(\"B\"); System.puti(a.0 * a.1); }\n\
         }\n\
         def main() {\n\
           var a: A = A.new();\n\
           a.m(1, 2);\n\
           a = B.new();\n\
           a.m(3, 4);\n\
         }",
    );
    assert_eq!(out, "A3B12");
}

#[test]
fn exceptions() {
    assert_eq!(run_err("def main() { var x = 1 / 0; }"), Exception::DivideByZero);
    assert_eq!(
        run_err("class A { var f: int; }\ndef main() { var a: A; System.puti(a.f); }"),
        Exception::NullCheck
    );
    assert_eq!(
        run_err("def main() { var a = Array<int>.new(3); a[3] = 1; }"),
        Exception::BoundsCheck
    );
    assert_eq!(
        run_err(
            "class A { }\nclass B extends A { }\n\
             def main() { var a = A.new(); var b = B.!(a); }"
        ),
        Exception::TypeCheck
    );
    assert_eq!(run_err("def main() { System.error(\"boom\"); }"), Exception::UserError);
}

#[test]
fn strings_are_byte_arrays() {
    assert_eq!(
        run_output(
            "def main() {\n\
               var s = \"hello\";\n\
               System.puti(s.length);\n\
               System.putc(s[0]);\n\
               s[0] = 'H';\n\
               System.puts(s);\n\
             }"
        ),
        "5hHello"
    );
}

#[test]
fn globals_initialize_in_order() {
    assert_eq!(
        run_int(
            "var a = 10;\n\
             var b = a + 32;\n\
             def main() -> int { return b; }"
        ),
        42
    );
}

#[test]
fn virtual_dispatch_through_hierarchy() {
    assert_eq!(
        run_int(
            "class A { def v() -> int { return 1; } }\n\
             class B extends A { def v() -> int { return 2; } }\n\
             class C extends B { def v() -> int { return 3; } }\n\
             def sum(xs: Array<A>) -> int {\n\
               var s = 0;\n\
               for (i = 0; i < xs.length; i = i + 1) s = s + xs[i].v();\n\
               return s;\n\
             }\n\
             def main() -> int { return sum([A.new(), B.new(), C.new()]); }"
        ),
        6
    );
}

#[test]
fn generic_class_field_types_specialize() {
    assert_eq!(
        run_int(
            "class Box<T> { def val: T; new(val) { } }\n\
             def main() -> int {\n\
               var bi = Box<int>.new(40);\n\
               var bp = Box<(int, int)>.new((1, 1));\n\
               return bi.val + bp.val.0 + bp.val.1;\n\
             }"
        ),
        42
    );
}

#[test]
fn interp_counts_tuple_boxing() {
    let m = compile(
        "def swap(p: (int, int)) -> (int, int) { return (p.1, p.0); }\n\
         def main() -> int {\n\
           var t = (1, 2);\n\
           for (i = 0; i < 10; i = i + 1) t = swap(t);\n\
           return t.0;\n\
         }",
    );
    let mut i = Interp::new(&m);
    i.run().expect("runs");
    // At least one tuple allocation per loop iteration.
    assert!(i.stats.allocs.tuples >= 10, "tuples: {}", i.stats.allocs.tuples);
}

#[test]
fn interp_counts_callsite_checks() {
    let m = compile(
        "def f(a: int, b: int) -> int { return a + b; }\n\
         def main() -> int {\n\
           var g = f;\n\
           var s = 0;\n\
           for (i = 0; i < 100; i = i + 1) s = g(s, 1);\n\
           return s;\n\
         }",
    );
    let mut i = Interp::new(&m);
    let v = i.run().expect("runs");
    assert_eq!(v.as_int(), 100);
    assert!(i.stats.callsite_checks >= 100);
}

#[test]
fn fuel_limits_runaway_programs() {
    let m = compile("def main() { while (true) { } }");
    let mut i = Interp::new(&m);
    i.set_fuel(10_000);
    assert!(matches!(i.run(), Err(InterpError::OutOfFuel) | Err(InterpError::Exception(_))));
}

#[test]
fn run_function_entry_point() {
    let m = compile("def addone(x: int) -> int { return x + 1; }\ndef main() { }");
    let mut i = Interp::new(&m);
    let v = i.run_function("addone", vec![Value::Int(41)]).expect("runs");
    assert_eq!(v.as_int(), 42);
}

#[test]
fn hashmap_pattern_end_to_end() {
    // A complete HashMap built on the §3.2 ADT pattern.
    let out = run_output(
        "class HashMap<K, V> {\n\
           def hash: K -> int;\n\
           def equals: (K, K) -> bool;\n\
           var keys: Array<K>;\n\
           var vals: Array<V>;\n\
           var used: Array<bool>;\n\
           var count: int;\n\
           new(hash, equals) {\n\
             keys = Array<K>.new(16);\n\
             vals = Array<V>.new(16);\n\
             used = Array<bool>.new(16);\n\
           }\n\
           def set(key: K, val: V) {\n\
             var i = (hash(key) & 15);\n\
             while (used[i]) {\n\
               if (equals(keys[i], key)) { vals[i] = val; return; }\n\
               i = (i + 1) & 15;\n\
             }\n\
             keys[i] = key; vals[i] = val; used[i] = true; count = count + 1;\n\
           }\n\
           def get(key: K) -> V {\n\
             var i = (hash(key) & 15);\n\
             while (used[i]) {\n\
               if (equals(keys[i], key)) return vals[i];\n\
               i = (i + 1) & 15;\n\
             }\n\
             var d: V; return d;\n\
           }\n\
         }\n\
         def idhash(x: int) -> int { return x; }\n\
         def pairhash(p: (int, int)) -> int { return p.0 * 31 + p.1; }\n\
         def paireq(a: (int, int), b: (int, int)) -> bool { return a == b; }\n\
         def main() {\n\
           var m = HashMap<int, int>.new(idhash, int.==);\n\
           m.set(1, 10);\n\
           m.set(17, 20);\n\
           System.puti(m.get(1));\n\
           System.puti(m.get(17));\n\
           var pm = HashMap<(int, int), int>.new(pairhash, paireq);\n\
           pm.set((1, 2), 99);\n\
           System.puti(pm.get((1, 2)));\n\
         }",
    );
    assert_eq!(out, "102099");
}
