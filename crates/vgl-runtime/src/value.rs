//! Interpreter values.
//!
//! This is the *reference* (type-passing) representation from paper §4.3:
//! objects carry their class and reified type arguments, tuples are **boxed**
//! heap values, and closures record method + receiver + type arguments. The
//! costs the compiler removes (tuple boxes, runtime type information, dynamic
//! calling-convention checks) are all *visible and countable* here via
//! [`AllocStats`].

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use vgl_ir::{Builtin, MethodId, Oper};
use vgl_types::{ClassId, Type};

/// Counters for implicit and explicit allocations performed by the
/// interpreter (experiment E1 reads these).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Boxed tuple values — the *implicit* allocations normalization removes.
    pub tuples: usize,
    /// Objects from explicit `new`.
    pub objects: usize,
    /// Arrays from explicit `Array<T>.new` / literals / strings.
    pub arrays: usize,
    /// Closure records (method binds, operator closures).
    pub closures: usize,
}

impl AllocStats {
    /// Total allocations of any kind.
    pub fn total(&self) -> usize {
        self.tuples + self.objects + self.arrays + self.closures
    }
}

/// A runtime value in the interpreter.
#[derive(Clone, Debug)]
pub enum Value {
    /// The void value `()`.
    Unit,
    /// A boolean.
    Bool(bool),
    /// A byte.
    Byte(u8),
    /// A 32-bit integer.
    Int(i32),
    /// `null`.
    Null,
    /// A boxed tuple (≥ 2 elements).
    Tuple(Rc<Vec<Value>>),
    /// An object reference.
    Object(Rc<RefCell<ObjData>>),
    /// An array reference.
    Array(Rc<RefCell<ArrData>>),
    /// A first-class function.
    Closure(Rc<Closure>),
}

/// Object payload: dynamic class, reified type arguments, field slots.
#[derive(Debug)]
pub struct ObjData {
    /// The dynamic class.
    pub class: ClassId,
    /// Reified class type arguments ("enough information is always retained
    /// to recover the type arguments of any parameterized usage" — §2.4).
    pub type_args: Vec<Type>,
    /// Field slots (absolute layout).
    pub fields: Vec<Value>,
}

/// Array payload: reified element type plus the values.
#[derive(Debug)]
pub struct ArrData {
    /// Reified element type.
    pub elem: Type,
    /// The elements.
    pub values: Vec<Value>,
}

/// A first-class function value.
#[derive(Debug)]
pub enum Closure {
    /// A method, optionally bound to a receiver, with reified type args.
    Method {
        /// The (declared) method; virtual dispatch already resolved at bind
        /// time for bound methods.
        method: MethodId,
        /// Reified full type-argument list.
        type_args: Vec<Type>,
        /// Bound receiver (`a.m`), or `None` for the unbound form (`A.m`).
        recv: Option<Value>,
    },
    /// A primitive/universal operator (types inside are concrete).
    Oper(Oper),
    /// `A.new` as a function.
    Ctor {
        /// The class.
        class: ClassId,
        /// Reified class type arguments.
        type_args: Vec<Type>,
    },
    /// `Array<T>.new` as a function.
    ArrayNew {
        /// Element type.
        elem: Type,
    },
    /// A `System` intrinsic as a function.
    Builtin(Builtin),
}

impl Value {
    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Extracts an `int`.
    ///
    /// # Panics
    /// Panics if the value is not an `Int` (a typechecked program never does
    /// this).
    pub fn as_int(&self) -> i32 {
        match self {
            Value::Int(i) => *i,
            other => panic!("expected int, found {other:?}"),
        }
    }

    /// Extracts a `bool`.
    pub fn as_bool(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            other => panic!("expected bool, found {other:?}"),
        }
    }

    /// Extracts a `byte`.
    pub fn as_byte(&self) -> u8 {
        match self {
            Value::Byte(b) => *b,
            other => panic!("expected byte, found {other:?}"),
        }
    }

    /// Structural equality per the language: primitives by value, tuples
    /// recursively, objects/arrays by reference, closures by target+receiver.
    pub fn value_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Unit, Value::Unit) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Byte(a), Value::Byte(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Null, Value::Null) => true,
            (Value::Tuple(a), Value::Tuple(b)) => {
                a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| x.value_eq(y))
            }
            (Value::Object(a), Value::Object(b)) => Rc::ptr_eq(a, b),
            (Value::Array(a), Value::Array(b)) => Rc::ptr_eq(a, b),
            (Value::Closure(a), Value::Closure(b)) => closure_eq(a, b),
            _ => false,
        }
    }
}

fn closure_eq(a: &Closure, b: &Closure) -> bool {
    match (a, b) {
        (
            Closure::Method { method: m1, type_args: t1, recv: r1 },
            Closure::Method { method: m2, type_args: t2, recv: r2 },
        ) => {
            m1 == m2
                && t1 == t2
                && match (r1, r2) {
                    (None, None) => true,
                    (Some(x), Some(y)) => x.value_eq(y),
                    _ => false,
                }
        }
        (Closure::Oper(x), Closure::Oper(y)) => x == y,
        (
            Closure::Ctor { class: c1, type_args: t1 },
            Closure::Ctor { class: c2, type_args: t2 },
        ) => c1 == c2 && t1 == t2,
        (Closure::ArrayNew { elem: e1 }, Closure::ArrayNew { elem: e2 }) => e1 == e2,
        (Closure::Builtin(x), Closure::Builtin(y)) => x == y,
        _ => false,
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "()"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Byte(b) => write!(f, "'{}'", *b as char),
            Value::Int(i) => write!(f, "{i}"),
            Value::Null => write!(f, "null"),
            Value::Tuple(es) => {
                write!(f, "(")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            Value::Object(o) => write!(f, "<object class#{}>", o.borrow().class.0),
            Value::Array(a) => write!(f, "<array[{}]>", a.borrow().values.len()),
            Value::Closure(_) => write!(f, "<closure>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuple_equality_is_structural() {
        let a = Value::Tuple(Rc::new(vec![Value::Int(1), Value::Bool(true)]));
        let b = Value::Tuple(Rc::new(vec![Value::Int(1), Value::Bool(true)]));
        let c = Value::Tuple(Rc::new(vec![Value::Int(2), Value::Bool(true)]));
        assert!(a.value_eq(&b));
        assert!(!a.value_eq(&c));
    }

    #[test]
    fn object_equality_is_identity() {
        let o1 = Rc::new(RefCell::new(ObjData {
            class: ClassId(0),
            type_args: vec![],
            fields: vec![],
        }));
        let o2 = Rc::new(RefCell::new(ObjData {
            class: ClassId(0),
            type_args: vec![],
            fields: vec![],
        }));
        assert!(Value::Object(o1.clone()).value_eq(&Value::Object(o1.clone())));
        assert!(!Value::Object(o1).value_eq(&Value::Object(o2)));
    }

    #[test]
    fn closure_equality_by_method_and_receiver() {
        let c1 = Value::Closure(Rc::new(Closure::Method {
            method: MethodId(3),
            type_args: vec![],
            recv: None,
        }));
        let c2 = Value::Closure(Rc::new(Closure::Method {
            method: MethodId(3),
            type_args: vec![],
            recv: None,
        }));
        let c3 = Value::Closure(Rc::new(Closure::Method {
            method: MethodId(4),
            type_args: vec![],
            recv: None,
        }));
        assert!(c1.value_eq(&c2));
        assert!(!c1.value_eq(&c3));
    }

    #[test]
    fn nested_tuples_compare_deep() {
        let inner = Value::Tuple(Rc::new(vec![Value::Int(3), Value::Int(4)]));
        let a = Value::Tuple(Rc::new(vec![inner.clone(), Value::Byte(7)]));
        let b = Value::Tuple(Rc::new(vec![
            Value::Tuple(Rc::new(vec![Value::Int(3), Value::Int(4)])),
            Value::Byte(7),
        ]));
        assert!(a.value_eq(&b));
    }

    #[test]
    fn alloc_stats_total() {
        let s = AllocStats { tuples: 2, objects: 3, arrays: 4, closures: 5 };
        assert_eq!(s.total(), 14);
    }
}
