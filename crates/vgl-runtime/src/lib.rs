//! # vgl-runtime
//!
//! Runtime substrates for virgil-rs:
//!
//! * [`value`] — the interpreter's boxed, type-carrying value representation
//!   (the §4.3 type-argument-passing strategy), with allocation counters.
//! * [`heap`] — the VM's tagged-word generational copying collector: a
//!   bump-allocated nursery with promoting minor collections on top of the
//!   "precise semi-space garbage collector" of the paper's native runtime
//!   (§5), which survives as the major collector. Write barriers feed a
//!   remembered set; allocation and collection statistics split minor/major.

#![warn(missing_docs)]

pub mod heap;
pub mod value;

pub use heap::{
    CellKind, GcInfo, GcKind, GcRecord, Heap, HeapStats, NeedsGc, Word, NULL, SLOT_BYTES,
};
pub use value::{AllocStats, ArrData, Closure, ObjData, Value};
