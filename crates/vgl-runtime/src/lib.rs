//! # vgl-runtime
//!
//! Runtime substrates for virgil-rs:
//!
//! * [`value`] — the interpreter's boxed, type-carrying value representation
//!   (the §4.3 type-argument-passing strategy), with allocation counters.
//! * [`heap`] — the VM's tagged-word semispace Cheney collector, modelled on
//!   the "precise semi-space garbage collector" of the paper's native runtime
//!   (§5), with allocation and collection statistics.

#![warn(missing_docs)]

pub mod heap;
pub mod value;

pub use heap::{CellKind, GcInfo, GcRecord, Heap, HeapStats, NeedsGc, Word, NULL, SLOT_BYTES};
pub use value::{AllocStats, ArrData, Closure, ObjData, Value};
