//! A precise garbage-collected heap for the bytecode VM: a bump-allocated
//! **nursery** with minor (promoting) collections on top of the paper's
//! semispace (Cheney) collector, which survives as the major collector.
//!
//! The paper (§5) describes Virgil's native runtime: "a precise semi-space
//! garbage collector (also written in Virgil)". This module started as that
//! substrate in Rust — tagged 64-bit values, bump allocation, and a copying
//! collector driven by explicit root slices — and now layers a generation on
//! top of it for long-running, allocation-heavy workloads:
//!
//! * **Nursery**: new cells bump-allocate into a small fixed window at the
//!   bottom of the heap. When it fills, a *minor* collection promotes the
//!   survivors into the mature space and resets the window — pause time is
//!   proportional to nursery survivors, not the whole heap.
//! * **Mature space**: the rest of the heap. Cells too large for the nursery
//!   are pre-tenured here directly. When the mature space can no longer
//!   absorb a nursery's worth of promotion, a *major* collection runs the
//!   original Cheney copy over everything.
//! * **Remembered set**: stores of a nursery reference into a mature cell go
//!   through the [`Heap::set_ref`] write barrier, which remembers the slot so
//!   minor collections can treat it as a root. The compiler back end emits
//!   the barrier only on statically ref-typed stores; scalar stores keep the
//!   barrier-free [`Heap::set`].
//!
//! A heap built with [`Heap::new`] has no nursery and degenerates to exactly
//! the original semispace collector (every collection is major); a heap from
//! [`Heap::with_nursery`] is generational.
//!
//! ## Value tagging
//!
//! Every VM value is a `u64`:
//!
//! * `....0` — a scalar; the payload is the value shifted left by one.
//! * `....1` — a heap reference; the payload is a slot index shifted left.
//!
//! `null` is the reference with index 0, which is never a valid allocation.
//!
//! ## Heap cells
//!
//! A cell is `[header][payload...]`. The header packs kind (2 bits), meta
//! (30 bits: class id for objects, unused for others) and payload length in
//! slots (32 bits). During collection the header is replaced by a forwarding
//! reference.
//!
//! ## Layout
//!
//! One address space, stable under promotion and growth:
//!
//! ```text
//! [0: reserved][1 .. nursery_end: nursery][nursery_end .. cap: mature]
//! ```
//!
//! [`Heap::grow`] extends the mature space upward, so nursery indices — and
//! every live reference — stay valid across growth.

use std::time::{Duration, Instant};

/// Tagged VM value.
pub type Word = u64;

/// Bytes per heap slot (tagged 64-bit words).
pub const SLOT_BYTES: usize = 8;

/// The tagged `null` reference.
pub const NULL: Word = 1;

/// Scalar payload width in bits: the tag takes one of the 64.
pub const SCALAR_BITS: u32 = 63;

/// Largest value a tagged scalar can carry without wrapping.
pub const SCALAR_MAX: i64 = (1 << (SCALAR_BITS - 1)) - 1;

/// Smallest value a tagged scalar can carry without wrapping.
pub const SCALAR_MIN: i64 = -(1 << (SCALAR_BITS - 1));

/// True when `v` survives a `scalar`/[`as_scalar`] round trip unchanged.
pub fn scalar_fits(v: i64) -> bool {
    (SCALAR_MIN..=SCALAR_MAX).contains(&v)
}

/// Encodes a signed scalar.
///
/// The payload is 63 bits ([`SCALAR_MIN`]`..=`[`SCALAR_MAX`]); debug builds
/// assert the value fits. Callers that *want* modular reduction (none exist
/// in the VM today — language integers are 32-bit) must say so explicitly
/// with [`scalar_wrapping`].
pub fn scalar(v: i64) -> Word {
    debug_assert!(
        scalar_fits(v),
        "scalar {v} exceeds the 63-bit payload range \
         [{SCALAR_MIN}, {SCALAR_MAX}]; use scalar_wrapping for modular reduction"
    );
    scalar_wrapping(v)
}

/// Encodes a signed scalar with **explicit wrap-at-63-bits semantics**: the
/// value is reduced two's-complement into [`SCALAR_MIN`]`..=`[`SCALAR_MAX`],
/// i.e. `as_scalar(scalar_wrapping(v))` sign-extends the low 63 bits of `v`
/// (so `scalar_wrapping(i64::MAX)` round-trips to `-1`).
pub fn scalar_wrapping(v: i64) -> Word {
    ((v as u64) << 1) & !1
}

/// Decodes a signed scalar.
pub fn as_scalar(w: Word) -> i64 {
    (w as i64) >> 1
}

/// Encodes an `i32` (the common case).
pub fn from_i32(v: i32) -> Word {
    scalar(v as i64)
}

/// Decodes an `i32`.
pub fn as_i32(w: Word) -> i32 {
    as_scalar(w) as i32
}

/// True if `w` is a heap reference (including `null`).
pub fn is_ref(w: Word) -> bool {
    w & 1 == 1
}

/// Encodes a heap reference from a slot index.
pub fn make_ref(index: usize) -> Word {
    ((index as u64) << 1) | 1
}

/// Decodes a heap reference to a slot index.
pub fn ref_index(w: Word) -> usize {
    debug_assert!(is_ref(w));
    (w >> 1) as usize
}

/// What a heap cell holds.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CellKind {
    /// An object; meta = class id.
    Object,
    /// An array; meta unused; payload = elements (possibly several slots per
    /// source-level element after normalization).
    Array,
    /// A closure cell: `[func id][bound receiver]`.
    Closure,
}

impl CellKind {
    fn code(self) -> u64 {
        match self {
            CellKind::Object => 0,
            CellKind::Array => 1,
            CellKind::Closure => 2,
        }
    }

    /// Checked decode: `None` for any code no allocation ever writes (a
    /// corrupted header, e.g. code 3).
    pub fn try_from_code(c: u64) -> Option<CellKind> {
        match c {
            0 => Some(CellKind::Object),
            1 => Some(CellKind::Array),
            2 => Some(CellKind::Closure),
            _ => None,
        }
    }

    /// Decodes a header kind code. Code 3 is never written by any
    /// allocation path, so seeing it means the header is corrupt: debug
    /// builds panic at the point of corruption instead of silently
    /// mis-tracing the cell as a closure.
    fn from_code(c: u64) -> CellKind {
        match CellKind::try_from_code(c) {
            Some(k) => k,
            None => {
                debug_assert!(false, "heap corruption: invalid cell kind code {c}");
                CellKind::Closure
            }
        }
    }
}

const FORWARD_BIT: u64 = 1 << 63;

fn header(kind: CellKind, meta: u32, len: usize) -> u64 {
    debug_assert!(meta < (1 << 30));
    debug_assert!(len < (1 << 32));
    (kind.code() << 61) | ((meta as u64) << 32) | len as u64
}

/// Which generation a collection worked on.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum GcKind {
    /// Nursery-only: survivors were promoted to the mature space; pause is
    /// proportional to nursery survivors.
    Minor,
    /// Full Cheney copy of everything reachable (the semispace collector;
    /// the only kind a [`Heap::new`] heap ever runs).
    #[default]
    Major,
}

impl GcKind {
    /// `"minor"` / `"major"` — the label every telemetry surface prints.
    pub fn label(self) -> &'static str {
        match self {
            GcKind::Minor => "minor",
            GcKind::Major => "major",
        }
    }
}

/// Allocation and collection statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HeapStats {
    /// Objects allocated (explicit `new`).
    pub objects: usize,
    /// Arrays allocated.
    pub arrays: usize,
    /// Closure cells allocated.
    pub closures: usize,
    /// Tuple boxes allocated — **always zero after normalization**; the VM
    /// has no instruction that could allocate one (experiment E1).
    pub tuple_boxes: usize,
    /// Collections performed (minor + major).
    pub collections: usize,
    /// Minor (nursery) collections performed.
    pub minor_collections: usize,
    /// Major (full-heap) collections performed.
    pub major_collections: usize,
    /// Total slots copied by collections (promotion copies for minors, full
    /// live copies for majors).
    pub copied_slots: usize,
    /// Total slots promoted from the nursery to the mature space.
    pub promoted_slots: usize,
    /// Total slots allocated over time.
    pub allocated_slots: usize,
}

/// What one collection did — returned by [`Heap::collect`] so callers
/// (the VM's profiler) can report per-GC events without re-deriving them
/// from counter deltas.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcInfo {
    /// Minor or major.
    pub kind: GcKind,
    /// Slots in use after the collection — for a major, exactly the live
    /// slots; for a minor, the mature occupancy (an upper bound: mature
    /// garbage is not traced by a minor).
    pub live_slots: usize,
    /// Slots physically copied by this collection: the promoted survivors
    /// for a minor, everything live for a major. Diverges from
    /// [`GcInfo::live_slots`] on every minor collection.
    pub copied_slots: usize,
    /// Heap capacity at collection time.
    pub capacity_slots: usize,
}

/// One collection in the heap's telemetry timeline: when enabled, every
/// [`Heap::collect`] appends a record with its wall-clock pause and the
/// live/freed accounting needed to draw a heap-occupancy curve.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct GcRecord {
    /// Minor or major.
    pub kind: GcKind,
    /// Wall-clock duration of the collection (root rewrite + scan + copy).
    pub pause: Duration,
    /// Slots in use when the collection started.
    pub used_before: usize,
    /// Slots in use (surviving) after the collection.
    pub live_slots: usize,
    /// Slots physically copied (promoted, for a minor).
    pub copied_slots: usize,
    /// Slots reclaimed.
    pub freed_slots: usize,
    /// Heap capacity at collection time.
    pub capacity_slots: usize,
}

impl GcRecord {
    /// Post-collection occupancy in `[0, 1]` — one point on the
    /// heap-occupancy curve.
    pub fn occupancy(&self) -> f64 {
        self.live_slots as f64 / self.capacity_slots.max(1) as f64
    }

    /// Bytes surviving the collection.
    pub fn live_bytes(&self) -> usize {
        self.live_slots * SLOT_BYTES
    }

    /// Bytes reclaimed by the collection.
    pub fn freed_bytes(&self) -> usize {
        self.freed_slots * SLOT_BYTES
    }
}

/// A generational copying heap (see the module docs for the layout).
#[derive(Debug)]
pub struct Heap {
    space: Vec<u64>,
    alt: Vec<u64>,
    /// First slot past the nursery; 1 means no nursery (pure semispace).
    nursery_end: usize,
    /// Nursery bump pointer in `[1, nursery_end]`.
    nursery_top: usize,
    /// Mature bump pointer in `[nursery_end, capacity]`.
    top: usize,
    /// Remembered set: absolute payload-slot indices in the mature space
    /// that held a nursery reference when last stored through the barrier.
    /// Duplicates are harmless (forwarding is idempotent); cleared by every
    /// collection (the nursery is empty afterwards, so no mature→nursery
    /// edges can exist).
    remset: Vec<usize>,
    /// Statistics.
    pub stats: HeapStats,
    /// Per-collection telemetry; `None` (the default) costs nothing — not
    /// even a clock read — per collection.
    timeline: Option<Vec<GcRecord>>,
}

/// Returned when an allocation cannot proceed before a collection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NeedsGc;

impl Heap {
    /// Creates a heap with the given capacity in slots and **no nursery**:
    /// the original semispace collector, every collection major.
    pub fn new(capacity_slots: usize) -> Heap {
        Heap::with_nursery(capacity_slots, 0)
    }

    /// Creates a generational heap: `nursery_slots` of bump-allocated
    /// nursery (clamped to half the capacity) in front of the mature space.
    /// `nursery_slots == 0` degenerates to [`Heap::new`].
    pub fn with_nursery(capacity_slots: usize, nursery_slots: usize) -> Heap {
        let cap = capacity_slots.max(16);
        let nursery = nursery_slots.min(cap / 2);
        Heap {
            space: vec![0; cap],
            alt: vec![0; cap],
            // Slot 0 is reserved so that index 0 can mean null.
            nursery_end: 1 + nursery,
            nursery_top: 1,
            top: 1 + nursery,
            remset: Vec::new(),
            stats: HeapStats::default(),
            timeline: None,
        }
    }

    /// Turns on per-collection telemetry; subsequent [`Heap::collect`] calls
    /// append a [`GcRecord`] each.
    pub fn enable_timeline(&mut self) {
        if self.timeline.is_none() {
            self.timeline = Some(Vec::new());
        }
    }

    /// The telemetry timeline so far; empty slice when disabled.
    pub fn timeline(&self) -> &[GcRecord] {
        self.timeline.as_deref().unwrap_or(&[])
    }

    /// Consumes the telemetry timeline, disabling further recording.
    pub fn take_timeline(&mut self) -> Vec<GcRecord> {
        self.timeline.take().unwrap_or_default()
    }

    /// Slots currently in use (including the reserved null slot).
    pub fn used(&self) -> usize {
        1 + (self.nursery_top - 1) + (self.top - self.nursery_end)
    }

    /// Heap capacity in slots.
    pub fn capacity(&self) -> usize {
        self.space.len()
    }

    /// Nursery capacity in slots (0 for a semispace heap).
    pub fn nursery_capacity(&self) -> usize {
        self.nursery_end - 1
    }

    /// Slots currently in use in the nursery.
    pub fn nursery_used(&self) -> usize {
        self.nursery_top - 1
    }

    /// Slots currently in use in the mature space.
    pub fn mature_used(&self) -> usize {
        self.top - self.nursery_end
    }

    /// True when the heap has a nursery (collections split minor/major).
    pub fn is_generational(&self) -> bool {
        self.nursery_end > 1
    }

    /// Remembered-set entries currently pending (tests/telemetry).
    pub fn remset_len(&self) -> usize {
        self.remset.len()
    }

    /// Allocates a cell, returning its tagged reference, or [`NeedsGc`] when
    /// the target space is full (caller collects with roots, then retries;
    /// if it still fails the caller should force a major, grow, or abort).
    ///
    /// Cells that fit go to the nursery; larger ones are pre-tenured
    /// directly into the mature space (callers storing references into a
    /// fresh cell must therefore use [`Heap::set_ref`] — the cell may
    /// already be mature).
    pub fn try_alloc(&mut self, kind: CellKind, meta: u32, len: usize) -> Result<Word, NeedsGc> {
        let need = len + 1;
        let at = if need < self.nursery_end {
            if self.nursery_top + need > self.nursery_end {
                return Err(NeedsGc);
            }
            let at = self.nursery_top;
            self.nursery_top += need;
            at
        } else {
            if self.top + need > self.space.len() {
                return Err(NeedsGc);
            }
            let at = self.top;
            self.top += need;
            at
        };
        self.space[at] = header(kind, meta, len);
        for i in 0..len {
            self.space[at + 1 + i] = 0; // zero scalar
        }
        self.stats.allocated_slots += need;
        match kind {
            CellKind::Object => self.stats.objects += 1,
            CellKind::Array => self.stats.arrays += 1,
            CellKind::Closure => self.stats.closures += 1,
        }
        Ok(make_ref(at))
    }

    /// Grows the mature space (used when a collection cannot free enough).
    /// The nursery keeps its size and position, so all indices stay valid.
    pub fn grow(&mut self, min_free: usize) {
        let want = (self.space.len() * 2).max(self.top + min_free + 1);
        self.space.resize(want, 0);
        self.alt.resize(want, 0);
    }

    /// The kind of the cell behind `r`.
    pub fn kind(&self, r: Word) -> CellKind {
        let h = self.space[ref_index(r)];
        CellKind::from_code((h >> 61) & 3)
    }

    /// The meta field (class id for objects).
    pub fn meta(&self, r: Word) -> u32 {
        let h = self.space[ref_index(r)];
        ((h >> 32) & 0x3FFF_FFFF) as u32
    }

    /// Payload length in slots.
    pub fn len(&self, r: Word) -> usize {
        let h = self.space[ref_index(r)];
        (h & 0xFFFF_FFFF) as usize
    }

    /// True if the heap has no live allocations (trivially false after any
    /// allocation until a full collection with no roots).
    pub fn is_empty(&self) -> bool {
        self.used() <= 1
    }

    /// Reads payload slot `i` of `r`.
    pub fn get(&self, r: Word, i: usize) -> Word {
        debug_assert!(i < self.len(r), "heap read out of cell bounds");
        self.space[ref_index(r) + 1 + i]
    }

    /// Writes payload slot `i` of `r` **without** a write barrier — for
    /// values that are statically scalars. Storing a reference through this
    /// on a generational heap can lose the object at the next minor
    /// collection; debug builds assert against it.
    pub fn set(&mut self, r: Word, i: usize, v: Word) {
        debug_assert!(i < self.len(r), "heap write out of cell bounds");
        debug_assert!(
            !(self.in_nursery(v) && ref_index(r) >= self.nursery_end),
            "unbarriered store of a nursery reference into a mature cell; \
             the back end must emit set_ref here"
        );
        self.space[ref_index(r) + 1 + i] = v;
    }

    /// Writes payload slot `i` of `r` through the **generational write
    /// barrier**: a nursery reference stored into a mature cell is added to
    /// the remembered set so the next minor collection treats the slot as a
    /// root. The back end emits this for statically ref-typed stores;
    /// scalar stores keep the barrier-free [`Heap::set`].
    pub fn set_ref(&mut self, r: Word, i: usize, v: Word) {
        debug_assert!(i < self.len(r), "heap write out of cell bounds");
        let at = ref_index(r) + 1 + i;
        self.space[at] = v;
        if self.in_nursery(v) && ref_index(r) >= self.nursery_end {
            self.remset.push(at);
        }
    }

    fn in_nursery(&self, v: Word) -> bool {
        is_ref(v) && v != NULL && ref_index(v) < self.nursery_end
    }

    /// Collects garbage: a **minor** collection when the heap is
    /// generational and the mature space can absorb the worst-case
    /// promotion, otherwise a **major** one. Copies survivors, rewrites the
    /// roots in place, and returns what it did for observability.
    pub fn collect(&mut self, roots: &mut [&mut [Word]]) -> GcInfo {
        if self.is_generational() && self.space.len() - self.top >= self.nursery_used() {
            self.collect_minor(roots)
        } else {
            self.collect_major(roots)
        }
    }

    /// Minor collection: promotes live nursery cells into the mature space
    /// (roots = the given slices plus the remembered set), then resets the
    /// nursery. Mature cells never move. The caller must guarantee the
    /// mature space has at least [`Heap::nursery_used`] free slots.
    fn collect_minor(&mut self, roots: &mut [&mut [Word]]) -> GcInfo {
        let pause_start = self.timeline.is_some().then(Instant::now);
        let used_before = self.used();
        self.stats.collections += 1;
        self.stats.minor_collections += 1;
        let promote_start = self.top;
        for root_slice in roots.iter_mut() {
            for slot in root_slice.iter_mut() {
                *slot = self.forward_minor(*slot);
            }
        }
        // Remembered slots are the mature→nursery edges; forwarding is
        // idempotent, so duplicates and stale (re-overwritten) entries are
        // both fine.
        let remset = std::mem::take(&mut self.remset);
        for &at in &remset {
            let v = self.space[at];
            self.space[at] = self.forward_minor(v);
        }
        // Cheney scan of the newly promoted region only.
        let mut scan = promote_start;
        while scan < self.top {
            let h = self.space[scan];
            let kind = CellKind::from_code((h >> 61) & 3);
            let len = (h & 0xFFFF_FFFF) as usize;
            match kind {
                CellKind::Object | CellKind::Array => {
                    for i in 0..len {
                        let v = self.space[scan + 1 + i];
                        self.space[scan + 1 + i] = self.forward_minor(v);
                    }
                }
                CellKind::Closure => {
                    // Slot 0 is the function id (scalar); slot 1 the receiver.
                    let v = self.space[scan + 2];
                    self.space[scan + 2] = self.forward_minor(v);
                }
            }
            scan += len + 1;
        }
        let promoted = self.top - promote_start;
        self.nursery_top = 1;
        self.stats.copied_slots += promoted;
        self.stats.promoted_slots += promoted;
        let info = GcInfo {
            kind: GcKind::Minor,
            live_slots: self.mature_used(),
            copied_slots: promoted,
            capacity_slots: self.space.len(),
        };
        self.record(pause_start, used_before, info);
        info
    }

    /// Forwards a word during a minor collection: only nursery references
    /// move (promotion); mature references and scalars pass through.
    fn forward_minor(&mut self, v: Word) -> Word {
        if !is_ref(v) || v == NULL {
            return v;
        }
        let old = ref_index(v);
        if old >= self.nursery_end {
            return v;
        }
        let h = self.space[old];
        if h & FORWARD_BIT != 0 {
            return make_ref((h & !FORWARD_BIT) as usize);
        }
        let len = (h & 0xFFFF_FFFF) as usize;
        let at = self.top;
        debug_assert!(at + len < self.space.len(), "mature space overflow during promotion");
        self.space[at] = h;
        for i in 0..len {
            self.space[at + 1 + i] = self.space[old + 1 + i];
        }
        self.top += len + 1;
        self.space[old] = FORWARD_BIT | at as u64;
        make_ref(at)
    }

    /// Major (full-heap Cheney) collection: copies everything reachable
    /// from `roots` into the other semispace — nursery survivors are
    /// promoted in the same sweep — and rewrites the roots in place.
    pub fn collect_major(&mut self, roots: &mut [&mut [Word]]) -> GcInfo {
        let pause_start = self.timeline.is_some().then(Instant::now);
        let used_before = self.used();
        self.stats.collections += 1;
        self.stats.major_collections += 1;
        // Worst case everything survives into the mature region of the
        // to-space; grow first if it cannot hold that.
        let live_bound = self.mature_used() + self.nursery_used();
        if self.nursery_end + live_bound > self.space.len() {
            self.grow(live_bound);
        }
        std::mem::swap(&mut self.space, &mut self.alt);
        // `alt` is now the from-space; `space` is the to-space. The nursery
        // region of the to-space stays empty.
        self.top = self.nursery_end;
        self.nursery_top = 1;
        self.remset.clear();
        for root_slice in roots.iter_mut() {
            for slot in root_slice.iter_mut() {
                *slot = self.forward(*slot);
            }
        }
        // Scan.
        let mut scan = self.nursery_end;
        while scan < self.top {
            let h = self.space[scan];
            let kind = CellKind::from_code((h >> 61) & 3);
            let len = (h & 0xFFFF_FFFF) as usize;
            match kind {
                CellKind::Object | CellKind::Array => {
                    for i in 0..len {
                        let v = self.space[scan + 1 + i];
                        self.space[scan + 1 + i] = self.forward(v);
                    }
                }
                CellKind::Closure => {
                    // Slot 0 is the function id (scalar); slot 1 the receiver.
                    let v = self.space[scan + 2];
                    self.space[scan + 2] = self.forward(v);
                }
            }
            scan += len + 1;
        }
        let copied = self.top - self.nursery_end;
        self.stats.copied_slots += copied;
        let info = GcInfo {
            kind: GcKind::Major,
            live_slots: copied,
            copied_slots: copied,
            capacity_slots: self.space.len(),
        };
        self.record(pause_start, used_before, info);
        info
    }

    fn record(&mut self, pause_start: Option<Instant>, used_before: usize, info: GcInfo) {
        let used_after = self.used();
        if let Some(timeline) = &mut self.timeline {
            timeline.push(GcRecord {
                kind: info.kind,
                pause: pause_start.map(|t| t.elapsed()).unwrap_or_default(),
                used_before,
                live_slots: info.live_slots,
                copied_slots: info.copied_slots,
                freed_slots: used_before.saturating_sub(used_after),
                capacity_slots: info.capacity_slots,
            });
        }
    }

    fn forward(&mut self, v: Word) -> Word {
        if !is_ref(v) || v == NULL {
            return v;
        }
        let old = ref_index(v);
        let h = self.alt[old];
        if h & FORWARD_BIT != 0 {
            return make_ref((h & !FORWARD_BIT) as usize);
        }
        let len = (h & 0xFFFF_FFFF) as usize;
        let at = self.top;
        debug_assert!(at + len < self.space.len(), "to-space overflow");
        self.space[at] = h;
        for i in 0..len {
            self.space[at + 1 + i] = self.alt[old + 1 + i];
        }
        self.top += len + 1;
        self.alt[old] = FORWARD_BIT | at as u64;
        make_ref(at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        for v in [0i64, 1, -1, i32::MAX as i64, i32::MIN as i64, 123456789] {
            assert_eq!(as_scalar(scalar(v)), v);
            assert!(!is_ref(scalar(v)));
        }
    }

    #[test]
    fn scalar_boundaries_roundtrip_exactly() {
        for v in [SCALAR_MAX, SCALAR_MIN, SCALAR_MAX - 1, SCALAR_MIN + 1] {
            assert!(scalar_fits(v));
            assert_eq!(as_scalar(scalar(v)), v);
        }
        assert!(!scalar_fits(SCALAR_MAX + 1));
        assert!(!scalar_fits(SCALAR_MIN - 1));
        assert!(!scalar_fits(i64::MAX));
        assert!(!scalar_fits(i64::MIN));
    }

    #[test]
    fn scalar_wrapping_semantics_are_sign_extended_low_63_bits() {
        // The documented law: wrap-at-63-bits, two's complement.
        assert_eq!(as_scalar(scalar_wrapping(i64::MAX)), -1);
        assert_eq!(as_scalar(scalar_wrapping(i64::MIN)), 0);
        assert_eq!(as_scalar(scalar_wrapping(SCALAR_MAX + 1)), SCALAR_MIN);
        assert_eq!(as_scalar(scalar_wrapping(SCALAR_MIN - 1)), SCALAR_MAX);
        for v in [0i64, 7, -7, SCALAR_MAX, SCALAR_MIN] {
            assert_eq!(as_scalar(scalar_wrapping(v)), v, "in-range values are untouched");
        }
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "63-bit payload range")]
    fn scalar_out_of_range_panics_in_debug() {
        let _ = scalar(i64::MAX);
    }

    #[test]
    fn ref_roundtrip() {
        for i in [1usize, 2, 1000, 1 << 30] {
            assert_eq!(ref_index(make_ref(i)), i);
            assert!(is_ref(make_ref(i)));
        }
    }

    #[test]
    fn cell_kind_decode_is_checked() {
        assert_eq!(CellKind::try_from_code(0), Some(CellKind::Object));
        assert_eq!(CellKind::try_from_code(1), Some(CellKind::Array));
        assert_eq!(CellKind::try_from_code(2), Some(CellKind::Closure));
        assert_eq!(CellKind::try_from_code(3), None);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "heap corruption")]
    fn corrupted_header_kind_panics_in_debug() {
        let mut h = Heap::new(64);
        let r = h.try_alloc(CellKind::Object, 0, 1).expect("fits");
        // Hand-corrupt the header: kind code 3, which no allocation writes.
        let idx = ref_index(r);
        h.space[idx] |= 3 << 61;
        let _ = h.kind(r);
    }

    #[test]
    fn alloc_and_access() {
        let mut h = Heap::new(64);
        let r = h.try_alloc(CellKind::Object, 7, 3).expect("fits");
        assert_eq!(h.kind(r), CellKind::Object);
        assert_eq!(h.meta(r), 7);
        assert_eq!(h.len(r), 3);
        h.set(r, 0, from_i32(42));
        h.set(r, 2, from_i32(-1));
        assert_eq!(as_i32(h.get(r, 0)), 42);
        assert_eq!(as_i32(h.get(r, 2)), -1);
        assert_eq!(h.stats.objects, 1);
    }

    #[test]
    fn alloc_until_full_then_collect_frees_garbage() {
        let mut h = Heap::new(64);
        // One live object referencing another.
        let a = h.try_alloc(CellKind::Object, 0, 2).expect("fits");
        let b = h.try_alloc(CellKind::Object, 1, 1).expect("fits");
        h.set(a, 0, b);
        h.set(a, 1, from_i32(5));
        h.set(b, 0, from_i32(9));
        // Garbage.
        while h.try_alloc(CellKind::Array, 0, 4).is_ok() {}
        let mut roots = [a];
        h.collect(&mut [&mut roots]);
        let a2 = roots[0];
        assert_eq!(h.len(a2), 2);
        assert_eq!(as_i32(h.get(a2, 1)), 5);
        let b2 = h.get(a2, 0);
        assert!(is_ref(b2));
        assert_eq!(as_i32(h.get(b2, 0)), 9);
        assert_eq!(h.meta(b2), 1);
        // Everything else was garbage: only a (3 slots) + b (2 slots) live.
        assert_eq!(h.used(), 1 + 3 + 2);
        assert_eq!(h.stats.collections, 1);
        assert_eq!(h.stats.major_collections, 1, "a semispace heap only majors");
    }

    #[test]
    fn shared_references_preserved_by_copying() {
        let mut h = Heap::new(64);
        let shared = h.try_alloc(CellKind::Object, 0, 1).expect("fits");
        h.set(shared, 0, from_i32(77));
        let x = h.try_alloc(CellKind::Object, 0, 1).expect("fits");
        let y = h.try_alloc(CellKind::Object, 0, 1).expect("fits");
        h.set(x, 0, shared);
        h.set(y, 0, shared);
        let mut roots = [x, y];
        h.collect(&mut [&mut roots]);
        let (x2, y2) = (roots[0], roots[1]);
        // The shared object was copied exactly once.
        assert_eq!(h.get(x2, 0), h.get(y2, 0));
        assert_eq!(as_i32(h.get(h.get(x2, 0), 0)), 77);
    }

    #[test]
    fn cycles_survive_collection() {
        let mut h = Heap::new(64);
        let a = h.try_alloc(CellKind::Object, 0, 1).expect("fits");
        let b = h.try_alloc(CellKind::Object, 0, 1).expect("fits");
        h.set(a, 0, b);
        h.set(b, 0, a);
        let mut roots = [a];
        h.collect(&mut [&mut roots]);
        let a2 = roots[0];
        let b2 = h.get(a2, 0);
        assert_eq!(h.get(b2, 0), a2);
    }

    #[test]
    fn closure_cells_trace_receiver_only() {
        let mut h = Heap::new(64);
        let recv = h.try_alloc(CellKind::Object, 0, 1).expect("fits");
        h.set(recv, 0, from_i32(5));
        let c = h.try_alloc(CellKind::Closure, 0, 2).expect("fits");
        h.set(c, 0, from_i32(12)); // func id — a scalar, must not be traced
        h.set(c, 1, recv);
        let mut roots = [c];
        h.collect(&mut [&mut roots]);
        let c2 = roots[0];
        assert_eq!(as_i32(h.get(c2, 0)), 12);
        let recv2 = h.get(c2, 1);
        assert_eq!(as_i32(h.get(recv2, 0)), 5);
        assert_eq!(h.stats.closures, 1);
    }

    #[test]
    fn null_is_not_forwarded() {
        let mut h = Heap::new(32);
        let a = h.try_alloc(CellKind::Object, 0, 1).expect("fits");
        h.set(a, 0, NULL);
        let mut roots = [a];
        h.collect(&mut [&mut roots]);
        assert_eq!(h.get(roots[0], 0), NULL);
    }

    #[test]
    fn needs_gc_when_full() {
        let mut h = Heap::new(16);
        let mut last = Ok(NULL);
        for _ in 0..10 {
            last = h.try_alloc(CellKind::Array, 0, 4);
        }
        assert_eq!(last, Err(NeedsGc));
        h.grow(64);
        assert!(h.try_alloc(CellKind::Array, 0, 4).is_ok());
    }

    #[test]
    fn timeline_is_off_by_default_and_records_when_enabled() {
        let mut h = Heap::new(64);
        let a = h.try_alloc(CellKind::Object, 0, 2).expect("fits");
        let mut roots = [a];
        h.collect(&mut [&mut roots]);
        assert!(h.timeline().is_empty(), "disabled timeline records nothing");

        h.enable_timeline();
        while h.try_alloc(CellKind::Array, 0, 4).is_ok() {}
        let used_before = h.used();
        h.collect(&mut [&mut roots]);
        let tl = h.timeline();
        assert_eq!(tl.len(), 1);
        let rec = tl[0];
        assert_eq!(rec.kind, GcKind::Major);
        assert_eq!(rec.used_before, used_before);
        assert_eq!(rec.live_slots, 3, "only the rooted object survives");
        assert_eq!(rec.copied_slots, rec.live_slots, "copied == live on a major");
        assert_eq!(rec.freed_slots, used_before - 1 - rec.live_slots);
        assert_eq!(rec.capacity_slots, h.capacity());
        assert!(rec.occupancy() > 0.0 && rec.occupancy() <= 1.0);
        assert_eq!(rec.live_bytes(), rec.live_slots * SLOT_BYTES);
        assert_eq!(rec.freed_bytes(), rec.freed_slots * SLOT_BYTES);

        let taken = h.take_timeline();
        assert_eq!(taken.len(), 1);
        h.collect(&mut [&mut roots]);
        assert!(h.timeline().is_empty(), "take_timeline disables recording");
    }

    #[test]
    fn grow_preserves_contents() {
        let mut h = Heap::new(16);
        let a = h.try_alloc(CellKind::Object, 3, 2).expect("fits");
        h.set(a, 0, from_i32(11));
        h.grow(1024);
        assert_eq!(as_i32(h.get(a, 0)), 11);
        assert_eq!(h.meta(a), 3);
    }

    // ---- generational-specific tests ----

    #[test]
    fn small_allocations_land_in_the_nursery_large_ones_pretenure() {
        let mut h = Heap::with_nursery(256, 16);
        assert!(h.is_generational());
        assert_eq!(h.nursery_capacity(), 16);
        let small = h.try_alloc(CellKind::Object, 0, 2).expect("fits");
        assert!(ref_index(small) < 17, "small cell goes to the nursery");
        assert_eq!(h.nursery_used(), 3);
        let large = h.try_alloc(CellKind::Array, 0, 32).expect("fits");
        assert!(ref_index(large) >= 17, "oversized cell is pre-tenured");
        assert_eq!(h.mature_used(), 33);
    }

    #[test]
    fn minor_collection_promotes_survivors_and_resets_the_nursery() {
        let mut h = Heap::with_nursery(256, 16);
        let a = h.try_alloc(CellKind::Object, 4, 2).expect("fits");
        h.set(a, 0, from_i32(9));
        // Fill the rest of the nursery with garbage.
        while h.try_alloc(CellKind::Object, 0, 2).is_ok() {}
        let mature_before = h.mature_used();
        let mut roots = [a];
        let info = h.collect(&mut [&mut roots]);
        assert_eq!(info.kind, GcKind::Minor);
        assert_eq!(info.copied_slots, 3, "only the rooted cell is promoted");
        assert_eq!(h.nursery_used(), 0, "nursery is empty after a minor");
        assert_eq!(h.mature_used(), mature_before + 3);
        let a2 = roots[0];
        assert!(ref_index(a2) >= h.nursery_end, "survivor was promoted");
        assert_eq!(as_i32(h.get(a2, 0)), 9);
        assert_eq!(h.meta(a2), 4);
        assert_eq!(h.stats.minor_collections, 1);
        assert_eq!(h.stats.promoted_slots, 3);
    }

    #[test]
    fn copied_and_live_slots_genuinely_diverge_on_minors() {
        let mut h = Heap::with_nursery(256, 16);
        // Tenured data that stays live across the minor.
        let big = h.try_alloc(CellKind::Array, 0, 30).expect("fits");
        let a = h.try_alloc(CellKind::Object, 0, 1).expect("fits");
        let mut roots = [big, a];
        let info = h.collect(&mut [&mut roots]);
        assert_eq!(info.kind, GcKind::Minor);
        assert_eq!(info.copied_slots, 2, "only the nursery survivor is copied");
        assert_eq!(info.live_slots, 31 + 2, "live counts the whole mature occupancy");
        assert_ne!(info.copied_slots, info.live_slots);
    }

    #[test]
    fn write_barrier_keeps_nursery_objects_alive_across_minors() {
        let mut h = Heap::with_nursery(256, 16);
        // A mature (pre-tenured) holder and a nursery cell it points to.
        let holder = h.try_alloc(CellKind::Array, 0, 20).expect("fits");
        let young = h.try_alloc(CellKind::Object, 2, 1).expect("fits");
        h.set(young, 0, from_i32(55));
        h.set_ref(holder, 0, young);
        assert_eq!(h.remset_len(), 1, "barrier remembered the mature slot");
        // Only the holder is a root; `young` is reachable solely through the
        // remembered set.
        let mut roots = [holder];
        let info = h.collect(&mut [&mut roots]);
        assert_eq!(info.kind, GcKind::Minor);
        let young2 = h.get(roots[0], 0);
        assert!(ref_index(young2) >= h.nursery_end, "promoted, not lost");
        assert_eq!(as_i32(h.get(young2, 0)), 55);
        assert_eq!(h.meta(young2), 2);
        assert_eq!(h.remset_len(), 0, "collection drains the remembered set");
    }

    #[test]
    fn barrier_on_nursery_target_or_scalar_is_a_no_op() {
        let mut h = Heap::with_nursery(256, 16);
        let a = h.try_alloc(CellKind::Object, 0, 2).expect("fits (nursery)");
        let b = h.try_alloc(CellKind::Object, 0, 1).expect("fits (nursery)");
        h.set_ref(a, 0, b); // nursery→nursery: no entry needed
        h.set_ref(a, 1, NULL); // null: no entry
        let mature = h.try_alloc(CellKind::Array, 0, 20).expect("fits (mature)");
        h.set_ref(mature, 0, from_i32(7)); // scalar: no entry
        assert_eq!(h.remset_len(), 0);
    }

    #[test]
    fn shared_and_cyclic_structures_survive_minor_then_major() {
        let mut h = Heap::with_nursery(512, 32);
        let shared = h.try_alloc(CellKind::Object, 0, 1).expect("fits");
        h.set(shared, 0, from_i32(77));
        let x = h.try_alloc(CellKind::Object, 0, 2).expect("fits");
        let y = h.try_alloc(CellKind::Object, 0, 2).expect("fits");
        h.set(x, 0, shared);
        h.set(y, 0, shared);
        h.set(x, 1, y); // cycle x -> y -> x
        h.set(y, 1, x);
        let mut roots = [x];
        let info = h.collect(&mut [&mut roots]);
        assert_eq!(info.kind, GcKind::Minor);
        let x2 = roots[0];
        let y2 = h.get(x2, 1);
        assert_eq!(h.get(y2, 1), x2, "cycle intact after promotion");
        assert_eq!(h.get(x2, 0), h.get(y2, 0), "sharing intact after promotion");
        // Now force a major and re-check.
        let mut roots = [x2];
        let info = h.collect_major(&mut [&mut roots]);
        assert_eq!(info.kind, GcKind::Major);
        let x3 = roots[0];
        let y3 = h.get(x3, 1);
        assert_eq!(h.get(y3, 1), x3, "cycle intact after the major");
        assert_eq!(h.get(x3, 0), h.get(y3, 0), "sharing intact after the major");
        assert_eq!(as_i32(h.get(h.get(x3, 0), 0)), 77);
    }

    #[test]
    fn roots_across_multiple_slices_all_rewrite() {
        let mut h = Heap::with_nursery(256, 32);
        let a = h.try_alloc(CellKind::Object, 0, 1).expect("fits");
        let b = h.try_alloc(CellKind::Object, 0, 1).expect("fits");
        let c = h.try_alloc(CellKind::Object, 0, 1).expect("fits");
        h.set(a, 0, from_i32(1));
        h.set(b, 0, from_i32(2));
        h.set(c, 0, from_i32(3));
        let mut slice1 = [a, NULL];
        let mut slice2 = [b];
        let mut slice3 = [from_i32(99), c];
        h.collect(&mut [&mut slice1, &mut slice2, &mut slice3]);
        assert_eq!(as_i32(h.get(slice1[0], 0)), 1);
        assert_eq!(slice1[1], NULL);
        assert_eq!(as_i32(h.get(slice2[0], 0)), 2);
        assert_eq!(as_i32(slice3[0]), 99, "scalar roots pass through");
        assert_eq!(as_i32(h.get(slice3[1], 0)), 3);
    }

    #[test]
    fn collect_grow_collect_sequences_stay_consistent() {
        let mut h = Heap::with_nursery(64, 8);
        let a = h.try_alloc(CellKind::Object, 0, 2).expect("fits");
        h.set(a, 0, from_i32(41));
        let mut roots = [a];
        h.collect(&mut [&mut roots]);
        h.grow(256);
        assert_eq!(as_i32(h.get(roots[0], 0)), 41, "grow preserves promoted data");
        // Allocate past the old capacity, then collect again (both kinds).
        let mut keep = roots[0];
        for _ in 0..20 {
            let n = match h.try_alloc(CellKind::Object, 0, 2) {
                Ok(n) => n,
                Err(NeedsGc) => {
                    let mut r = [keep];
                    h.collect(&mut [&mut r]);
                    keep = r[0];
                    h.try_alloc(CellKind::Object, 0, 2).expect("fits after gc")
                }
            };
            h.set_ref(n, 0, keep);
            keep = n;
        }
        let mut roots = [keep];
        h.collect_major(&mut [&mut roots]);
        // Walk the chain back to `a`.
        let mut cur = roots[0];
        let mut hops = 0;
        while is_ref(h.get(cur, 0)) && h.get(cur, 0) != NULL {
            cur = h.get(cur, 0);
            hops += 1;
            assert!(hops < 64, "chain should terminate");
        }
        assert_eq!(as_i32(h.get(cur, 0)), 41, "the whole chain survived");
    }

    #[test]
    fn nursery_size_one_still_works() {
        // A 1-slot nursery fits only zero-payload cells; everything else
        // pre-tenures. Both paths must stay correct.
        let mut h = Heap::with_nursery(128, 1);
        let empty = h.try_alloc(CellKind::Object, 5, 0).expect("fits the 1-slot nursery");
        assert!(ref_index(empty) < h.nursery_end);
        let obj = h.try_alloc(CellKind::Object, 0, 1).expect("pre-tenures");
        assert!(ref_index(obj) >= h.nursery_end);
        h.set(obj, 0, from_i32(13));
        // The nursery is full (1 slot used): next empty-cell alloc minors.
        assert_eq!(h.try_alloc(CellKind::Object, 0, 0), Err(NeedsGc));
        let mut roots = [empty, obj];
        let info = h.collect(&mut [&mut roots]);
        assert_eq!(info.kind, GcKind::Minor);
        assert_eq!(h.meta(roots[0]), 5, "empty cell promoted with its header");
        assert_eq!(as_i32(h.get(roots[1], 0)), 13);
        assert!(h.try_alloc(CellKind::Object, 0, 0).is_ok(), "nursery drained");
    }

    #[test]
    fn major_runs_when_mature_cannot_absorb_the_nursery() {
        let mut h = Heap::with_nursery(64, 16);
        // Fill the mature space so fewer than 16 slots remain.
        let mut last = NULL;
        while let Ok(r) = h.try_alloc(CellKind::Array, 0, 20) {
            last = r;
        }
        let mature_free = h.capacity() - h.nursery_capacity() - 1 - h.mature_used();
        assert!(mature_free < h.nursery_capacity());
        // Fill the nursery past the remaining mature headroom so a minor
        // could not promote the worst case.
        let mut roots = vec![last];
        while h.nursery_used() <= mature_free {
            let r = h.try_alloc(CellKind::Object, 0, 1).expect("nursery fits");
            h.set(r, 0, from_i32(3));
            roots.push(r);
        }
        let info = h.collect(&mut [&mut roots]);
        assert_eq!(info.kind, GcKind::Major, "no headroom for promotion forces a major");
        let nursery_root = *roots.last().expect("non-empty");
        assert_eq!(as_i32(h.get(nursery_root, 0)), 3, "nursery survivor rides the major");
        assert!(ref_index(nursery_root) >= h.nursery_end);
        assert_eq!(h.nursery_used(), 0);
    }

    #[test]
    fn semispace_mode_reports_majors_and_equal_copied_live() {
        let mut h = Heap::new(64);
        assert!(!h.is_generational());
        let a = h.try_alloc(CellKind::Object, 0, 2).expect("fits");
        let mut roots = [a];
        let info = h.collect(&mut [&mut roots]);
        assert_eq!(info.kind, GcKind::Major);
        assert_eq!(info.copied_slots, info.live_slots);
        assert_eq!(h.stats.minor_collections, 0);
    }
}
