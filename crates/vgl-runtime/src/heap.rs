//! A precise semispace (Cheney) garbage-collected heap for the bytecode VM.
//!
//! The paper (§5) describes Virgil's native runtime: "a precise semi-space
//! garbage collector (also written in Virgil)". This module is that substrate
//! in Rust: tagged 64-bit values, bump allocation, and a copying collector
//! driven by explicit root slices.
//!
//! ## Value tagging
//!
//! Every VM value is a `u64`:
//!
//! * `....0` — a scalar; the payload is the value shifted left by one.
//! * `....1` — a heap reference; the payload is a slot index shifted left.
//!
//! `null` is the reference with index 0, which is never a valid allocation.
//!
//! ## Heap cells
//!
//! A cell is `[header][payload...]`. The header packs kind (2 bits), meta
//! (30 bits: class id for objects, unused for others) and payload length in
//! slots (32 bits). During collection the header is replaced by a forwarding
//! reference.

use std::time::{Duration, Instant};

/// Tagged VM value.
pub type Word = u64;

/// Bytes per heap slot (tagged 64-bit words).
pub const SLOT_BYTES: usize = 8;

/// The tagged `null` reference.
pub const NULL: Word = 1;

/// Encodes a signed scalar.
pub fn scalar(v: i64) -> Word {
    ((v as u64) << 1) & !1
}

/// Decodes a signed scalar.
pub fn as_scalar(w: Word) -> i64 {
    (w as i64) >> 1
}

/// Encodes an `i32` (the common case).
pub fn from_i32(v: i32) -> Word {
    scalar(v as i64)
}

/// Decodes an `i32`.
pub fn as_i32(w: Word) -> i32 {
    as_scalar(w) as i32
}

/// True if `w` is a heap reference (including `null`).
pub fn is_ref(w: Word) -> bool {
    w & 1 == 1
}

/// Encodes a heap reference from a slot index.
pub fn make_ref(index: usize) -> Word {
    ((index as u64) << 1) | 1
}

/// Decodes a heap reference to a slot index.
pub fn ref_index(w: Word) -> usize {
    debug_assert!(is_ref(w));
    (w >> 1) as usize
}

/// What a heap cell holds.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CellKind {
    /// An object; meta = class id.
    Object,
    /// An array; meta unused; payload = elements (possibly several slots per
    /// source-level element after normalization).
    Array,
    /// A closure cell: `[func id][bound receiver]`.
    Closure,
}

impl CellKind {
    fn code(self) -> u64 {
        match self {
            CellKind::Object => 0,
            CellKind::Array => 1,
            CellKind::Closure => 2,
        }
    }

    fn from_code(c: u64) -> CellKind {
        match c {
            0 => CellKind::Object,
            1 => CellKind::Array,
            _ => CellKind::Closure,
        }
    }
}

const FORWARD_BIT: u64 = 1 << 63;

fn header(kind: CellKind, meta: u32, len: usize) -> u64 {
    debug_assert!(meta < (1 << 30));
    debug_assert!(len < (1 << 32));
    (kind.code() << 61) | ((meta as u64) << 32) | len as u64
}

/// Allocation and collection statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HeapStats {
    /// Objects allocated (explicit `new`).
    pub objects: usize,
    /// Arrays allocated.
    pub arrays: usize,
    /// Closure cells allocated.
    pub closures: usize,
    /// Tuple boxes allocated — **always zero after normalization**; the VM
    /// has no instruction that could allocate one (experiment E1).
    pub tuple_boxes: usize,
    /// Collections performed.
    pub collections: usize,
    /// Total slots copied by collections.
    pub copied_slots: usize,
    /// Total slots allocated over time.
    pub allocated_slots: usize,
}

/// What one collection did — returned by [`Heap::collect`] so callers
/// (the VM's profiler) can report per-GC events without re-deriving them
/// from counter deltas.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcInfo {
    /// Slots live (copied to to-space) after the collection.
    pub live_slots: usize,
    /// Slots copied by this collection (== `live_slots` for a semispace
    /// collector; kept separate for future generational collectors).
    pub copied_slots: usize,
    /// Semispace capacity at collection time.
    pub capacity_slots: usize,
}

/// One collection in the heap's telemetry timeline: when enabled, every
/// [`Heap::collect`] appends a record with its wall-clock pause and the
/// live/freed accounting needed to draw a heap-occupancy curve.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct GcRecord {
    /// Wall-clock duration of the collection (root rewrite + scan + copy).
    pub pause: Duration,
    /// Slots in use when the collection started.
    pub used_before: usize,
    /// Slots live (surviving) after the collection.
    pub live_slots: usize,
    /// Slots reclaimed (`used_before - live - reserved slot 0`).
    pub freed_slots: usize,
    /// Semispace capacity at collection time.
    pub capacity_slots: usize,
}

impl GcRecord {
    /// Post-collection occupancy in `[0, 1]` — one point on the
    /// heap-occupancy curve.
    pub fn occupancy(&self) -> f64 {
        self.live_slots as f64 / self.capacity_slots.max(1) as f64
    }

    /// Bytes surviving the collection.
    pub fn live_bytes(&self) -> usize {
        self.live_slots * SLOT_BYTES
    }

    /// Bytes reclaimed by the collection.
    pub fn freed_bytes(&self) -> usize {
        self.freed_slots * SLOT_BYTES
    }
}

/// A semispace heap.
#[derive(Debug)]
pub struct Heap {
    space: Vec<u64>,
    alt: Vec<u64>,
    top: usize,
    /// Statistics.
    pub stats: HeapStats,
    /// Per-collection telemetry; `None` (the default) costs nothing — not
    /// even a clock read — per collection.
    timeline: Option<Vec<GcRecord>>,
}

/// Returned when an allocation cannot proceed before a collection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NeedsGc;

impl Heap {
    /// Creates a heap with the given semispace capacity in slots.
    pub fn new(capacity_slots: usize) -> Heap {
        let cap = capacity_slots.max(16);
        Heap {
            space: vec![0; cap],
            alt: vec![0; cap],
            // Slot 0 is reserved so that index 0 can mean null.
            top: 1,
            stats: HeapStats::default(),
            timeline: None,
        }
    }

    /// Turns on per-collection telemetry; subsequent [`Heap::collect`] calls
    /// append a [`GcRecord`] each.
    pub fn enable_timeline(&mut self) {
        if self.timeline.is_none() {
            self.timeline = Some(Vec::new());
        }
    }

    /// The telemetry timeline so far; empty slice when disabled.
    pub fn timeline(&self) -> &[GcRecord] {
        self.timeline.as_deref().unwrap_or(&[])
    }

    /// Consumes the telemetry timeline, disabling further recording.
    pub fn take_timeline(&mut self) -> Vec<GcRecord> {
        self.timeline.take().unwrap_or_default()
    }

    /// Slots currently in use.
    pub fn used(&self) -> usize {
        self.top
    }

    /// Semispace capacity in slots.
    pub fn capacity(&self) -> usize {
        self.space.len()
    }

    /// Allocates a cell, returning its tagged reference, or [`NeedsGc`] when
    /// the space is full (caller collects with roots, then retries; if it
    /// still fails the caller should grow or abort).
    pub fn try_alloc(&mut self, kind: CellKind, meta: u32, len: usize) -> Result<Word, NeedsGc> {
        let need = len + 1;
        if self.top + need > self.space.len() {
            return Err(NeedsGc);
        }
        let at = self.top;
        self.space[at] = header(kind, meta, len);
        for i in 0..len {
            self.space[at + 1 + i] = 0; // zero scalar
        }
        self.top += need;
        self.stats.allocated_slots += need;
        match kind {
            CellKind::Object => self.stats.objects += 1,
            CellKind::Array => self.stats.arrays += 1,
            CellKind::Closure => self.stats.closures += 1,
        }
        Ok(make_ref(at))
    }

    /// Grows both semispaces (used when a collection cannot free enough).
    pub fn grow(&mut self, min_free: usize) {
        let want = (self.space.len() * 2).max(self.top + min_free + 1);
        self.space.resize(want, 0);
        self.alt.resize(want, 0);
    }

    /// The kind of the cell behind `r`.
    pub fn kind(&self, r: Word) -> CellKind {
        let h = self.space[ref_index(r)];
        CellKind::from_code((h >> 61) & 3)
    }

    /// The meta field (class id for objects).
    pub fn meta(&self, r: Word) -> u32 {
        let h = self.space[ref_index(r)];
        ((h >> 32) & 0x3FFF_FFFF) as u32
    }

    /// Payload length in slots.
    pub fn len(&self, r: Word) -> usize {
        let h = self.space[ref_index(r)];
        (h & 0xFFFF_FFFF) as usize
    }

    /// True if the heap has no live allocations (trivially false after any
    /// allocation until a full collection with no roots).
    pub fn is_empty(&self) -> bool {
        self.top <= 1
    }

    /// Reads payload slot `i` of `r`.
    pub fn get(&self, r: Word, i: usize) -> Word {
        debug_assert!(i < self.len(r), "heap read out of cell bounds");
        self.space[ref_index(r) + 1 + i]
    }

    /// Writes payload slot `i` of `r`.
    pub fn set(&mut self, r: Word, i: usize, v: Word) {
        debug_assert!(i < self.len(r), "heap write out of cell bounds");
        self.space[ref_index(r) + 1 + i] = v;
    }

    /// Cheney collection: copies everything reachable from `roots` into the
    /// other semispace and rewrites the roots in place. Returns what the
    /// collection did (live/copied slot counts) for observability.
    pub fn collect(&mut self, roots: &mut [&mut [Word]]) -> GcInfo {
        let pause_start = self.timeline.is_some().then(Instant::now);
        let used_before = self.top;
        self.stats.collections += 1;
        std::mem::swap(&mut self.space, &mut self.alt);
        // `alt` is now the from-space; `space` is the to-space.
        self.top = 1;
        for root_slice in roots.iter_mut() {
            for slot in root_slice.iter_mut() {
                *slot = self.forward(*slot);
            }
        }
        // Scan.
        let mut scan = 1;
        while scan < self.top {
            let h = self.space[scan];
            let kind = CellKind::from_code((h >> 61) & 3);
            let len = (h & 0xFFFF_FFFF) as usize;
            match kind {
                CellKind::Object | CellKind::Array => {
                    for i in 0..len {
                        let v = self.space[scan + 1 + i];
                        self.space[scan + 1 + i] = self.forward(v);
                    }
                }
                CellKind::Closure => {
                    // Slot 0 is the function id (scalar); slot 1 the receiver.
                    let v = self.space[scan + 2];
                    self.space[scan + 2] = self.forward(v);
                }
            }
            scan += len + 1;
        }
        let copied = self.top - 1;
        self.stats.copied_slots += copied;
        if let Some(timeline) = &mut self.timeline {
            timeline.push(GcRecord {
                pause: pause_start.map(|t| t.elapsed()).unwrap_or_default(),
                used_before,
                live_slots: copied,
                freed_slots: used_before.saturating_sub(self.top),
                capacity_slots: self.space.len(),
            });
        }
        GcInfo {
            live_slots: copied,
            copied_slots: copied,
            capacity_slots: self.space.len(),
        }
    }

    fn forward(&mut self, v: Word) -> Word {
        if !is_ref(v) || v == NULL {
            return v;
        }
        let old = ref_index(v);
        let h = self.alt[old];
        if h & FORWARD_BIT != 0 {
            return make_ref((h & !FORWARD_BIT) as usize);
        }
        let len = (h & 0xFFFF_FFFF) as usize;
        let at = self.top;
        debug_assert!(at + len < self.space.len(), "to-space overflow");
        self.space[at] = h;
        for i in 0..len {
            self.space[at + 1 + i] = self.alt[old + 1 + i];
        }
        self.top += len + 1;
        self.alt[old] = FORWARD_BIT | at as u64;
        make_ref(at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        for v in [0i64, 1, -1, i32::MAX as i64, i32::MIN as i64, 123456789] {
            assert_eq!(as_scalar(scalar(v)), v);
            assert!(!is_ref(scalar(v)));
        }
    }

    #[test]
    fn ref_roundtrip() {
        for i in [1usize, 2, 1000, 1 << 30] {
            assert_eq!(ref_index(make_ref(i)), i);
            assert!(is_ref(make_ref(i)));
        }
    }

    #[test]
    fn alloc_and_access() {
        let mut h = Heap::new(64);
        let r = h.try_alloc(CellKind::Object, 7, 3).expect("fits");
        assert_eq!(h.kind(r), CellKind::Object);
        assert_eq!(h.meta(r), 7);
        assert_eq!(h.len(r), 3);
        h.set(r, 0, from_i32(42));
        h.set(r, 2, from_i32(-1));
        assert_eq!(as_i32(h.get(r, 0)), 42);
        assert_eq!(as_i32(h.get(r, 2)), -1);
        assert_eq!(h.stats.objects, 1);
    }

    #[test]
    fn alloc_until_full_then_collect_frees_garbage() {
        let mut h = Heap::new(64);
        // One live object referencing another.
        let a = h.try_alloc(CellKind::Object, 0, 2).expect("fits");
        let b = h.try_alloc(CellKind::Object, 1, 1).expect("fits");
        h.set(a, 0, b);
        h.set(a, 1, from_i32(5));
        h.set(b, 0, from_i32(9));
        // Garbage.
        while h.try_alloc(CellKind::Array, 0, 4).is_ok() {}
        let mut roots = [a];
        h.collect(&mut [&mut roots]);
        let a2 = roots[0];
        assert_eq!(h.len(a2), 2);
        assert_eq!(as_i32(h.get(a2, 1)), 5);
        let b2 = h.get(a2, 0);
        assert!(is_ref(b2));
        assert_eq!(as_i32(h.get(b2, 0)), 9);
        assert_eq!(h.meta(b2), 1);
        // Everything else was garbage: only a (3 slots) + b (2 slots) live.
        assert_eq!(h.used(), 1 + 3 + 2);
        assert_eq!(h.stats.collections, 1);
    }

    #[test]
    fn shared_references_preserved_by_copying() {
        let mut h = Heap::new(64);
        let shared = h.try_alloc(CellKind::Object, 0, 1).expect("fits");
        h.set(shared, 0, from_i32(77));
        let x = h.try_alloc(CellKind::Object, 0, 1).expect("fits");
        let y = h.try_alloc(CellKind::Object, 0, 1).expect("fits");
        h.set(x, 0, shared);
        h.set(y, 0, shared);
        let mut roots = [x, y];
        h.collect(&mut [&mut roots]);
        let (x2, y2) = (roots[0], roots[1]);
        // The shared object was copied exactly once.
        assert_eq!(h.get(x2, 0), h.get(y2, 0));
        assert_eq!(as_i32(h.get(h.get(x2, 0), 0)), 77);
    }

    #[test]
    fn cycles_survive_collection() {
        let mut h = Heap::new(64);
        let a = h.try_alloc(CellKind::Object, 0, 1).expect("fits");
        let b = h.try_alloc(CellKind::Object, 0, 1).expect("fits");
        h.set(a, 0, b);
        h.set(b, 0, a);
        let mut roots = [a];
        h.collect(&mut [&mut roots]);
        let a2 = roots[0];
        let b2 = h.get(a2, 0);
        assert_eq!(h.get(b2, 0), a2);
    }

    #[test]
    fn closure_cells_trace_receiver_only() {
        let mut h = Heap::new(64);
        let recv = h.try_alloc(CellKind::Object, 0, 1).expect("fits");
        h.set(recv, 0, from_i32(5));
        let c = h.try_alloc(CellKind::Closure, 0, 2).expect("fits");
        h.set(c, 0, from_i32(12)); // func id — a scalar, must not be traced
        h.set(c, 1, recv);
        let mut roots = [c];
        h.collect(&mut [&mut roots]);
        let c2 = roots[0];
        assert_eq!(as_i32(h.get(c2, 0)), 12);
        let recv2 = h.get(c2, 1);
        assert_eq!(as_i32(h.get(recv2, 0)), 5);
        assert_eq!(h.stats.closures, 1);
    }

    #[test]
    fn null_is_not_forwarded() {
        let mut h = Heap::new(32);
        let a = h.try_alloc(CellKind::Object, 0, 1).expect("fits");
        h.set(a, 0, NULL);
        let mut roots = [a];
        h.collect(&mut [&mut roots]);
        assert_eq!(h.get(roots[0], 0), NULL);
    }

    #[test]
    fn needs_gc_when_full() {
        let mut h = Heap::new(16);
        let mut last = Ok(NULL);
        for _ in 0..10 {
            last = h.try_alloc(CellKind::Array, 0, 4);
        }
        assert_eq!(last, Err(NeedsGc));
        h.grow(64);
        assert!(h.try_alloc(CellKind::Array, 0, 4).is_ok());
    }

    #[test]
    fn timeline_is_off_by_default_and_records_when_enabled() {
        let mut h = Heap::new(64);
        let a = h.try_alloc(CellKind::Object, 0, 2).expect("fits");
        let mut roots = [a];
        h.collect(&mut [&mut roots]);
        assert!(h.timeline().is_empty(), "disabled timeline records nothing");

        h.enable_timeline();
        while h.try_alloc(CellKind::Array, 0, 4).is_ok() {}
        let used_before = h.used();
        h.collect(&mut [&mut roots]);
        let tl = h.timeline();
        assert_eq!(tl.len(), 1);
        let rec = tl[0];
        assert_eq!(rec.used_before, used_before);
        assert_eq!(rec.live_slots, 3, "only the rooted object survives");
        assert_eq!(rec.freed_slots, used_before - 1 - rec.live_slots);
        assert_eq!(rec.capacity_slots, h.capacity());
        assert!(rec.occupancy() > 0.0 && rec.occupancy() <= 1.0);
        assert_eq!(rec.live_bytes(), rec.live_slots * SLOT_BYTES);
        assert_eq!(rec.freed_bytes(), rec.freed_slots * SLOT_BYTES);

        let taken = h.take_timeline();
        assert_eq!(taken.len(), 1);
        h.collect(&mut [&mut roots]);
        assert!(h.timeline().is_empty(), "take_timeline disables recording");
    }

    #[test]
    fn grow_preserves_contents() {
        let mut h = Heap::new(16);
        let a = h.try_alloc(CellKind::Object, 3, 2).expect("fits");
        h.set(a, 0, from_i32(11));
        h.grow(1024);
        assert_eq!(as_i32(h.get(a, 0)), 11);
        assert_eq!(h.meta(a), 3);
    }
}
