//! Model-based property testing of the semispace collector: a mirror model
//! of cells in plain Rust is maintained alongside the heap; after arbitrary
//! sequences of allocations, pointer writes, root changes, and collections,
//! every live cell must be intact and identical to the model.
//!
//! Op sequences come from a seeded in-tree xorshift PRNG (deterministic,
//! dependency-free); failures print the seed. `VGL_PROP_CASES` overrides the
//! default 64 cases.

use std::collections::HashMap;
use vgl_runtime::heap::{self, CellKind, Heap, Word, NULL};

/// xorshift64* — deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn byte(&mut self) -> u8 {
        self.next() as u8
    }
}

/// One scripted operation.
#[derive(Clone, Debug)]
enum Op {
    /// Allocate a cell with `n` slots and make it root `r % roots`.
    Alloc { slots: u8, root: u8 },
    /// Write a scalar into slot `s` of root `r`.
    WriteScalar { root: u8, slot: u8, value: i32 },
    /// Write a pointer to root `b`'s cell into slot `s` of root `a`.
    WritePtr { a: u8, b: u8, slot: u8 },
    /// Drop root `r` (set to null).
    DropRoot(u8),
    /// Force a collection.
    Collect,
}

fn gen_op(rng: &mut Rng) -> Op {
    match rng.below(5) {
        0 => Op::Alloc { slots: 1 + rng.below(5) as u8, root: rng.byte() },
        1 => Op::WriteScalar {
            root: rng.byte(),
            slot: rng.byte(),
            value: rng.next() as i32,
        },
        2 => Op::WritePtr { a: rng.byte(), b: rng.byte(), slot: rng.byte() },
        3 => Op::DropRoot(rng.byte()),
        _ => Op::Collect,
    }
}

const NROOTS: usize = 8;

/// Model cell: id plus slot contents (scalar or model-id reference).
#[derive(Clone, Debug, PartialEq)]
enum MSlot {
    Scalar(i64),
    Ref(usize),
    Null,
}

#[derive(Clone, Debug)]
struct MCell {
    slots: Vec<MSlot>,
}

#[test]
fn heap_matches_model() {
    let cases: u64 = std::env::var("VGL_PROP_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    for case in 0..cases {
        let seed = 0x4EA9_0000 + case;
        let mut rng = Rng::new(seed);
        let nops = 1 + rng.below(59);
        let ops: Vec<Op> = (0..nops).map(|_| gen_op(&mut rng)).collect();
        run_case(seed, ops);
    }
}

fn run_case(seed: u64, ops: Vec<Op>) {
    let mut heap = Heap::new(64); // small: forces frequent collections
    let mut roots: Vec<Word> = vec![NULL; NROOTS];
    // Model: root -> model id, model id -> cell.
    let mut mroots: Vec<Option<usize>> = vec![None; NROOTS];
    let mut mcells: HashMap<usize, MCell> = HashMap::new();
    let mut next_id = 0usize;
    // Each heap cell's slot 0 carries its model id so we can re-associate
    // after the collector moves cells... except we need all slots for the
    // test. Instead track id via a parallel map from root index, and
    // verify reachable structure by walking both in lockstep.

    let collect = |heap: &mut Heap, roots: &mut Vec<Word>| {
        heap.collect(&mut [&mut roots[..]]);
    };

    for op in ops {
        match op {
            Op::Alloc { slots, root } => {
                let r = (root as usize) % NROOTS;
                let n = slots as usize;
                let cell = match heap.try_alloc(CellKind::Object, 0, n) {
                    Ok(c) => c,
                    Err(_) => {
                        collect(&mut heap, &mut roots);
                        match heap.try_alloc(CellKind::Object, 0, n) {
                            Ok(c) => c,
                            Err(_) => {
                                heap.grow(n + 2);
                                heap.try_alloc(CellKind::Object, 0, n).expect("after grow")
                            }
                        }
                    }
                };
                // New cells are zeroed scalars in the heap; mirror that.
                roots[r] = cell;
                let id = next_id;
                next_id += 1;
                mroots[r] = Some(id);
                mcells.insert(id, MCell { slots: vec![MSlot::Scalar(0); n] });
            }
            Op::WriteScalar { root, slot, value } => {
                let r = (root as usize) % NROOTS;
                if roots[r] == NULL {
                    continue;
                }
                let id = mroots[r].expect("model root");
                let n = mcells[&id].slots.len();
                if n == 0 {
                    continue;
                }
                let s = (slot as usize) % n;
                heap.set(roots[r], s, heap::scalar(value as i64));
                mcells.get_mut(&id).expect("cell").slots[s] = MSlot::Scalar(value as i64);
            }
            Op::WritePtr { a, b, slot } => {
                let (ra, rb) = ((a as usize) % NROOTS, (b as usize) % NROOTS);
                if roots[ra] == NULL {
                    continue;
                }
                let ida = mroots[ra].expect("model root");
                let n = mcells[&ida].slots.len();
                if n == 0 {
                    continue;
                }
                let s = (slot as usize) % n;
                if roots[rb] == NULL {
                    heap.set(roots[ra], s, NULL);
                    mcells.get_mut(&ida).expect("cell").slots[s] = MSlot::Null;
                } else {
                    let idb = mroots[rb].expect("model root");
                    heap.set(roots[ra], s, roots[rb]);
                    mcells.get_mut(&ida).expect("cell").slots[s] = MSlot::Ref(idb);
                }
            }
            Op::DropRoot(r) => {
                let r = (r as usize) % NROOTS;
                roots[r] = NULL;
                mroots[r] = None;
            }
            Op::Collect => collect(&mut heap, &mut roots),
        }

        // Verify: walk every root's reachable structure in lockstep with
        // the model (depth-limited; the object graph can be cyclic).
        fn verify(
            heap: &Heap,
            w: Word,
            id: usize,
            mcells: &HashMap<usize, MCell>,
            root_words: &HashMap<usize, Word>,
            depth: usize,
        ) -> Result<(), String> {
            if depth == 0 {
                return Ok(());
            }
            let mc = mcells.get(&id).ok_or("missing model cell")?;
            if heap.len(w) != mc.slots.len() {
                return Err(format!("len mismatch: {} vs {}", heap.len(w), mc.slots.len()));
            }
            for (i, ms) in mc.slots.iter().enumerate() {
                let hv = heap.get(w, i);
                match ms {
                    MSlot::Scalar(v) => {
                        if heap::is_ref(hv) || heap::as_scalar(hv) != *v {
                            return Err(format!("slot {i}: scalar {v} vs {hv:#x}"));
                        }
                    }
                    MSlot::Null => {
                        if hv != NULL {
                            return Err(format!("slot {i}: expected null"));
                        }
                    }
                    MSlot::Ref(rid) => {
                        if !heap::is_ref(hv) || hv == NULL {
                            return Err(format!("slot {i}: expected ref"));
                        }
                        // If the referee is still rooted, its root word
                        // must match (copying preserved sharing).
                        if let Some(&expected) = root_words.get(rid) {
                            if expected != hv {
                                return Err(format!("slot {i}: sharing broken"));
                            }
                        }
                        verify(heap, hv, *rid, mcells, root_words, depth - 1)?;
                    }
                }
            }
            Ok(())
        }
        let root_words: HashMap<usize, Word> = mroots
            .iter()
            .enumerate()
            .filter_map(|(i, id)| id.map(|id| (id, roots[i])))
            .collect();
        for (i, id) in mroots.iter().enumerate() {
            if let Some(id) = id {
                assert!(roots[i] != NULL, "seed {seed}: root {i} unexpectedly null");
                if let Err(e) = verify(&heap, roots[i], *id, &mcells, &root_words, 6) {
                    panic!("seed {seed}: verification failed at root {i}: {e}");
                }
            }
        }
    }
}
