//! Typed method bodies: statements, expressions, and operators.
//!
//! The IR is a typed tree. It is rich enough to execute directly (the
//! reference interpreter walks it, passing type arguments at runtime — paper
//! §4.3) and regular enough to rewrite (monomorphization substitutes type
//! arguments; normalization eliminates every tuple — §4.2).

use crate::module::{GlobalId, LocalId, MethodId};
use vgl_types::{ClassId, Type};

/// A method body: a statement block. Local slots live in the owning
/// [`crate::module::Method`].
#[derive(Clone, Debug, Default, Hash)]
pub struct Body {
    /// The statements.
    pub stmts: Vec<Stmt>,
}

/// A typed statement.
#[derive(Clone, Debug, Hash)]
pub enum Stmt {
    /// Evaluate for effect.
    Expr(Expr),
    /// Declare (and optionally initialize) a local slot.
    Local(LocalId, Option<Expr>),
    /// Conditional.
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// Loop. `for` is lowered to `While` plus init/update statements.
    While(Expr, Vec<Stmt>),
    /// Return from the method; `None` returns the void value.
    Return(Option<Expr>),
    /// Exit the innermost loop.
    Break,
    /// Continue the innermost loop.
    Continue,
    /// A nested scope.
    Block(Vec<Stmt>),
}

/// A typed expression.
#[derive(Clone, Debug, Hash)]
pub struct Expr {
    /// The shape.
    pub kind: ExprKind,
    /// The static type.
    pub ty: Type,
}

impl Expr {
    /// Creates an expression.
    pub fn new(kind: ExprKind, ty: Type) -> Expr {
        Expr { kind, ty }
    }
}

/// Identifies a field as (class that declares it, absolute slot index).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct FieldRef {
    /// The class that declares the field.
    pub class: ClassId,
    /// Absolute slot in the object layout.
    pub slot: usize,
}

/// Primitive and universal operators, usable both applied ([`ExprKind::Apply`])
/// and as first-class values ([`ExprKind::OpClosure`]) — paper §2.2: "all of
/// the basic primitive operators can be used as first-class functions".
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Oper {
    /// `int.+` (wrapping 32-bit).
    IntAdd,
    /// `int.-`
    IntSub,
    /// `int.*`
    IntMul,
    /// `int./` — traps on division by zero.
    IntDiv,
    /// `int.%` — traps on division by zero.
    IntMod,
    /// `int.<`
    IntLt,
    /// `int.<=`
    IntLe,
    /// `int.>`
    IntGt,
    /// `int.>=`
    IntGe,
    /// `int.&`
    IntAnd,
    /// `int.|`
    IntOr,
    /// `int.^`
    IntXor,
    /// `int.<<` — shift amounts outside 0..31 produce 0.
    IntShl,
    /// `int.>>` — arithmetic shift; amounts outside 0..31 produce 0/-1.
    IntShr,
    /// Unary `-`.
    IntNeg,
    /// `byte.<`
    ByteLt,
    /// `byte.<=`
    ByteLe,
    /// `byte.>`
    ByteGt,
    /// `byte.>=`
    ByteGe,
    /// `!` on bool.
    BoolNot,
    /// Universal equality `T.==` at the given type (recursive on tuples,
    /// reference equality on objects/arrays, method+receiver equality on
    /// closures).
    Eq(Type),
    /// Universal inequality `T.!=`.
    Ne(Type),
    /// Type cast `to.!<from>`: `from -> to`; traps with `TypeCheckException`.
    Cast {
        /// Source type.
        from: Type,
        /// Target type.
        to: Type,
    },
    /// Type query `to.?<from>`: `from -> bool`.
    Query {
        /// Source type.
        from: Type,
        /// Target type.
        to: Type,
    },
}

/// Host intrinsics exposed through the built-in `System` component.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Builtin {
    /// `System.puts(s: string)`.
    Puts,
    /// `System.puti(i: int)`.
    Puti,
    /// `System.putb(b: bool)`.
    Putb,
    /// `System.putc(c: byte)`.
    Putc,
    /// `System.ln()`.
    Ln,
    /// `System.ticks() -> int` — a monotonic tick counter.
    Ticks,
    /// `System.error(msg: string)` — aborts with an exception.
    Error,
}

/// The shape of an [`Expr`].
#[derive(Clone, Debug, Hash)]
pub enum ExprKind {
    /// 32-bit integer literal.
    Int(i32),
    /// Byte literal.
    Byte(u8),
    /// Boolean literal.
    Bool(bool),
    /// The single void value `()`.
    Unit,
    /// `null`.
    Null,
    /// String literal (an `Array<byte>` value, freshly allocated).
    String(Vec<u8>),
    /// Read a local slot.
    Local(LocalId),
    /// Read a component variable.
    Global(GlobalId),
    /// Write a local slot; evaluates to the assigned value.
    LocalSet(LocalId, Box<Expr>),
    /// Write a component variable; evaluates to the assigned value.
    GlobalSet(GlobalId, Box<Expr>),
    /// Construct a tuple value.
    Tuple(Vec<Expr>),
    /// Project element `index` out of a tuple.
    TupleIndex(Box<Expr>, u32),
    /// `[a, b, c]` array literal.
    ArrayLit(Vec<Expr>),
    /// `Array<T>.new(len)` — zero/default-initialized.
    ArrayNew(Box<Expr>),
    /// `a.length`.
    ArrayLen(Box<Expr>),
    /// `a[i]` — bounds-checked.
    ArrayGet(Box<Expr>, Box<Expr>),
    /// `a[i] = v` — bounds-checked; evaluates to `v`.
    ArraySet(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Read a field (null-checked).
    FieldGet(Box<Expr>, FieldRef),
    /// Write a field (null-checked); evaluates to the value.
    FieldSet(Box<Expr>, FieldRef, Box<Expr>),
    /// Allocate an object of `class<type_args>` and run its constructor with
    /// the given arguments.
    New {
        /// The class to instantiate.
        class: ClassId,
        /// Type arguments for the class's parameters.
        type_args: Vec<Type>,
        /// Constructor arguments as written.
        args: Vec<Expr>,
    },
    /// Direct call: component methods, private methods, constructors (via
    /// `New`), and statically-bound instance calls. `type_args` instantiate
    /// owner-class parameters followed by method parameters.
    CallStatic {
        /// Callee.
        method: MethodId,
        /// Full type-argument list (owner's then method's own).
        type_args: Vec<Type>,
        /// Arguments (including receiver for instance methods).
        args: Vec<Expr>,
    },
    /// Virtual call through the receiver's dynamic class.
    CallVirtual {
        /// The declared method (vtable slot owner).
        method: MethodId,
        /// Full type-argument list (owner's then method's own).
        type_args: Vec<Type>,
        /// Receiver.
        recv: Box<Expr>,
        /// Remaining arguments.
        args: Vec<Expr>,
    },
    /// Invoke a first-class function value.
    CallClosure {
        /// The function value.
        func: Box<Expr>,
        /// Arguments as written (the §4.1 tuple/scalar calling-convention
        /// ambiguity lives exactly here until normalization removes it).
        args: Vec<Expr>,
    },
    /// `a.m` — a closure binding `recv` to method `m` (dispatch resolved at
    /// bind time from the receiver's dynamic class).
    BindMethod {
        /// The declared method.
        method: MethodId,
        /// Full type-argument list.
        type_args: Vec<Type>,
        /// The receiver to close over.
        recv: Box<Expr>,
    },
    /// `A.m` — the unbound form: a function taking the receiver first
    /// (paper listing (b3)); also component-method references.
    FuncRef {
        /// The method.
        method: MethodId,
        /// Full type-argument list.
        type_args: Vec<Type>,
    },
    /// `A.new` as a first-class function (paper listing (b7)).
    CtorRef {
        /// The class.
        class: ClassId,
        /// Class type arguments.
        type_args: Vec<Type>,
    },
    /// `Array<T>.new` as a function `int -> Array<T>`.
    ArrayNewRef {
        /// Element type.
        elem: Type,
    },
    /// Apply a primitive/universal operator directly.
    Apply(Oper, Vec<Expr>),
    /// A primitive/universal operator as a first-class function value
    /// (paper listings (b8-b15)).
    OpClosure(Oper),
    /// Call a host intrinsic.
    CallBuiltin(Builtin, Vec<Expr>),
    /// A host intrinsic as a first-class function value.
    BuiltinRef(Builtin),
    /// Unconditionally raises an exception (inserted by the optimizer and
    /// normalizer for statically-failing casts).
    Trap(crate::ops::Exception),
    /// Evaluates to its operand, trapping with `NullCheckException` when it
    /// is null (inserted by devirtualization to preserve the virtual call's
    /// receiver check).
    CheckNull(Box<Expr>),
    /// Short-circuit `&&`.
    And(Box<Expr>, Box<Expr>),
    /// Short-circuit `||`.
    Or(Box<Expr>, Box<Expr>),
    /// `c ? a : b`.
    Ternary {
        /// Condition.
        cond: Box<Expr>,
        /// Value if true.
        then: Box<Expr>,
        /// Value if false.
        els: Box<Expr>,
    },
    /// Evaluate `value`, bind it to `local`, then evaluate `body` (compiler
    /// temporary; used for argument adaptation and normalization).
    Let {
        /// The temporary slot.
        local: LocalId,
        /// Bound value.
        value: Box<Expr>,
        /// Expression evaluated with the binding in scope.
        body: Box<Expr>,
    },
}

impl ExprKind {
    /// A conservative per-node cost used by size metrics.
    pub fn is_leaf(&self) -> bool {
        matches!(
            self,
            ExprKind::Int(_)
                | ExprKind::Byte(_)
                | ExprKind::Bool(_)
                | ExprKind::Unit
                | ExprKind::Null
                | ExprKind::Local(_)
                | ExprKind::Global(_)
                | ExprKind::OpClosure(_)
                | ExprKind::FuncRef { .. }
                | ExprKind::CtorRef { .. }
                | ExprKind::ArrayNewRef { .. }
                | ExprKind::BuiltinRef(_)
        )
    }
}
