//! Scalar operator semantics, shared verbatim by the interpreter, the VM,
//! and the optimizer's constant folder — so all three always agree.

/// A runtime exception, as defined by the language.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Exception {
    /// Dereference of `null`.
    NullCheck,
    /// Array index out of bounds.
    BoundsCheck,
    /// Failed type cast.
    TypeCheck,
    /// Integer division or modulus by zero.
    DivideByZero,
    /// Call of an abstract (unimplemented) method.
    Unimplemented,
    /// `System.error(...)` was called.
    UserError,
}

impl std::fmt::Display for Exception {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Exception::NullCheck => "!NullCheckException",
            Exception::BoundsCheck => "!BoundsCheckException",
            Exception::TypeCheck => "!TypeCheckException",
            Exception::DivideByZero => "!DivideByZeroException",
            Exception::Unimplemented => "!UnimplementedException",
            Exception::UserError => "!Error",
        };
        f.write_str(name)
    }
}

/// `int.+` — wrapping 32-bit addition.
pub fn int_add(a: i32, b: i32) -> i32 {
    a.wrapping_add(b)
}

/// `int.-` — wrapping 32-bit subtraction.
pub fn int_sub(a: i32, b: i32) -> i32 {
    a.wrapping_sub(b)
}

/// `int.*` — wrapping 32-bit multiplication.
pub fn int_mul(a: i32, b: i32) -> i32 {
    a.wrapping_mul(b)
}

/// `int./` — traps on zero divisor; `MIN / -1` wraps.
pub fn int_div(a: i32, b: i32) -> Result<i32, Exception> {
    if b == 0 {
        Err(Exception::DivideByZero)
    } else {
        Ok(a.wrapping_div(b))
    }
}

/// `int.%` — traps on zero divisor; `MIN % -1` is 0.
pub fn int_mod(a: i32, b: i32) -> Result<i32, Exception> {
    if b == 0 {
        Err(Exception::DivideByZero)
    } else {
        Ok(a.wrapping_rem(b))
    }
}

/// `int.<<` — shift amounts outside `0..=31` produce 0.
pub fn int_shl(a: i32, b: i32) -> i32 {
    if (0..32).contains(&b) {
        ((a as u32) << b) as i32
    } else {
        0
    }
}

/// `int.>>` — arithmetic shift; amounts outside `0..=31` produce the sign
/// extension (0 or -1).
pub fn int_shr(a: i32, b: i32) -> i32 {
    if (0..32).contains(&b) {
        a >> b
    } else if a < 0 {
        -1
    } else {
        0
    }
}

/// `byte.!(i: int)` — checked narrowing; traps when out of range.
pub fn int_to_byte(i: i32) -> Result<u8, Exception> {
    u8::try_from(i).map_err(|_| Exception::TypeCheck)
}

/// `byte.?(i: int)` — representability query.
pub fn int_is_byte(i: i32) -> bool {
    u8::try_from(i).is_ok()
}

/// `int.!(b: byte)` — widening; always succeeds.
pub fn byte_to_int(b: u8) -> i32 {
    b as i32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_arith_wraps() {
        assert_eq!(int_add(i32::MAX, 1), i32::MIN);
        assert_eq!(int_sub(i32::MIN, 1), i32::MAX);
        assert_eq!(int_mul(1 << 30, 4), 0);
    }

    #[test]
    fn div_by_zero_traps() {
        assert_eq!(int_div(1, 0), Err(Exception::DivideByZero));
        assert_eq!(int_mod(1, 0), Err(Exception::DivideByZero));
        assert_eq!(int_div(7, 2), Ok(3));
        assert_eq!(int_mod(7, 2), Ok(1));
        assert_eq!(int_div(-7, 2), Ok(-3));
        assert_eq!(int_mod(-7, 2), Ok(-1));
    }

    #[test]
    fn div_min_by_minus_one_wraps() {
        assert_eq!(int_div(i32::MIN, -1), Ok(i32::MIN));
        assert_eq!(int_mod(i32::MIN, -1), Ok(0));
    }

    #[test]
    fn shifts_out_of_range() {
        assert_eq!(int_shl(1, 32), 0);
        assert_eq!(int_shl(1, -1), 0);
        assert_eq!(int_shr(-8, 64), -1);
        assert_eq!(int_shr(8, 64), 0);
        assert_eq!(int_shl(1, 4), 16);
        assert_eq!(int_shr(-8, 1), -4);
    }

    #[test]
    fn byte_conversions() {
        assert_eq!(int_to_byte(255), Ok(255));
        assert_eq!(int_to_byte(256), Err(Exception::TypeCheck));
        assert_eq!(int_to_byte(-1), Err(Exception::TypeCheck));
        assert!(int_is_byte(0));
        assert!(!int_is_byte(-1));
        assert_eq!(byte_to_int(200), 200);
    }

    #[test]
    fn exception_display() {
        assert_eq!(Exception::NullCheck.to_string(), "!NullCheckException");
        assert_eq!(Exception::TypeCheck.to_string(), "!TypeCheckException");
    }
}
