//! The typed program representation: classes, methods, globals.
//!
//! A [`Module`] is the output of semantic analysis and the unit every later
//! stage operates on: the interpreter executes it directly (with runtime type
//! arguments), and the compiler passes (reachability, monomorphization,
//! normalization, optimization) rewrite it.

use crate::body::{Body, Expr};
use vgl_types::{ClassId, Hierarchy, Type, TypeStore, TypeVarId};

/// Identifies a method in [`Module::methods`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct MethodId(pub u32);

impl MethodId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifies a top-level (component) variable in [`Module::globals`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct GlobalId(pub u32);

impl GlobalId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifies a local slot within a method body (parameters first).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct LocalId(pub u32);

impl LocalId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A whole typed program.
#[derive(Debug)]
pub struct Module {
    /// The type interner.
    pub store: TypeStore,
    /// The class hierarchy (parallel to `classes`).
    pub hier: Hierarchy,
    /// All classes, indexed by [`ClassId`].
    pub classes: Vec<Class>,
    /// All methods (class methods, constructors, and component methods).
    pub methods: Vec<Method>,
    /// Component variables, initialized in declaration order before `main`.
    pub globals: Vec<Global>,
    /// The entry point, if the program declares `def main`.
    pub main: Option<MethodId>,
}

impl Module {
    /// The class with id `c`.
    pub fn class(&self, c: ClassId) -> &Class {
        &self.classes[c.index()]
    }

    /// The method with id `m`.
    pub fn method(&self, m: MethodId) -> &Method {
        &self.methods[m.index()]
    }

    /// The global with id `g`.
    pub fn global(&self, g: GlobalId) -> &Global {
        &self.globals[g.index()]
    }

    /// Total number of fields in objects of class `c`, including inherited
    /// fields. Field slot layout is: all parent slots first, then own fields.
    pub fn object_size(&self, c: ClassId) -> usize {
        let cl = self.class(c);
        cl.first_field_slot + cl.fields.len()
    }

    /// Resolves a virtual dispatch: the implementation of `decl` (a virtual
    /// method declared in some superclass of `dynamic_class`) for objects
    /// whose dynamic class is `dynamic_class`.
    pub fn resolve_virtual(&self, dynamic_class: ClassId, decl: MethodId) -> MethodId {
        match self.method(decl).vtable_index {
            Some(i) => self.class(dynamic_class).vtable[i],
            None => decl, // private or non-virtual: static binding
        }
    }

    /// Finds a class by name (for tests and tools).
    pub fn class_by_name(&self, name: &str) -> Option<ClassId> {
        self.classes
            .iter()
            .position(|c| c.name == name)
            .map(|i| ClassId(i as u32))
    }

    /// Finds a component (top-level) method by name.
    pub fn method_by_name(&self, name: &str) -> Option<MethodId> {
        self.methods
            .iter()
            .position(|m| m.owner.is_none() && m.name == name)
            .map(|i| MethodId(i as u32))
    }

    /// Finds a method of a class by name.
    pub fn class_method_by_name(&self, c: ClassId, name: &str) -> Option<MethodId> {
        let mut cur = Some(c);
        while let Some(cl) = cur {
            for &m in &self.class(cl).methods {
                if self.method(m).name == name {
                    return Some(m);
                }
            }
            cur = self.class(cl).parent;
        }
        None
    }

    /// Finds a global by name.
    pub fn global_by_name(&self, name: &str) -> Option<GlobalId> {
        self.globals
            .iter()
            .position(|g| g.name == name)
            .map(|i| GlobalId(i as u32))
    }

    /// The concatenated type parameters a call site must instantiate for
    /// `m`: the owner class's parameters followed by the method's own.
    pub fn all_type_params(&self, m: MethodId) -> Vec<TypeVarId> {
        let method = self.method(m);
        let mut out = Vec::new();
        if let Some(c) = method.owner {
            out.extend(self.class(c).type_params.iter().copied());
        }
        out.extend(method.type_params.iter().copied());
        out
    }
}

/// A class definition.
#[derive(Clone, Debug, Hash)]
pub struct Class {
    /// Class name.
    pub name: String,
    /// Declared type parameters.
    pub type_params: Vec<TypeVarId>,
    /// Parent class, if any.
    pub parent: Option<ClassId>,
    /// Type arguments supplied to the parent (in terms of own parameters).
    pub parent_args: Vec<Type>,
    /// Own (non-inherited) fields.
    pub fields: Vec<Field>,
    /// Slot index of the first own field (== number of inherited fields).
    pub first_field_slot: usize,
    /// Own methods (excluding the constructor).
    pub methods: Vec<MethodId>,
    /// The constructor, if the class declares or inherits the need for one.
    pub ctor: Option<MethodId>,
    /// Virtual dispatch table: implementation for each virtual slot.
    pub vtable: Vec<MethodId>,
    /// True if the class has (or inherits) unimplemented abstract methods.
    pub is_abstract: bool,
}

/// A field of a class.
#[derive(Clone, Debug, Hash)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// `true` for `var`, `false` for `def`.
    pub mutable: bool,
    /// Declared type (may mention the class's type parameters).
    pub ty: Type,
    /// Absolute slot index in the object layout.
    pub slot: usize,
    /// Initializer expression evaluated during construction, if any.
    pub init: Option<Expr>,
}

/// How a method may be invoked.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum MethodKind {
    /// An ordinary method (virtual when owned by a class and not private).
    Normal,
    /// A constructor.
    Ctor,
    /// An abstract method (no body; must be overridden).
    Abstract,
}

/// A method definition.
#[derive(Clone, Debug, Hash)]
pub struct Method {
    /// Method name (`new` for constructors).
    pub name: String,
    /// Owning class; `None` for component (top-level) methods.
    pub owner: Option<ClassId>,
    /// `private` methods are statically bound and externally invisible.
    pub is_private: bool,
    /// What kind of method this is.
    pub kind: MethodKind,
    /// The method's own type parameters (not including the owner's).
    pub type_params: Vec<TypeVarId>,
    /// Number of parameters (including the receiver for instance methods,
    /// which is local slot 0 named `this`).
    pub param_count: usize,
    /// All local slots; the first `param_count` are parameters.
    pub locals: Vec<Local>,
    /// Return type.
    pub ret: Type,
    /// The body; `None` for abstract methods.
    pub body: Option<Body>,
    /// Virtual slot index, if dispatched through the vtable.
    pub vtable_index: Option<usize>,
}

impl Method {
    /// The declared type of the method as a function, seen from outside:
    /// parameter tuple (excluding receiver) → return type.
    pub fn func_type(&self, store: &mut TypeStore, skip_receiver: bool) -> Type {
        let start = if skip_receiver { 1 } else { 0 };
        let params: Vec<Type> = self.locals[start..self.param_count]
            .iter()
            .map(|l| l.ty)
            .collect();
        let p = store.tuple(params);
        store.function(p, self.ret)
    }

    /// Types of the value parameters (including receiver if present).
    pub fn param_types(&self) -> Vec<Type> {
        self.locals[..self.param_count].iter().map(|l| l.ty).collect()
    }
}

/// A local variable or parameter slot.
#[derive(Clone, Debug, Hash)]
pub struct Local {
    /// Name (for diagnostics and disassembly).
    pub name: String,
    /// Static type.
    pub ty: Type,
    /// `true` for `var`, `false` for `def` and parameters.
    pub mutable: bool,
}

/// A component (top-level) variable.
#[derive(Clone, Debug, Hash)]
pub struct Global {
    /// Name.
    pub name: String,
    /// `true` for `var`.
    pub mutable: bool,
    /// Static type.
    pub ty: Type,
    /// Initializer, run before `main` in declaration order.
    pub init: Option<Expr>,
    /// Temporary slots used while evaluating the initializer.
    pub locals: Vec<Local>,
}
