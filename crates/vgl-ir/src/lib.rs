//! # vgl-ir
//!
//! The typed intermediate representation of virgil-rs: a fully-resolved,
//! type-annotated program ([`Module`]) with tree-structured method bodies.
//!
//! The IR is designed to support both of the paper's execution strategies:
//!
//! * the **interpreter** executes it directly, passing type arguments as
//!   invisible runtime values and boxing tuples (paper §4.3's description of
//!   the Virgil interpreter), and
//! * the **compiler** rewrites it — monomorphization substitutes type
//!   arguments away, normalization flattens every tuple to scalars — and then
//!   lowers to bytecode.
//!
//! [`ops`] holds the scalar operator semantics shared by every execution
//! engine; [`validate`] checks the two pipeline invariants (monomorphic,
//! tuple-free); [`metrics`] measures code size for the expansion experiment.

#![warn(missing_docs)]

pub mod body;
pub mod metrics;
pub mod module;
pub mod ops;
pub mod validate;
pub mod visit;

pub use body::{Body, Builtin, Expr, ExprKind, FieldRef, Oper, Stmt};
pub use metrics::{measure, method_cost, ModuleSize};
pub use module::{Class, Field, Global, GlobalId, Local, LocalId, Method, MethodId, MethodKind, Module};
pub use ops::Exception;
pub use validate::{check_monomorphic, check_normalized, check_tuple_free, Violation};
