//! Code-size metrics over modules, used by the monomorphization expansion
//! experiment (E4) and by `CompileStats` in the facade crate.

use crate::module::Module;
use crate::visit::count_exprs;

/// Size metrics for one module snapshot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ModuleSize {
    /// Number of method definitions with bodies.
    pub methods: usize,
    /// Number of class definitions.
    pub classes: usize,
    /// Total IR expression nodes across all bodies and initializers.
    pub expr_nodes: usize,
    /// Total local slots across all methods.
    pub locals: usize,
}

impl ModuleSize {
    /// Expansion ratio of `self` relative to `base` in expression nodes.
    pub fn expansion_over(&self, base: &ModuleSize) -> f64 {
        if base.expr_nodes == 0 {
            return 1.0;
        }
        self.expr_nodes as f64 / base.expr_nodes as f64
    }
}

impl std::fmt::Display for ModuleSize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} classes, {} methods, {} IR nodes, {} locals",
            self.classes, self.methods, self.expr_nodes, self.locals
        )
    }
}

/// Measures a module.
pub fn measure(module: &Module) -> ModuleSize {
    let mut size = ModuleSize {
        classes: module.classes.len(),
        ..ModuleSize::default()
    };
    for m in &module.methods {
        if let Some(body) = &m.body {
            size.methods += 1;
            size.expr_nodes += count_exprs(body);
            size.locals += m.locals.len();
        }
    }
    for g in &module.globals {
        if let Some(init) = &g.init {
            let body = crate::body::Body {
                stmts: vec![crate::body::Stmt::Expr(init.clone())],
            };
            size.expr_nodes += count_exprs(&body);
        }
    }
    for c in &module.classes {
        for fd in &c.fields {
            if let Some(init) = &fd.init {
                let body = crate::body::Body {
                    stmts: vec![crate::body::Stmt::Expr(init.clone())],
                };
                size.expr_nodes += count_exprs(&body);
            }
        }
    }
    size
}
