//! Code-size metrics over modules, used by the monomorphization expansion
//! experiment (E4) and by `CompileStats` in the facade crate.

use crate::module::Module;
use crate::visit::count_exprs;

/// Size metrics for one module snapshot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ModuleSize {
    /// Number of method definitions with bodies.
    pub methods: usize,
    /// Number of class definitions.
    pub classes: usize,
    /// Total IR expression nodes across all bodies and initializers.
    pub expr_nodes: usize,
    /// Total local slots across all methods.
    pub locals: usize,
}

impl ModuleSize {
    /// Expansion ratio of `self` relative to `base` in expression nodes.
    pub fn expansion_over(&self, base: &ModuleSize) -> f64 {
        if base.expr_nodes == 0 {
            return 1.0;
        }
        self.expr_nodes as f64 / base.expr_nodes as f64
    }
}

impl std::fmt::Display for ModuleSize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} classes, {} methods, {} IR nodes, {} locals",
            self.classes, self.methods, self.expr_nodes, self.locals
        )
    }
}

/// Relative per-pass cost weights for the cost-chunked back-end scheduler.
///
/// The absolute scale is meaningless; only ratios matter, and they only
/// matter when one chunk plan covers work from *different* passes (the
/// joined lower+fuse schedule). Within a single pass the weight multiplies
/// every item and the chunk target alike, so boundaries are unchanged —
/// which keeps the golden chunk maps independent of retuning here.
pub mod pass_weight {
    /// Tuple flattening: one linear walk per body.
    pub const NORMALIZE: u64 = 1;
    /// Constant/query/branch folding: up to 8 fixpoint rounds per body.
    pub const OPTIMIZE: u64 = 4;
    /// IR → bytecode lowering: one linear walk per body.
    pub const LOWER: u64 = 1;
    /// Bytecode peephole + liveness, iterated to a fixpoint.
    pub const FUSE: u64 = 2;
}

/// Estimated cost of compiling one method through a back-end pass, in
/// abstract "op" units: expression nodes dominate every per-body pass, with
/// locals as a small additive term (liveness and frame setup scale with
/// them). Body-less methods cost 1 (the scheduler never divides by zero).
///
/// This is the unit the chunked scheduler packs by — it must be a pure,
/// platform-independent function of the IR so chunk plans are reproducible
/// across machines (the seed-pinned golden chunk map test relies on that).
pub fn method_cost(m: &crate::module::Method) -> u64 {
    let Some(body) = &m.body else { return 1 };
    1 + count_exprs(body) as u64 + m.locals.len() as u64
}

/// Measures a module.
pub fn measure(module: &Module) -> ModuleSize {
    let mut size = ModuleSize {
        classes: module.classes.len(),
        ..ModuleSize::default()
    };
    for m in &module.methods {
        if let Some(body) = &m.body {
            size.methods += 1;
            size.expr_nodes += count_exprs(body);
            size.locals += m.locals.len();
        }
    }
    for g in &module.globals {
        if let Some(init) = &g.init {
            let body = crate::body::Body {
                stmts: vec![crate::body::Stmt::Expr(init.clone())],
            };
            size.expr_nodes += count_exprs(&body);
        }
    }
    for c in &module.classes {
        for fd in &c.fields {
            if let Some(init) = &fd.init {
                let body = crate::body::Body {
                    stmts: vec![crate::body::Stmt::Expr(init.clone())],
                };
                size.expr_nodes += count_exprs(&body);
            }
        }
    }
    size
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_module() -> Module {
        Module {
            store: vgl_types::TypeStore::new(),
            hier: vgl_types::Hierarchy::new(),
            classes: vec![],
            methods: vec![],
            globals: vec![],
            main: None,
        }
    }

    #[test]
    fn empty_module_measures_zero() {
        let size = measure(&empty_module());
        assert_eq!(size, ModuleSize::default());
        assert_eq!(size.expr_nodes, 0);
    }

    #[test]
    fn expansion_over_zero_node_base_is_one() {
        let base = ModuleSize::default();
        let after = ModuleSize { expr_nodes: 100, ..ModuleSize::default() };
        // A zero-node base would divide by zero; the ratio is defined as 1.0.
        assert_eq!(after.expansion_over(&base), 1.0);
        assert_eq!(base.expansion_over(&base), 1.0);
    }

    #[test]
    fn expansion_over_reports_node_ratio() {
        let base = ModuleSize { expr_nodes: 50, ..ModuleSize::default() };
        let after = ModuleSize { expr_nodes: 125, methods: 7, ..ModuleSize::default() };
        assert_eq!(after.expansion_over(&base), 2.5);
        // Shrinkage is reported below 1.0, not clamped.
        assert_eq!(base.expansion_over(&after), 0.4);
    }

    #[test]
    fn empty_module_expansion_is_stable() {
        let e = measure(&empty_module());
        assert_eq!(e.expansion_over(&e), 1.0);
    }
}
