//! Traversal helpers over IR bodies: read-only walks, in-place expression
//! rewrites, and whole-body type substitution (the core of monomorphization).

use crate::body::{Body, Expr, ExprKind, Oper, Stmt};
use std::collections::HashMap;
use vgl_types::{Type, TypeStore, TypeVarId};

/// Calls `f` on every expression in the body, pre-order.
pub fn for_each_expr<'a>(body: &'a Body, f: &mut impl FnMut(&'a Expr)) {
    for s in &body.stmts {
        for_each_expr_stmt(s, f);
    }
}

fn for_each_expr_stmt<'a>(s: &'a Stmt, f: &mut impl FnMut(&'a Expr)) {
    match s {
        Stmt::Expr(e) => for_each_expr_expr(e, f),
        Stmt::Local(_, init) => {
            if let Some(e) = init {
                for_each_expr_expr(e, f);
            }
        }
        Stmt::If(c, t, e) => {
            for_each_expr_expr(c, f);
            for st in t {
                for_each_expr_stmt(st, f);
            }
            for st in e {
                for_each_expr_stmt(st, f);
            }
        }
        Stmt::While(c, b) => {
            for_each_expr_expr(c, f);
            for st in b {
                for_each_expr_stmt(st, f);
            }
        }
        Stmt::Return(Some(e)) => for_each_expr_expr(e, f),
        Stmt::Return(None) | Stmt::Break | Stmt::Continue => {}
        Stmt::Block(b) => {
            for st in b {
                for_each_expr_stmt(st, f);
            }
        }
    }
}

fn for_each_expr_expr<'a>(e: &'a Expr, f: &mut impl FnMut(&'a Expr)) {
    f(e);
    for child in children(e) {
        for_each_expr_expr(child, f);
    }
}

/// The direct sub-expressions of `e`.
pub fn children(e: &Expr) -> Vec<&Expr> {
    use ExprKind::*;
    match &e.kind {
        Int(_) | Byte(_) | Bool(_) | Unit | Null | String(_) | Local(_) | Global(_)
        | OpClosure(_) | FuncRef { .. } | CtorRef { .. } | ArrayNewRef { .. }
        | BuiltinRef(_) | Trap(_) => vec![],
        LocalSet(_, v) | GlobalSet(_, v) | CheckNull(v) => vec![v],
        Tuple(es) | ArrayLit(es) => es.iter().collect(),
        TupleIndex(b, _) | ArrayNew(b) | ArrayLen(b) => vec![b],
        ArrayGet(a, i) => vec![a, i],
        ArraySet(a, i, v) => vec![a, i, v],
        FieldGet(o, _) => vec![o],
        FieldSet(o, _, v) => vec![o, v],
        New { args, .. } | CallStatic { args, .. } | CallBuiltin(_, args) | Apply(_, args) => {
            args.iter().collect()
        }
        CallVirtual { recv, args, .. } => {
            let mut v = vec![recv.as_ref()];
            v.extend(args.iter());
            v
        }
        CallClosure { func, args } => {
            let mut v = vec![func.as_ref()];
            v.extend(args.iter());
            v
        }
        BindMethod { recv, .. } => vec![recv],
        And(a, b) | Or(a, b) => vec![a, b],
        Ternary { cond, then, els } => vec![cond, then, els],
        Let { value, body, .. } => vec![value, body],
    }
}

/// Applies `f` to every expression in the body, bottom-up, replacing each
/// expression with `f`'s result. `f` receives the expression with its
/// children already rewritten.
pub fn rewrite_exprs(body: &mut Body, f: &mut impl FnMut(Expr) -> Expr) {
    for s in &mut body.stmts {
        rewrite_stmt(s, f);
    }
}

fn rewrite_stmt(s: &mut Stmt, f: &mut impl FnMut(Expr) -> Expr) {
    match s {
        Stmt::Expr(e) => rewrite_expr(e, f),
        Stmt::Local(_, Some(e)) => rewrite_expr(e, f),
        Stmt::Local(_, None) => {}
        Stmt::If(c, t, e) => {
            rewrite_expr(c, f);
            for st in t {
                rewrite_stmt(st, f);
            }
            for st in e {
                rewrite_stmt(st, f);
            }
        }
        Stmt::While(c, b) => {
            rewrite_expr(c, f);
            for st in b {
                rewrite_stmt(st, f);
            }
        }
        Stmt::Return(Some(e)) => rewrite_expr(e, f),
        Stmt::Return(None) | Stmt::Break | Stmt::Continue => {}
        Stmt::Block(b) => {
            for st in b {
                rewrite_stmt(st, f);
            }
        }
    }
}

fn rewrite_expr(e: &mut Expr, f: &mut impl FnMut(Expr) -> Expr) {
    // Rewrite children first (bottom-up).
    for_each_child_mut(e, &mut |c| rewrite_expr(c, f));
    let old = std::mem::replace(
        e,
        Expr::new(ExprKind::Unit, e.ty),
    );
    *e = f(old);
}

/// Calls `f` on each direct child of `e`, mutably.
pub fn for_each_child_mut(e: &mut Expr, f: &mut impl FnMut(&mut Expr)) {
    use ExprKind::*;
    match &mut e.kind {
        Int(_) | Byte(_) | Bool(_) | Unit | Null | String(_) | Local(_) | Global(_)
        | OpClosure(_) | FuncRef { .. } | CtorRef { .. } | ArrayNewRef { .. }
        | BuiltinRef(_) | Trap(_) => {}
        LocalSet(_, v) | GlobalSet(_, v) | CheckNull(v) => f(v),
        Tuple(es) | ArrayLit(es) => {
            for x in es {
                f(x);
            }
        }
        TupleIndex(b, _) | ArrayNew(b) | ArrayLen(b) => f(b),
        ArrayGet(a, i) => {
            f(a);
            f(i);
        }
        ArraySet(a, i, v) => {
            f(a);
            f(i);
            f(v);
        }
        FieldGet(o, _) => f(o),
        FieldSet(o, _, v) => {
            f(o);
            f(v);
        }
        New { args, .. } | CallStatic { args, .. } | CallBuiltin(_, args) | Apply(_, args) => {
            for x in args {
                f(x);
            }
        }
        CallVirtual { recv, args, .. } => {
            f(recv);
            for x in args {
                f(x);
            }
        }
        CallClosure { func, args } => {
            f(func);
            for x in args {
                f(x);
            }
        }
        BindMethod { recv, .. } => f(recv),
        And(a, b) | Or(a, b) => {
            f(a);
            f(b);
        }
        Ternary { cond, then, els } => {
            f(cond);
            f(then);
            f(els);
        }
        Let { value, body, .. } => {
            f(value);
            f(body);
        }
    }
}

/// Substitutes type variables throughout a body: every expression type,
/// every embedded type argument list, and every operator type. This is the
/// heart of monomorphization (paper §4.3).
pub fn substitute_body(
    store: &mut TypeStore,
    body: &mut Body,
    subst: &HashMap<TypeVarId, Type>,
) {
    rewrite_exprs(body, &mut |mut e| {
        e.ty = store.substitute(e.ty, subst);
        substitute_kind(store, &mut e.kind, subst);
        e
    });
}

fn substitute_kind(
    store: &mut TypeStore,
    kind: &mut ExprKind,
    subst: &HashMap<TypeVarId, Type>,
) {
    use ExprKind::*;
    let sub_list = |store: &mut TypeStore, ts: &mut Vec<Type>| {
        for t in ts {
            *t = store.substitute(*t, subst);
        }
    };
    match kind {
        New { type_args, .. }
        | CallStatic { type_args, .. }
        | CallVirtual { type_args, .. }
        | BindMethod { type_args, .. }
        | FuncRef { type_args, .. }
        | CtorRef { type_args, .. } => sub_list(store, type_args),
        ArrayNewRef { elem } => *elem = store.substitute(*elem, subst),
        Apply(op, _) | OpClosure(op) => substitute_oper(store, op, subst),
        _ => {}
    }
}

/// Substitutes the types embedded in an operator.
pub fn substitute_oper(
    store: &mut TypeStore,
    op: &mut Oper,
    subst: &HashMap<TypeVarId, Type>,
) {
    match op {
        Oper::Eq(t) | Oper::Ne(t) => *t = store.substitute(*t, subst),
        Oper::Cast { from, to } | Oper::Query { from, to } => {
            *from = store.substitute(*from, subst);
            *to = store.substitute(*to, subst);
        }
        _ => {}
    }
}

/// Counts every expression node in a body (code-size metric for the
/// monomorphization expansion experiment, E4).
pub fn count_exprs(body: &Body) -> usize {
    let mut n = 0;
    for_each_expr(body, &mut |_| n += 1);
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::Builtin;
    use crate::module::LocalId;

    fn int_expr(store: &TypeStore, v: i32) -> Expr {
        Expr::new(ExprKind::Int(v), store.int)
    }

    #[test]
    fn count_and_walk() {
        let store = TypeStore::new();
        let body = Body {
            stmts: vec![Stmt::Expr(Expr::new(
                ExprKind::Apply(
                    Oper::IntAdd,
                    vec![int_expr(&store, 1), int_expr(&store, 2)],
                ),
                store.int,
            ))],
        };
        assert_eq!(count_exprs(&body), 3);
    }

    #[test]
    fn rewrite_bottom_up() {
        let store = TypeStore::new();
        let mut body = Body {
            stmts: vec![Stmt::Expr(Expr::new(
                ExprKind::Apply(
                    Oper::IntAdd,
                    vec![int_expr(&store, 1), int_expr(&store, 2)],
                ),
                store.int,
            ))],
        };
        // Constant-fold adds of two Int literals.
        rewrite_exprs(&mut body, &mut |e| match &e.kind {
            ExprKind::Apply(Oper::IntAdd, args) => {
                if let (ExprKind::Int(a), ExprKind::Int(b)) = (&args[0].kind, &args[1].kind) {
                    Expr::new(ExprKind::Int(a + b), e.ty)
                } else {
                    e
                }
            }
            _ => e,
        });
        match &body.stmts[0] {
            Stmt::Expr(e) => assert!(matches!(e.kind, ExprKind::Int(3))),
            _ => panic!("expected expr stmt"),
        }
    }

    #[test]
    fn substitute_types_in_body() {
        let mut store = TypeStore::new();
        let v = TypeVarId(0);
        let tv = store.var(v);
        let mut body = Body {
            stmts: vec![Stmt::Local(
                LocalId(0),
                Some(Expr::new(
                    ExprKind::Apply(Oper::Eq(tv), vec![]),
                    store.bool_,
                )),
            )],
        };
        let mut subst = HashMap::new();
        subst.insert(v, store.int);
        substitute_body(&mut store, &mut body, &subst);
        match &body.stmts[0] {
            Stmt::Local(_, Some(e)) => match e.kind {
                ExprKind::Apply(Oper::Eq(t), _) => assert_eq!(t, store.int),
                _ => panic!("expected eq"),
            },
            _ => panic!("expected local"),
        }
    }

    #[test]
    fn walk_covers_control_flow() {
        let store = TypeStore::new();
        let cond = Expr::new(ExprKind::Bool(true), store.bool_);
        let body = Body {
            stmts: vec![
                Stmt::If(
                    cond.clone(),
                    vec![Stmt::Expr(int_expr(&store, 1))],
                    vec![Stmt::Expr(int_expr(&store, 2))],
                ),
                Stmt::While(cond, vec![Stmt::Expr(int_expr(&store, 3))]),
                Stmt::Return(Some(int_expr(&store, 4))),
                Stmt::Block(vec![Stmt::Expr(Expr::new(
                    ExprKind::CallBuiltin(Builtin::Ln, vec![]),
                    store.void,
                ))]),
            ],
        };
        assert_eq!(count_exprs(&body), 7);
    }
}
