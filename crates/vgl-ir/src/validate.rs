//! IR invariant validation.
//!
//! Two invariants matter to the paper's compilation pipeline:
//!
//! * after **monomorphization** no type variable occurs anywhere (§4.3:
//!   "no type parameters appear in the program"), and
//! * after **normalization** no tuple type occurs anywhere (§4.2: "a normal
//!   form where tuples no longer appear").
//!
//! These checks are run by the pass manager after the respective passes and
//! by the test suite as properties.

use crate::body::{Expr, ExprKind, Oper};
use crate::module::Module;
use crate::visit::for_each_expr;

/// A violated invariant, with a human-readable location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Which method (by name) the violation is in.
    pub location: String,
    /// What is wrong.
    pub message: String,
}

/// Checks that no type variables remain anywhere in the module.
pub fn check_monomorphic(module: &Module) -> Vec<Violation> {
    let mut out = Vec::new();
    let store = &module.store;
    let poly = |t| store.is_polymorphic(t);
    for (i, m) in module.methods.iter().enumerate() {
        let loc = format!("method {} (#{})", m.name, i);
        if !m.type_params.is_empty() {
            out.push(Violation {
                location: loc.clone(),
                message: "method still declares type parameters".into(),
            });
        }
        for l in &m.locals {
            if poly(l.ty) {
                out.push(Violation {
                    location: loc.clone(),
                    message: format!("local {} has polymorphic type", l.name),
                });
            }
        }
        if poly(m.ret) {
            out.push(Violation { location: loc.clone(), message: "polymorphic return type".into() });
        }
        if let Some(body) = &m.body {
            for_each_expr(body, &mut |e: &Expr| {
                if poly(e.ty) {
                    out.push(Violation {
                        location: loc.clone(),
                        message: "expression has polymorphic type".into(),
                    });
                }
                if let Some(ts) = embedded_type_args(e) {
                    if ts.iter().any(|&t| poly(t)) {
                        out.push(Violation {
                            location: loc.clone(),
                            message: "call site has polymorphic type arguments".into(),
                        });
                    }
                }
            });
        }
    }
    for c in &module.classes {
        if !c.type_params.is_empty() {
            out.push(Violation {
                location: format!("class {}", c.name),
                message: "class still declares type parameters".into(),
            });
        }
        for f in &c.fields {
            if poly(f.ty) {
                out.push(Violation {
                    location: format!("class {}", c.name),
                    message: format!("field {} has polymorphic type", f.name),
                });
            }
        }
    }
    for g in &module.globals {
        if poly(g.ty) {
            out.push(Violation {
                location: format!("global {}", g.name),
                message: "polymorphic global".into(),
            });
        }
    }
    out
}

/// Checks that no tuple types remain anywhere in the module (the §4.2
/// post-normalization invariant).
pub fn check_tuple_free(module: &Module) -> Vec<Violation> {
    let mut out = Vec::new();
    let store = &module.store;
    let has_tuple = |t| store.contains_tuple(t);
    for (i, m) in module.methods.iter().enumerate() {
        let loc = format!("method {} (#{})", m.name, i);
        for l in &m.locals {
            if has_tuple(l.ty) {
                out.push(Violation {
                    location: loc.clone(),
                    message: format!("local {} has tuple type", l.name),
                });
            }
        }
        if has_tuple(m.ret) {
            out.push(Violation { location: loc.clone(), message: "tuple return type".into() });
        }
        if let Some(body) = &m.body {
            for_each_expr(body, &mut |e: &Expr| {
                if has_tuple(e.ty) {
                    out.push(Violation {
                        location: loc.clone(),
                        message: "expression has tuple type".into(),
                    });
                }
                if matches!(e.kind, ExprKind::Tuple(_) | ExprKind::TupleIndex(..)) {
                    out.push(Violation {
                        location: loc.clone(),
                        message: "tuple construction/projection survives normalization".into(),
                    });
                }
            });
        }
    }
    for c in &module.classes {
        for f in &c.fields {
            if has_tuple(f.ty) {
                out.push(Violation {
                    location: format!("class {}", c.name),
                    message: format!("field {} has tuple type", f.name),
                });
            }
        }
    }
    for g in &module.globals {
        if has_tuple(g.ty) {
            out.push(Violation {
                location: format!("global {}", g.name),
                message: "tuple-typed global".into(),
            });
        }
    }
    out
}

/// Checks the post-normalization invariants (paper §4.2): no tuple types or
/// tuple operations anywhere, except the two *boundary* forms the native
/// calling convention lowers for free — `Return (v0, ..., vn)` (multi-value
/// return) and a tuple-typed local bound once to a call result and read only
/// through direct projections. Function types may still *describe* tuple
/// parameter lists (they are arity descriptors, not values).
pub fn check_normalized(module: &Module) -> Vec<Violation> {
    use crate::body::Stmt;
    let mut out = check_monomorphic(module);
    let store = &module.store;
    let shallow = |t| contains_tuple_shallow(store, t);
    for c in &module.classes {
        for f in &c.fields {
            if shallow(f.ty) {
                out.push(Violation {
                    location: format!("class {}", c.name),
                    message: format!("field {} keeps a tuple type after normalization", f.name),
                });
            }
        }
    }
    for g in &module.globals {
        if shallow(g.ty) {
            out.push(Violation {
                location: format!("global {}", g.name),
                message: "tuple-typed global after normalization".into(),
            });
        }
    }
    for (i, m) in module.methods.iter().enumerate() {
        let loc = format!("method {} (#{})", m.name, i);
        for l in &m.locals[..m.param_count] {
            if shallow(l.ty) {
                out.push(Violation {
                    location: loc.clone(),
                    message: format!("parameter {} keeps a tuple type", l.name),
                });
            }
        }
        // Non-parameter locals may be boundary call temps: tuple of scalars.
        for l in &m.locals[m.param_count..] {
            if let vgl_types::TypeKind::Tuple(es) = store.kind(l.ty) {
                if es.iter().any(|&e| shallow(e)) {
                    out.push(Violation {
                        location: loc.clone(),
                        message: format!("local {} has a nested tuple type", l.name),
                    });
                }
            } else if shallow(l.ty) {
                out.push(Violation {
                    location: loc.clone(),
                    message: format!("local {} keeps a tuple type", l.name),
                });
            }
        }
        let Some(body) = &m.body else { continue };
        fn walk_stmts(
            stmts: &[Stmt],
            store: &vgl_types::TypeStore,
            loc: &str,
            out: &mut Vec<Violation>,
        ) {
            for s in stmts {
                match s {
                    Stmt::Return(Some(e)) => {
                        // Boundary: Return(Tuple(scalars)) allowed.
                        if let ExprKind::Tuple(es) = &e.kind {
                            for x in es {
                                walk_expr(x, store, loc, out);
                            }
                        } else {
                            walk_expr(e, store, loc, out);
                        }
                    }
                    Stmt::Local(_, Some(e)) => {
                        // Boundary: a tuple-typed call init is allowed.
                        let is_call = matches!(
                            e.kind,
                            ExprKind::CallStatic { .. }
                                | ExprKind::CallVirtual { .. }
                                | ExprKind::CallClosure { .. }
                                | ExprKind::CallBuiltin(..)
                        );
                        if is_call {
                            for c in crate::visit::children(e) {
                                walk_expr(c, store, loc, out);
                            }
                        } else {
                            walk_expr(e, store, loc, out);
                        }
                    }
                    Stmt::Local(_, None) | Stmt::Return(None) | Stmt::Break | Stmt::Continue => {}
                    Stmt::Expr(e) => walk_expr(e, store, loc, out),
                    Stmt::If(c, t, f2) => {
                        walk_expr(c, store, loc, out);
                        walk_stmts(t, store, loc, out);
                        walk_stmts(f2, store, loc, out);
                    }
                    Stmt::While(c, b) => {
                        walk_expr(c, store, loc, out);
                        walk_stmts(b, store, loc, out);
                    }
                    Stmt::Block(b) => walk_stmts(b, store, loc, out),
                }
            }
        }
        fn walk_expr(
            e: &Expr,
            store: &vgl_types::TypeStore,
            loc: &str,
            out: &mut Vec<Violation>,
        ) {
            match &e.kind {
                ExprKind::TupleIndex(b, _) => {
                    // Boundary: projecting a tuple-typed local is allowed.
                    if matches!(b.kind, ExprKind::Local(_)) {
                        return;
                    }
                    out.push(Violation {
                        location: loc.to_string(),
                        message: "non-boundary tuple projection after normalization".into(),
                    });
                }
                ExprKind::Tuple(_) => {
                    out.push(Violation {
                        location: loc.to_string(),
                        message: "tuple construction survives normalization".into(),
                    });
                }
                _ => {
                    if contains_tuple_shallow(store, e.ty) {
                        out.push(Violation {
                            location: loc.to_string(),
                            message: "expression keeps a tuple type after normalization".into(),
                        });
                    }
                    for c in crate::visit::children(e) {
                        walk_expr(c, store, loc, out);
                    }
                }
            }
        }
        walk_stmts(&body.stmts, store, &loc, &mut out);
    }
    out
}

/// Like [`vgl_types::TypeStore::contains_tuple`] but treats function types as
/// opaque descriptors.
fn contains_tuple_shallow(store: &vgl_types::TypeStore, t: vgl_types::Type) -> bool {
    use vgl_types::TypeKind;
    match store.kind(t) {
        TypeKind::Tuple(_) => true,
        TypeKind::Array(e) => contains_tuple_shallow(store, *e),
        TypeKind::Function(..) => false,
        _ => false,
    }
}

/// The type-argument lists embedded in an expression, if any.
fn embedded_type_args(e: &Expr) -> Option<Vec<vgl_types::Type>> {
    use ExprKind::*;
    match &e.kind {
        New { type_args, .. }
        | CallStatic { type_args, .. }
        | CallVirtual { type_args, .. }
        | BindMethod { type_args, .. }
        | FuncRef { type_args, .. }
        | CtorRef { type_args, .. } => Some(type_args.clone()),
        ArrayNewRef { elem } => Some(vec![*elem]),
        Apply(op, _) | OpClosure(op) => match op {
            Oper::Eq(t) | Oper::Ne(t) => Some(vec![*t]),
            Oper::Cast { from, to } | Oper::Query { from, to } => Some(vec![*from, *to]),
            _ => None,
        },
        _ => None,
    }
}
