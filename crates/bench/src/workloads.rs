//! Virgil source generators for the experiment suite (DESIGN.md E1–E6).

use std::fmt::Write as _;

/// E1: a tuple-heavy workload — tuples as arguments, returns, fields, and
/// array elements, iterated `n` times.
pub fn tuple_heavy(n: usize) -> String {
    format!(
        r#"
def swap(p: (int, int)) -> (int, int) {{ return (p.1, p.0); }}
def addp(a: (int, int), b: (int, int)) -> (int, int) {{
    return (a.0 + b.0, a.1 + b.1);
}}
class Pt {{ var pos: (int, int); new(pos) {{ }} }}
def main() -> int {{
    var t = (1, 2);
    var p = Pt.new((0, 0));
    var arr = Array<(int, int)>.new(8);
    for (i = 0; i < {n}; i = i + 1) {{
        t = swap(t);
        t = addp(t, (1, 1));
        p.pos = addp(p.pos, t);
        arr[i & 7] = t;
        t = arr[(i + 3) & 7];
    }}
    return t.0 + t.1 + p.pos.0;
}}
"#
    )
}

/// E2: a polymorphic workload — generic list construction, mapping, and
/// folding over several instantiations.
pub fn polymorphic(n: usize) -> String {
    format!(
        r#"
class List<T> {{ def head: T; def tail: List<T>; new(head, tail) {{ }} }}
def build<T>(n: int, v: T) -> List<T> {{
    var l: List<T>;
    for (i = 0; i < n; i = i + 1) l = List.new(v, l);
    return l;
}}
def count<T>(l: List<T>, p: T -> bool) -> int {{
    var c = 0;
    for (x = l; x != null; x = x.tail) if (p(x.head)) c = c + 1;
    return c;
}}
def posi(x: int) -> bool {{ return x > 0; }}
def idb(x: bool) -> bool {{ return x; }}
def bigp(x: (int, int)) -> bool {{ return x.0 + x.1 > 0; }}
def main() -> int {{
    var total = 0;
    for (round = 0; round < {n}; round = round + 1) {{
        total = total + count(build(50, 1), posi);
        total = total + count(build(50, true), idb);
        total = total + count(build(50, (1, 2)), bigp);
    }}
    return total;
}}
"#
    )
}

/// E3: the §3.3 ad-hoc-polymorphism dispatch chain with `k` cases, invoked
/// `n` times per instantiated type.
pub fn dispatch_chain(n: usize) -> String {
    format!(
        r#"
var sink = 0;
def h_int(a: int) {{ sink = sink + a; }}
def h_bool(a: bool) {{ if (a) sink = sink + 1; }}
def h_byte(a: byte) {{ sink = sink + int.!(a); }}
def h_pair(a: (int, int)) {{ sink = sink + a.0 + a.1; }}
def isa<F, T>(x: T) -> bool {{ return F.?<T>(x); }}
def asa<F, T>(x: T) -> F {{ return F.!<T>(x); }}
def dispatch<T>(a: T) {{
    if (int.?(a)) h_int(int.!(a));
    if (bool.?(a)) h_bool(bool.!(a));
    if (byte.?(a)) h_byte(byte.!(a));
    if (isa<(int, int), T>(a)) h_pair(asa<(int, int), T>(a));
}}
def main() -> int {{
    for (i = 0; i < {n}; i = i + 1) {{
        dispatch(i);
        dispatch(i % 2 == 0);
        dispatch('x');
        dispatch((i, 1));
    }}
    return sink;
}}
"#
    )
}

/// E4: a generic library instantiated at `k` distinct type arguments (tuple
/// widths give distinct types); measures code expansion, not runtime.
pub fn instantiations(k: usize) -> String {
    let mut src = String::from(
        r#"
class Box<T> {
    def val: T;
    new(val) { }
    def get() -> T { return val; }
    def put(x: T) -> Box<T> { return Box.new(x); }
}
def roundtrip<T>(x: T) -> T { return Box.new(x).put(x).get(); }
def main() {
"#,
    );
    for i in 0..k {
        let args = (0..=i)
            .map(|j| (i + j).to_string())
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(src, "    roundtrip(({args}));");
    }
    src.push_str("}\n");
    src
}

/// E5: tuple-width sweep — a width-`w` tuple passed through a call chain `n`
/// times (flattened scalars vs one boxed record).
pub fn tuple_width(w: usize, n: usize) -> String {
    assert!(w >= 1);
    let tuple_ty = if w == 1 {
        "int".to_string()
    } else {
        let elems = vec!["int"; w].join(", ");
        format!("({elems})")
    };
    let ctor = if w == 1 {
        "1".to_string()
    } else {
        let elems = (0..w).map(|i| i.to_string()).collect::<Vec<_>>().join(", ");
        format!("({elems})")
    };
    let bump = if w == 1 {
        "return t + 1;".to_string()
    } else {
        let elems = (0..w)
            .map(|i| format!("t.{i} + 1"))
            .collect::<Vec<_>>()
            .join(", ");
        format!("return ({elems});")
    };
    let took = if w == 1 { "t".to_string() } else { "t.0".to_string() };
    format!(
        r#"
def bump(t: {tuple_ty}) -> {tuple_ty} {{ {bump} }}
def main() -> int {{
    var t: {tuple_ty} = {ctor};
    for (i = 0; i < {n}; i = i + 1) t = bump(t);
    return {took};
}}
"#
    )
}

/// E6: first-class function call sites with mixed calling conventions, the
/// §4.1 ambiguity (scalar implementation vs tuple implementation behind the
/// same function type).
pub fn callsite_checks(n: usize) -> String {
    format!(
        r#"
def fs(a: int, b: int) -> int {{ return a + b; }}
def ft(a: (int, int)) -> int {{ return a.0 + a.1; }}
def pick(z: bool) -> ((int, int) -> int) {{ return z ? fs : ft; }}
def main() -> int {{
    var s = 0;
    var t = (1, 2);
    for (i = 0; i < {n}; i = i + 1) {{
        var f = pick(i % 2 == 0);
        s = s + f(i, 1);
        s = s + f(t);
    }}
    return s;
}}
"#
    )
}

/// A mixed "application" workload: virtual dispatch + generics + tuples +
/// first-class functions, for overall engine comparison.
pub fn mixed_app(n: usize) -> String {
    format!(
        r#"
class Shape {{ def area() -> int; }}
class Rect extends Shape {{
    var wh: (int, int);
    new(wh) {{ }}
    def area() -> int {{ return wh.0 * wh.1; }}
}}
class Circle extends Shape {{
    def r: int;
    new(r) {{ }}
    def area() -> int {{ return 3 * r * r; }}
}}
def sum<T>(xs: Array<T>, f: T -> int) -> int {{
    var s = 0;
    for (i = 0; i < xs.length; i = i + 1) s = s + f(xs[i]);
    return s;
}}
def getArea(s: Shape) -> int {{ return s.area(); }}
def main() -> int {{
    var shapes: Array<Shape> = [Rect.new((3, 4)), Circle.new(2), Rect.new((5, 6))];
    var total = 0;
    for (i = 0; i < {n}; i = i + 1) {{
        total = total + sum(shapes, getArea);
    }}
    return total;
}}
"#
    )
}

/// E9 (cache-friendly): a generic worker whose body never mentions its type
/// parameter, instantiated at `k` distinct phantom classes. Monomorphization
/// produces `k` method instances whose post-mono bodies are identical, so
/// the per-instance pass cache collapses them to one unit of normalize +
/// optimize work — the best case for the back-end instance cache.
pub fn instance_fanout_dup(k: usize) -> String {
    let mut src = String::new();
    for i in 0..k {
        let _ = writeln!(src, "class C{i} {{}}");
    }
    src.push_str(
        "def work<T>(n: int) -> int {\n\
         \tvar s = 0;\n\
         \tvar t = (0, 1, 2, 3);\n\
         \tfor (i = 0; i < n; i = i + 1) {\n\
         \t\tt = (t.3 + 1, t.0 + 2, t.1 + 3, t.2 + i);\n\
         \t\ts = s + t.0 * 3 + t.1 * 5 + t.2 * 7 + t.3;\n\
         \t\tif (s > 1000000) s = s - 999983;\n\
         \t\tvar a = i + 1; var b = a * 2; var c = b - a; var d = c * c;\n\
         \t\ts = s + d % 97 + (a + b) % 89 + (c + d) % 83;\n\
         \t}\n\
         \treturn s;\n\
         }\n\
         def main() -> int {\n\
         \tvar total = 0;\n",
    );
    for i in 0..k {
        let _ = writeln!(src, "\ttotal = total + work<C{i}>(8);");
    }
    src.push_str("\treturn total % 1000;\n}\n");
    src
}

/// E9 (cache-hostile): the same shape, but the worker takes a value of its
/// type parameter, so every instance's post-mono signature differs (each
/// mentions its own class type) and the instance cache cannot deduplicate —
/// the honest lower bound for the cache and the pure-parallelism case.
pub fn instance_fanout_distinct(k: usize) -> String {
    let mut src = String::new();
    for i in 0..k {
        let _ = writeln!(src, "class C{i} {{ var tag: int; new(tag) {{ }} }}");
    }
    src.push_str(
        "def work<T>(x: T, n: int) -> int {\n\
         \tvar s = 0;\n\
         \tvar t = (0, 1, 2, 3);\n\
         \tfor (i = 0; i < n; i = i + 1) {\n\
         \t\tt = (t.3 + 1, t.0 + 2, t.1 + 3, t.2 + i);\n\
         \t\ts = s + t.0 * 3 + t.1 * 5 + t.2 * 7 + t.3;\n\
         \t\tif (s > 1000000) s = s - 999983;\n\
         \t\tvar a = i + 1; var b = a * 2; var c = b - a; var d = c * c;\n\
         \t\ts = s + d % 97 + (a + b) % 89 + (c + d) % 83;\n\
         \t}\n\
         \treturn s;\n\
         }\n\
         def main() -> int {\n\
         \tvar total = 0;\n",
    );
    for i in 0..k {
        let _ = writeln!(src, "\ttotal = total + work(C{i}.new({i}), 8);");
    }
    src.push_str("\treturn total % 1000;\n}\n");
    src
}

/// E11: a polymorphic-then-monomorphic dispatch workload for the tiered
/// back end. One walker function's virtual-call site first sees three
/// receiver classes (a short mixed chain, few enough misses to stay below
/// the speculation cap), then settles on a single class for `n` hot
/// iterations over a 64-node chain. Static fusion cannot speculate the
/// site; the tiered VM re-fuses the walker with its own inline-cache
/// feedback and inlines the one-instruction `Inc.apply` behind a receiver
/// guard — the warmup-knee-then-win curve E11 plots.
pub fn polymorphic_then_monomorphic(n: usize) -> String {
    format!(
        r#"
class Op {{
    def apply(x: int) -> int {{ return x; }}
}}
class Inc extends Op {{
    def apply(x: int) -> int {{ return x + 1; }}
}}
class Dbl extends Op {{
    def apply(x: int) -> int {{ return x + x; }}
}}
class Mask extends Op {{
    def apply(x: int) -> int {{ return x % 8191; }}
}}
class Node {{
    var op: Op;
    var next: Node;
    new(op, next) {{ }}
}}
def walk(chain: Node, x0: int) -> int {{
    var x = x0;
    for (n = chain; n != null; n = n.next) x = n.op.apply(x);
    return x;
}}
def main() -> int {{
    var none: Node;
    // Polymorphic phase: two walks of a mixed 3-class chain (6 cache
    // misses — below the speculation cap, so the site can still be
    // speculated once it settles).
    var mixed = Node.new(Inc.new(), Node.new(Dbl.new(), Node.new(Mask.new(), none)));
    var acc = 0;
    for (i = 0; i < 2; i = i + 1) acc = (acc + walk(mixed, i)) % 8191;
    // Monomorphic phase: the same site sees only Inc from here on.
    var mono: Node;
    for (k = 0; k < 64; k = k + 1) mono = Node.new(Inc.new(), mono);
    for (i = 0; i < {n}; i = i + 1) acc = (acc + walk(mono, i)) % 8191;
    return acc;
}}
"#
    )
}

/// E12 (churn): a long-running "server" loop where every request allocates
/// a short-lived request/response pair that dies before the next iteration.
/// Nearly everything dies in the nursery, so the generational collector's
/// minor pauses touch almost nothing while the semispace collector still
/// copies whatever happens to be in flight.
pub fn server_churn(requests: usize) -> String {
    format!(
        r#"
class Request {{ var id: int; var payload: Array<int>; new(id, payload) {{ }} }}
class Response {{ var id: int; var status: int; var body: Array<int>; new(id, status, body) {{ }} }}
def handle(r: Request) -> Response {{
    var body = Array<int>.new(4);
    for (i = 0; i < body.length; i = i + 1) {{
        body[i] = r.payload[i % r.payload.length] * 3 + r.id;
    }}
    return Response.new(r.id, 200, body);
}}
def main() -> int {{
    var check = 0;
    for (req = 0; req < {requests}; req = req + 1) {{
        var payload = Array<int>.new(6);
        for (i = 0; i < payload.length; i = i + 1) payload[i] = req + i;
        var resp = handle(Request.new(req, payload));
        check = (check + resp.body[req & 3] + resp.status) % 1000000;
    }}
    return check;
}}
"#
    )
}

/// E12 (cache): request churn against a fixed-size lookup cache with
/// eviction. Hits touch only long-lived entries; misses evict a slot and
/// allocate a replacement entry that survives into the old generation — a
/// moderate, steady promotion rate on top of the nursery churn.
pub fn server_cache(requests: usize) -> String {
    format!(
        r#"
class Entry {{
    var key: int;
    var val: Array<int>;
    var hits: int;
    new(key, val) {{ hits = 0; }}
}}
class Request {{ var id: int; var payload: Array<int>; new(id, payload) {{ }} }}
class Response {{ var id: int; var status: int; var body: Array<int>; new(id, status, body) {{ }} }}
def handle(r: Request, cache: Array<Entry>) -> Response {{
    var slot = r.id % cache.length;
    var e = cache[slot];
    if (e == null || e.key != r.id) {{
        // Miss: evict whatever held the slot and promote a fresh entry.
        var val = Array<int>.new(8);
        for (i = 0; i < val.length; i = i + 1) {{
            val[i] = r.payload[i % r.payload.length] * 2 + i;
        }}
        e = Entry.new(r.id, val);
        cache[slot] = e;
    }}
    e.hits = e.hits + 1;
    var body = Array<int>.new(4);
    for (i = 0; i < body.length; i = i + 1) body[i] = e.val[i] + r.id;
    return Response.new(r.id, 200, body);
}}
def main() -> int {{
    var cache = Array<Entry>.new(64);
    var check = 0;
    for (req = 0; req < {requests}; req = req + 1) {{
        var payload = Array<int>.new(6);
        for (i = 0; i < payload.length; i = i + 1) payload[i] = req + i;
        // 68 live keys over 64 slots: mostly hits, a steady trickle of
        // evictions keeping the promotion path honest.
        var resp = handle(Request.new(req % 68, payload), cache);
        check = (check + resp.body[req & 3] + resp.status) % 1000000;
    }}
    return check;
}}
"#
    )
}

/// E12 (steady state): the cache workload on top of a large long-lived
/// store allocated once at startup. The semispace collector re-copies the
/// whole store on every collection; the generational collector promotes it
/// once and then pays only for nursery survivors — the configuration the
/// `bench_gc` pause-p99 gate measures.
pub fn server_steady(requests: usize) -> String {
    format!(
        r#"
class Entry {{
    var key: int;
    var val: Array<int>;
    var hits: int;
    new(key, val) {{ hits = 0; }}
}}
class Request {{ var id: int; var payload: Array<int>; new(id, payload) {{ }} }}
class Response {{ var id: int; var status: int; var body: Array<int>; new(id, status, body) {{ }} }}
def handle(r: Request, cache: Array<Entry>) -> Response {{
    var slot = r.id % cache.length;
    var e = cache[slot];
    if (e == null || e.key != r.id) {{
        var val = Array<int>.new(8);
        for (i = 0; i < val.length; i = i + 1) {{
            val[i] = r.payload[i % r.payload.length] * 2 + i;
        }}
        e = Entry.new(r.id, val);
        cache[slot] = e;
    }}
    e.hits = e.hits + 1;
    var body = Array<int>.new(4);
    for (i = 0; i < body.length; i = i + 1) body[i] = e.val[i] + r.id;
    return Response.new(r.id, 200, body);
}}
def main() -> int {{
    // The steady-state heap: a startup-time store the server keeps alive
    // for its whole run (think loaded config + session tables).
    var store = Array<Array<int>>.new(64);
    for (i = 0; i < store.length; i = i + 1) {{
        var chunk = Array<int>.new(64);
        for (j = 0; j < chunk.length; j = j + 1) chunk[j] = i * 64 + j;
        store[i] = chunk;
    }}
    var cache = Array<Entry>.new(64);
    var check = 0;
    for (req = 0; req < {requests}; req = req + 1) {{
        var payload = Array<int>.new(6);
        for (i = 0; i < payload.length; i = i + 1) {{
            payload[i] = store[req % store.length][i] + req;
        }}
        // 64 keys over 64 slots: the cache warms up once and then serves
        // hits, so the long-lived set is genuinely steady (eviction churn
        // is server_cache's job).
        var resp = handle(Request.new(req % 64, payload), cache);
        check = (check + resp.body[req & 3] + resp.status) % 1000000;
    }}
    return check + store[63][63];
}}
"#
    )
}

/// E7: a larger synthetic program (k classes with methods + a generic
/// library) for measuring compile throughput (§5: "compiles very fast").
pub fn big_program(k: usize) -> String {
    let mut src = class_battery(k);
    src.push_str("def main() -> int {\n    var l: List<int>;\n");
    for i in 0..k {
        let _ = writeln!(src, "    var c{i} = C{i}.new({i}, \"x\");");
        let _ = writeln!(src, "    l = List.new(c{i}.m0({i}), l);");
    }
    src.push_str("    return fold(l, plus, 0);\n}\n");
    src
}

/// The generic preamble plus `k` distinct classes — the shared battery
/// behind [`big_program`] (code-expansion rows) and [`serve_edit`]
/// (edit/recompile cycles): every class contributes tuple fields, generic
/// list participation, and three methods for the back half to chew on.
fn class_battery(k: usize) -> String {
    let mut src = String::from(
        "class List<T> { def head: T; def tail: List<T>; new(head, tail) { } }\n\
         def fold<A, B>(l: List<A>, f: (B, A) -> B, init: B) -> B {\n\
             var acc = init;\n\
             for (x = l; x != null; x = x.tail) acc = f(acc, x.head);\n\
             return acc;\n\
         }\n\
         def plus(a: int, b: int) -> int { return a + b; }\n",
    );
    for i in 0..k {
        let _ = writeln!(src, "class C{i} {{");
        let _ = writeln!(src, "    var f0: int;");
        let _ = writeln!(src, "    var f1: (int, bool);");
        let _ = writeln!(src, "    def g: string;");
        let _ = writeln!(src, "    new(f0, g) {{ f1 = (f0, f0 > 0); }}");
        let _ = writeln!(src, "    def m0(x: int) -> int {{ return f0 + x * {i}; }}");
        let _ = writeln!(src, "    def m1(p: (int, int)) -> (int, int) {{ return (p.1 + f0, p.0); }}");
        let _ = writeln!(src, "    def m2(f: int -> int) -> int {{ return f(f0); }}");
        let _ = writeln!(src, "}}");
    }
    src
}

/// The `bench_serve` / E13 edit model: a small [`class_battery`] (generics,
/// tuples, virtual dispatch — the paper's feature mix) plus `workers`
/// long straight-line functions whose bodies are optimizer and
/// superinstruction-fuser fodder, plus one "hot" function whose body
/// carries the edit stamp. Every distinct `edit` yields a distinct source
/// (so the daemon's whole-artifact cache can never short-circuit the
/// measurement) whose method set is identical except for `hot` and
/// `main` — exactly the shape of an editor save: many unchanged
/// fingerprints, two changed ones. The back half (optimize → lower →
/// fuse) dominates a cold compile of this shape, which is what makes it
/// the serving benchmark: that is precisely the work the function store
/// lets a warm compile skip. The result depends on `edit`, so output
/// equality between a cold one-shot compile and a served warm compile is
/// a real check.
pub fn serve_edit(workers: usize, edit: u64) -> String {
    const STMTS: usize = 1500;
    let mut src = class_battery(6);
    src.push_str(
        "class Gauge { def get(x: int) -> int { return x; } }\n\
         class Wide extends Gauge { def get(x: int) -> int { return x + 1; } }\n",
    );
    for f in 0..workers {
        let _ = writeln!(src, "def work{f}(x0: int) -> int {{");
        let _ = writeln!(src, "    var b: Gauge = Wide.new();");
        let _ = writeln!(src, "    var acc = x0;");
        for s in 0..STMTS {
            let k = (f * 31 + s * 7) % 97 + 2;
            match s % 5 {
                0 => {
                    let _ = writeln!(src, "    var t{s} = (acc + {k}, acc * 2); acc = t{s}.0 + t{s}.1;");
                }
                1 => {
                    let _ = writeln!(src, "    acc = acc + b.get(acc % 64) + {k};");
                }
                2 => {
                    let _ = writeln!(src, "    if (acc > {k}) acc = acc % 8191; else acc = acc + {k};");
                }
                3 => {
                    let _ = writeln!(src, "    var p{s} = ((acc, {k}), acc); acc = p{s}.0.1 + p{s}.1;");
                }
                _ => {
                    let _ = writeln!(src, "    acc = acc ^ (acc / {k} + {k});");
                }
            }
        }
        let _ = writeln!(src, "    return acc;");
        let _ = writeln!(src, "}}");
    }
    let _ = writeln!(
        src,
        "def hot(x: int) -> int {{ return (x * {a} + {b}) % 8191; }}",
        a = edit % 97 + 1,
        b = edit % 8191,
    );
    src.push_str("def main() -> int {\n    var l: List<int>;\n");
    for i in 0..6 {
        let _ = writeln!(src, "    var c{i} = C{i}.new({i}, \"x\");");
        let _ = writeln!(src, "    l = List.new(c{i}.m0({i}), l);");
    }
    src.push_str("    var acc = fold(l, plus, 0);\n");
    for f in 0..workers {
        let _ = writeln!(src, "    acc = (acc + work{f}({f})) % 1000000;");
    }
    let _ = writeln!(src, "    return acc + hot({});", edit % 1000);
    src.push_str("}\n");
    src
}
