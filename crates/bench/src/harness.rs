//! A minimal timing harness for the `benches/` targets — warmup plus a
//! fixed number of wall-clock samples per case, reporting min/median/mean.
//! It exists so the workspace builds fully offline; it makes no statistical
//! claims beyond what EXPERIMENTS.md records (medians of repeated runs).
//!
//! Sample counts honor `VGL_BENCH_SAMPLES` (and `VGL_BENCH_WARMUP`) so CI
//! can smoke-run every bench with 1 sample.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Wall-clock samples for one benchmark case.
#[derive(Clone, Debug)]
pub struct Samples {
    /// Case label, e.g. `interp_boxed/1000`.
    pub name: String,
    /// One duration per sample, in run order.
    pub times: Vec<Duration>,
}

impl Samples {
    /// Fastest sample.
    pub fn min(&self) -> Duration {
        self.times.iter().copied().min().unwrap_or_default()
    }

    /// Median sample (lower-middle for even counts).
    pub fn median(&self) -> Duration {
        if self.times.is_empty() {
            return Duration::ZERO;
        }
        let mut sorted = self.times.clone();
        sorted.sort();
        sorted[(sorted.len() - 1) / 2]
    }

    /// Mean sample.
    pub fn mean(&self) -> Duration {
        if self.times.is_empty() {
            return Duration::ZERO;
        }
        self.times.iter().sum::<Duration>() / self.times.len() as u32
    }
}

/// The shared warmup + min-of-N loop behind every `measure_*` comparison
/// in this crate (`measure_fusion`, `measure_tiered`, `measure_gc`,
/// `measure_backend`, `bench_serve`).
///
/// Calls `run` once with sample index 0 as the **untimed warmup** — its
/// timings are discarded, but side effects (thread spawn, allocator
/// growth, cold icache, cache fills) land exactly like a real sample —
/// then `samples` more times, folding the returned durations elementwise
/// with `min`. `K > 1` is for interleaved comparisons: measuring both
/// configurations inside one sample means clock drift and cache warmth
/// hit both equally, which a sequential min-of-N per configuration would
/// not guarantee. The closure receives the sample index so it can skip
/// side-channel collection (pause pooling, stats capture) on the warmup.
///
/// For a deterministic CPU-bound workload the minimum is the run with the
/// least scheduler interference — the quantity scaling and speedup claims
/// are about.
///
/// # Panics
/// If `samples` is zero — there would be no timed sample to report.
pub fn measure_min_of_n<const K: usize>(
    samples: usize,
    mut run: impl FnMut(usize) -> [Duration; K],
) -> [Duration; K] {
    assert!(samples > 0, "min-of-N needs at least one timed sample");
    let mut best: Option<[Duration; K]> = None;
    for sample in 0..=samples {
        let timed = run(sample);
        if sample > 0 {
            best = Some(match best {
                None => timed,
                Some(b) => {
                    let mut m = b;
                    for (slot, t) in m.iter_mut().zip(timed) {
                        *slot = (*slot).min(t);
                    }
                    m
                }
            });
        }
    }
    best.expect("at least one timed sample")
}

/// Runs a named group of benchmark cases and prints a table at the end.
pub struct Runner {
    group: String,
    warmup: usize,
    samples: usize,
    results: Vec<Samples>,
}

fn env_count(var: &str, default: usize) -> usize {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

impl Runner {
    /// A runner with the default 2 warmup + 10 measured iterations
    /// (overridable via `VGL_BENCH_WARMUP` / `VGL_BENCH_SAMPLES`).
    pub fn new(group: &str) -> Runner {
        Runner {
            group: group.to_string(),
            warmup: env_count("VGL_BENCH_WARMUP", 2),
            samples: env_count("VGL_BENCH_SAMPLES", 10),
            results: Vec::new(),
        }
    }

    /// Times `f`, one call per sample.
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) {
        for _ in 0..self.warmup {
            black_box(f());
        }
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            times.push(start.elapsed());
        }
        self.results.push(Samples { name: name.to_string(), times });
    }

    /// Prints the result table and returns the samples.
    pub fn finish(self) -> Vec<Samples> {
        println!("{}", self.group);
        println!(
            "{:<32} {:>12} {:>12} {:>12}",
            "case", "min (us)", "median (us)", "mean (us)"
        );
        for s in &self.results {
            println!(
                "{:<32} {:>12.1} {:>12.1} {:>12.1}",
                s.name,
                s.min().as_secs_f64() * 1e6,
                s.median().as_secs_f64() * 1e6,
                s.mean().as_secs_f64() * 1e6
            );
        }
        println!();
        self.results
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_statistics() {
        let s = Samples {
            name: "x".into(),
            times: vec![
                Duration::from_micros(30),
                Duration::from_micros(10),
                Duration::from_micros(20),
            ],
        };
        assert_eq!(s.min(), Duration::from_micros(10));
        assert_eq!(s.median(), Duration::from_micros(20));
        assert_eq!(s.mean(), Duration::from_micros(20));
        assert_eq!(Samples { name: "e".into(), times: vec![] }.median(), Duration::ZERO);
    }

    #[test]
    fn min_of_n_discards_warmup_and_takes_elementwise_min() {
        // Scripted timings: the warmup (sample 0) is the fastest on both
        // channels and must NOT win; afterwards channel 0's best is at
        // sample 2 and channel 1's at sample 3 — the fold is elementwise.
        let script = [
            [1u64, 1],   // warmup — discarded
            [50, 40],
            [20, 60],
            [30, 25],
        ];
        let mut calls = 0;
        let [a, b] = measure_min_of_n(3, |sample| {
            assert_eq!(sample, calls, "samples arrive in order");
            calls += 1;
            script[sample].map(Duration::from_micros)
        });
        assert_eq!(calls, 4, "one warmup plus three timed samples");
        assert_eq!(a, Duration::from_micros(20));
        assert_eq!(b, Duration::from_micros(25));
    }

    #[test]
    #[should_panic(expected = "at least one timed sample")]
    fn min_of_n_rejects_zero_samples() {
        measure_min_of_n(0, |_| [Duration::ZERO]);
    }

    #[test]
    fn runner_measures() {
        let mut r = Runner::new("g");
        r.samples = 3;
        r.warmup = 0;
        r.bench("case", || 1 + 1);
        let out = r.finish();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].times.len(), 3);
    }
}
