//! A minimal timing harness for the `benches/` targets — warmup plus a
//! fixed number of wall-clock samples per case, reporting min/median/mean.
//! It exists so the workspace builds fully offline; it makes no statistical
//! claims beyond what EXPERIMENTS.md records (medians of repeated runs).
//!
//! Sample counts honor `VGL_BENCH_SAMPLES` (and `VGL_BENCH_WARMUP`) so CI
//! can smoke-run every bench with 1 sample.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Wall-clock samples for one benchmark case.
#[derive(Clone, Debug)]
pub struct Samples {
    /// Case label, e.g. `interp_boxed/1000`.
    pub name: String,
    /// One duration per sample, in run order.
    pub times: Vec<Duration>,
}

impl Samples {
    /// Fastest sample.
    pub fn min(&self) -> Duration {
        self.times.iter().copied().min().unwrap_or_default()
    }

    /// Median sample (lower-middle for even counts).
    pub fn median(&self) -> Duration {
        if self.times.is_empty() {
            return Duration::ZERO;
        }
        let mut sorted = self.times.clone();
        sorted.sort();
        sorted[(sorted.len() - 1) / 2]
    }

    /// Mean sample.
    pub fn mean(&self) -> Duration {
        if self.times.is_empty() {
            return Duration::ZERO;
        }
        self.times.iter().sum::<Duration>() / self.times.len() as u32
    }
}

/// Runs a named group of benchmark cases and prints a table at the end.
pub struct Runner {
    group: String,
    warmup: usize,
    samples: usize,
    results: Vec<Samples>,
}

fn env_count(var: &str, default: usize) -> usize {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

impl Runner {
    /// A runner with the default 2 warmup + 10 measured iterations
    /// (overridable via `VGL_BENCH_WARMUP` / `VGL_BENCH_SAMPLES`).
    pub fn new(group: &str) -> Runner {
        Runner {
            group: group.to_string(),
            warmup: env_count("VGL_BENCH_WARMUP", 2),
            samples: env_count("VGL_BENCH_SAMPLES", 10),
            results: Vec::new(),
        }
    }

    /// Times `f`, one call per sample.
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) {
        for _ in 0..self.warmup {
            black_box(f());
        }
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            times.push(start.elapsed());
        }
        self.results.push(Samples { name: name.to_string(), times });
    }

    /// Prints the result table and returns the samples.
    pub fn finish(self) -> Vec<Samples> {
        println!("{}", self.group);
        println!(
            "{:<32} {:>12} {:>12} {:>12}",
            "case", "min (us)", "median (us)", "mean (us)"
        );
        for s in &self.results {
            println!(
                "{:<32} {:>12.1} {:>12.1} {:>12.1}",
                s.name,
                s.min().as_secs_f64() * 1e6,
                s.median().as_secs_f64() * 1e6,
                s.mean().as_secs_f64() * 1e6
            );
        }
        println!();
        self.results
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_statistics() {
        let s = Samples {
            name: "x".into(),
            times: vec![
                Duration::from_micros(30),
                Duration::from_micros(10),
                Duration::from_micros(20),
            ],
        };
        assert_eq!(s.min(), Duration::from_micros(10));
        assert_eq!(s.median(), Duration::from_micros(20));
        assert_eq!(s.mean(), Duration::from_micros(20));
        assert_eq!(Samples { name: "e".into(), times: vec![] }.median(), Duration::ZERO);
    }

    #[test]
    fn runner_measures() {
        let mut r = Runner::new("g");
        r.samples = 3;
        r.warmup = 0;
        r.bench("case", || 1 + 1);
        let out = r.finish();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].times.len(), 3);
    }
}
