//! # vgl-bench
//!
//! The benchmark harness that regenerates every evaluation claim of the
//! paper (see DESIGN.md's per-experiment index, E1–E6 and T1). The
//! `paper_tables` binary prints the tables recorded in EXPERIMENTS.md
//! (`--json` emits them machine-readable via `vgl_obs::json`); the
//! `benches/` directory holds the timing benches, built on the in-tree
//! [`harness`] so the workspace builds with no external dependencies.

pub mod harness;
pub mod workloads;

use std::time::{Duration, Instant};
use vgl::{Compilation, Compiler};

/// Compiles a workload or panics with rendered diagnostics (workloads are
/// trusted sources).
pub fn compile(source: &str) -> Compilation {
    match Compiler::new().compile(source) {
        Ok(c) => c,
        Err(e) => panic!("workload failed to compile:\n{e}"),
    }
}

/// Measured observations of one engine run.
#[derive(Clone, Debug)]
pub struct Measured {
    /// Wall-clock time.
    pub time: Duration,
    /// Result display form.
    pub result: Result<String, String>,
    /// Interpreter stats when applicable.
    pub interp: Option<vgl::InterpStats>,
    /// VM stats when applicable.
    pub vm: Option<vgl::VmStats>,
}

/// Runs the reference interpreter (type-argument passing) and measures it.
pub fn measure_interp(c: &Compilation) -> Measured {
    let start = Instant::now();
    let out = c.interpret();
    Measured {
        time: start.elapsed(),
        result: out.result,
        interp: out.interp_stats,
        vm: None,
    }
}

/// Runs the compiled VM and measures it.
pub fn measure_vm(c: &Compilation) -> Measured {
    let start = Instant::now();
    let out = c.execute();
    Measured {
        time: start.elapsed(),
        result: out.result,
        interp: None,
        vm: out.vm_stats,
    }
}

/// Asserts both engines agree, then returns (interp, vm) measurements.
pub fn measure_both(c: &Compilation) -> (Measured, Measured) {
    let i = measure_interp(c);
    let v = measure_vm(c);
    assert_eq!(i.result, v.result, "engines disagree");
    (i, v)
}

/// Formats a duration in microseconds with 1 decimal.
pub fn us(d: Duration) -> String {
    format!("{:.1}", d.as_secs_f64() * 1e6)
}

/// Simple fixed-width table printer.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells.to_vec());
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(&format!("{:>width$}", c, width = widths[i]));
            }
            out.push('\n');
        };
        line(&self.headers, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            line(r, &widths, &mut out);
        }
        out
    }

    /// The table as a JSON array of `{header: cell}` objects (cells stay
    /// strings — they carry formatted units).
    pub fn to_json(&self) -> vgl_obs::json::Json {
        use vgl_obs::json::Json;
        Json::Arr(
            self.rows
                .iter()
                .map(|r| {
                    let mut o = Json::object();
                    for (h, c) in self.headers.iter().zip(r) {
                        o.set(h, Json::Str(c.clone()));
                    }
                    o
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_compile_and_agree() {
        for src in [
            workloads::tuple_heavy(50),
            workloads::polymorphic(2),
            workloads::dispatch_chain(20),
            workloads::instantiations(3),
            workloads::tuple_width(4, 20),
            workloads::callsite_checks(20),
            workloads::mixed_app(5),
        ] {
            let c = compile(&src);
            let (i, v) = measure_both(&c);
            assert!(i.result.is_ok(), "{:?}", i.result);
            let _ = v;
        }
    }

    #[test]
    fn table_renders() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["1".into(), "2".into()]);
        let r = t.render();
        assert!(r.contains('1') && r.contains('b'));
    }
}
