//! # vgl-bench
//!
//! The benchmark harness that regenerates every evaluation claim of the
//! paper (see DESIGN.md's per-experiment index, E1–E6 and T1). The
//! `paper_tables` binary prints the tables recorded in EXPERIMENTS.md
//! (`--json` emits them machine-readable via `vgl_obs::json`); the
//! `benches/` directory holds the timing benches, built on the in-tree
//! [`harness`] so the workspace builds with no external dependencies.

pub mod harness;
pub mod workloads;

use std::time::{Duration, Instant};
use vgl::{Compilation, Compiler};

/// Compiles a workload or panics with rendered diagnostics (workloads are
/// trusted sources).
pub fn compile(source: &str) -> Compilation {
    match Compiler::new().compile(source) {
        Ok(c) => c,
        Err(e) => panic!("workload failed to compile:\n{e}"),
    }
}

/// Measured observations of one engine run.
#[derive(Clone, Debug)]
pub struct Measured {
    /// Wall-clock time.
    pub time: Duration,
    /// Result display form.
    pub result: Result<String, String>,
    /// Interpreter stats when applicable.
    pub interp: Option<vgl::InterpStats>,
    /// VM stats when applicable.
    pub vm: Option<vgl::VmStats>,
}

/// Runs the reference interpreter (type-argument passing) and measures it.
pub fn measure_interp(c: &Compilation) -> Measured {
    let start = Instant::now();
    let out = c.interpret();
    Measured {
        time: start.elapsed(),
        result: out.result,
        interp: out.interp_stats,
        vm: None,
    }
}

/// Runs the compiled VM and measures it.
pub fn measure_vm(c: &Compilation) -> Measured {
    let start = Instant::now();
    let out = c.execute();
    Measured {
        time: start.elapsed(),
        result: out.result,
        interp: None,
        vm: out.vm_stats,
    }
}

/// Asserts both engines agree, then returns (interp, vm) measurements.
pub fn measure_both(c: &Compilation) -> (Measured, Measured) {
    let i = measure_interp(c);
    let v = measure_vm(c);
    assert_eq!(i.result, v.result, "engines disagree");
    (i, v)
}

/// Formats a duration in microseconds with 1 decimal.
pub fn us(d: Duration) -> String {
    format!("{:.1}", d.as_secs_f64() * 1e6)
}

/// One workload measured on the VM with hotness profiling off, on
/// (default sampling mode), and on in precise mode — the E10
/// observability-overhead data point.
#[derive(Clone, Debug)]
pub struct ObsMeasurement {
    /// Workload label.
    pub name: String,
    /// Total VM time with profiling off.
    pub plain: Duration,
    /// Total VM time with the sampling hotness profiler on.
    pub profiled: Duration,
    /// Total VM time with the precise (exact inclusive/exclusive) profiler.
    pub precise: Duration,
    /// Name of the hottest function the profiled run reported.
    pub hottest: String,
    /// Back-edge ticks attributed to the hottest function.
    pub hottest_ticks: u64,
}

impl ObsMeasurement {
    /// profiled/plain − 1 — the fractional slowdown the default sampling
    /// profiler costs (what the `bench_obs` gate enforces).
    pub fn overhead(&self) -> f64 {
        self.profiled.as_secs_f64() / self.plain.as_secs_f64().max(1e-9) - 1.0
    }

    /// precise/plain − 1 — the slowdown of precise mode (reported in E10,
    /// never gated: precise mode is an offline-analysis configuration).
    pub fn overhead_precise(&self) -> f64 {
        self.precise.as_secs_f64() / self.plain.as_secs_f64().max(1e-9) - 1.0
    }
}

/// Compiles `source` once, asserts profiling changes no observable
/// behavior, then times `samples` interleaved plain/sampling/precise run
/// triples and reports the **summed** time per mode. Sums (equivalently,
/// means) beat medians of single runs here: one run is a few milliseconds,
/// where scheduler noise swamps a single-digit-percent effect; the
/// interleaved sum sees every run and cancels drift across modes.
pub fn measure_obs(name: &str, source: &str, samples: usize) -> ObsMeasurement {
    let c = compile(source);
    let plain_out = c.execute();
    let (profiled_out, hotness) = c.execute_hotness_profiled();
    let (precise_out, precise_hotness) = c.execute_hotness_profiled_precise();
    assert_eq!(plain_out.result, profiled_out.result, "{name}: profiling changed the result");
    assert_eq!(plain_out.output, profiled_out.output, "{name}: profiling changed the output");
    assert_eq!(plain_out.result, precise_out.result, "{name}: precise mode changed the result");
    for (a, b) in hotness.rows.iter().zip(precise_hotness.rows.iter()) {
        assert_eq!(a.calls, b.calls, "{name}: modes disagree on call counts");
        assert_eq!(a.ticks, b.ticks, "{name}: modes disagree on ticks");
    }
    let (mut tp, mut to, mut tq) =
        (Duration::ZERO, Duration::ZERO, Duration::ZERO);
    for _ in 0..samples {
        let start = Instant::now();
        let _ = c.execute();
        tp += start.elapsed();
        let start = Instant::now();
        let _ = c.execute_hotness_profiled();
        to += start.elapsed();
        let start = Instant::now();
        let _ = c.execute_hotness_profiled_precise();
        tq += start.elapsed();
    }
    let top = hotness.hotness_ranked(&c.program).into_iter().next();
    ObsMeasurement {
        name: name.to_string(),
        plain: tp,
        profiled: to,
        precise: tq,
        hottest: top.as_ref().map(|r| r.name.to_string()).unwrap_or_default(),
        hottest_ticks: top.map(|r| r.ticks).unwrap_or(0),
    }
}

/// One workload measured on the VM with the bytecode back-end optimizer
/// (superinstruction fusion + inline caches) off and on — the E8 data point.
#[derive(Clone, Debug)]
pub struct FusionMeasurement {
    /// Workload label.
    pub name: String,
    /// Best (min-of-N after warmup) VM time without fusion.
    pub unfused: Duration,
    /// Best (min-of-N after warmup) VM time with fusion.
    pub fused: Duration,
    /// Static instruction count before the fusion pass.
    pub instrs_before: usize,
    /// Static instruction count after.
    pub instrs_after: usize,
    /// Inline-cache hit rate of the fused run.
    pub ic_hit_rate: f64,
    /// Share of retired instructions that were superinstructions.
    pub super_share: f64,
}

impl FusionMeasurement {
    /// unfused/fused — above 1.0 means fusion wins.
    pub fn speedup(&self) -> f64 {
        self.unfused.as_secs_f64() / self.fused.as_secs_f64().max(1e-9)
    }
}

/// Compiles `source` twice (fusion off/on), asserts both programs behave
/// identically, and reports interleaved timings plus the fused run's IC and
/// superinstruction attribution. Like [`measure_backend`], one untimed
/// warmup pair precedes `samples` timed pairs and the **minimum** per
/// engine is reported: for a deterministic CPU-bound run the minimum is
/// the sample with the least scheduler interference, and interleaving
/// makes clock drift and cache warmth hit both engines equally.
pub fn measure_fusion(name: &str, source: &str, samples: usize) -> FusionMeasurement {
    let unfused = match Compiler::new().without_fuse().compile(source) {
        Ok(c) => c,
        Err(e) => panic!("workload failed to compile:\n{e}"),
    };
    let fused = match Compiler::new().with_fuse().compile(source) {
        Ok(c) => c,
        Err(e) => panic!("workload failed to compile:\n{e}"),
    };
    let a = unfused.execute();
    let b = fused.execute();
    assert_eq!(a.result, b.result, "{name}: fusion changed the result");
    assert_eq!(a.output, b.output, "{name}: fusion changed the output");
    let stats = b.vm_stats.as_ref().expect("vm stats");
    assert_eq!(stats.heap.tuple_boxes, 0, "{name}: fused run boxed a tuple");
    let [tu, tf] = harness::measure_min_of_n(samples, |_| {
        [measure_vm(&unfused).time, measure_vm(&fused).time]
    });
    let (_, profile) = fused.execute_profiled();
    FusionMeasurement {
        name: name.to_string(),
        unfused: tu,
        fused: tf,
        instrs_before: fused.fuse.instrs_before,
        instrs_after: fused.fuse.instrs_after,
        ic_hit_rate: stats.ic_hit_rate(),
        super_share: profile.super_share(),
    }
}

/// One workload measured with static whole-program fusion vs the tiered
/// back end (unfused start, hot functions re-fuse themselves with their own
/// runtime profile and inline-cache feedback) — the E11 data point.
#[derive(Clone, Debug)]
pub struct TieredMeasurement {
    /// Workload label.
    pub name: String,
    /// Best (min-of-N after warmup) VM time with static fusion.
    pub fused: Duration,
    /// Best (min-of-N after warmup) VM time with runtime tiering.
    pub tiered: Duration,
    /// Functions tiered up (re-fusions, including re-tiers) in one run.
    pub tier_ups: u64,
    /// Guard-failure deoptimizations in one run.
    pub deopts: u64,
    /// Virtual calls that went through a speculated class guard.
    pub guarded_calls: u64,
    /// Guarded calls whose callee was inlined to a micro-op (no frame).
    pub inlined_calls: u64,
}

impl TieredMeasurement {
    /// fused/tiered — above 1.0 means the tiered back end beats static
    /// fusion (the warmup knee is inside the tiered measurement).
    pub fn speedup(&self) -> f64 {
        self.fused.as_secs_f64() / self.tiered.as_secs_f64().max(1e-9)
    }
}

/// Compiles `source` twice — static fusion vs tiering (which starts from
/// the unfused baseline and re-fuses at runtime) — asserts both behave
/// identically, and reports interleaved warmup + min-of-N timings plus the
/// tiered run's speculation counters. Every tiered sample re-warms from the
/// cold tier, so the warmup knee is honestly inside the measurement.
pub fn measure_tiered(name: &str, source: &str, samples: usize) -> TieredMeasurement {
    let fused = match Compiler::new().with_fuse().compile(source) {
        Ok(c) => c,
        Err(e) => panic!("workload failed to compile:\n{e}"),
    };
    let tiered = match Compiler::new().with_tiering().compile(source) {
        Ok(c) => c,
        Err(e) => panic!("workload failed to compile:\n{e}"),
    };
    let a = fused.execute();
    let b = tiered.execute();
    assert_eq!(a.result, b.result, "{name}: tiering changed the result");
    assert_eq!(a.output, b.output, "{name}: tiering changed the output");
    let stats = b.vm_stats.as_ref().expect("vm stats");
    assert_eq!(stats.heap.tuple_boxes, 0, "{name}: tiered run boxed a tuple");
    assert!(stats.tier_ups > 0, "{name}: workload never tiered up");
    let [tf, tt] = harness::measure_min_of_n(samples, |_| {
        [measure_vm(&fused).time, measure_vm(&tiered).time]
    });
    TieredMeasurement {
        name: name.to_string(),
        fused: tf,
        tiered: tt,
        tier_ups: stats.tier_ups,
        deopts: stats.deopts,
        guarded_calls: stats.guarded_calls,
        inlined_calls: stats.inlined_calls,
    }
}

/// One server workload measured under the pure semispace collector vs the
/// generational collector at equal heap capacity — the E12 data point.
#[derive(Clone, Debug)]
pub struct GcMeasurement {
    /// Workload label.
    pub name: String,
    /// p99 GC pause under the semispace collector (nursery disabled),
    /// pooled over every collection in every sample run.
    pub semi_p99: Duration,
    /// p99 GC pause under the generational collector, pooled likewise over
    /// minor *and* major pauses — majors are not allowed to hide.
    pub gen_p99: Duration,
    /// Best (min-of-N after warmup) wall-clock VM time, semispace.
    pub semi_time: Duration,
    /// Best (min-of-N after warmup) wall-clock VM time, generational.
    pub gen_time: Duration,
    /// Collections per run under the semispace collector (all majors).
    pub semi_collections: u64,
    /// Minor collections per run under the generational collector.
    pub gen_minors: u64,
    /// Major collections per run under the generational collector.
    pub gen_majors: u64,
}

impl GcMeasurement {
    /// gen_p99 / semi_p99 — below 1.0 means the generational collector
    /// pauses shorter at the tail (the `bench_gc` gate wants ≤ 0.5 on the
    /// steady-state server workload).
    pub fn pause_ratio(&self) -> f64 {
        self.gen_p99.as_secs_f64() / self.semi_p99.as_secs_f64().max(1e-9)
    }

    /// semi_time / gen_time — at or above 1.0 means the nursery costs no
    /// throughput ("equal throughput" in the gate allows a small tolerance
    /// for the write-barrier tax).
    pub fn throughput_ratio(&self) -> f64 {
        self.semi_time.as_secs_f64() / self.gen_time.as_secs_f64().max(1e-9)
    }
}

/// p99 by rank over the pooled pauses: the value below which 99% of pauses
/// fall. Zero when nothing collected.
fn pause_p99(pauses: &mut [Duration]) -> Duration {
    if pauses.is_empty() {
        return Duration::ZERO;
    }
    pauses.sort();
    let idx = ((pauses.len() as f64 - 1.0) * 0.99).ceil() as usize;
    pauses[idx.min(pauses.len() - 1)]
}

/// Compiles `source` twice — nursery disabled (pure semispace) vs a
/// `nursery_slots` young generation, both at `heap_slots` total capacity —
/// asserts the collector choice changes no observable behavior, then runs
/// `samples` interleaved pairs. Pauses are pooled across all profiled
/// sample runs before taking p99 (a single run rarely collects often
/// enough for a stable tail); wall-clock is min-of-N from untimed-warmup
/// interleaved pairs, like every other timing in this harness.
pub fn measure_gc(
    name: &str,
    source: &str,
    heap_slots: usize,
    nursery_slots: usize,
    samples: usize,
) -> GcMeasurement {
    let compile_with = |nursery: usize| {
        let options = vgl::Options {
            heap_slots,
            nursery_slots: nursery,
            ..Default::default()
        };
        match Compiler::with_options(options).compile(source) {
            Ok(c) => c,
            Err(e) => panic!("workload failed to compile:\n{e}"),
        }
    };
    let semi = compile_with(0);
    let generational = compile_with(nursery_slots);
    let a = semi.execute();
    let b = generational.execute();
    assert_eq!(a.result, b.result, "{name}: the nursery changed the result");
    assert_eq!(a.output, b.output, "{name}: the nursery changed the output");
    let gen_stats = b.vm_stats.as_ref().expect("vm stats");
    assert_eq!(gen_stats.heap.tuple_boxes, 0, "{name}: generational run boxed a tuple");

    let mut semi_pauses: Vec<Duration> = Vec::new();
    let mut gen_pauses: Vec<Duration> = Vec::new();
    let (mut semi_collections, mut gen_minors, mut gen_majors) = (0u64, 0u64, 0u64);
    let [ts, tg] = harness::measure_min_of_n(samples, |sample| {
        let start = Instant::now();
        let (_, sp) = semi.execute_profiled();
        let s = start.elapsed();
        let start = Instant::now();
        let (_, gp) = generational.execute_profiled();
        let g = start.elapsed();
        if sample > 0 {
            semi_pauses.extend(sp.gc_events.iter().map(|e| e.pause));
            gen_pauses.extend(gp.gc_events.iter().map(|e| e.pause));
            semi_collections = sp.gc_events.len() as u64;
            gen_minors = gp
                .gc_events
                .iter()
                .filter(|e| e.kind == vgl::GcKind::Minor)
                .count() as u64;
            gen_majors = gp.gc_events.len() as u64 - gen_minors;
        }
        [s, g]
    });
    GcMeasurement {
        name: name.to_string(),
        semi_p99: pause_p99(&mut semi_pauses),
        gen_p99: pause_p99(&mut gen_pauses),
        semi_time: ts,
        gen_time: tg,
        semi_collections,
        gen_minors,
        gen_majors,
    }
}

/// One back-end configuration measured on one workload — the E9 data point.
#[derive(Clone, Debug)]
pub struct BackendMeasurement {
    /// Workload label.
    pub name: String,
    /// Thread count the back half ran with.
    pub jobs: usize,
    /// Whether the per-instance pass cache was on.
    pub cache: bool,
    /// Best (min-of-N after warmup) wall-clock time of the back half
    /// (mono → fuse).
    pub time: Duration,
    /// Normalize-pass instance-cache stats from the last sample.
    pub norm_cache: vgl::CacheStats,
    /// Optimize-pass instance-cache stats from the last sample.
    pub opt_cache: vgl::CacheStats,
}

/// Times the back half of the pipeline (mono → normalize → optimize →
/// joined lower+fuse) at one `(jobs, cache)` configuration. The front end
/// runs outside the timer — it is identical across configurations — but
/// monomorphization is timed: with the cache on it streams instances to
/// hash workers ([`vgl_passes::monomorphize_cfg`]), and hiding that overlap
/// from the clock would overstate the cache rows.
///
/// One untimed warmup run precedes the samples: the first run pays thread
/// spawn, allocator growth, and cold icache for every configuration alike,
/// and a scaling comparison should not be decided by who went first.
/// Returns the **minimum** of `samples` timed runs — for a deterministic
/// CPU-bound workload the minimum is the run with the least scheduler
/// interference, which is the quantity the scaling claim is about.
pub fn measure_backend(
    name: &str,
    source: &str,
    jobs: usize,
    cache: bool,
    samples: usize,
) -> BackendMeasurement {
    let mut diags = vgl_syntax::Diagnostics::new();
    let ast = vgl_syntax::parse_program(source, &mut diags);
    assert!(!diags.has_errors(), "{name}: workload failed to parse");
    let module = vgl_sema::analyze(&ast, &mut diags)
        .unwrap_or_else(|| panic!("{name}: workload failed to analyze"));
    let cfg = vgl_passes::BackendConfig { jobs, cache, chunking: true };
    let mut report = vgl::BackendReport::default();
    let [time] = harness::measure_min_of_n(samples, |_| {
        report = vgl::BackendReport { jobs, ..Default::default() };
        let start = Instant::now();
        let (mut m, _) = vgl_passes::monomorphize_cfg(&module, &cfg, &mut report);
        vgl_passes::normalize_cfg(&mut m, &cfg, &mut report);
        vgl_passes::optimize_cfg(&mut m, &cfg, &mut report);
        let (_prog, _, _) = vgl_vm::lower_fuse(&m, &cfg);
        [start.elapsed()]
    });
    BackendMeasurement {
        name: name.to_string(),
        jobs,
        cache,
        time,
        norm_cache: report.norm_cache,
        opt_cache: report.opt_cache,
    }
}

/// Simple fixed-width table printer.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells.to_vec());
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(&format!("{:>width$}", c, width = widths[i]));
            }
            out.push('\n');
        };
        line(&self.headers, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            line(r, &widths, &mut out);
        }
        out
    }

    /// The table as a JSON array of `{header: cell}` objects (cells stay
    /// strings — they carry formatted units).
    pub fn to_json(&self) -> vgl_obs::json::Json {
        use vgl_obs::json::Json;
        Json::Arr(
            self.rows
                .iter()
                .map(|r| {
                    let mut o = Json::object();
                    for (h, c) in self.headers.iter().zip(r) {
                        o.set(h, Json::Str(c.clone()));
                    }
                    o
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_compile_and_agree() {
        for src in [
            workloads::tuple_heavy(50),
            workloads::polymorphic(2),
            workloads::dispatch_chain(20),
            workloads::instantiations(3),
            workloads::tuple_width(4, 20),
            workloads::callsite_checks(20),
            workloads::mixed_app(5),
            workloads::server_churn(200),
            workloads::server_cache(200),
            workloads::server_steady(200),
        ] {
            let c = compile(&src);
            let (i, v) = measure_both(&c);
            assert!(i.result.is_ok(), "{:?}", i.result);
            let _ = v;
        }
    }

    #[test]
    fn table_renders() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["1".into(), "2".into()]);
        let r = t.render();
        assert!(r.contains('1') && r.contains('b'));
    }
}
