//! Regenerates every table/figure-equivalent of the paper's evaluation
//! (see DESIGN.md per-experiment index). Run `cargo run --release -p
//! vgl-bench --bin paper_tables` and paste the output into EXPERIMENTS.md.
//!
//! Usage: `paper_tables [--json] [t1|e1|e2|e3|e4|e5|e6|e7|e8|all]`
//!
//! With `--json`, the selected tables are emitted as one JSON object
//! (`{"e1": [...], ...}`, one array of row objects per experiment) instead
//! of rendered text — the machine-readable counterpart of EXPERIMENTS.md.

use vgl_bench::workloads;
use vgl_bench::{compile, measure_both, us, Table};
use vgl_obs::json::Json;

/// Print mode or JSON-accumulation mode for the experiment tables.
struct Emit {
    json: Option<Json>,
}

impl Emit {
    fn section(&mut self, key: &str, title: &str, table: &Table, note: &str) {
        match &mut self.json {
            Some(root) => root.set(key, table.to_json()),
            None => {
                println!("{title}");
                println!("{}", table.render());
                if !note.is_empty() {
                    println!("{note}\n");
                }
            }
        }
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    args.retain(|a| a != "--json");
    let which = args.into_iter().next().unwrap_or_else(|| "all".to_string());
    let mut em = Emit { json: json.then(Json::object) };
    let all = which == "all";
    if all || which == "t1" {
        t1(&mut em);
    }
    if all || which == "e1" {
        e1(&mut em);
    }
    if all || which == "e2" {
        e2(&mut em);
    }
    if all || which == "e3" {
        e3(&mut em);
    }
    if all || which == "e4" {
        e4(&mut em);
    }
    if all || which == "e5" {
        e5(&mut em);
    }
    if all || which == "e6" {
        e6(&mut em);
    }
    if all || which == "e7" {
        e7(&mut em);
    }
    if all || which == "e8" {
        e8(&mut em);
    }
    if let Some(root) = em.json {
        println!("{root}");
    }
}

/// E7 — compile throughput (§5: "the Virgil compiler ... compiles very
/// fast"). Measures the whole pipeline: parse → typecheck → monomorphize →
/// normalize → optimize → lower to bytecode.
fn e7(em: &mut Emit) {
    let mut t = Table::new(&[
        "classes k",
        "source lines",
        "compile time (ms, best of 3)",
        "lines/sec",
        "bytecode instrs",
    ]);
    for k in [10usize, 50, 200] {
        let src = workloads::big_program(k);
        let lines = src.lines().count();
        let mut best = None;
        let mut instrs = 0;
        for _ in 0..3 {
            let start = std::time::Instant::now();
            let c = compile(&src);
            let dt = start.elapsed();
            instrs = c.code_size();
            best = Some(match best {
                None => dt,
                Some(b) if dt < b => dt,
                Some(b) => b,
            });
        }
        let best = best.expect("ran");
        t.row(&[
            k.to_string(),
            lines.to_string(),
            format!("{:.1}", best.as_secs_f64() * 1e3),
            format!("{:.0}", lines as f64 / best.as_secs_f64()),
            instrs.to_string(),
        ]);
    }
    em.section(
        "e7",
        "== E7: compile throughput (§5 'compiles very fast') ==",
        &t,
        "shape check: compile time scales roughly linearly with program size.",
    );
}

/// E8 — the bytecode back-end optimizer (superinstruction fusion + inline
/// caches): fused vs unfused VM medians on the E2/E3 runtime workloads,
/// with the fused run's IC hit rate and superinstruction attribution.
fn e8(em: &mut Emit) {
    let mut t = Table::new(&[
        "workload",
        "instrs (unfused -> fused)",
        "vm unfused (us, median)",
        "vm fused (us, median)",
        "speedup",
        "ic hit rate",
        "super share",
    ]);
    for (name, src) in [
        ("E2 polymorphic(200)", workloads::polymorphic(200)),
        ("E3 dispatch_chain(20000)", workloads::dispatch_chain(20_000)),
    ] {
        let m = vgl_bench::measure_fusion(name, &src, 10);
        t.row(&[
            m.name.clone(),
            format!("{} -> {}", m.instrs_before, m.instrs_after),
            us(m.unfused),
            us(m.fused),
            format!("{:.2}x", m.speedup()),
            format!("{:.1}%", m.ic_hit_rate * 100.0),
            format!("{:.1}%", m.super_share * 100.0),
        ]);
    }
    em.section(
        "e8",
        "== E8: bytecode back-end optimizer — fusion + inline caches ==",
        &t,
        "shape check: fused medians beat unfused on both runtime workloads; the \
         superinstruction share explains where the cycles went.",
    );
}

/// T1 — the §2.5 type-constructor summary table, printed from the live
/// type-system data (variance verified by the vgl-types test suite).
fn t1(em: &mut Emit) {
    let mut t = Table::new(&["Typecon", "Type Parameters", "Syntax"]);
    for row in vgl::constructor_summary() {
        let params = if row.params.is_empty() {
            "—".to_string()
        } else {
            row.params
                .iter()
                .map(|v| match v {
                    vgl::Variance::Invariant => "T (invariant)",
                    vgl::Variance::Covariant => "▷T (covariant)",
                    vgl::Variance::Contravariant => "◁T (contravariant)",
                })
                .collect::<Vec<_>>()
                .join(" · ")
        };
        t.row(&[row.constructor.to_string(), params, row.syntax.to_string()]);
    }
    em.section("t1", "== T1: type constructor summary (paper §2.5 table) ==", &t, "");
}

/// E1 — normalization removes all tuple boxing (§4.2).
fn e1(em: &mut Emit) {
    let mut t = Table::new(&[
        "n (iterations)",
        "interp tuple boxes",
        "interp time (us)",
        "vm tuple boxes",
        "vm explicit allocs",
        "vm time (us)",
    ]);
    for n in [1_000usize, 10_000, 100_000] {
        let c = compile(&workloads::tuple_heavy(n));
        let (i, v) = measure_both(&c);
        let is = i.interp.expect("interp stats");
        let vs = v.vm.expect("vm stats");
        t.row(&[
            n.to_string(),
            is.allocs.tuples.to_string(),
            us(i.time),
            vs.heap.tuple_boxes.to_string(),
            (vs.heap.objects + vs.heap.arrays).to_string(),
            us(v.time),
        ]);
    }
    em.section(
        "e1",
        "== E1: tuple boxing — interpreter vs compiled VM (§4.2) ==",
        &t,
        "shape check: interpreter boxes grow linearly with n; VM boxes are always 0.",
    );
}

/// E2 — monomorphized execution vs type-argument-passing interpretation
/// (§4.3: the interpreter strategy "exacts a considerable runtime cost").
fn e2(em: &mut Emit) {
    let mut t = Table::new(&[
        "rounds",
        "interp time (us)",
        "interp type substs",
        "vm time (us)",
        "speedup",
    ]);
    for n in [10usize, 50, 200] {
        let c = compile(&workloads::polymorphic(n));
        let (i, v) = measure_both(&c);
        let is = i.interp.expect("interp stats");
        let speed = i.time.as_secs_f64() / v.time.as_secs_f64();
        t.row(&[
            n.to_string(),
            us(i.time),
            is.type_substitutions.to_string(),
            us(v.time),
            format!("{speed:.1}x"),
        ]);
    }
    em.section(
        "e2",
        "== E2: monomorphization vs type-argument passing (§4.3) ==",
        &t,
        "shape check: compiled wins on polymorphic code; no type info is passed at runtime.",
    );
}

/// E3 — §3.3: the type-query dispatch chain folds away after specialization.
fn e3(em: &mut Emit) {
    let n = 20_000;
    let src = workloads::dispatch_chain(n);
    let with_opt = compile(&src);
    let without = vgl::Compiler::new()
        .without_optimizer()
        .compile(&src)
        .expect("compiles");
    let best = |c: &vgl::Compilation| {
        let mut best_time = None;
        let mut instrs = 0;
        for _ in 0..5 {
            let m = vgl_bench::measure_vm(c);
            instrs = m.vm.expect("vm stats").instrs;
            best_time = Some(match best_time {
                None => m.time,
                Some(b) if m.time < b => m.time,
                Some(b) => b,
            });
        }
        (best_time.expect("ran"), instrs)
    };
    let (t_opt, i_opt) = best(&with_opt);
    let (t_raw, i_raw) = best(&without);
    let mut t = Table::new(&[
        "configuration",
        "queries folded",
        "branches folded",
        "bytecode size",
        "vm instrs",
        "vm time (us, best of 5)",
    ]);
    t.row(&[
        "specialize + fold (paper)".into(),
        with_opt.stats.opt.queries_folded.to_string(),
        with_opt.stats.opt.branches_folded.to_string(),
        with_opt.code_size().to_string(),
        i_opt.to_string(),
        us(t_opt),
    ]);
    t.row(&[
        "specialize only (ablation)".into(),
        without.stats.opt.queries_folded.to_string(),
        without.stats.opt.branches_folded.to_string(),
        without.code_size().to_string(),
        i_raw.to_string(),
        us(t_raw),
    ]);
    em.section(
        "e3",
        "== E3: dispatch-chain folding (§3.3 print1 claim) ==",
        &t,
        "shape check: with folding, dispatch is \"just as efficient as if the caller had \
         called the appropriate print* method directly\".",
    );
}

/// E4 — code expansion from monomorphization (§4.3 tradeoffs, §6.1).
fn e4(em: &mut Emit) {
    let mut t = Table::new(&[
        "instantiations k",
        "IR nodes before",
        "IR nodes after mono",
        "expansion",
        "method instances",
        "bytecode size",
    ]);
    for k in [1usize, 2, 4, 8, 16] {
        let c = compile(&workloads::instantiations(k));
        t.row(&[
            k.to_string(),
            c.stats.size_before.expr_nodes.to_string(),
            c.stats.size_after_mono.expr_nodes.to_string(),
            format!("{:.2}x", c.expansion_ratio()),
            c.stats.mono.method_instances.to_string(),
            c.code_size().to_string(),
        ]);
    }
    em.section(
        "e4",
        "== E4: code expansion vs distinct instantiations (§4.3/§6.1) ==",
        &t,
        "shape check: expansion grows linearly in distinct instantiations (no sharing).",
    );
}

/// E5 — tuple width sweep (§4.2 tradeoffs: "large tuples might actually
/// perform better if allocated on the heap").
fn e5(em: &mut Emit) {
    let n = 20_000;
    let mut t = Table::new(&[
        "width w",
        "interp (boxed) time (us)",
        "vm (flattened) time (us)",
        "flattened/boxed",
    ]);
    for w in [1usize, 2, 4, 8, 16, 32] {
        let c = compile(&workloads::tuple_width(w, n));
        let (i, v) = measure_both(&c);
        let ratio = v.time.as_secs_f64() / i.time.as_secs_f64();
        t.row(&[
            w.to_string(),
            us(i.time),
            us(v.time),
            format!("{ratio:.2}"),
        ]);
    }
    em.section(
        "e5",
        "== E5: tuple width — flattened scalars vs boxed records (§4.2 tradeoffs) ==",
        &t,
        "shape check: flattening wins strongly at small widths; the per-element cost \
         grows with w (the paper's predicted crossover pressure for large tuples).",
    );
}

/// E6 — §4.1: dynamic calling-convention checks at first-class call sites.
fn e6(em: &mut Emit) {
    let mut t = Table::new(&[
        "calls n",
        "interp checks",
        "interp adaptations",
        "interp tuple boxes",
        "vm checks",
        "vm closure calls",
    ]);
    for n in [1_000usize, 10_000] {
        let c = compile(&workloads::callsite_checks(n));
        let (i, v) = measure_both(&c);
        let is = i.interp.expect("interp stats");
        let vs = v.vm.expect("vm stats");
        t.row(&[
            n.to_string(),
            is.callsite_checks.to_string(),
            is.callsite_adaptations.to_string(),
            is.allocs.tuples.to_string(),
            "0 (structurally absent)".into(),
            vs.closure_calls.to_string(),
        ]);
    }
    em.section(
        "e6",
        "== E6: first-class call-site checks (§4.1) ==",
        &t,
        "shape check: the interpreter checks every first-class call and adapts \
         (boxes/unboxes) when conventions mismatch; after normalization \"all method \
         calls pass scalar arguments\" and the check does not exist.",
    );
}
