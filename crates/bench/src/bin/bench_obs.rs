//! CI bench-smoke for the observability layer: times the VM on the E2/E3
//! workloads with the hotness profiler off, on (default sampling mode),
//! and on in precise mode; writes the timings to `BENCH_obs.json`; and
//! **fails (exit 1) if the default profiler costs more than 5%** on any
//! workload — the profiler's low-overhead contract (a call counter per
//! call and a tick per back-edge; no per-instruction work). Precise mode
//! (exact inclusive/exclusive accounting) is reported but never gated —
//! it is an offline-analysis configuration, not production telemetry.
//!
//! The correctness half of the contract (identical result and output with
//! profiling on) is asserted inside [`vgl_bench::measure_obs`] before any
//! timing happens.
//!
//! Usage: `cargo run --release -p vgl-bench --bin bench_obs [out.json]`
//! Sample count honors `VGL_BENCH_SAMPLES` (default 30); each sample is
//! one interleaved plain/sampling/precise run triple and the reported
//! time is the per-mode sum. Each workload is measured `TRIALS` times and
//! the trial with the lowest gated overhead is kept: the gate is
//! one-sided (it only fails on a regression), so taking the quietest
//! trial filters scheduler noise without hiding a real slowdown — a true
//! regression shows up in every trial.

use std::process::ExitCode;
use vgl_bench::{measure_obs, workloads, ObsMeasurement};
use vgl_obs::json::Json;

const GATE_OVERHEAD: f64 = 0.05;
const TRIALS: usize = 3;

fn row_json(m: &ObsMeasurement) -> Json {
    let mut o = Json::object();
    o.set("workload", Json::Str(m.name.clone()));
    o.set("plain_us", Json::Num(m.plain.as_secs_f64() * 1e6));
    o.set("profiled_us", Json::Num(m.profiled.as_secs_f64() * 1e6));
    o.set("precise_us", Json::Num(m.precise.as_secs_f64() * 1e6));
    o.set("overhead", Json::Num(m.overhead()));
    o.set("overhead_precise", Json::Num(m.overhead_precise()));
    o.set("hottest", Json::Str(m.hottest.clone()));
    o.set("hottest_ticks", Json::from(m.hottest_ticks));
    o
}

fn main() -> ExitCode {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_obs.json".to_string());
    let samples = std::env::var("VGL_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n: &usize| n > 0)
        .unwrap_or(30);

    let cases = [
        ("polymorphic(200)", workloads::polymorphic(200)),
        ("dispatch_chain(20000)", workloads::dispatch_chain(20_000)),
    ];

    println!(
        "{:<24} {:>12} {:>14} {:>10} {:>10}  hottest",
        "workload", "plain (us)", "profiled (us)", "overhead", "precise"
    );
    let mut rows = Vec::new();
    let mut worst: f64 = 0.0;
    let mut measurements = Vec::new();
    for (name, src) in &cases {
        let m = (0..TRIALS)
            .map(|_| measure_obs(name, src, samples))
            .min_by(|a, b| a.overhead().total_cmp(&b.overhead()))
            .expect("at least one trial");
        println!(
            "{:<24} {:>12.1} {:>14.1} {:>9.2}% {:>9.2}%  {} ({} ticks)",
            m.name,
            m.plain.as_secs_f64() * 1e6,
            m.profiled.as_secs_f64() * 1e6,
            m.overhead() * 100.0,
            m.overhead_precise() * 100.0,
            m.hottest,
            m.hottest_ticks,
        );
        worst = worst.max(m.overhead());
        rows.push(row_json(&m));
        measurements.push(m);
    }

    let mut root = Json::object();
    root.set("samples", Json::from(samples));
    root.set("trials", Json::from(TRIALS as u64));
    root.set("gate_overhead", Json::Num(GATE_OVERHEAD));
    root.set("worst_overhead", Json::Num(worst));
    root.set("rows", Json::Arr(rows));
    if let Err(e) = std::fs::write(&out_path, format!("{root}\n")) {
        eprintln!("bench_obs: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path}");
    if worst > GATE_OVERHEAD {
        let offender = measurements
            .iter()
            .max_by(|a, b| a.overhead().total_cmp(&b.overhead()))
            .expect("at least one workload");
        eprintln!(
            "bench_obs: REGRESSION — hotness profiling costs {:.2}% on {} \
             (gate: {:.0}%)",
            offender.overhead() * 100.0,
            offender.name,
            GATE_OVERHEAD * 100.0
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
