//! CI bench-smoke for the parallel/cached back end: times the back half of
//! the pipeline (mono → normalize → optimize → joined lower+fuse) on the E9
//! instance-fan-out workloads, writes min-of-N times to
//! `BENCH_compile.json`, and gates two claims:
//!
//! 1. **Cache gate (every machine):** the configuration tuned for this
//!    host (jobs = min(8, cores), instance cache on) must be ≥ 1.3× faster
//!    than the seed baseline (jobs = 1, cache off) on the
//!    duplicate-instance workload. The cache win is core-count
//!    independent, so this gate never relaxes — but nobody runs jobs = 8
//!    on a single-core host, so the gated row is the one a user would
//!    actually pick there (`tuned_jobs` in the report says which).
//! 2. **Parallelism gate (machine-aware):** on the cache-hostile distinct
//!    workload, with the cache off so parallelism is the only lever, jobs=8
//!    must be ≥ 3× faster than jobs = 1 — but only when the machine can
//!    physically deliver that (≥ 8 available cores). On smaller machines
//!    the gate degrades to an overhead bound: jobs = 8 may cost at most
//!    1.5× the serial time, i.e. threads must stay cheap even when they
//!    cannot help. The mode in force is recorded in the report as
//!    `parallel_gate`.
//!
//! Honesty rules: the seed baseline is measured and recorded for **every**
//! workload — every row can answer "faster than what?" against the same
//! file. The host's `available_parallelism` is recorded so a reader can
//! judge the scaling rows. A jobs > 1 row that is more than 10% slower
//! than its jobs = 1 counterpart **on a host with at least that many
//! cores** is printed as a visible warning and recorded in the report's
//! `warnings` array rather than silently buried in the rows (the 10% band
//! absorbs residual scheduler noise that min-of-N cannot). Rows the host
//! cannot parallelize (jobs > cores) are recorded but not judged — thread
//! overhead there is expected, and pretending otherwise would train
//! readers to ignore the warnings that matter.
//!
//! Usage: `cargo run --release -p vgl-bench --bin bench_compile [out.json]`
//! Sample count honors `VGL_BENCH_SAMPLES` (default 10).

use std::process::ExitCode;
use vgl_bench::{measure_backend, workloads, BackendMeasurement};
use vgl_obs::json::Json;

const CACHE_GATE_SPEEDUP: f64 = 1.3;
const PARALLEL_GATE_SPEEDUP: f64 = 3.0;
const PARALLEL_GATE_CORES: usize = 8;
const OVERHEAD_TOLERANCE: f64 = 1.5;
const WARN_TOLERANCE: f64 = 1.10;

fn row_json(m: &BackendMeasurement) -> Json {
    let mut o = Json::object();
    o.set("workload", Json::Str(m.name.clone()));
    o.set("jobs", Json::from(m.jobs));
    o.set("cache", Json::Bool(m.cache));
    o.set("time_us", Json::Num(m.time.as_secs_f64() * 1e6));
    o.set("norm_hit_rate", Json::Num(m.norm_cache.hit_rate()));
    o.set("opt_hit_rate", Json::Num(m.opt_cache.hit_rate()));
    o
}

fn print_row(m: &BackendMeasurement, baseline: &BackendMeasurement) {
    println!(
        "{:<28} {:>4} {:>6} {:>12.1} {:>8.2}x {:>9.0}% {:>9.0}%",
        m.name,
        m.jobs,
        if m.cache { "on" } else { "off" },
        m.time.as_secs_f64() * 1e6,
        baseline.time.as_secs_f64() / m.time.as_secs_f64().max(1e-9),
        m.norm_cache.hit_rate() * 100.0,
        m.opt_cache.hit_rate() * 100.0,
    );
}

fn speedup_of(baseline: &BackendMeasurement, m: &BackendMeasurement) -> f64 {
    baseline.time.as_secs_f64() / m.time.as_secs_f64().max(1e-9)
}

fn main() -> ExitCode {
    let out_path =
        std::env::args().nth(1).unwrap_or_else(|| "BENCH_compile.json".to_string());
    let samples = std::env::var("VGL_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n: &usize| n > 0)
        .unwrap_or(10);
    let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    let full_parallel_gate = cores >= PARALLEL_GATE_CORES;
    // Tuned = the largest measured job count this host has cores for.
    let tuned_jobs = *[8usize, 4, 2, 1].iter().find(|&&j| cores >= j).unwrap_or(&1);
    let dup = workloads::instance_fanout_dup(96);
    let distinct = workloads::instance_fanout_distinct(96);

    println!("host: {cores} core(s) available; {samples} samples, min-of-N after warmup");
    println!(
        "{:<28} {:>4} {:>6} {:>12} {:>9} {:>10} {:>10}",
        "workload", "jobs", "cache", "best (us)", "speedup", "norm hit%", "opt hit%"
    );
    let mut rows = Vec::new();
    let mut warnings: Vec<String> = Vec::new();
    let mut cache_gate_speedup = None;
    let mut parallel_gate_speedup = None;

    for (name, src) in [("fanout_dup(96)", &dup), ("fanout_distinct(96)", &distinct)] {
        // The seed baseline is never skipped: jobs = 1, cache off, the
        // configuration the repo shipped with before the parallel back end.
        let seed = measure_backend(name, src, 1, false, samples);
        print_row(&seed, &seed);
        rows.push(row_json(&seed));

        // Scaling curve, cache on, speedups reported against the seed.
        let serial_cached = measure_backend(name, src, 1, true, samples);
        print_row(&serial_cached, &seed);
        if name == "fanout_dup(96)" && tuned_jobs == 1 {
            cache_gate_speedup = Some(speedup_of(&seed, &serial_cached));
        }
        rows.push(row_json(&serial_cached));
        for jobs in [2, 4, 8] {
            let m = measure_backend(name, src, jobs, true, samples);
            print_row(&m, &seed);
            let overhead = m.time.as_secs_f64() / serial_cached.time.as_secs_f64().max(1e-9);
            if cores >= jobs && overhead > WARN_TOLERANCE {
                warnings.push(format!(
                    "{name}: jobs={jobs} (cache on) is {overhead:.2}x slower than jobs=1 \
                     (cache on) on a {cores}-core host — the threads add overhead"
                ));
            }
            if name == "fanout_dup(96)" && jobs == tuned_jobs {
                // The cache gate compares the host-tuned configuration
                // against the seed baseline of the same workload.
                cache_gate_speedup = Some(speedup_of(&seed, &m));
            }
            rows.push(row_json(&m));
        }

        // The pure-parallelism row: cache off, so nothing dedups and the
        // chunked scheduler is the only thing between jobs=1 and jobs=8.
        let par = measure_backend(name, src, 8, false, samples);
        print_row(&par, &seed);
        let overhead = par.time.as_secs_f64() / seed.time.as_secs_f64().max(1e-9);
        if cores >= 8 && overhead > WARN_TOLERANCE {
            warnings.push(format!(
                "{name}: jobs=8 (cache off) is {overhead:.2}x slower than jobs=1 \
                 (cache off) on a {cores}-core host — the threads add overhead"
            ));
        }
        if name == "fanout_distinct(96)" {
            parallel_gate_speedup = Some(speedup_of(&seed, &par));
        }
        rows.push(row_json(&par));
    }
    let cache_speedup = cache_gate_speedup.expect("dup workload measured at jobs=8");
    let parallel_speedup = parallel_gate_speedup.expect("distinct workload measured uncached");

    for w in &warnings {
        eprintln!("bench_compile: warning: {w}");
    }

    let mut root = Json::object();
    root.set("samples", Json::from(samples));
    root.set("parallelism", Json::from(cores));
    root.set("tuned_jobs", Json::from(tuned_jobs));
    root.set("cache_gate_speedup", Json::Num(CACHE_GATE_SPEEDUP));
    root.set("measured_cache_speedup", Json::Num(cache_speedup));
    root.set(
        "parallel_gate",
        Json::Str(
            if full_parallel_gate { "full-speedup" } else { "overhead-tolerance" }.to_string(),
        ),
    );
    root.set(
        "parallel_gate_speedup",
        Json::Num(if full_parallel_gate { PARALLEL_GATE_SPEEDUP } else { 1.0 / OVERHEAD_TOLERANCE }),
    );
    root.set("measured_parallel_speedup", Json::Num(parallel_speedup));
    root.set("warnings", Json::Arr(warnings.iter().map(|w| Json::Str(w.clone())).collect()));
    root.set("rows", Json::Arr(rows));
    if let Err(e) = std::fs::write(&out_path, format!("{root}\n")) {
        eprintln!("bench_compile: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path}");

    let mut failed = false;
    if cache_speedup < CACHE_GATE_SPEEDUP {
        eprintln!(
            "bench_compile: REGRESSION — jobs={tuned_jobs} + cache is only \
             {cache_speedup:.2}x over the jobs=1 uncached baseline (gate: \
             {CACHE_GATE_SPEEDUP}x)"
        );
        failed = true;
    }
    if full_parallel_gate {
        if parallel_speedup < PARALLEL_GATE_SPEEDUP {
            eprintln!(
                "bench_compile: REGRESSION — jobs=8 (cache off) is only \
                 {parallel_speedup:.2}x over jobs=1 on fanout_distinct with {cores} cores \
                 (gate: {PARALLEL_GATE_SPEEDUP}x)"
            );
            failed = true;
        }
    } else if parallel_speedup < 1.0 / OVERHEAD_TOLERANCE {
        eprintln!(
            "bench_compile: REGRESSION — jobs=8 (cache off) costs \
             {:.2}x the serial time on fanout_distinct; thread overhead exceeds the \
             {OVERHEAD_TOLERANCE}x tolerance for a {cores}-core host",
            1.0 / parallel_speedup.max(1e-9)
        );
        failed = true;
    }
    if failed {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
