//! CI bench-smoke for the parallel/cached back end: times the back half of
//! the pipeline (normalize → optimize → lower → fuse) on the E9
//! instance-fan-out workloads, writes the medians to `BENCH_compile.json`,
//! and **fails (exit 1) unless the tuned configuration (jobs = 8, instance
//! cache on) is at least 1.3× faster** than the seed baseline (jobs = 1,
//! cache off) on the duplicate-instance workload.
//!
//! Honesty rules: the seed baseline (jobs = 1, cache off) is measured and
//! recorded for **every** workload — every row in the report can answer
//! "faster than what?" against the same file. A jobs = 1/2/4/8 scaling
//! curve (cache on) is recorded for EXPERIMENTS.md E9 but not gated — on a
//! single-core runner the threads only add overhead and the win comes from
//! the cache, which is exactly what the gate measures. When a jobs > 1
//! configuration comes out *slower* than jobs = 1 on the same workload,
//! that is printed as a visible warning and recorded in the report's
//! `warnings` array rather than silently buried in the rows.
//!
//! Usage: `cargo run --release -p vgl-bench --bin bench_compile [out.json]`
//! Sample count honors `VGL_BENCH_SAMPLES` (default 10).

use std::process::ExitCode;
use vgl_bench::{measure_backend, workloads, BackendMeasurement};
use vgl_obs::json::Json;

const GATE_SPEEDUP: f64 = 1.3;

fn row_json(m: &BackendMeasurement) -> Json {
    let mut o = Json::object();
    o.set("workload", Json::Str(m.name.clone()));
    o.set("jobs", Json::from(m.jobs));
    o.set("cache", Json::Bool(m.cache));
    o.set("time_us", Json::Num(m.time.as_secs_f64() * 1e6));
    o.set("norm_hit_rate", Json::Num(m.norm_cache.hit_rate()));
    o.set("opt_hit_rate", Json::Num(m.opt_cache.hit_rate()));
    o
}

fn print_row(m: &BackendMeasurement, baseline: &BackendMeasurement) {
    println!(
        "{:<28} {:>4} {:>6} {:>12.1} {:>8.2}x {:>9.0}% {:>9.0}%",
        m.name,
        m.jobs,
        if m.cache { "on" } else { "off" },
        m.time.as_secs_f64() * 1e6,
        baseline.time.as_secs_f64() / m.time.as_secs_f64().max(1e-9),
        m.norm_cache.hit_rate() * 100.0,
        m.opt_cache.hit_rate() * 100.0,
    );
}

fn main() -> ExitCode {
    let out_path =
        std::env::args().nth(1).unwrap_or_else(|| "BENCH_compile.json".to_string());
    let samples = std::env::var("VGL_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n: &usize| n > 0)
        .unwrap_or(10);
    let dup = workloads::instance_fanout_dup(96);
    let distinct = workloads::instance_fanout_distinct(96);

    println!(
        "{:<28} {:>4} {:>6} {:>12} {:>9} {:>10} {:>10}",
        "workload", "jobs", "cache", "median (us)", "speedup", "norm hit%", "opt hit%"
    );
    let mut rows = Vec::new();
    let mut warnings: Vec<String> = Vec::new();
    let mut gate_speedup = None;

    for (name, src) in [("fanout_dup(96)", &dup), ("fanout_distinct(96)", &distinct)] {
        // The seed baseline is never skipped: jobs = 1, cache off, the
        // configuration the repo shipped with before the parallel back end.
        let seed = measure_backend(name, src, 1, false, samples);
        print_row(&seed, &seed);
        rows.push(row_json(&seed));

        // Scaling curve, cache on, speedups reported against the seed.
        let serial_cached = measure_backend(name, src, 1, true, samples);
        print_row(&serial_cached, &seed);
        rows.push(row_json(&serial_cached));
        for jobs in [2, 4, 8] {
            let m = measure_backend(name, src, jobs, true, samples);
            print_row(&m, &seed);
            if m.time > serial_cached.time {
                warnings.push(format!(
                    "{name}: jobs={jobs} (cache on) is {:.2}x slower than jobs=1 (cache on) \
                     — the threads add overhead on this machine",
                    m.time.as_secs_f64() / serial_cached.time.as_secs_f64().max(1e-9)
                ));
            }
            if name == "fanout_dup(96)" && jobs == 8 {
                // The gate compares the tuned configuration against the
                // seed baseline of the same workload, same sample batch.
                gate_speedup =
                    Some(seed.time.as_secs_f64() / m.time.as_secs_f64().max(1e-9));
            }
            rows.push(row_json(&m));
        }
    }
    let speedup = gate_speedup.expect("dup workload measured at jobs=8");

    for w in &warnings {
        eprintln!("bench_compile: warning: {w}");
    }

    let mut root = Json::object();
    root.set("samples", Json::from(samples));
    root.set("gate_speedup", Json::Num(GATE_SPEEDUP));
    root.set("measured_speedup", Json::Num(speedup));
    root.set("warnings", Json::Arr(warnings.iter().map(|w| Json::Str(w.clone())).collect()));
    root.set("rows", Json::Arr(rows));
    if let Err(e) = std::fs::write(&out_path, format!("{root}\n")) {
        eprintln!("bench_compile: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path}");
    if speedup < GATE_SPEEDUP {
        eprintln!(
            "bench_compile: REGRESSION — jobs=8 + cache is only {speedup:.2}x over the \
             jobs=1 uncached baseline (gate: {GATE_SPEEDUP}x)"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
