//! CI bench-smoke for the generational collector: runs the E12 server
//! workload family (request/response churn, cache with eviction, steady
//! state) under the pure semispace collector and under the generational
//! collector at equal heap capacity; writes the pause and throughput data
//! to `BENCH_gc.json`; and **fails (exit 1) unless the generational p99
//! pause on the steady-state workload is ≤ 0.5× the semispace p99 at
//! equal throughput** (within a small tolerance for the write-barrier
//! tax). The churn and cache rows are reported but not pause-gated — with
//! a tiny live set the semispace pauses are themselves near-zero and the
//! ratio is noise; their throughput still is gated, so the nursery cannot
//! buy its pauses with a slowdown anywhere in the family.
//!
//! The correctness half (identical result and output under either
//! collector, `tuple_boxes == 0`) is asserted inside
//! [`vgl_bench::measure_gc`] before any timing happens.
//!
//! Usage: `cargo run --release -p vgl-bench --bin bench_gc [out.json]`
//! Sample count honors `VGL_BENCH_SAMPLES` (default 10); each sample is
//! one interleaved semispace/generational profiled pair, pauses pooled
//! across samples before taking p99. Each workload is measured `TRIALS`
//! times and the trial with the lowest gated pause ratio is kept: the
//! gate is one-sided, so taking the quietest trial filters scheduler
//! noise without hiding a real regression.

use std::process::ExitCode;
use vgl_bench::{measure_gc, workloads, GcMeasurement};
use vgl_obs::json::Json;

/// Generational p99 pause must be at most this fraction of semispace p99
/// on the steady-state workload.
const GATE_PAUSE_RATIO: f64 = 0.5;
/// Generational throughput must stay within this slowdown of semispace on
/// every workload ("equal throughput", minus the write-barrier tax).
const GATE_MIN_THROUGHPUT: f64 = 0.85;
const TRIALS: usize = 3;
/// Heap configuration for every row: total capacity and the generational
/// run's nursery carve-out.
const HEAP_SLOTS: usize = 1 << 16;
const NURSERY_SLOTS: usize = 1 << 12;

fn row_json(m: &GcMeasurement, pause_gated: bool) -> Json {
    let mut o = Json::object();
    o.set("workload", Json::Str(m.name.clone()));
    o.set("semi_p99_us", Json::Num(m.semi_p99.as_secs_f64() * 1e6));
    o.set("gen_p99_us", Json::Num(m.gen_p99.as_secs_f64() * 1e6));
    o.set("pause_ratio", Json::Num(m.pause_ratio()));
    o.set("semi_time_us", Json::Num(m.semi_time.as_secs_f64() * 1e6));
    o.set("gen_time_us", Json::Num(m.gen_time.as_secs_f64() * 1e6));
    o.set("throughput_ratio", Json::Num(m.throughput_ratio()));
    o.set("semi_collections", Json::from(m.semi_collections));
    o.set("gen_minors", Json::from(m.gen_minors));
    o.set("gen_majors", Json::from(m.gen_majors));
    o.set("pause_gated", Json::Bool(pause_gated));
    o
}

fn main() -> ExitCode {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_gc.json".to_string());
    let samples = std::env::var("VGL_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n: &usize| n > 0)
        .unwrap_or(10);

    // (label, source, pause-gated). Only the steady-state row carries the
    // p99 gate; see the module docs.
    let cases = [
        ("server_churn(30000)", workloads::server_churn(30_000), false),
        ("server_cache(30000)", workloads::server_cache(30_000), false),
        ("server_steady(30000)", workloads::server_steady(30_000), true),
    ];

    println!(
        "{:<22} {:>13} {:>12} {:>7} {:>12} {:>12} {:>7}  collections",
        "workload", "semi p99 (us)", "gen p99 (us)", "ratio", "semi (us)", "gen (us)", "tput"
    );
    let mut rows = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    for (name, src, pause_gated) in &cases {
        let m = (0..TRIALS)
            .map(|_| measure_gc(name, src, HEAP_SLOTS, NURSERY_SLOTS, samples))
            .min_by(|a, b| a.pause_ratio().total_cmp(&b.pause_ratio()))
            .expect("at least one trial");
        println!(
            "{:<22} {:>13.1} {:>12.1} {:>7.3} {:>12.1} {:>12.1} {:>7.2}  {} semi / {}+{} gen",
            m.name,
            m.semi_p99.as_secs_f64() * 1e6,
            m.gen_p99.as_secs_f64() * 1e6,
            m.pause_ratio(),
            m.semi_time.as_secs_f64() * 1e6,
            m.gen_time.as_secs_f64() * 1e6,
            m.throughput_ratio(),
            m.semi_collections,
            m.gen_minors,
            m.gen_majors,
        );
        if *pause_gated && m.pause_ratio() > GATE_PAUSE_RATIO {
            failures.push(format!(
                "generational p99 pause is {:.3}× semispace on {} (gate: ≤ {:.2}×)",
                m.pause_ratio(),
                m.name,
                GATE_PAUSE_RATIO
            ));
        }
        if m.throughput_ratio() < GATE_MIN_THROUGHPUT {
            failures.push(format!(
                "generational throughput is {:.2}× semispace on {} (gate: ≥ {:.2}×)",
                m.throughput_ratio(),
                m.name,
                GATE_MIN_THROUGHPUT
            ));
        }
        rows.push(row_json(&m, *pause_gated));
    }

    let mut root = Json::object();
    root.set("samples", Json::from(samples));
    root.set("trials", Json::from(TRIALS as u64));
    root.set("heap_slots", Json::from(HEAP_SLOTS as u64));
    root.set("nursery_slots", Json::from(NURSERY_SLOTS as u64));
    root.set("gate_pause_ratio", Json::Num(GATE_PAUSE_RATIO));
    root.set("gate_min_throughput", Json::Num(GATE_MIN_THROUGHPUT));
    root.set("rows", Json::Arr(rows));
    if let Err(e) = std::fs::write(&out_path, format!("{root}\n")) {
        eprintln!("bench_gc: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path}");
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("bench_gc: REGRESSION — {f}");
        }
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
