//! CI bench-smoke for the `vgld` compile server: N clients × M
//! edit/recompile cycles against a live daemon, versus the same clients
//! doing cold one-shot compiles (a fresh `Compiler`, empty caches — what
//! `vglc build` does per invocation). Writes the curve to
//! `BENCH_serve.json` and **fails (exit 1) unless warm served cycles
//! deliver at least 3× the cold one-shot throughput at byte-equal
//! results**, with client-observed p50/p99/max latency recorded.
//!
//! The edit model ([`vgl_bench::workloads::serve_edit`]) changes one hot
//! function per cycle and stamps every source unique, so the daemon's
//! whole-artifact cache can never short-circuit a request — every warm
//! win comes from the per-function fingerprint store re-running
//! optimize/lower/fuse only for the two changed methods. The correctness
//! half is inline: every served `run` result is compared against the cold
//! compile of the exact same source, so the 3× is at equal output by
//! construction.
//!
//! Usage: `cargo run --release -p vgl-bench --bin bench_serve [out.json]`
//! Sample count honors `VGL_BENCH_SAMPLES` (default 5); sample 0 is the
//! untimed warmup that also seeds the daemon's function store, exactly
//! like the first build of an editing session.

use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use vgl::serve::{with_daemon, Client, Request, ServeConfig};
use vgl::{Compiler, Options};
use vgl_bench::harness::measure_min_of_n;
use vgl_bench::workloads;
use vgl_obs::json::Json;

/// Concurrent editing sessions.
const CLIENTS: usize = 4;
/// Edit/recompile cycles per client per sample.
const CYCLES: usize = 6;
/// Heavy straight-line worker functions per source, all unchanged across
/// edits — the fuser-dominated half of the workload (see `serve_edit`).
const WORKERS: usize = 2;
/// Warm served throughput must be at least this multiple of cold one-shot.
const GATE_SPEEDUP: f64 = 3.0;

/// Globally unique edit stamps: no source ever repeats, across clients,
/// cycles, *and* samples — the whole-artifact cache stays out of the data.
fn next_edit() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// p99-by-rank over client-observed request latencies.
fn percentile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).ceil() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// One batch of CLIENTS × CYCLES cold one-shot compile+run, returning the
/// wall time and every result display (the ground truth the served run
/// must match).
fn cold_batch(options: &Options, jobs: &[Vec<(u64, String)>]) -> (Duration, Vec<Vec<String>>) {
    let start = Instant::now();
    let expected = std::thread::scope(|s| {
        let handles: Vec<_> = jobs
            .iter()
            .map(|cycles| {
                s.spawn(move || {
                    cycles
                        .iter()
                        .map(|(_, src)| {
                            let c = Compiler::with_options(*options)
                                .compile(src)
                                .expect("workload compiles");
                            match c.execute().result {
                                Ok(v) => v,
                                Err(t) => panic!("workload trapped: {t}"),
                            }
                        })
                        .collect::<Vec<String>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("cold client")).collect()
    });
    (start.elapsed(), expected)
}

/// The same batch through the daemon: each client its own connection and
/// session, every response checked against the cold ground truth.
/// Returns the wall time and per-request latencies.
fn warm_batch(
    socket: &std::path::Path,
    jobs: &[Vec<(u64, String)>],
    expected: &[Vec<String>],
) -> (Duration, Vec<Duration>) {
    let start = Instant::now();
    let latencies = std::thread::scope(|s| {
        let handles: Vec<_> = jobs
            .iter()
            .zip(expected)
            .enumerate()
            .map(|(c, (cycles, truth))| {
                s.spawn(move || {
                    let mut client = Client::connect(socket).expect("client connects");
                    let mut lat = Vec::with_capacity(cycles.len());
                    for ((_, src), want) in cycles.iter().zip(truth) {
                        let t0 = Instant::now();
                        let resp = client
                            .request(&Request::Run {
                                session: format!("bench-{c}"),
                                source: src.clone(),
                            })
                            .expect("daemon responds");
                        lat.push(t0.elapsed());
                        assert_eq!(
                            resp.get("ok").and_then(Json::as_bool),
                            Some(true),
                            "served compile failed: {resp}"
                        );
                        let got = resp.get("result").and_then(Json::as_str).unwrap_or("<none>");
                        assert_eq!(got, want, "served result diverged from cold one-shot");
                    }
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("warm client"))
            .collect::<Vec<Duration>>()
    });
    (start.elapsed(), latencies)
}

fn main() -> ExitCode {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_serve.json".to_string());
    let samples = std::env::var("VGL_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n: &usize| n > 0)
        .unwrap_or(5);

    // The daemon and the cold one-shots run the exact same configuration:
    // the fused back end, the one the paper's evaluation serves. Backend
    // jobs are pinned to 1 on both sides: the parallelism under test is
    // across concurrent requests (CLIENTS threads each way), and letting
    // every compile also fan out its own worker pool oversubscribes the
    // machine identically for cold and warm while adding only noise.
    let options = Options { fuse: true, jobs: 1, ..Options::default() };
    let config = ServeConfig { options, ..ServeConfig::default() };

    let mut latencies: Vec<Duration> = Vec::new();
    let mut requests = 0u64;
    let (cold, warm, daemon_stats) = with_daemon(config, |socket| {
        let [cold, warm] = measure_min_of_n(samples, |sample| {
            // Fresh sources every sample — see `next_edit`.
            let jobs: Vec<Vec<(u64, String)>> = (0..CLIENTS)
                .map(|_| {
                    (0..CYCLES)
                        .map(|_| {
                            let e = next_edit();
                            (e, workloads::serve_edit(WORKERS, e))
                        })
                        .collect()
                })
                .collect();
            let (cold, expected) = cold_batch(&options, &jobs);
            let (warm, lat) = warm_batch(socket, &jobs, &expected);
            if sample > 0 {
                requests += lat.len() as u64;
                latencies.extend(lat);
            }
            [cold, warm]
        });
        let mut client = Client::connect(socket).expect("stats client");
        let stats = client.request(&Request::Stats).expect("stats response");
        (cold, warm, stats)
    });

    latencies.sort();
    let speedup = cold.as_secs_f64() / warm.as_secs_f64().max(1e-9);
    let (p50, p99, max) = (
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.99),
        percentile(&latencies, 1.0),
    );
    let func_hits = daemon_stats
        .get("cache")
        .and_then(|c| c.get("funcs"))
        .and_then(|f| f.get("hits"))
        .and_then(Json::as_u64)
        .unwrap_or(0);

    println!(
        "{CLIENTS} clients x {CYCLES} cycles ({WORKERS} heavy workers + 6-class battery), min of {samples}:"
    );
    println!(
        "  cold one-shot {:>10.1} us   warm served {:>10.1} us   speedup {:.2}x (gate >= {:.1}x)",
        cold.as_secs_f64() * 1e6,
        warm.as_secs_f64() * 1e6,
        speedup,
        GATE_SPEEDUP
    );
    println!(
        "  latency over {requests} served requests: p50 {:.1} us, p99 {:.1} us, max {:.1} us; {} function-store hits",
        p50.as_secs_f64() * 1e6,
        p99.as_secs_f64() * 1e6,
        max.as_secs_f64() * 1e6,
        func_hits
    );

    let mut failures: Vec<String> = Vec::new();
    if speedup < GATE_SPEEDUP {
        failures.push(format!(
            "warm served throughput is {speedup:.2}x cold one-shot (gate: >= {GATE_SPEEDUP:.1}x)"
        ));
    }
    if func_hits == 0 {
        failures.push("daemon reported zero function-store hits — the warm path never engaged".into());
    }

    let mut root = Json::object();
    root.set("clients", Json::from(CLIENTS as u64));
    root.set("cycles", Json::from(CYCLES as u64));
    root.set("workers", Json::from(WORKERS as u64));
    root.set("samples", Json::from(samples));
    root.set("cold_us", Json::Num(cold.as_secs_f64() * 1e6));
    root.set("warm_us", Json::Num(warm.as_secs_f64() * 1e6));
    root.set("speedup", Json::Num(speedup));
    root.set("gate_speedup", Json::Num(GATE_SPEEDUP));
    root.set("requests", Json::from(requests));
    root.set("p50_us", Json::Num(p50.as_secs_f64() * 1e6));
    root.set("p99_us", Json::Num(p99.as_secs_f64() * 1e6));
    root.set("max_us", Json::Num(max.as_secs_f64() * 1e6));
    root.set("daemon", daemon_stats);
    root.set("pass", Json::Bool(failures.is_empty()));
    std::fs::write(&out_path, root.render()).expect("write BENCH_serve.json");
    println!("wrote {out_path}");

    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("GATE FAILURE: {f}");
        }
        ExitCode::FAILURE
    }
}
