//! The E11 warmup-knee curve: tiered-vs-static-fusion speedup on the
//! polymorphic-then-monomorphic workload as the monomorphic phase grows.
//! Short runs pay the baseline tier and the re-fusions without amortizing
//! them (speedup < 1); past the knee the inlined guard site dominates and
//! the curve settles at the steady-state win the `bench_vm` gate enforces.
//!
//! Usage: `cargo run --release -p vgl-bench --bin bench_tier_curve`
//! Sample count honors `VGL_BENCH_SAMPLES` (default 10).

use vgl_bench::{measure_tiered, workloads};

fn main() {
    let samples = std::env::var("VGL_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n: &usize| n > 0)
        .unwrap_or(10);
    println!(
        "{:>10} {:>14} {:>14} {:>9} {:>9} {:>9}",
        "mono iters", "fused (us)", "tiered (us)", "speedup", "tier-ups", "inlined"
    );
    for n in [50, 200, 1000, 5000, 20000, 60000] {
        let m = measure_tiered(
            &format!("poly_then_mono({n})"),
            &workloads::polymorphic_then_monomorphic(n),
            samples,
        );
        println!(
            "{:>10} {:>14.1} {:>14.1} {:>8.2}x {:>9} {:>9}",
            n,
            m.fused.as_secs_f64() * 1e6,
            m.tiered.as_secs_f64() * 1e6,
            m.speedup(),
            m.tier_ups,
            m.inlined_calls,
        );
    }
}
