//! CI bench-smoke for the bytecode back-end optimizer: runs the E2
//! (polymorphic) and E3 (dispatch chain) workloads on the VM with fusion
//! off and on, plus the E11 polymorphic-then-monomorphic workload with
//! static fusion vs runtime tiering, writes the warmed min-of-N timings to
//! `BENCH_vm.json`, and fails (exit 1) if either gate trips:
//!
//! * **fusion gate** — the fused configuration is more than 10% slower
//!   than unfused on any workload;
//! * **tiering gate** — the tiered VM is less than 1.5x faster than static
//!   fusion on the polymorphic-then-monomorphic workload (the speculation
//!   win profile-guided re-fusion exists to deliver).
//!
//! Usage: `cargo run --release -p vgl-bench --bin bench_vm [out.json]`
//! Sample count honors `VGL_BENCH_SAMPLES` (default 10).

use std::process::ExitCode;
use vgl_bench::{measure_fusion, measure_tiered, workloads};
use vgl_obs::json::Json;

/// Minimum tiered-over-static-fusion speedup the gate accepts.
const TIER_GATE: f64 = 1.5;

fn main() -> ExitCode {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_vm.json".to_string());
    let samples = std::env::var("VGL_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n: &usize| n > 0)
        .unwrap_or(10);
    let cases = [
        ("E2 polymorphic(200)", workloads::polymorphic(200)),
        ("E3 dispatch_chain(20000)", workloads::dispatch_chain(20_000)),
    ];
    let mut rows = Vec::new();
    let mut slow = false;
    println!(
        "{:<28} {:>14} {:>14} {:>9} {:>8} {:>12} {:>13}",
        "workload", "unfused (us)", "fused (us)", "speedup", "ic hit%", "super share", "instrs"
    );
    for (name, src) in &cases {
        let m = measure_fusion(name, src, samples);
        let speedup = m.speedup();
        println!(
            "{:<28} {:>14.1} {:>14.1} {:>8.2}x {:>7.1}% {:>11.1}% {:>6} -> {:>4}",
            m.name,
            m.unfused.as_secs_f64() * 1e6,
            m.fused.as_secs_f64() * 1e6,
            speedup,
            m.ic_hit_rate * 100.0,
            m.super_share * 100.0,
            m.instrs_before,
            m.instrs_after,
        );
        if speedup < 0.9 {
            eprintln!("bench_vm: REGRESSION — {} fused is {:.2}x (>10% slower)", m.name, speedup);
            slow = true;
        }
        let mut o = Json::object();
        o.set("workload", Json::Str(m.name.clone()));
        o.set("unfused_us", Json::Num(m.unfused.as_secs_f64() * 1e6));
        o.set("fused_us", Json::Num(m.fused.as_secs_f64() * 1e6));
        o.set("speedup", Json::Num(speedup));
        o.set("ic_hit_rate", Json::Num(m.ic_hit_rate));
        o.set("super_share", Json::Num(m.super_share));
        o.set("instrs_before", Json::from(m.instrs_before));
        o.set("instrs_after", Json::from(m.instrs_after));
        rows.push(o);
    }
    let tiered_cases =
        [("E11 poly_then_mono(20000)", workloads::polymorphic_then_monomorphic(20_000))];
    let mut tiered_rows = Vec::new();
    println!();
    println!(
        "{:<28} {:>14} {:>14} {:>9} {:>9} {:>7} {:>9} {:>9}",
        "workload", "fused (us)", "tiered (us)", "speedup", "tier-ups", "deopts", "guarded", "inlined"
    );
    for (name, src) in &tiered_cases {
        let m = measure_tiered(name, src, samples);
        let speedup = m.speedup();
        println!(
            "{:<28} {:>14.1} {:>14.1} {:>8.2}x {:>9} {:>7} {:>9} {:>9}",
            m.name,
            m.fused.as_secs_f64() * 1e6,
            m.tiered.as_secs_f64() * 1e6,
            speedup,
            m.tier_ups,
            m.deopts,
            m.guarded_calls,
            m.inlined_calls,
        );
        if speedup < TIER_GATE {
            eprintln!(
                "bench_vm: REGRESSION — {} tiered is only {:.2}x over static fusion (< {TIER_GATE}x)",
                m.name, speedup
            );
            slow = true;
        }
        let mut o = Json::object();
        o.set("workload", Json::Str(m.name.clone()));
        o.set("fused_us", Json::Num(m.fused.as_secs_f64() * 1e6));
        o.set("tiered_us", Json::Num(m.tiered.as_secs_f64() * 1e6));
        o.set("speedup", Json::Num(speedup));
        o.set("tier_ups", Json::from(m.tier_ups));
        o.set("deopts", Json::from(m.deopts));
        o.set("guarded_calls", Json::from(m.guarded_calls));
        o.set("inlined_calls", Json::from(m.inlined_calls));
        tiered_rows.push(o);
    }
    let mut root = Json::object();
    root.set("samples", Json::from(samples));
    root.set("workloads", Json::Arr(rows));
    root.set("tiered", Json::Arr(tiered_rows));
    if let Err(e) = std::fs::write(&out_path, format!("{root}\n")) {
        eprintln!("bench_vm: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path}");
    if slow {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
