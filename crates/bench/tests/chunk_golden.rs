//! Seed-pinned golden chunk maps for the cost-chunked scheduler.
//!
//! The chunk plan is a pure integer function of (per-item costs, jobs): no
//! timing, no thread identity, no platform word size leaks in. That purity
//! is what makes the parallel back end deterministic, so we pin the exact
//! plan the scheduler produces for the E9 fan-out workload at jobs = 1, 2,
//! and 8. If a cost-model or packing change moves these boundaries, this
//! test fails and the new map must be reviewed and re-pinned deliberately —
//! chunk boundaries shifting silently is how nondeterminism sneaks in.
//!
//! Costs are taken where the optimize pass takes them: post-mono,
//! post-normalize, `method_cost × pass_weight::OPTIMIZE`. Within a single
//! pass the weight multiplies every item and the target alike, so these
//! goldens survive weight retuning; they only move if `method_cost`, the
//! packing algorithm, or the workload itself changes.

use vgl_bench::workloads;
use vgl_ir::{method_cost, metrics::pass_weight};
use vgl_passes::sched::plan_chunks;

const FANOUT_K: usize = 64;

/// The per-item cost vector exactly as `optimize` computes it.
fn optimize_costs() -> Vec<u64> {
    let src = workloads::instance_fanout_distinct(FANOUT_K);
    let mut diags = vgl_syntax::Diagnostics::new();
    let ast = vgl_syntax::parse_program(&src, &mut diags);
    assert!(!diags.has_errors(), "fan-out workload must parse");
    let module = vgl_sema::analyze(&ast, &mut diags).expect("fan-out workload analyzes");
    let cfg = vgl_passes::BackendConfig { jobs: 1, cache: true, chunking: true };
    let mut report = vgl_passes::BackendReport::default();
    let (mut m, _) = vgl_passes::monomorphize_cfg(&module, &cfg, &mut report);
    vgl_passes::normalize_cfg(&mut m, &cfg, &mut report);
    m.methods.iter().map(|m| method_cost(m) * pass_weight::OPTIMIZE).collect()
}

fn ranges(costs: &[u64], jobs: usize) -> Vec<(usize, usize)> {
    plan_chunks(costs, jobs).ranges.clone()
}

#[test]
fn fanout_chunk_map_is_pinned() {
    let costs = optimize_costs();

    // The workload itself is part of the golden: 64 distinct `work<Ci>`
    // instances + 64 constructors + main. If mono's output count moves,
    // everything below is expected to move with it.
    assert_eq!(costs.len(), 129, "fan-out method count changed: {}", costs.len());
    let total: u64 = costs.iter().map(|&c| c.max(1)).sum();
    assert_eq!(total, 35104, "fan-out total optimize cost changed");

    let golden: [(usize, Vec<(usize, usize)>); 3] = [
        (1, vec![(0, 23), (23, 59), (59, 95), (95, 129)]),
        (
            2,
            vec![
                (0, 7),
                (7, 25),
                (25, 43),
                (43, 61),
                (61, 79),
                (79, 97),
                (97, 115),
                (115, 129),
            ],
        ),
        (
            8,
            vec![
                (0, 1),
                (1, 7),
                (7, 13),
                (13, 19),
                (19, 25),
                (25, 31),
                (31, 37),
                (37, 43),
                (43, 49),
                (49, 55),
                (55, 61),
                (61, 67),
                (67, 73),
                (73, 79),
                (79, 85),
                (85, 91),
                (91, 97),
                (97, 103),
                (103, 109),
                (109, 115),
                (115, 121),
                (121, 127),
                (127, 129),
            ],
        ),
    ];

    for (jobs, want) in &golden {
        let got = ranges(&costs, *jobs);
        assert_eq!(
            &got, want,
            "chunk map moved at jobs={jobs} — if the cost model or packing \
             changed deliberately, re-pin this golden"
        );
    }
}

/// Structural invariants the golden map must always satisfy, checked
/// independently so a re-pin can't accidentally bless a broken plan.
#[test]
fn fanout_chunk_map_covers_all_methods_in_order() {
    let costs = optimize_costs();
    for jobs in [1, 2, 8] {
        let plan = plan_chunks(&costs, jobs);
        let mut next = 0;
        for &(lo, hi) in &plan.ranges {
            assert_eq!(lo, next, "gap or overlap at jobs={jobs}");
            assert!(hi > lo, "empty chunk at jobs={jobs}");
            next = hi;
        }
        assert_eq!(next, costs.len(), "plan does not cover all items at jobs={jobs}");
        assert!(
            plan.ranges.len() >= jobs.min(costs.len()),
            "fewer chunks than workers at jobs={jobs}: {}",
            plan.ranges.len()
        );
    }
}

/// The plan depends only on (costs, jobs): recomputing it from the same
/// workload yields the identical map, run to run and call to call.
#[test]
fn fanout_chunk_map_is_reproducible() {
    let a = optimize_costs();
    let b = optimize_costs();
    assert_eq!(a, b, "cost vector is not reproducible");
    for jobs in [1, 2, 8, 16] {
        assert_eq!(ranges(&a, jobs), ranges(&b, jobs), "plan differs at jobs={jobs}");
    }
}
