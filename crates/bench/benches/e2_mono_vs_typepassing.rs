//! E2: polymorphic workload — type-argument-passing interpretation vs
//! monomorphized VM execution (§4.3).

use vgl_bench::harness::Runner;
use vgl_bench::{compile, workloads};

fn main() {
    let mut r = Runner::new("e2_mono_vs_typepassing");
    for n in [10usize, 50] {
        let comp = compile(&workloads::polymorphic(n));
        r.bench(&format!("interp_typepassing/{n}"), || {
            comp.interpret().result.clone().unwrap()
        });
        r.bench(&format!("vm_monomorphized/{n}"), || {
            comp.execute().result.clone().unwrap()
        });
    }
    r.finish();
}
