//! E2: polymorphic workload — type-argument-passing interpretation vs
//! monomorphized VM execution (§4.3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use vgl_bench::{compile, workloads};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2_mono_vs_typepassing");
    g.measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
        .sample_size(10);
    for n in [10usize, 50] {
        let comp = compile(&workloads::polymorphic(n));
        g.bench_with_input(BenchmarkId::new("interp_typepassing", n), &n, |b, _| {
            b.iter(|| comp.interpret().result.clone().unwrap())
        });
        g.bench_with_input(BenchmarkId::new("vm_monomorphized", n), &n, |b, _| {
            b.iter(|| comp.execute().result.clone().unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
