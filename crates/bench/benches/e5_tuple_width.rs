//! E5: tuple width sweep — flattened (VM) vs boxed (interpreter).

use vgl_bench::harness::Runner;
use vgl_bench::{compile, workloads};

fn main() {
    let mut r = Runner::new("e5_tuple_width");
    for w in [2usize, 8, 32] {
        let comp = compile(&workloads::tuple_width(w, 5_000));
        r.bench(&format!("interp_boxed/{w}"), || {
            comp.interpret().result.clone().unwrap()
        });
        r.bench(&format!("vm_flattened/{w}"), || {
            comp.execute().result.clone().unwrap()
        });
    }
    r.finish();
}
