//! E5: tuple width sweep — flattened (VM) vs boxed (interpreter).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use vgl_bench::{compile, workloads};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e5_tuple_width");
    g.measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
        .sample_size(10);
    for w in [2usize, 8, 32] {
        let comp = compile(&workloads::tuple_width(w, 5_000));
        g.bench_with_input(BenchmarkId::new("interp_boxed", w), &w, |b, _| {
            b.iter(|| comp.interpret().result.clone().unwrap())
        });
        g.bench_with_input(BenchmarkId::new("vm_flattened", w), &w, |b, _| {
            b.iter(|| comp.execute().result.clone().unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
