//! E6: first-class call sites with mixed calling conventions — dynamic
//! checks in the interpreter vs none in the VM.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use vgl_bench::{compile, workloads};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6_callsite_checks");
    g.measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
        .sample_size(10);
    for n in [1_000usize, 5_000] {
        let comp = compile(&workloads::callsite_checks(n));
        g.bench_with_input(BenchmarkId::new("interp_checked", n), &n, |b, _| {
            b.iter(|| comp.interpret().result.clone().unwrap())
        });
        g.bench_with_input(BenchmarkId::new("vm_checkfree", n), &n, |b, _| {
            b.iter(|| comp.execute().result.clone().unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
