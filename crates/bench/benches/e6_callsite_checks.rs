//! E6: first-class call sites with mixed calling conventions — dynamic
//! checks in the interpreter vs none in the VM.

use vgl_bench::harness::Runner;
use vgl_bench::{compile, workloads};

fn main() {
    let mut r = Runner::new("e6_callsite_checks");
    for n in [1_000usize, 5_000] {
        let comp = compile(&workloads::callsite_checks(n));
        r.bench(&format!("interp_checked/{n}"), || {
            comp.interpret().result.clone().unwrap()
        });
        r.bench(&format!("vm_checkfree/{n}"), || {
            comp.execute().result.clone().unwrap()
        });
    }
    r.finish();
}
