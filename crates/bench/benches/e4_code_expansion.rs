//! E4: compile-time cost and code expansion vs number of instantiations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use vgl_bench::workloads;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4_code_expansion");
    g.measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
        .sample_size(10);
    for k in [2usize, 8, 16] {
        let src = workloads::instantiations(k);
        g.bench_with_input(BenchmarkId::new("pipeline", k), &k, |b, _| {
            b.iter(|| {
                let comp = vgl::Compiler::new().compile(&src).expect("compiles");
                comp.stats.mono.method_instances
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
