//! E4: compile-time cost and code expansion vs number of instantiations.

use vgl_bench::harness::Runner;
use vgl_bench::workloads;

fn main() {
    let mut r = Runner::new("e4_code_expansion");
    for k in [2usize, 8, 16] {
        let src = workloads::instantiations(k);
        r.bench(&format!("pipeline/{k}"), || {
            let comp = vgl::Compiler::new().compile(&src).expect("compiles");
            comp.stats.mono.method_instances
        });
    }
    r.finish();
}
