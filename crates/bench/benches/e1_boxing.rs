//! E1: tuple-heavy workload — interpreter (boxed tuples) vs VM (flattened).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use vgl_bench::{compile, workloads};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_boxing");
    g.measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
        .sample_size(10);
    for n in [1_000usize, 10_000] {
        let comp = compile(&workloads::tuple_heavy(n));
        g.bench_with_input(BenchmarkId::new("interp_boxed", n), &n, |b, _| {
            b.iter(|| comp.interpret().result.clone().unwrap())
        });
        g.bench_with_input(BenchmarkId::new("vm_flattened", n), &n, |b, _| {
            b.iter(|| comp.execute().result.clone().unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
