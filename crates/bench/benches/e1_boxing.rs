//! E1: tuple-heavy workload — interpreter (boxed tuples) vs VM (flattened).

use vgl_bench::harness::Runner;
use vgl_bench::{compile, workloads};

fn main() {
    let mut r = Runner::new("e1_boxing");
    for n in [1_000usize, 10_000] {
        let comp = compile(&workloads::tuple_heavy(n));
        r.bench(&format!("interp_boxed/{n}"), || {
            comp.interpret().result.clone().unwrap()
        });
        r.bench(&format!("vm_flattened/{n}"), || {
            comp.execute().result.clone().unwrap()
        });
    }
    r.finish();
}
