//! E3: §3.3 dispatch-chain folding ablation — optimizer on vs off.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use vgl_bench::workloads;

fn bench(c: &mut Criterion) {
    let src = workloads::dispatch_chain(5_000);
    let folded = vgl::Compiler::new().compile(&src).expect("compiles");
    let unfolded = vgl::Compiler::new()
        .without_optimizer()
        .compile(&src)
        .expect("compiles");
    let mut g = c.benchmark_group("e3_query_folding");
    g.measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
        .sample_size(10);
    g.bench_function("vm_folded", |b| {
        b.iter(|| folded.execute().result.clone().unwrap())
    });
    g.bench_function("vm_unfolded_ablation", |b| {
        b.iter(|| unfolded.execute().result.clone().unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
