//! E3: §3.3 dispatch-chain folding ablation — optimizer on vs off.

use vgl_bench::harness::Runner;
use vgl_bench::workloads;

fn main() {
    let src = workloads::dispatch_chain(5_000);
    let folded = vgl::Compiler::new().compile(&src).expect("compiles");
    let unfolded = vgl::Compiler::new()
        .without_optimizer()
        .compile(&src)
        .expect("compiles");
    let mut r = Runner::new("e3_query_folding");
    r.bench("vm_folded", || folded.execute().result.clone().unwrap());
    r.bench("vm_unfolded_ablation", || {
        unfolded.execute().result.clone().unwrap()
    });
    r.finish();
}
