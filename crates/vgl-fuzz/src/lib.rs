//! `vgl-fuzz` — differential fuzzing for the virgil-rs pipeline.
//!
//! The paper's central claim is that classes, functions, tuples, and type
//! parameters compose without restriction and lower to a small kernel by
//! *semantics-preserving* transformations (monomorphization §4.3, tuple
//! normalization §4.2, query folding §3.3). This crate tests that claim
//! mechanically:
//!
//! - [`gen`] builds well-typed-by-construction programs from a seeded model
//!   spanning class hierarchies with virtual and abstract methods, first-class
//!   functions and bound delegates, generics, tuples up to width 16, type
//!   queries/casts, recursion, and GC-pressure loops;
//! - [`oracle`] runs each program on nine engine configurations (source
//!   interpreter, monomorphized interpreter, VM, both post-optimizer
//!   variants, and the VM over bytecode rewritten by the back-end
//!   superinstruction fuser), validates the §4 IR invariants between passes,
//!   and demands identical results, output, and traps — with fuel exhaustion
//!   kept strictly distinct from language exceptions;
//! - [`mod@shrink`] greedily reduces a failing program to a minimal repro while
//!   preserving the failure class, so every report is a short program plus a
//!   seed;
//! - [`chaos`] corrupts the generated programs (token surgery, byte splices,
//!   truncation, nesting amplifiers) and asserts the pipeline rejects bad
//!   input with diagnostics instead of panicking — the crash-fuzzing lane
//!   behind `vglc fuzz --chaos`.
//!
//! Entry points: [`run_fuzz`] and [`run_chaos`] (used by `vglc fuzz` and CI), or the modules
//! directly for property tests.

pub mod chaos;
pub mod gen;
pub mod oracle;
pub mod protocol;
pub mod rng;
pub mod shrink;

pub use chaos::{run_chaos, ChaosConfig, ChaosFailure, ChaosReport};
pub use gen::{emit, gen_program, GenConfig, Prog};
pub use oracle::{check_source, describe, OracleConfig, Outcome, Verdict};
pub use rng::Rng;
pub use shrink::{fail_kind, shrink, shrink_text, FailKind};

/// A full fuzzing campaign's configuration.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Base seed; case `i` uses `seed.wrapping_add(i)`.
    pub seed: u64,
    /// Number of cases to run (stops early at the first failure).
    pub cases: u64,
    /// Program-shape knobs.
    pub gen: GenConfig,
    /// Engine budgets.
    pub oracle: OracleConfig,
    /// Oracle re-runs allowed while shrinking a failure.
    pub shrink_budget: u32,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig {
            seed: 42,
            cases: 100,
            gen: GenConfig::default(),
            oracle: OracleConfig::default(),
            shrink_budget: 2000,
        }
    }
}

/// A failing case, already shrunk.
#[derive(Clone, Debug)]
pub struct FuzzFailure {
    /// The exact seed that regenerates the failing program
    /// (`vglc fuzz --seed <seed> --cases 1`).
    pub seed: u64,
    /// Which case (0-based) in the campaign failed.
    pub case_index: u64,
    /// One-line description of the failure verdict.
    pub verdict: String,
    /// The generated program as emitted.
    pub original: String,
    /// The shrunk repro source.
    pub shrunk: String,
    /// Line count of the shrunk repro.
    pub shrunk_lines: usize,
}

/// Campaign totals plus the first failure, if any.
#[derive(Clone, Debug, Default)]
pub struct FuzzReport {
    /// Cases attempted.
    pub cases: u64,
    /// Cases where all engines agreed on a normal result.
    pub passed: u64,
    /// Cases where all engines agreed on a trap.
    pub trapping: u64,
    /// Cases skipped because some engine ran out of fuel.
    pub inconclusive: u64,
    /// The first failure encountered (the campaign stops there).
    pub failure: Option<FuzzFailure>,
}

impl FuzzReport {
    /// Whether the campaign finished without a failure.
    pub fn ok(&self) -> bool {
        self.failure.is_none()
    }

    /// A human-readable summary line.
    pub fn summary(&self) -> String {
        format!(
            "{} cases: {} passed, {} agreed traps, {} inconclusive (fuel){}",
            self.cases,
            self.passed,
            self.trapping,
            self.inconclusive,
            if self.ok() { "" } else { ", 1 FAILURE" }
        )
    }
}

/// Runs a fuzzing campaign: generate, run the oracle, tally; on the first
/// failure, shrink it and stop. `progress` is called after every case with
/// (case index, verdict) — pass `|_, _| {}` for silence.
pub fn run_fuzz(cfg: &FuzzConfig, mut progress: impl FnMut(u64, &Verdict)) -> FuzzReport {
    let mut report = FuzzReport::default();
    for i in 0..cfg.cases {
        let seed = cfg.seed.wrapping_add(i);
        let prog = gen_program(seed, &cfg.gen);
        let src = emit(&prog);
        // Randomize the generational lane's heap limits from the case seed
        // (deterministic, so `--seed N --cases 1` reproduces the exact
        // collector schedule): heap 4K–32K slots, nursery 1/4–1/16 of it.
        let mut oracle = cfg.oracle;
        oracle.gen_heap_slots = 1 << (12 + seed % 4);
        oracle.gen_nursery_slots = oracle.gen_heap_slots >> (2 + (seed / 4) % 3);
        let verdict = check_source(&src, &oracle);
        report.cases += 1;
        progress(i, &verdict);
        match &verdict {
            Verdict::Pass { trapped: false } => report.passed += 1,
            Verdict::Pass { trapped: true } => report.trapping += 1,
            Verdict::Inconclusive { .. } => report.inconclusive += 1,
            failing => {
                let kind = fail_kind(failing).expect("non-pass verdict is a failure");
                let reduced = shrink(&prog, kind, &oracle, cfg.shrink_budget);
                let shrunk = emit(&reduced);
                report.failure = Some(FuzzFailure {
                    seed,
                    case_index: i,
                    verdict: describe(failing),
                    original: src,
                    shrunk_lines: shrunk.lines().count(),
                    shrunk,
                });
                return report;
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_campaign_is_clean() {
        let cfg = FuzzConfig { seed: 7, cases: 8, ..FuzzConfig::default() };
        let report = run_fuzz(&cfg, |_, _| {});
        assert!(report.ok(), "{:?}", report.failure.map(|f| f.verdict));
        assert_eq!(report.cases, 8);
    }

    #[test]
    fn report_summary_mentions_every_bucket() {
        let s = FuzzReport { cases: 3, passed: 1, trapping: 1, inconclusive: 1, failure: None }
            .summary();
        assert!(s.contains("3 cases") && s.contains("1 passed") && s.contains("traps"));
    }
}
