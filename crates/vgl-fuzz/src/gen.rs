//! Typed, seeded, AST-level program generation over the full harmonized
//! surface of the paper (§2–§3): class hierarchies with inheritance,
//! virtual and abstract methods, first-class delegates (`obj.method` as a
//! value), generic functions and classes instantiated at several type
//! arguments (including tuple, class, and function type arguments), tuples
//! up to width 16 flowing through calls/returns/fields/arrays, type queries
//! and casts, recursion, and GC-pressure allocation loops.
//!
//! Programs are built as a small *typed model* ([`Prog`] of [`St`]/[`Ex`]),
//! not as text: every constructor is well-typed by construction, emission
//! ([`emit`]) renders deterministic Virgil source, and the shrinker mutates
//! the model rather than the text. Helper declarations (generic functions,
//! the class hierarchy, per-width tuple helpers, the GC churn loop) are
//! emitted **on demand** — a shrunk one-statement program only carries the
//! declarations that statement still needs.

use crate::rng::Rng;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// The value categories the generator tracks. All tuples are flat `int`
/// tuples; `Tup(w)` is `(int, ..., int)` of width `w` (2..=16).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Ty {
    /// `int`.
    Int,
    /// `bool`.
    Bool,
    /// A flat int tuple of the given width.
    Tup(u8),
    /// `Base` (the generated class hierarchy's root).
    Obj,
    /// `int -> int`.
    Fun,
}

/// The mutable variables pre-declared in `main` (emitted only when used).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Var {
    /// `var a = 3;` (int).
    A,
    /// `var b = 5;` (int).
    B,
    /// `var p = (1, 2);` (pair).
    P,
    /// `var t = (1, ..., W);` (the program's wide tuple).
    T,
    /// `var o: Base = DerA.new(1);`.
    O,
    /// `var f: int -> int = inc;`.
    F,
}

/// The concrete classes of the generated hierarchy:
/// `Base` (abstract) ← `DerA` ← `DerC`, and `Base` ← `DerB`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Cls {
    /// `DerA`.
    A,
    /// `DerB` (a sibling of `DerA`; casting it to `DerA` traps).
    B,
    /// `DerC extends DerA`.
    C,
}

impl Cls {
    /// Source name.
    pub fn name(self) -> &'static str {
        match self {
            Cls::A => "DerA",
            Cls::B => "DerB",
            Cls::C => "DerC",
        }
    }
}

/// Integer binary operators (shifts are emitted with a masked shift count).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BinK {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<` (count masked to 0..=15)
    Shl,
    /// `>>` (count masked to 0..=15)
    Shr,
}

/// Integer comparison operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CmpK {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `==`
    EqI,
    /// `!=`
    NeI,
    /// `>=`
    Ge,
    /// `>`
    Gt,
}

/// A typed expression. Constructors note their result type; operand types
/// are invariants maintained by the generator and shrinker.
#[derive(Clone, Debug, PartialEq)]
pub enum Ex {
    /// int literal.
    Lit(i32),
    /// bool literal.
    Bool(bool),
    /// `null` at type `Base`.
    Null,
    /// Variable reference.
    Var(Var),
    /// `l op r` over ints.
    Bin(BinK, Box<Ex>, Box<Ex>),
    /// Division/modulus; guarded masks the divisor into 1..=8.
    DivMod {
        /// `/` vs `%`.
        is_div: bool,
        /// Whether the divisor is masked nonzero.
        guarded: bool,
        /// Dividend.
        l: Box<Ex>,
        /// Divisor.
        r: Box<Ex>,
    },
    /// int comparison → bool.
    Cmp(CmpK, Box<Ex>, Box<Ex>),
    /// `!x`.
    Not(Box<Ex>),
    /// `&&` / `||`.
    Logic(bool, Box<Ex>, Box<Ex>),
    /// `c ? x : y` (x and y share a type).
    Cond(Box<Ex>, Box<Ex>, Box<Ex>),
    /// Generic `choose<T>(c, x, y)`; emitted with an explicit `<Base>` for
    /// object operands (inference does not join sibling classes).
    Choose(Box<Ex>, Box<Ex>, Box<Ex>),
    /// Generic `id<T>(x)`.
    Id(Box<Ex>),
    /// Tuple literal of int expressions (width = len).
    Tup(Vec<Ex>),
    /// `.i` projection of a tuple-typed expression.
    Proj(Box<Ex>, u8),
    /// `swapN(x)` — reverses components.
    Swap(Box<Ex>),
    /// `addN(x, y)` — component-wise sum.
    AddT(Box<Ex>, Box<Ex>),
    /// `sumN(x)` → int.
    SumT(Box<Ex>),
    /// Tuple equality → bool (operands share a width).
    EqT(Box<Ex>, Box<Ex>),
    /// `xs[i]`; `true` masks the index in bounds, `false` may trap.
    ArrI(Box<Ex>, bool),
    /// `ps[(i) & 3]` — a pair from the pair array.
    ArrP(Box<Ex>),
    /// `f2(l, r)` helper call.
    F2(Box<Ex>, Box<Ex>),
    /// Call of a function-typed expression with one int argument (through
    /// the `call1` helper unless the callee is the variable `f`).
    CallFun(Box<Ex>, Box<Ex>),
    /// `recv.v(x)` — virtual dispatch.
    Virt(Box<Ex>, Box<Ex>),
    /// `recv.m()` — declared abstract on `Base`, implemented in subclasses.
    AbsCall(Box<Ex>),
    /// `DerA.!(recv).w` — checked downcast then field read (may trap).
    CastW(Box<Ex>),
    /// `C.?(recv)` type query → bool.
    Query(Cls, Box<Ex>),
    /// `C.!(recv)` checked cast, used at type `Base` (may trap).
    CastO(Cls, Box<Ex>),
    /// `recv == null` / `recv != null`.
    NullCmp(bool, Box<Ex>),
    /// `int.!(byte.!((x) & 255))` round-trip through `byte`.
    ByteRound(Box<Ex>),
    /// `rec((x) & 15)` — bounded recursion.
    Rec(Box<Ex>),
    /// `Box<int>.new(x).get()` — generic class at `int`.
    BoxI(Box<Ex>),
    /// `Box<Base>.new(recv).get()` — generic class at a class type.
    BoxO(Box<Ex>),
    /// `C.new(x)` object construction.
    New(Cls, Box<Ex>),
    /// `recv.v` — a bound-method delegate value.
    BindV(Box<Ex>),
    /// The top-level function `inc` as a value.
    RefInc,
    /// The top-level function `rec` as a value.
    RefRec,
    /// `recv.pq.i` — projection of the tuple *field* (may null-trap).
    FieldP(Box<Ex>, u8),
}

/// A statement of the generated `main` body.
#[derive(Clone, Debug, PartialEq)]
pub enum St {
    /// `v = e;` (the expression's type matches the variable's).
    Set(Var, Ex),
    /// `xs[idx] = e;`; `true` masks the index in bounds.
    ArrSetI(Ex, Ex, bool),
    /// `ps[(idx) & 3] = pair;`
    ArrSetP(Ex, Ex),
    /// `(recv).w = e;` — field store through an expression receiver.
    FieldSet(Ex, Ex),
    /// `if (c) { .. } else { .. }`
    If(Ex, Vec<St>, Vec<St>),
    /// `for (iD = 0; iD < n; iD = iD + 1) { .. }`
    For(u8, Vec<St>),
    /// `{ var kD = n; while (kD > 0) { kD = kD - 1; .. } }`
    While(u8, Vec<St>),
    /// `System.puti(e); System.putc(' ');`
    PrintI(Ex),
    /// `System.putb(e); System.putc(' ');`
    PrintB(Ex),
    /// `sinkN(e);` — prints the xor of the tuple's components.
    SinkT(Ex),
    /// `{ var h = (recv).v; b = b + h(x); }` — delegate bound then called.
    Delegate(Ex, Ex),
    /// `a = (a + gcchurn(len, rounds)) & 65535;` — allocation churn.
    Gc(u8, u8),
    /// `if (c) break;` (generated only inside loops).
    BreakIf(Ex),
    /// `if (c) continue;` (generated only inside loops).
    ContinueIf(Ex),
}

/// A generated program: the per-program wide-tuple width plus the `main`
/// statement list. Everything else (helpers, classes, variable decls, the
/// printed checksum epilogue) is derived at emission time.
#[derive(Clone, Debug)]
pub struct Prog {
    /// The seed this program was generated from.
    pub seed: u64,
    /// Width of the wide tuple variable `t` (3..=16).
    pub width: u8,
    /// `main`'s statements.
    pub stmts: Vec<St>,
}

/// Generation limits.
#[derive(Clone, Copy, Debug)]
pub struct GenConfig {
    /// Maximum top-level statements in `main`.
    pub max_stmts: u32,
    /// Maximum expression depth.
    pub max_depth: u32,
    /// Maximum statement nesting (ifs/loops inside ifs/loops).
    pub max_nest: u32,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig { max_stmts: 10, max_depth: 3, max_nest: 2 }
    }
}

/// The type of an expression (`width` is the program's wide-tuple width).
pub fn ty_of(e: &Ex, width: u8) -> Ty {
    match e {
        Ex::Lit(_)
        | Ex::Bin(..)
        | Ex::DivMod { .. }
        | Ex::Proj(..)
        | Ex::SumT(_)
        | Ex::ArrI(..)
        | Ex::F2(..)
        | Ex::CallFun(..)
        | Ex::Virt(..)
        | Ex::AbsCall(_)
        | Ex::CastW(_)
        | Ex::ByteRound(_)
        | Ex::Rec(_)
        | Ex::BoxI(_)
        | Ex::FieldP(..) => Ty::Int,
        Ex::Bool(_)
        | Ex::Cmp(..)
        | Ex::Not(_)
        | Ex::Logic(..)
        | Ex::EqT(..)
        | Ex::Query(..)
        | Ex::NullCmp(..) => Ty::Bool,
        Ex::Null | Ex::CastO(..) | Ex::BoxO(_) | Ex::New(..) => Ty::Obj,
        Ex::RefInc | Ex::RefRec | Ex::BindV(_) => Ty::Fun,
        Ex::Tup(es) => Ty::Tup(es.len() as u8),
        Ex::ArrP(_) => Ty::Tup(2),
        Ex::Swap(x) | Ex::AddT(x, _) => ty_of(x, width),
        Ex::Cond(_, x, _) | Ex::Choose(_, x, _) | Ex::Id(x) => ty_of(x, width),
        Ex::Var(v) => match v {
            Var::A | Var::B => Ty::Int,
            Var::P => Ty::Tup(2),
            Var::T => Ty::Tup(width),
            Var::O => Ty::Obj,
            Var::F => Ty::Fun,
        },
    }
}

// ---------------------------------------------------------------------------
// Generation
// ---------------------------------------------------------------------------

struct G<'a> {
    rng: &'a mut Rng,
    width: u8,
}

impl G<'_> {
    fn int_leaf(&mut self) -> Ex {
        match self.rng.below(5) {
            0 => Ex::Lit(self.rng.range_i32(-20, 20)),
            1 => Ex::Var(Var::A),
            2 => Ex::Var(Var::B),
            3 => Ex::Proj(Box::new(Ex::Var(Var::P)), self.rng.below(2) as u8),
            _ => {
                let i = self.rng.below(self.width as u64) as u8;
                Ex::Proj(Box::new(Ex::Var(Var::T)), i)
            }
        }
    }

    fn int(&mut self, d: u32) -> Ex {
        if d == 0 {
            return self.int_leaf();
        }
        let d = d - 1;
        match self.rng.below(100) {
            0..=17 => self.int_leaf(),
            18..=29 => {
                let op = *self.rng.pick(&[
                    BinK::Add,
                    BinK::Sub,
                    BinK::Mul,
                    BinK::And,
                    BinK::Or,
                    BinK::Xor,
                    BinK::Shl,
                    BinK::Shr,
                ]);
                Ex::Bin(op, Box::new(self.int(d)), Box::new(self.int(d)))
            }
            30..=35 => Ex::DivMod {
                is_div: self.rng.chance(50),
                guarded: self.rng.chance(90),
                l: Box::new(self.int(d)),
                r: Box::new(self.int(d)),
            },
            36..=41 => Ex::Cond(
                Box::new(self.boolean(d)),
                Box::new(self.int(d)),
                Box::new(self.int(d)),
            ),
            42..=46 => Ex::Choose(
                Box::new(self.boolean(d)),
                Box::new(self.int(d)),
                Box::new(self.int(d)),
            ),
            47..=49 => Ex::Id(Box::new(self.int(d))),
            50..=54 => Ex::F2(Box::new(self.int(d)), Box::new(self.int(d))),
            55..=58 => {
                let w = self.pick_width();
                Ex::SumT(Box::new(self.tup(w, d)))
            }
            59..=62 => {
                let w = self.pick_width();
                let i = self.rng.below(w as u64) as u8;
                Ex::Proj(Box::new(self.tup(w, d)), i)
            }
            63..=68 => Ex::Virt(Box::new(self.recv(d)), Box::new(self.int(d))),
            69..=71 => Ex::AbsCall(Box::new(self.recv(d))),
            72..=75 => Ex::CallFun(Box::new(self.fun(d)), Box::new(self.int(d))),
            76..=77 => Ex::CastW(Box::new(self.recv(d))),
            78..=80 => Ex::ByteRound(Box::new(self.int(d))),
            81..=83 => Ex::Rec(Box::new(self.int(d))),
            84..=86 => Ex::BoxI(Box::new(self.int(d))),
            87..=92 => Ex::ArrI(Box::new(self.int(d)), self.rng.chance(95)),
            93..=95 => {
                let i = self.rng.below(2) as u8;
                Ex::FieldP(Box::new(self.recv(d)), i)
            }
            _ => Ex::Bin(BinK::Add, Box::new(self.int(d)), Box::new(self.int(d))),
        }
    }

    fn boolean(&mut self, d: u32) -> Ex {
        if d == 0 {
            return match self.rng.below(3) {
                0 => Ex::Bool(true),
                1 => Ex::Bool(false),
                _ => {
                    let c = *self.rng.pick(&[Cls::A, Cls::B, Cls::C]);
                    Ex::Query(c, Box::new(Ex::Var(Var::O)))
                }
            };
        }
        let d = d - 1;
        match self.rng.below(100) {
            0..=14 => Ex::Bool(self.rng.chance(50)),
            15..=39 => {
                let op = *self
                    .rng
                    .pick(&[CmpK::Lt, CmpK::Le, CmpK::EqI, CmpK::NeI, CmpK::Ge, CmpK::Gt]);
                Ex::Cmp(op, Box::new(self.int(d)), Box::new(self.int(d)))
            }
            40..=49 => Ex::Logic(
                self.rng.chance(50),
                Box::new(self.boolean(d)),
                Box::new(self.boolean(d)),
            ),
            50..=57 => Ex::Not(Box::new(self.boolean(d))),
            58..=64 => Ex::Cond(
                Box::new(self.boolean(d)),
                Box::new(self.boolean(d)),
                Box::new(self.boolean(d)),
            ),
            65..=70 => Ex::Choose(
                Box::new(self.boolean(d)),
                Box::new(self.boolean(d)),
                Box::new(self.boolean(d)),
            ),
            71..=78 => {
                let w = self.pick_width();
                Ex::EqT(Box::new(self.tup(w, d)), Box::new(self.tup(w, d)))
            }
            79..=88 => {
                let c = *self.rng.pick(&[Cls::A, Cls::B, Cls::C]);
                Ex::Query(c, Box::new(self.recv(d)))
            }
            89..=93 => Ex::NullCmp(self.rng.chance(50), Box::new(self.obj(d))),
            _ => Ex::Id(Box::new(self.boolean(d))),
        }
    }

    fn pick_width(&mut self) -> u8 {
        if self.rng.chance(55) {
            2
        } else {
            self.width
        }
    }

    fn tup_leaf(&mut self, w: u8) -> Ex {
        match self.rng.below(3) {
            0 if w == 2 => Ex::Var(Var::P),
            0 => Ex::Var(Var::T),
            _ => {
                let mut es = Vec::new();
                for _ in 0..w {
                    es.push(Ex::Lit(self.rng.range_i32(-9, 9)));
                }
                Ex::Tup(es)
            }
        }
    }

    fn tup(&mut self, w: u8, d: u32) -> Ex {
        if d == 0 {
            return self.tup_leaf(w);
        }
        let d = d - 1;
        match self.rng.below(100) {
            0..=19 => self.tup_leaf(w),
            20..=39 => {
                let mut es = Vec::new();
                for _ in 0..w {
                    es.push(self.int(d.min(1)));
                }
                Ex::Tup(es)
            }
            40..=54 => Ex::Swap(Box::new(self.tup(w, d))),
            55..=69 => Ex::AddT(Box::new(self.tup(w, d)), Box::new(self.tup(w, d))),
            70..=79 => Ex::Cond(
                Box::new(self.boolean(d)),
                Box::new(self.tup(w, d)),
                Box::new(self.tup(w, d)),
            ),
            80..=89 => Ex::Choose(
                Box::new(self.boolean(d)),
                Box::new(self.tup(w, d)),
                Box::new(self.tup(w, d)),
            ),
            90..=94 if w == 2 => Ex::ArrP(Box::new(self.int(d))),
            _ => Ex::Id(Box::new(self.tup(w, d))),
        }
    }

    fn obj_leaf(&mut self) -> Ex {
        match self.rng.below(10) {
            0..=4 => Ex::Var(Var::O),
            5..=8 => {
                let c = *self.rng.pick(&[Cls::A, Cls::B, Cls::C]);
                Ex::New(c, Box::new(Ex::Lit(self.rng.range_i32(0, 15))))
            }
            _ => Ex::Null,
        }
    }

    /// An object expression usable as a member-access receiver: never a bare
    /// `null` literal (whose static type has no members), though `null` may
    /// still flow in through conditionals and produce runtime null traps.
    fn recv(&mut self, d: u32) -> Ex {
        match self.obj(d) {
            Ex::Null => Ex::Var(Var::O),
            e => e,
        }
    }

    fn obj(&mut self, d: u32) -> Ex {
        if d == 0 {
            // Leaf `null` receivers trap too eagerly; keep them rarer here.
            return if self.rng.chance(96) {
                match self.obj_leaf() {
                    Ex::Null => Ex::Var(Var::O),
                    e => e,
                }
            } else {
                Ex::Null
            };
        }
        let d = d - 1;
        match self.rng.below(100) {
            0..=39 => self.obj_leaf(),
            40..=59 => {
                let c = *self.rng.pick(&[Cls::A, Cls::B, Cls::C]);
                Ex::New(c, Box::new(self.int(d)))
            }
            60..=71 => Ex::Cond(
                Box::new(self.boolean(d)),
                Box::new(self.obj(d)),
                Box::new(self.obj(d)),
            ),
            72..=83 => Ex::Choose(
                Box::new(self.boolean(d)),
                Box::new(self.obj(d)),
                Box::new(self.obj(d)),
            ),
            84..=89 => Ex::BoxO(Box::new(self.recv(d))),
            90..=94 => {
                let c = *self.rng.pick(&[Cls::A, Cls::C]);
                Ex::CastO(c, Box::new(self.recv(d)))
            }
            _ => Ex::Id(Box::new(self.recv(d))),
        }
    }

    fn fun(&mut self, d: u32) -> Ex {
        if d == 0 {
            return match self.rng.below(3) {
                0 => Ex::Var(Var::F),
                1 => Ex::RefInc,
                _ => Ex::RefRec,
            };
        }
        let d = d - 1;
        match self.rng.below(100) {
            0..=34 => self.fun(0),
            35..=59 => Ex::BindV(Box::new(self.recv(d))),
            60..=74 => Ex::Cond(
                Box::new(self.boolean(d)),
                Box::new(self.fun(d)),
                Box::new(self.fun(d)),
            ),
            75..=89 => Ex::Choose(
                Box::new(self.boolean(d)),
                Box::new(self.fun(d)),
                Box::new(self.fun(d)),
            ),
            _ => Ex::Id(Box::new(self.fun(d))),
        }
    }

    fn stmt(&mut self, cfg: &GenConfig, nest: u32, in_loop: bool) -> St {
        let d = cfg.max_depth;
        let roll = self.rng.below(100);
        match roll {
            0..=9 => St::Set(Var::A, self.int(d)),
            10..=17 => St::Set(Var::B, self.int(d)),
            18..=24 => St::Set(Var::P, self.tup(2, d)),
            25..=31 => St::Set(Var::T, self.tup(self.width, d)),
            32..=38 => St::Set(Var::O, self.obj(d)),
            39..=43 => St::Set(Var::F, self.fun(d)),
            44..=48 => St::ArrSetI(self.int(d), self.int(d), self.rng.chance(95)),
            49..=52 => St::ArrSetP(self.int(d), self.tup(2, d)),
            53..=55 => St::FieldSet(self.recv(1), self.int(d)),
            56..=61 => St::PrintI(self.int(d)),
            62..=64 => St::PrintB(self.boolean(d)),
            65..=68 => {
                let w = self.pick_width();
                St::SinkT(self.tup(w, d))
            }
            69..=73 => St::Delegate(self.recv(1), self.int(d)),
            74..=75 => St::Gc(
                (8 + self.rng.below(57)) as u8,
                (1 + self.rng.below(6)) as u8,
            ),
            76..=84 if nest < cfg.max_nest => {
                let c = self.boolean(d);
                let nt = 1 + self.rng.below(3);
                let then = self.stmts(cfg, nt, nest + 1, in_loop);
                let els = if self.rng.chance(60) {
                    let ne = 1 + self.rng.below(2);
                    self.stmts(cfg, ne, nest + 1, in_loop)
                } else {
                    Vec::new()
                };
                St::If(c, then, els)
            }
            85..=90 if nest < cfg.max_nest => {
                let n = (1 + self.rng.below(4)) as u8;
                let nb = 1 + self.rng.below(3);
                let body = self.stmts(cfg, nb, nest + 1, true);
                St::For(n, body)
            }
            91..=93 if nest < cfg.max_nest => {
                let n = (1 + self.rng.below(4)) as u8;
                let nb = 1 + self.rng.below(3);
                let body = self.stmts(cfg, nb, nest + 1, true);
                St::While(n, body)
            }
            94..=95 if in_loop => St::BreakIf(self.boolean(1)),
            96..=97 if in_loop => St::ContinueIf(self.boolean(1)),
            _ => St::Set(Var::A, self.int(d)),
        }
    }

    fn stmts(&mut self, cfg: &GenConfig, n: u64, nest: u32, in_loop: bool) -> Vec<St> {
        (0..n).map(|_| self.stmt(cfg, nest, in_loop)).collect()
    }
}

/// Generates a program from `seed` under the given limits. The same seed and
/// config always produce the same program.
pub fn gen_program(seed: u64, cfg: &GenConfig) -> Prog {
    let mut rng = Rng::new(seed);
    let width = *rng.pick(&[3u8, 4, 6, 8, 12, 16]);
    let mut g = G { rng: &mut rng, width };
    let n = 1 + g.rng.below(cfg.max_stmts.max(1) as u64);
    let stmts = g.stmts(cfg, n, 0, false);
    Prog { seed, width, stmts }
}

// ---------------------------------------------------------------------------
// Feature collection (which helper declarations the program needs)
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Features {
    a: bool,
    b: bool,
    p: bool,
    t: bool,
    o: bool,
    f: bool,
    xs: bool,
    ps: bool,
    choose: bool,
    id: bool,
    f2: bool,
    inc: bool,
    rec: bool,
    boxg: bool,
    call1: bool,
    classes: bool,
    cls_a: bool,
    cls_b: bool,
    cls_c: bool,
    use_v: bool,
    use_m: bool,
    use_pq: bool,
    asbase: bool,
    gc: bool,
    swap: BTreeSet<u8>,
    add: BTreeSet<u8>,
    sum: BTreeSet<u8>,
    sink: BTreeSet<u8>,
}

impl Features {
    fn mark_cls(&mut self, c: Cls) {
        match c {
            Cls::A => self.cls_a = true,
            Cls::B => self.cls_b = true,
            Cls::C => self.cls_c = true,
        }
    }
}

fn scan_ex(e: &Ex, w: u8, f: &mut Features) {
    match e {
        Ex::Lit(_) | Ex::Bool(_) => {}
        Ex::Null => f.classes = true,
        Ex::Var(v) => match v {
            Var::A => f.a = true,
            Var::B => f.b = true,
            Var::P => f.p = true,
            Var::T => f.t = true,
            Var::O => {
                f.o = true;
                f.classes = true;
                f.cls_a = true; // `var o: Base = DerA.new(1)`
            }
            Var::F => {
                f.f = true;
                f.inc = true;
            }
        },
        Ex::Bin(_, l, r)
        | Ex::Cmp(_, l, r)
        | Ex::Logic(_, l, r)
        | Ex::EqT(l, r)
        | Ex::AddT(l, r) => {
            if matches!(e, Ex::AddT(..)) {
                if let Ty::Tup(tw) = ty_of(e, w) {
                    f.add.insert(tw);
                }
            }
            scan_ex(l, w, f);
            scan_ex(r, w, f);
        }
        Ex::DivMod { l, r, .. } => {
            scan_ex(l, w, f);
            scan_ex(r, w, f);
        }
        Ex::Not(x) | Ex::Proj(x, _) | Ex::ByteRound(x) => scan_ex(x, w, f),
        Ex::Cond(c, x, y) => {
            scan_ex(c, w, f);
            scan_ex(x, w, f);
            scan_ex(y, w, f);
        }
        Ex::Choose(c, x, y) => {
            f.choose = true;
            scan_ex(c, w, f);
            scan_ex(x, w, f);
            scan_ex(y, w, f);
        }
        Ex::Id(x) => {
            f.id = true;
            scan_ex(x, w, f);
        }
        Ex::Tup(es) => es.iter().for_each(|x| scan_ex(x, w, f)),
        Ex::Swap(x) => {
            if let Ty::Tup(tw) = ty_of(x, w) {
                f.swap.insert(tw);
            }
            scan_ex(x, w, f);
        }
        Ex::SumT(x) => {
            if let Ty::Tup(tw) = ty_of(x, w) {
                f.sum.insert(tw);
            }
            scan_ex(x, w, f);
        }
        Ex::ArrI(x, _) => {
            f.xs = true;
            scan_ex(x, w, f);
        }
        Ex::ArrP(x) => {
            f.ps = true;
            scan_ex(x, w, f);
        }
        Ex::F2(l, r) => {
            f.f2 = true;
            scan_ex(l, w, f);
            scan_ex(r, w, f);
        }
        Ex::CallFun(g, x) => {
            if !matches!(**g, Ex::Var(Var::F)) {
                f.call1 = true;
            }
            scan_ex(g, w, f);
            scan_ex(x, w, f);
        }
        Ex::Virt(r, x) => {
            f.classes = true;
            f.use_v = true;
            f.asbase |= could_be_null(r);
            scan_ex(r, w, f);
            scan_ex(x, w, f);
        }
        Ex::AbsCall(r) => {
            f.classes = true;
            f.use_m = true;
            f.asbase |= could_be_null(r);
            scan_ex(r, w, f);
        }
        Ex::CastW(r) => {
            f.classes = true;
            f.cls_a = true; // casts to `DerA` and reads `.w`
            f.asbase = true;
            scan_ex(r, w, f);
        }
        Ex::Query(c, r) | Ex::CastO(c, r) => {
            f.classes = true;
            f.mark_cls(*c);
            f.asbase = true;
            scan_ex(r, w, f);
        }
        Ex::NullCmp(_, r) => {
            f.classes = true;
            scan_ex(r, w, f);
        }
        Ex::Rec(x) => {
            f.rec = true;
            scan_ex(x, w, f);
        }
        Ex::BoxI(x) => {
            f.boxg = true;
            scan_ex(x, w, f);
        }
        Ex::BoxO(x) => {
            f.boxg = true;
            f.classes = true;
            scan_ex(x, w, f);
        }
        Ex::New(c, x) => {
            f.classes = true;
            f.mark_cls(*c);
            scan_ex(x, w, f);
        }
        Ex::BindV(r) => {
            f.classes = true;
            f.use_v = true;
            f.asbase |= could_be_null(r);
            scan_ex(r, w, f);
        }
        Ex::RefInc => f.inc = true,
        Ex::RefRec => f.rec = true,
        Ex::FieldP(r, _) => {
            f.classes = true;
            f.use_pq = true;
            f.asbase |= could_be_null(r);
            scan_ex(r, w, f);
        }
    }
}

fn scan_st(s: &St, w: u8, f: &mut Features) {
    match s {
        St::Set(v, e) => {
            scan_ex(&Ex::Var(*v), w, f);
            scan_ex(e, w, f);
        }
        St::ArrSetI(i, e, _) => {
            f.xs = true;
            scan_ex(i, w, f);
            scan_ex(e, w, f);
        }
        St::ArrSetP(i, e) => {
            f.ps = true;
            scan_ex(i, w, f);
            scan_ex(e, w, f);
        }
        St::FieldSet(r, e) => {
            f.classes = true;
            f.asbase |= could_be_null(r);
            scan_ex(r, w, f);
            scan_ex(e, w, f);
        }
        St::If(c, t, e) => {
            scan_ex(c, w, f);
            t.iter().for_each(|s| scan_st(s, w, f));
            e.iter().for_each(|s| scan_st(s, w, f));
        }
        St::For(_, b) | St::While(_, b) => b.iter().for_each(|s| scan_st(s, w, f)),
        St::PrintI(e) | St::PrintB(e) => scan_ex(e, w, f),
        St::SinkT(e) => {
            if let Ty::Tup(tw) = ty_of(e, w) {
                f.sink.insert(tw);
            }
            scan_ex(e, w, f);
        }
        St::Delegate(r, x) => {
            f.classes = true;
            f.use_v = true;
            f.b = true;
            f.asbase |= could_be_null(r);
            scan_ex(r, w, f);
            scan_ex(x, w, f);
        }
        St::Gc(..) => {
            f.gc = true;
            f.a = true;
        }
        St::BreakIf(c) | St::ContinueIf(c) => scan_ex(c, w, f),
    }
}

// ---------------------------------------------------------------------------
// Emission
// ---------------------------------------------------------------------------

fn emit_tuple_ty(w: u8) -> String {
    let parts = vec!["int"; w as usize];
    format!("({})", parts.join(", "))
}

/// Whether the expression's *static* type in the emitted source is the null
/// type (rather than `Base`). Member access on such an expression is a type
/// error, so receivers like this are routed through `asbase`.
fn could_be_null(e: &Ex) -> bool {
    match e {
        Ex::Null => true,
        // The ternary joins class types with null, so only an all-null
        // conditional stays null-typed. `choose` is emitted with an explicit
        // `<Base>` for object operands and never stays null-typed.
        Ex::Cond(_, x, y) => could_be_null(x) && could_be_null(y),
        Ex::Id(x) => could_be_null(x),
        _ => false,
    }
}

/// Emits a member-access receiver, upcasting statically-null expressions to
/// `Base` via `asbase` (a null *value* still traps at runtime — that is the
/// point — but the program stays well-typed).
fn emit_recv(e: &Ex, w: u8, out: &mut String) {
    if could_be_null(e) {
        out.push_str("asbase(");
        emit_ex(e, w, out);
        out.push(')');
    } else {
        emit_ex(e, w, out);
    }
}

fn emit_ex(e: &Ex, w: u8, out: &mut String) {
    match e {
        Ex::Lit(v) => {
            if *v < 0 {
                let _ = write!(out, "(0 - {})", -(*v as i64));
            } else {
                let _ = write!(out, "{v}");
            }
        }
        Ex::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Ex::Null => out.push_str("null"),
        Ex::Var(v) => out.push_str(match v {
            Var::A => "a",
            Var::B => "b",
            Var::P => "p",
            Var::T => "t",
            Var::O => "o",
            Var::F => "f",
        }),
        Ex::Bin(op, l, r) => {
            let (sym, masked) = match op {
                BinK::Add => ("+", false),
                BinK::Sub => ("-", false),
                BinK::Mul => ("*", false),
                BinK::And => ("&", false),
                BinK::Or => ("|", false),
                BinK::Xor => ("^", false),
                BinK::Shl => ("<<", true),
                BinK::Shr => (">>", true),
            };
            out.push('(');
            emit_ex(l, w, out);
            let _ = write!(out, " {sym} ");
            if masked {
                out.push('(');
                out.push('(');
                emit_ex(r, w, out);
                out.push_str(") & 15)");
            } else {
                emit_ex(r, w, out);
            }
            out.push(')');
        }
        Ex::DivMod { is_div, guarded, l, r } => {
            let sym = if *is_div { "/" } else { "%" };
            out.push('(');
            emit_ex(l, w, out);
            let _ = write!(out, " {sym} ");
            if *guarded {
                out.push_str("(1 + ((");
                emit_ex(r, w, out);
                out.push_str(") & 7))");
            } else {
                out.push('(');
                emit_ex(r, w, out);
                out.push(')');
            }
            out.push(')');
        }
        Ex::Cmp(op, l, r) => {
            let sym = match op {
                CmpK::Lt => "<",
                CmpK::Le => "<=",
                CmpK::EqI => "==",
                CmpK::NeI => "!=",
                CmpK::Ge => ">=",
                CmpK::Gt => ">",
            };
            out.push('(');
            emit_ex(l, w, out);
            let _ = write!(out, " {sym} ");
            emit_ex(r, w, out);
            out.push(')');
        }
        Ex::Not(x) => {
            out.push_str("!(");
            emit_ex(x, w, out);
            out.push(')');
        }
        Ex::Logic(and, l, r) => {
            out.push('(');
            emit_ex(l, w, out);
            out.push_str(if *and { " && " } else { " || " });
            emit_ex(r, w, out);
            out.push(')');
        }
        Ex::Cond(c, x, y) => {
            out.push('(');
            emit_ex(c, w, out);
            out.push_str(" ? ");
            emit_ex(x, w, out);
            out.push_str(" : ");
            emit_ex(y, w, out);
            out.push(')');
        }
        Ex::Choose(c, x, y) => {
            // Explicit type argument for objects: inference does not join
            // sibling class types to their common superclass.
            if ty_of(x, w) == Ty::Obj {
                out.push_str("choose<Base>(");
            } else {
                out.push_str("choose(");
            }
            emit_ex(c, w, out);
            out.push_str(", ");
            emit_ex(x, w, out);
            out.push_str(", ");
            emit_ex(y, w, out);
            out.push(')');
        }
        Ex::Id(x) => {
            // `id(null)` would instantiate T at the null type; pin it.
            if could_be_null(x) {
                out.push_str("id<Base>(");
            } else {
                out.push_str("id(");
            }
            emit_ex(x, w, out);
            out.push(')');
        }
        Ex::Tup(es) => {
            out.push('(');
            for (i, x) in es.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                emit_ex(x, w, out);
            }
            out.push(')');
        }
        Ex::Proj(x, i) => {
            out.push('(');
            emit_ex(x, w, out);
            let _ = write!(out, ").{i}");
        }
        Ex::Swap(x) => {
            let Ty::Tup(tw) = ty_of(x, w) else { unreachable!() };
            let _ = write!(out, "swap{tw}(");
            emit_ex(x, w, out);
            out.push(')');
        }
        Ex::AddT(l, r) => {
            let Ty::Tup(tw) = ty_of(l, w) else { unreachable!() };
            let _ = write!(out, "add{tw}(");
            emit_ex(l, w, out);
            out.push_str(", ");
            emit_ex(r, w, out);
            out.push(')');
        }
        Ex::SumT(x) => {
            let Ty::Tup(tw) = ty_of(x, w) else { unreachable!() };
            let _ = write!(out, "sum{tw}(");
            emit_ex(x, w, out);
            out.push(')');
        }
        Ex::EqT(l, r) => {
            out.push('(');
            emit_ex(l, w, out);
            out.push_str(" == ");
            emit_ex(r, w, out);
            out.push(')');
        }
        Ex::ArrI(i, masked) => {
            out.push_str("xs[");
            if *masked {
                out.push('(');
                emit_ex(i, w, out);
                out.push_str(") & 3");
            } else {
                emit_ex(i, w, out);
            }
            out.push(']');
        }
        Ex::ArrP(i) => {
            out.push_str("ps[(");
            emit_ex(i, w, out);
            out.push_str(") & 3]");
        }
        Ex::F2(l, r) => {
            out.push_str("f2(");
            emit_ex(l, w, out);
            out.push_str(", ");
            emit_ex(r, w, out);
            out.push(')');
        }
        // Indirect-call arguments are clamped: the callee may be `rec`, and
        // an unbounded argument would recurse thousands of frames deep in
        // the tree-walking interpreter (host stack overflow, not a trap).
        // 63 keeps recursion within a 2 MiB debug-build test-thread stack.
        Ex::CallFun(g, x) => {
            if matches!(**g, Ex::Var(Var::F)) {
                out.push_str("f((");
                emit_ex(x, w, out);
                out.push_str(") & 63)");
            } else {
                out.push_str("call1(");
                emit_ex(g, w, out);
                out.push_str(", (");
                emit_ex(x, w, out);
                out.push_str(") & 63)");
            }
        }
        Ex::Virt(r, x) => {
            out.push('(');
            emit_recv(r, w, out);
            out.push_str(").v(");
            emit_ex(x, w, out);
            out.push(')');
        }
        Ex::AbsCall(r) => {
            out.push('(');
            emit_recv(r, w, out);
            out.push_str(").m()");
        }
        // Queries and casts go through `asbase` so the operand's static type
        // is `Base`: the language rejects casts between unrelated (sibling)
        // classes, and a bare `DerA.new(1)` operand has static type `DerA`.
        Ex::CastW(r) => {
            out.push_str("DerA.!(asbase(");
            emit_ex(r, w, out);
            out.push_str(")).w");
        }
        Ex::Query(c, r) => {
            let _ = write!(out, "{}.?(asbase(", c.name());
            emit_ex(r, w, out);
            out.push_str("))");
        }
        Ex::CastO(c, r) => {
            let _ = write!(out, "{}.!(asbase(", c.name());
            emit_ex(r, w, out);
            out.push_str("))");
        }
        Ex::NullCmp(eq, r) => {
            out.push('(');
            emit_ex(r, w, out);
            out.push_str(if *eq { " == null)" } else { " != null)" });
        }
        Ex::ByteRound(x) => {
            out.push_str("int.!(byte.!((");
            emit_ex(x, w, out);
            out.push_str(") & 255))");
        }
        Ex::Rec(x) => {
            out.push_str("rec((");
            emit_ex(x, w, out);
            out.push_str(") & 15)");
        }
        Ex::BoxI(x) => {
            out.push_str("Box<int>.new(");
            emit_ex(x, w, out);
            out.push_str(").get()");
        }
        Ex::BoxO(x) => {
            out.push_str("Box<Base>.new(");
            emit_ex(x, w, out);
            out.push_str(").get()");
        }
        Ex::New(c, x) => {
            let _ = write!(out, "{}.new(", c.name());
            emit_ex(x, w, out);
            out.push(')');
        }
        Ex::BindV(r) => {
            out.push('(');
            emit_recv(r, w, out);
            out.push_str(").v");
        }
        Ex::RefInc => out.push_str("inc"),
        Ex::RefRec => out.push_str("rec"),
        Ex::FieldP(r, i) => {
            out.push('(');
            emit_recv(r, w, out);
            let _ = write!(out, ").pq.{i}");
        }
    }
}

fn recv_str(e: &Ex, w: u8) -> String {
    let mut s = String::new();
    emit_recv(e, w, &mut s);
    s
}

fn ex_str(e: &Ex, w: u8) -> String {
    let mut s = String::new();
    emit_ex(e, w, &mut s);
    s
}

fn emit_st(s: &St, w: u8, indent: usize, loops: u32, out: &mut String) {
    let pad = "    ".repeat(indent);
    match s {
        St::Set(v, e) => {
            let name = ex_str(&Ex::Var(*v), w);
            let _ = writeln!(out, "{pad}{name} = {};", ex_str(e, w));
        }
        St::ArrSetI(i, e, masked) => {
            if *masked {
                let _ = writeln!(out, "{pad}xs[({}) & 3] = {};", ex_str(i, w), ex_str(e, w));
            } else {
                let _ = writeln!(out, "{pad}xs[{}] = {};", ex_str(i, w), ex_str(e, w));
            }
        }
        St::ArrSetP(i, e) => {
            let _ = writeln!(out, "{pad}ps[({}) & 3] = {};", ex_str(i, w), ex_str(e, w));
        }
        St::FieldSet(r, e) => {
            let _ = writeln!(out, "{pad}({}).w = {};", recv_str(r, w), ex_str(e, w));
        }
        St::If(c, t, e) => {
            let _ = writeln!(out, "{pad}if ({}) {{", ex_str(c, w));
            for s in t {
                emit_st(s, w, indent + 1, loops, out);
            }
            if e.is_empty() {
                let _ = writeln!(out, "{pad}}}");
            } else {
                let _ = writeln!(out, "{pad}}} else {{");
                for s in e {
                    emit_st(s, w, indent + 1, loops, out);
                }
                let _ = writeln!(out, "{pad}}}");
            }
        }
        St::For(n, body) => {
            let i = format!("i{loops}");
            let _ = writeln!(out, "{pad}for ({i} = 0; {i} < {n}; {i} = {i} + 1) {{");
            for s in body {
                emit_st(s, w, indent + 1, loops + 1, out);
            }
            let _ = writeln!(out, "{pad}}}");
        }
        St::While(n, body) => {
            let k = format!("k{loops}");
            let _ = writeln!(out, "{pad}{{");
            let _ = writeln!(out, "{pad}    var {k} = {n};");
            let _ = writeln!(out, "{pad}    while ({k} > 0) {{");
            let _ = writeln!(out, "{pad}        {k} = {k} - 1;");
            for s in body {
                emit_st(s, w, indent + 2, loops + 1, out);
            }
            let _ = writeln!(out, "{pad}    }}");
            let _ = writeln!(out, "{pad}}}");
        }
        St::PrintI(e) => {
            let _ = writeln!(out, "{pad}System.puti({}); System.putc(' ');", ex_str(e, w));
        }
        St::PrintB(e) => {
            let _ = writeln!(out, "{pad}System.putb({}); System.putc(' ');", ex_str(e, w));
        }
        St::SinkT(e) => {
            let Ty::Tup(tw) = ty_of(e, w) else { unreachable!() };
            let _ = writeln!(out, "{pad}sink{tw}({});", ex_str(e, w));
        }
        St::Delegate(r, x) => {
            let _ = writeln!(
                out,
                "{pad}{{ var h = ({}).v; b = b + h({}); }}",
                recv_str(r, w),
                ex_str(x, w)
            );
        }
        St::Gc(len, rounds) => {
            let _ = writeln!(out, "{pad}a = (a + gcchurn({len}, {rounds})) & 65535;");
        }
        St::BreakIf(c) => {
            let _ = writeln!(out, "{pad}if ({}) break;", ex_str(c, w));
        }
        St::ContinueIf(c) => {
            let _ = writeln!(out, "{pad}if ({}) continue;", ex_str(c, w));
        }
    }
}

fn emit_width_helpers(f: &Features, out: &mut String) {
    for &w in &f.swap {
        let ty = emit_tuple_ty(w);
        let comps: Vec<String> = (0..w).rev().map(|i| format!("q.{i}")).collect();
        let _ = writeln!(
            out,
            "def swap{w}(q: {ty}) -> {ty} {{ return ({}); }}",
            comps.join(", ")
        );
    }
    for &w in &f.add {
        let ty = emit_tuple_ty(w);
        let comps: Vec<String> = (0..w).map(|i| format!("x.{i} + y.{i}")).collect();
        let _ = writeln!(
            out,
            "def add{w}(x: {ty}, y: {ty}) -> {ty} {{ return ({}); }}",
            comps.join(", ")
        );
    }
    for &w in &f.sum {
        let ty = emit_tuple_ty(w);
        let comps: Vec<String> = (0..w).map(|i| format!("q.{i}")).collect();
        let _ = writeln!(
            out,
            "def sum{w}(q: {ty}) -> int {{ return {}; }}",
            comps.join(" + ")
        );
    }
    for &w in &f.sink {
        let ty = emit_tuple_ty(w);
        let comps: Vec<String> = (0..w).map(|i| format!("q.{i}")).collect();
        let _ = writeln!(
            out,
            "def sink{w}(q: {ty}) {{ System.puti({}); System.putc(' '); }}",
            comps.join(" ^ ")
        );
    }
}

/// Emits only the classes and members the program references, so shrunk
/// repros are not padded with an unused hierarchy. `Base` always carries `w`
/// (casts and field stores use it); `pq`, `v`, and `m` appear on demand, and
/// when the abstract `m` is declared every emitted subclass implements it.
fn emit_classes(f: &Features, out: &mut String) {
    let cls_a = f.cls_a || f.cls_c; // DerC extends DerA
    out.push_str("class Base {\n    var w: int;\n");
    if f.use_pq {
        out.push_str("    var pq: (int, int);\n    new(w) { pq = (w, w + 1); }\n");
    } else {
        out.push_str("    new(w) { }\n");
    }
    if f.use_v {
        out.push_str("    def v(x: int) -> int { return x + w; }\n");
    }
    if f.use_m {
        out.push_str("    def m() -> int;\n");
    }
    out.push_str("}\n");
    if cls_a {
        out.push_str("class DerA extends Base {\n    new(w: int) super(w) { }\n");
        if f.use_v {
            out.push_str("    def v(x: int) -> int { return x * 2 - w; }\n");
        }
        if f.use_m {
            out.push_str("    def m() -> int { return w + 10; }\n");
        }
        out.push_str("}\n");
    }
    if f.cls_b {
        out.push_str("class DerB extends Base {\n    new(w: int) super(w) { }\n");
        if f.use_m {
            out.push_str("    def m() -> int { return 5 - w; }\n");
        }
        out.push_str("}\n");
    }
    if f.cls_c {
        out.push_str("class DerC extends DerA {\n    new(w: int) super(w) { }\n");
        if f.use_v {
            out.push_str("    def v(x: int) -> int { return x - w * 3; }\n");
        }
        if f.use_m {
            out.push_str("    def m() -> int { return w ^ 21; }\n");
        }
        out.push_str("}\n");
    }
}

const GC_HELPERS: &str = "\
class Node {
    def val: int;
    def next: Node;
    new(val, next) { }
}
def gcchurn(len: int, rounds: int) -> int {
    var acc = 0;
    for (r = 0; r < rounds; r = r + 1) {
        var head: Node = null;
        for (i = 0; i < len; i = i + 1) head = Node.new(i + r, head);
        var cur = head;
        while (cur != null) { acc = acc + cur.val; cur = cur.next; }
    }
    return acc;
}
";

/// Renders a [`Prog`] to Virgil source. Only the declarations the program
/// actually uses are emitted, so shrunk programs stay small.
pub fn emit(prog: &Prog) -> String {
    let w = prog.width;
    let mut f = Features::default();
    for s in &prog.stmts {
        scan_st(s, w, &mut f);
    }
    // The checksum epilogue reads every used checksum variable.
    if f.t {
        f.sum.insert(w);
    }

    let mut out = String::new();
    if f.choose {
        out.push_str("def choose<T>(c: bool, x: T, y: T) -> T { return c ? x : y; }\n");
    }
    if f.id {
        out.push_str("def id<T>(x: T) -> T { return x; }\n");
    }
    if f.f2 {
        out.push_str("def f2(x: int, y: int) -> int { return x * 2 - y; }\n");
    }
    if f.inc {
        out.push_str("def inc(x: int) -> int { return x + 1; }\n");
    }
    if f.rec {
        out.push_str(
            "def rec(n: int) -> int {\n    if (n <= 0) return 1;\n    \
             return (n + rec(n - 1) * 3) % 1000003;\n}\n",
        );
    }
    if f.call1 {
        out.push_str("def call1(g: int -> int, x: int) -> int { return g(x); }\n");
    }
    if f.boxg {
        out.push_str(
            "class Box<T> {\n    def val: T;\n    new(val) { }\n    \
             def get() -> T { return val; }\n}\n",
        );
    }
    if f.classes {
        emit_classes(&f, &mut out);
    }
    if f.asbase {
        out.push_str("def asbase(x: Base) -> Base { return x; }\n");
    }
    if f.gc {
        out.push_str(GC_HELPERS);
    }
    emit_width_helpers(&f, &mut out);

    out.push_str("def main() -> int {\n");
    if f.a {
        out.push_str("    var a = 3;\n");
    }
    if f.b {
        out.push_str("    var b = 5;\n");
    }
    if f.p {
        out.push_str("    var p = (1, 2);\n");
    }
    if f.t {
        let comps: Vec<String> = (1..=w).map(|i| i.to_string()).collect();
        let _ = writeln!(out, "    var t = ({});", comps.join(", "));
    }
    if f.o {
        out.push_str("    var o: Base = DerA.new(1);\n");
    }
    if f.f {
        out.push_str("    var f: int -> int = inc;\n");
    }
    if f.xs {
        out.push_str("    var xs = Array<int>.new(4);\n");
    }
    if f.ps {
        out.push_str("    var ps = Array<(int, int)>.new(4);\n");
    }
    for s in &prog.stmts {
        emit_st(s, w, 1, 0, &mut out);
    }
    // Epilogue: print the live scalars and return a checksum over them so
    // every mutation is observable on every engine.
    let mut checks: Vec<String> = Vec::new();
    if f.a {
        out.push_str("    System.puti(a); System.putc(' ');\n");
        checks.push("a".into());
    }
    if f.b {
        out.push_str("    System.puti(b); System.putc(' ');\n");
        checks.push("(b << 1)".into());
    }
    if f.p {
        out.push_str("    System.puti(p.0); System.puti(p.1); System.putc(' ');\n");
        checks.push("p.0".into());
        checks.push("(p.1 << 2)".into());
    }
    if f.t {
        let _ = writeln!(out, "    System.puti(sum{w}(t)); System.putc(' ');");
        checks.push(format!("sum{w}(t)"));
    }
    if checks.is_empty() {
        out.push_str("    return 0;\n");
    } else {
        let _ = writeln!(out, "    return {};", checks.join(" ^ "));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::default();
        let a = emit(&gen_program(12345, &cfg));
        let b = emit(&gen_program(12345, &cfg));
        assert_eq!(a, b);
        let c = emit(&gen_program(54321, &cfg));
        assert_ne!(a, c, "different seeds should differ (overwhelmingly)");
    }

    #[test]
    fn emitted_programs_only_carry_used_helpers() {
        let p = Prog { seed: 0, width: 8, stmts: vec![St::Set(Var::A, Ex::Lit(7))] };
        let src = emit(&p);
        assert!(src.contains("var a = 3;"));
        assert!(!src.contains("class Base"), "no classes needed:\n{src}");
        assert!(!src.contains("choose"), "no generics needed:\n{src}");
        assert!(!src.contains("var t"), "wide tuple unused:\n{src}");
    }

    #[test]
    fn class_emission_prunes_unreferenced_classes_and_members() {
        // A virtual call on a freshly allocated DerA touches nothing else:
        // no DerB/DerC, no abstract `m`, no tuple field `pq`.
        let p = Prog {
            seed: 0,
            width: 8,
            stmts: vec![St::Set(
                Var::A,
                Ex::Virt(Box::new(Ex::New(Cls::A, Box::new(Ex::Lit(2)))), Box::new(Ex::Lit(3))),
            )],
        };
        let src = emit(&p);
        assert!(src.contains("class Base"), "Base needed:\n{src}");
        assert!(src.contains("class DerA"), "DerA needed:\n{src}");
        assert!(!src.contains("DerB"), "DerB unused:\n{src}");
        assert!(!src.contains("DerC"), "DerC unused:\n{src}");
        assert!(!src.contains("def m()"), "abstract m unused:\n{src}");
        assert!(!src.contains("pq"), "tuple field unused:\n{src}");
        // DerC pulls in its parent DerA even when DerA is never named.
        let p = Prog {
            seed: 0,
            width: 8,
            stmts: vec![St::Set(
                Var::A,
                Ex::AbsCall(Box::new(Ex::New(Cls::C, Box::new(Ex::Lit(2))))),
            )],
        };
        let src = emit(&p);
        assert!(src.contains("class DerA"), "DerC's parent:\n{src}");
        assert!(src.contains("class DerC"), "DerC needed:\n{src}");
        assert!(src.contains("def m()"), "abstract m used:\n{src}");
        assert!(!src.contains("def v("), "virtual v unused:\n{src}");
    }

    #[test]
    fn wide_tuple_width_feeds_helpers() {
        let p = Prog {
            seed: 0,
            width: 16,
            stmts: vec![St::Set(Var::T, Ex::Swap(Box::new(Ex::Var(Var::T))))],
        };
        let src = emit(&p);
        assert!(src.contains("def swap16"), "swap16 helper:\n{src}");
        assert!(src.contains("def sum16"), "checksum helper:\n{src}");
    }

    #[test]
    fn ty_of_tracks_widths_and_vars() {
        assert_eq!(ty_of(&Ex::Var(Var::T), 12), Ty::Tup(12));
        assert_eq!(ty_of(&Ex::Swap(Box::new(Ex::Var(Var::P))), 12), Ty::Tup(2));
        assert_eq!(ty_of(&Ex::BindV(Box::new(Ex::Var(Var::O))), 12), Ty::Fun);
        assert_eq!(
            ty_of(&Ex::Cond(Box::new(Ex::Bool(true)), Box::new(Ex::Null), Box::new(Ex::Null)), 4),
            Ty::Obj
        );
    }
}
