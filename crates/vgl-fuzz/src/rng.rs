//! The in-tree deterministic PRNG used by every randomized test in the
//! workspace. xorshift64* — no dependencies, stable across platforms, and a
//! failure always reproduces from its printed seed.

/// xorshift64* — deterministic, dependency-free.
#[derive(Clone, Debug)]
pub struct Rng(u64);

impl Rng {
    /// A generator seeded with `seed` (zero is mapped to a nonzero state).
    pub fn new(seed: u64) -> Rng {
        Rng(seed | 1)
    }

    /// The next raw 64-bit sample.
    #[allow(clippy::should_implement_trait)] // not an Iterator: infinite, never None
    pub fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform-ish sample in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// `true` with probability `pct` percent.
    pub fn chance(&mut self, pct: u64) -> bool {
        self.below(100) < pct
    }

    /// Uniform-ish sample in `lo..=hi`.
    pub fn range_i32(&mut self, lo: i32, hi: i32) -> i32 {
        lo + self.below((hi - lo + 1) as u64) as i32
    }

    /// Picks one element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_varied() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        let xs: Vec<u64> = (0..16).map(|_| a.next()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next()).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = Rng::new(0);
        assert!((0..8).map(|_| r.below(10)).any(|v| v != 0));
    }

    #[test]
    fn range_and_pick_stay_in_bounds() {
        let mut r = Rng::new(7);
        for _ in 0..100 {
            let v = r.range_i32(-5, 5);
            assert!((-5..=5).contains(&v));
            assert!([1, 2, 3].contains(r.pick(&[1, 2, 3])));
        }
    }
}
