//! Chaos lane: crash-fuzzing the front end with corrupted inputs.
//!
//! The regular fuzz lane feeds the pipeline well-typed-by-construction
//! programs and checks that nine engine configurations agree. This lane does
//! the opposite: it takes those valid programs and *breaks* them — deleting,
//! duplicating, and swapping tokens, splicing in garbage bytes, truncating
//! mid-token, and amplifying nesting depth — then asserts the whole pipeline
//! degrades gracefully: every input either compiles or is rejected with
//! diagnostics. A panic, abort, or stack overflow anywhere is a bug, and the
//! offending input is minimized with [`shrink_text`] before being reported.
//!
//! Entry point: [`run_chaos`] (used by `vglc fuzz --chaos` and CI).

use std::panic::{self, AssertUnwindSafe};

use crate::gen::{emit, gen_program, GenConfig};
use crate::oracle::{check_source, describe, OracleConfig, Verdict};
use crate::rng::Rng;
use crate::shrink::{fail_kind, shrink_text};
use vgl_syntax::lexer;
use vgl_syntax::token::TokenKind;
use vgl_syntax::Diagnostics;

/// A chaos campaign's configuration.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Base seed; case `i` mutates the program generated from
    /// `seed.wrapping_add(i)`.
    pub seed: u64,
    /// Number of cases to run (stops early at the first failure).
    pub cases: u64,
    /// Shape knobs for the base programs being corrupted.
    pub gen: GenConfig,
    /// Each case applies `1..=max_mutations` stacked mutations.
    pub max_mutations: u32,
    /// Predicate re-runs allowed while minimizing a failing input.
    pub shrink_budget: u32,
    /// Engine budgets for inputs that still compile after mutation.
    pub oracle: OracleConfig,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig {
            seed: 42,
            cases: 200,
            gen: GenConfig::default(),
            max_mutations: 4,
            shrink_budget: 600,
            oracle: OracleConfig::default(),
        }
    }
}

/// A crashing (or otherwise failing) chaos case, already minimized.
#[derive(Clone, Debug)]
pub struct ChaosFailure {
    /// The exact seed that regenerates the failing case
    /// (`vglc fuzz --chaos --seed <seed> --cases 1`).
    pub seed: u64,
    /// Which case (0-based) in the campaign failed.
    pub case_index: u64,
    /// What went wrong: `panic: <message>` or an oracle verdict.
    pub kind: String,
    /// The mutated input that triggered the failure.
    pub input: String,
    /// The minimized input (same failure class).
    pub shrunk: String,
}

/// Campaign totals plus the first failure, if any.
#[derive(Clone, Debug, Default)]
pub struct ChaosReport {
    /// Cases attempted.
    pub cases: u64,
    /// Mutated inputs rejected with diagnostics — the expected outcome.
    pub rejected: u64,
    /// Mutations that left the program valid; all engines still agreed.
    pub accepted: u64,
    /// Valid after mutation but some engine ran out of fuel.
    pub inconclusive: u64,
    /// The first failure encountered (the campaign stops there).
    pub failure: Option<ChaosFailure>,
}

impl ChaosReport {
    /// Whether the campaign finished without a failure.
    pub fn ok(&self) -> bool {
        self.failure.is_none()
    }

    /// A human-readable summary line.
    pub fn summary(&self) -> String {
        format!(
            "{} chaos cases: {} rejected with diagnostics, {} still valid, \
             {} inconclusive (fuel){}",
            self.cases,
            self.rejected,
            self.accepted,
            self.inconclusive,
            if self.ok() { ", no crashes" } else { ", 1 FAILURE" }
        )
    }
}

/// What one pipeline run did with an input.
enum Observation {
    /// The pipeline returned normally with this verdict.
    Verdict(Verdict),
    /// The pipeline panicked; the payload's message.
    Panic(String),
}

/// Runs the full pipeline on `src`, converting panics into data.
fn observe(src: &str, cfg: &OracleConfig) -> Observation {
    match panic::catch_unwind(AssertUnwindSafe(|| check_source(src, cfg))) {
        Ok(v) => Observation::Verdict(v),
        Err(payload) => Observation::Panic(panic_message(payload.as_ref())),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Runs a chaos campaign: generate a valid program, corrupt it, run the full
/// pipeline, and demand a clean verdict or diagnostics — never a panic. The
/// first failing input is minimized and the campaign stops. `progress` is
/// called after every case with (case index, input was rejected).
pub fn run_chaos(cfg: &ChaosConfig, mut progress: impl FnMut(u64, bool)) -> ChaosReport {
    let mut report = ChaosReport::default();
    // Expected panics inside `catch_unwind` would otherwise spray backtraces
    // over the terminal; silence the hook for the campaign and restore it
    // after.
    let prev_hook = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));
    for i in 0..cfg.cases {
        let case_seed = cfg.seed.wrapping_add(i);
        let base = emit(&gen_program(case_seed, &cfg.gen));
        let mut rng = Rng::new(case_seed ^ 0xC4A5_9B42_D6E8_F013);
        let src = mutate(&base, &mut rng, cfg.max_mutations);
        report.cases += 1;
        let failure_kind = match observe(&src, &cfg.oracle) {
            Observation::Panic(msg) => Some(format!("panic: {msg}")),
            Observation::Verdict(v) => match v {
                Verdict::Frontend { .. } => {
                    report.rejected += 1;
                    None
                }
                Verdict::Pass { .. } => {
                    report.accepted += 1;
                    None
                }
                Verdict::Inconclusive { .. } => {
                    report.inconclusive += 1;
                    None
                }
                // A mutation that leaves the program valid but breaks an IR
                // invariant or splits the engines is a real compiler bug.
                failing => Some(describe(&failing)),
            },
        };
        progress(i, failure_kind.is_none());
        if let Some(kind) = failure_kind {
            let shrunk = shrink_failure(&src, &kind, cfg);
            report.failure = Some(ChaosFailure {
                seed: case_seed,
                case_index: i,
                kind,
                input: src,
                shrunk,
            });
            break;
        }
    }
    panic::set_hook(prev_hook);
    report
}

/// Minimizes a failing input, preserving its failure class: panics must
/// still panic, verdict failures must keep the same [`fail_kind`].
fn shrink_failure(src: &str, kind: &str, cfg: &ChaosConfig) -> String {
    if kind.starts_with("panic: ") {
        return shrink_text(
            src,
            |s| matches!(observe(s, &cfg.oracle), Observation::Panic(_)),
            cfg.shrink_budget,
        );
    }
    let want = match check_source(src, &cfg.oracle) {
        v @ (Verdict::Invariant { .. } | Verdict::Mismatch { .. }) => fail_kind(&v),
        _ => None,
    };
    let Some(want) = want else {
        // Flaky classification (e.g. the failure needed the silenced panic
        // path); don't risk shrinking toward a different bug.
        return src.to_string();
    };
    shrink_text(
        src,
        |s| match observe(s, &cfg.oracle) {
            Observation::Verdict(v) => fail_kind(&v).as_ref() == Some(&want),
            Observation::Panic(_) => false,
        },
        cfg.shrink_budget,
    )
}

// ---- mutators --------------------------------------------------------------

/// Applies `1..=max_mutations` stacked mutations to `src`. Deterministic in
/// `rng`; always returns valid UTF-8 (every splice point is a char
/// boundary).
pub fn mutate(src: &str, rng: &mut Rng, max_mutations: u32) -> String {
    let n = 1 + rng.below(max_mutations.max(1) as u64);
    let mut s = src.to_string();
    for _ in 0..n {
        s = mutate_once(&s, rng);
    }
    s
}

fn mutate_once(src: &str, rng: &mut Rng) -> String {
    match rng.below(7) {
        0 => delete_token(src, rng),
        1 => duplicate_token(src, rng),
        2 => swap_tokens(src, rng),
        3 => splice_garbage(src, rng),
        4 => truncate(src, rng),
        5 => amplify_nesting(src, rng),
        _ => splice_literal(src, rng),
    }
}

/// Byte ranges of every real token (the lexer's diagnostics go to scratch —
/// mutated inputs are expected to mis-lex).
fn token_ranges(src: &str) -> Vec<(usize, usize)> {
    let mut scratch = Diagnostics::new();
    lexer::lex(src, &mut scratch)
        .into_iter()
        .filter(|t| t.kind != TokenKind::Eof)
        .map(|t| (t.span.start as usize, t.span.end as usize))
        .collect()
}

/// A random char-boundary position in `src`.
fn boundary(src: &str, rng: &mut Rng) -> usize {
    if src.is_empty() {
        return 0;
    }
    let mut p = rng.below(src.len() as u64 + 1) as usize;
    while p < src.len() && !src.is_char_boundary(p) {
        p += 1;
    }
    p
}

fn delete_token(src: &str, rng: &mut Rng) -> String {
    let toks = token_ranges(src);
    if toks.is_empty() {
        return splice_garbage(src, rng);
    }
    let &(a, b) = rng.pick(&toks);
    format!("{}{}", &src[..a], &src[b..])
}

fn duplicate_token(src: &str, rng: &mut Rng) -> String {
    let toks = token_ranges(src);
    if toks.is_empty() {
        return splice_garbage(src, rng);
    }
    let &(a, b) = rng.pick(&toks);
    format!("{}{} {}", &src[..b], &src[a..b], &src[b..])
}

fn swap_tokens(src: &str, rng: &mut Rng) -> String {
    let toks = token_ranges(src);
    if toks.len() < 2 {
        return splice_garbage(src, rng);
    }
    let mut i = rng.below(toks.len() as u64) as usize;
    let mut j = rng.below(toks.len() as u64) as usize;
    if i == j {
        j = (j + 1) % toks.len();
    }
    if i > j {
        std::mem::swap(&mut i, &mut j);
    }
    let (a1, b1) = toks[i];
    let (a2, b2) = toks[j];
    format!(
        "{}{}{}{}{}",
        &src[..a1],
        &src[a2..b2],
        &src[b1..a2],
        &src[a1..b1],
        &src[b2..]
    )
}

fn splice_garbage(src: &str, rng: &mut Rng) -> String {
    const POOL: &[u8] = b"!@#$%^&*(){}[]<>;:,.?~`'\"\\|=+-_/ \n\t\0\x7fxX09";
    let at = boundary(src, rng);
    let n = 1 + rng.below(8) as usize;
    let mut garbage = String::new();
    for _ in 0..n {
        let b = POOL[rng.below(POOL.len() as u64) as usize];
        garbage.push(b as char);
    }
    // Occasionally splice a multi-byte char to probe UTF-8 handling.
    if rng.chance(20) {
        garbage.push('λ');
    }
    format!("{}{}{}", &src[..at], garbage, &src[at..])
}

fn truncate(src: &str, rng: &mut Rng) -> String {
    let at = boundary(src, rng);
    src[..at].to_string()
}

/// Inserts a deeply nested blob to stress the parser's depth guard.
fn amplify_nesting(src: &str, rng: &mut Rng) -> String {
    let depth = 64 << rng.below(6); // 64..=2048
    let (open, close) = match rng.below(3) {
        0 => ('(', ')'),
        1 => ('[', ']'),
        _ => ('{', '}'),
    };
    let at = boundary(src, rng);
    let blob = format!(
        "{}1{}",
        open.to_string().repeat(depth as usize),
        close.to_string().repeat(depth as usize)
    );
    format!("{}{}{}", &src[..at], blob, &src[at..])
}

/// Splices in literals that sit on numeric edge cases.
fn splice_literal(src: &str, rng: &mut Rng) -> String {
    const LITERALS: &[&str] = &[
        "9223372036854775807",
        "9223372036854775808",
        "-9223372036854775808",
        "99999999999999999999999999",
        "0x8000000000000000",
        "0xFFFFFFFFFFFFFFFFFF",
        "\"unterminated",
        "'x",
        "'\\q'",
    ];
    let at = boundary(src, rng);
    let lit = rng.pick(LITERALS);
    format!("{} {} {}", &src[..at], lit, &src[at..])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutators_are_deterministic() {
        let base = emit(&gen_program(3, &GenConfig::default()));
        let a = mutate(&base, &mut Rng::new(99), 4);
        let b = mutate(&base, &mut Rng::new(99), 4);
        assert_eq!(a, b);
        // And actually change the input.
        assert_ne!(a, base);
    }

    #[test]
    fn small_chaos_campaign_never_crashes() {
        let cfg = ChaosConfig {
            seed: 7,
            cases: 40,
            oracle: OracleConfig {
                interp_fuel: 200_000,
                vm_fuel: 2_000_000,
                ..OracleConfig::default()
            },
            ..ChaosConfig::default()
        };
        let report = run_chaos(&cfg, |_, _| {});
        assert!(
            report.ok(),
            "chaos failure: {:#?}",
            report.failure.map(|f| (f.kind, f.shrunk))
        );
        assert_eq!(report.cases, 40);
        // Corruption should usually break the program.
        assert!(report.rejected > 0, "{}", report.summary());
    }

    #[test]
    fn shrink_text_minimizes_while_preserving_predicate() {
        let src = "aaa\nbbb\nNEEDLE ccc\nddd\neee";
        let out = shrink_text(src, |s| s.contains("NEEDLE"), 500);
        assert_eq!(out, "NEEDLE");
    }

    #[test]
    fn observe_reports_panics_as_data() {
        // A panic inside the observed closure must surface as an
        // `Observation::Panic`, not unwind through the campaign. (No
        // pipeline panic is known, so test the machinery directly.)
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let got = std::panic::catch_unwind(|| panic!("boom {}", 1));
        std::panic::set_hook(prev);
        assert_eq!(panic_message(got.unwrap_err().as_ref()), "boom 1");
    }
}
