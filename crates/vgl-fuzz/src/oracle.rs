//! The differential oracle: one generated program, every execution strategy,
//! identical observable behavior.
//!
//! A case is run on **nine** engine configurations:
//!
//! 1. the reference interpreter over the *source* module (runtime type
//!    arguments, boxed tuples — the paper's §4.3 interpreter strategy);
//! 2. the interpreter over the monomorphized + normalized module;
//! 3. the VM over the lowered unoptimized module;
//! 4. the interpreter over the optimized module;
//! 5. the VM over the lowered optimized module;
//! 6. the VM over the lowered optimized module after the bytecode back-end
//!    optimizer ([`vgl_vm::fuse`]: copy propagation, dead-register
//!    elimination, superinstruction fusion) — run with
//!    [`vgl_vm::check_fused`] validating the fused code first, and the
//!    §4.2 zero-tuple-box invariant asserted on its heap statistics after;
//! 7. `vm-fused-par`: the same fused configuration rebuilt with the back
//!    end at **jobs = 8** (parallel normalize-fingerprinting, optimize,
//!    and fuse with the per-instance pass cache). Before it runs, the
//!    oracle asserts its disassembly is **byte-identical** to the serial
//!    build — the parallel back end's determinism contract — and then
//!    compares its observable behavior like any other engine;
//! 8. `vm-tiered`: the fused program again under **tiered profile-guided
//!    execution** — functions re-fuse themselves mid-run from their own
//!    runtime profile, speculating on monomorphic call sites behind
//!    receiver-class guards and deoptimizing on guard failure. The hotness
//!    threshold comes from `VGL_TIER_THRESHOLD` (CI's forced-deopt lane
//!    sets it to 1 so effectively every call tiers up); tier-up, guard
//!    hits, and deopts must all be behaviourally invisible;
//! 9. `vm-fused-gen`: the fused program once more on a **generational
//!    heap** — a bump-allocated nursery with write-barrier-fed minor
//!    collections in front of the mature space — at the
//!    [`OracleConfig::gen_heap_slots`]/[`OracleConfig::gen_nursery_slots`]
//!    limits. The fuzz driver randomizes both per case from the case seed
//!    (see [`crate::run_fuzz`]), so collector scheduling — minors, majors,
//!    promotion, heap growth — varies across cases while staying exactly
//!    reproducible from `vglc fuzz --seed N --cases 1`. The §4.2
//!    zero-tuple-box invariant is asserted on this lane's heap too.
//!
//! Before any fused lane runs, [`vgl_vm::check_fused`] validates the fused
//! code structurally and [`vgl_vm::check_fused_against`] compares it
//! against the unfused lowering: fusion must preserve both the
//! allocating-instruction count and the barrier-carrying store count per
//! function, so the optimizer can never fuse away a write barrier the
//! generational lane depends on.
//!
//! All nine must agree on the result value, the printed output, and the trap
//! (`!DivideByZeroException`, `!NullCheckException`, `!TypeCheckException`,
//! ...). Fuel exhaustion is **never** conflated with a language exception:
//! engines count steps differently, so an `OutOfFuel` anywhere makes the
//! case [`Verdict::Inconclusive`] rather than a mismatch.
//!
//! Every VM run carries a [flight recorder](vgl_vm::FlightRecorder): the
//! last 64 events (calls, inline-cache misses, GC, the trap) leading into
//! the end of the run. When engines disagree, the dump from the first
//! diverging VM engine is attached to the [`Verdict::Mismatch`]
//! description, so a shrunk repro ships with the trace that led into the
//! divergence or trap.
//!
//! Between passes the oracle also validates the §4 IR invariants with
//! [`vgl_ir::validate`]: [`vgl_ir::check_monomorphic`] after
//! monomorphization, [`vgl_ir::check_normalized`] after normalization and
//! again after optimization, and the strict [`vgl_ir::check_tuple_free`]
//! restricted to class fields and globals (where no boundary forms are
//! permitted at all).

use vgl_ir::{Module, Violation};

/// Fuel and heap budgets for oracle runs.
#[derive(Clone, Copy, Debug)]
pub struct OracleConfig {
    /// Interpreter step budget per run.
    pub interp_fuel: u64,
    /// VM instruction budget per run.
    pub vm_fuel: u64,
    /// VM semispace size in slots (kept small so allocation-heavy programs
    /// exercise the collector).
    pub heap_slots: usize,
    /// Total heap size for the `vm-fused-gen` lane. The fuzz driver
    /// randomizes this per case from the case seed.
    pub gen_heap_slots: usize,
    /// Nursery size for the `vm-fused-gen` lane (clamped by the heap to
    /// half its capacity); randomized alongside [`Self::gen_heap_slots`].
    pub gen_nursery_slots: usize,
}

impl Default for OracleConfig {
    fn default() -> OracleConfig {
        OracleConfig {
            interp_fuel: 4_000_000,
            vm_fuel: 40_000_000,
            heap_slots: 1 << 14,
            gen_heap_slots: 1 << 14,
            gen_nursery_slots: 1 << 11,
        }
    }
}

/// How one engine run ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Normal completion with the displayed result value.
    Value(String),
    /// A language-level runtime exception (displayed form, e.g.
    /// `!NullCheckException`).
    Trap(String),
    /// The step/instruction budget ran out — distinct from any trap.
    OutOfFuel,
}

/// One engine execution: which engine, how it ended, what it printed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EngineRun {
    /// Engine label (`interp-src`, `interp-mono`, `vm-noopt`, `interp-opt`,
    /// `vm-opt`, `vm-fused`, `vm-fused-par`, `vm-tiered`, `vm-fused-gen`).
    pub engine: &'static str,
    /// How the run ended.
    pub outcome: Outcome,
    /// Everything printed via `System.*`.
    pub output: String,
    /// Flight-recorder dump of the run's final moments (VM engines only;
    /// the interpreters carry `None`). Never part of the agreement check.
    pub flight: Option<String>,
}

/// The oracle's judgement of one generated program.
#[derive(Clone, Debug)]
pub enum Verdict {
    /// All engines agree (`trapped` records whether they agreed on a trap).
    Pass {
        /// Whether the agreed outcome was a runtime exception.
        trapped: bool,
    },
    /// Some engine ran out of fuel; engines count steps differently, so the
    /// case proves nothing either way.
    Inconclusive {
        /// The first engine that ran dry.
        engine: &'static str,
    },
    /// The front end rejected the generated program — a generator bug.
    Frontend {
        /// Rendered diagnostics.
        errors: String,
    },
    /// An IR invariant was violated after a pass — a compiler bug.
    Invariant {
        /// Which stage broke the invariant.
        stage: &'static str,
        /// The reported violations.
        violations: Vec<Violation>,
    },
    /// Engines disagree on result, output, or trap — a miscompile.
    Mismatch {
        /// Every engine run, first one is the reference.
        runs: Vec<EngineRun>,
    },
}

impl Verdict {
    /// Whether this verdict is a failure the fuzzer should report and shrink.
    pub fn is_failure(&self) -> bool {
        matches!(
            self,
            Verdict::Frontend { .. } | Verdict::Invariant { .. } | Verdict::Mismatch { .. }
        )
    }
}

/// A one-line description of a verdict, for reports.
pub fn describe(v: &Verdict) -> String {
    match v {
        Verdict::Pass { trapped: false } => "pass".into(),
        Verdict::Pass { trapped: true } => "pass (agreed trap)".into(),
        Verdict::Inconclusive { engine } => format!("inconclusive (out of fuel on {engine})"),
        Verdict::Frontend { errors } => format!("front end rejected generated program:\n{errors}"),
        Verdict::Invariant { stage, violations } => {
            let mut s = format!("IR invariant violated after {stage}:");
            for v in violations.iter().take(5) {
                s.push_str(&format!("\n  {}: {}", v.location, v.message));
            }
            s
        }
        Verdict::Mismatch { runs } => {
            let mut s = String::from("engines disagree:");
            for r in runs {
                s.push_str(&format!(
                    "\n  {:>11}: {:?} output={:?}",
                    r.engine, r.outcome, r.output
                ));
            }
            // Attach the flight dump of the first VM engine that diverges
            // from the reference (falling back to any recorded run), so the
            // repro ships with the trace that led into the failure.
            let reference = &runs[0];
            let diverged = runs.iter().find(|r| {
                r.flight.is_some()
                    && (r.outcome != reference.outcome || r.output != reference.output)
            });
            if let Some(r) = diverged.or_else(|| runs.iter().find(|r| r.flight.is_some())) {
                s.push_str(&format!(
                    "\nflight recorder ({}):\n{}",
                    r.engine,
                    r.flight.as_deref().unwrap()
                ));
            }
            s
        }
    }
}

/// Ring capacity for the per-run flight recorder — enough tail to see the
/// calls and GC leading into a divergence without bloating reports.
const FLIGHT_CAPACITY: usize = 64;

fn run_interp(engine: &'static str, m: &Module, fuel: u64) -> EngineRun {
    let mut i = vgl_interp::Interp::new(m);
    i.set_fuel(fuel);
    let outcome = match i.run() {
        Ok(v) => Outcome::Value(v.to_string()),
        Err(vgl_interp::InterpError::OutOfFuel) => Outcome::OutOfFuel,
        Err(e) => Outcome::Trap(e.to_string()),
    };
    EngineRun { engine, outcome, output: i.output(), flight: None }
}

fn run_vm(engine: &'static str, m: &Module, cfg: &OracleConfig) -> EngineRun {
    run_vm_program(engine, &vgl_vm::lower(m), cfg).0
}

/// Runs an already-lowered (possibly fused) program; also returns the final
/// tuple-box count so fused runs can assert the §4.2 invariant dynamically.
fn run_vm_program(
    engine: &'static str,
    prog: &vgl_vm::VmProgram,
    cfg: &OracleConfig,
) -> (EngineRun, usize) {
    run_vm_program_full(engine, prog, cfg.heap_slots, 0, cfg.vm_fuel, None)
}

/// The fully general VM lane: `nursery_slots` > 0 runs the generational
/// collector (the ninth configuration); `tier` is the hotness threshold
/// for tiered execution (the eighth).
fn run_vm_program_full(
    engine: &'static str,
    prog: &vgl_vm::VmProgram,
    heap_slots: usize,
    nursery_slots: usize,
    vm_fuel: u64,
    tier: Option<u64>,
) -> (EngineRun, usize) {
    let mut vm = vgl_vm::Vm::with_heap_config(prog, heap_slots, nursery_slots);
    vm.set_fuel(vm_fuel);
    vm.enable_flight_recorder(FLIGHT_CAPACITY);
    if let Some(threshold) = tier {
        vm.enable_tiering(threshold);
    }
    let outcome = match vm.run() {
        Ok(words) => match vgl_vm::ret_as_int(&words) {
            Some(v) => Outcome::Value(v.to_string()),
            None => Outcome::Value(format!("{words:?}")),
        },
        Err(vgl_vm::VmError::OutOfFuel) => Outcome::OutOfFuel,
        Err(e) => Outcome::Trap(e.to_string()),
    };
    let tuple_boxes = vm.stats.heap.tuple_boxes;
    let flight = vm.flight_dump();
    (EngineRun { engine, outcome, output: vm.output(), flight }, tuple_boxes)
}

/// Strict tuple-freedom for declarations: class fields and globals admit no
/// boundary forms, so [`vgl_ir::check_tuple_free`]'s verdict is exact there.
fn strict_decl_tuple_violations(m: &Module) -> Vec<Violation> {
    vgl_ir::check_tuple_free(m)
        .into_iter()
        .filter(|v| v.location.starts_with("class ") || v.location.starts_with("global "))
        .collect()
}

/// Compiles `src` through the front end and both pipeline variants, runs all
/// nine engine configurations, validates IR invariants between passes, and
/// compares every observable.
pub fn check_source(src: &str, cfg: &OracleConfig) -> Verdict {
    check_source_tampered(src, cfg, |_| {})
}

/// [`check_source`] with a bytecode tamper hook: `tamper` is applied to the
/// fused program (after structural validation) and identically to its
/// parallel rebuild. The identity closure is the production path; tests
/// inject deterministic miscompiles here to prove the oracle catches them
/// and attaches the flight-recorder dump to the resulting mismatch.
pub fn check_source_tampered(
    src: &str,
    cfg: &OracleConfig,
    tamper: impl Fn(&mut vgl_vm::VmProgram),
) -> Verdict {
    // Front end.
    let mut diags = vgl_syntax::Diagnostics::new();
    let ast = vgl_syntax::parse_program(src, &mut diags);
    if diags.has_errors() {
        return Verdict::Frontend { errors: render_diags(src, diags) };
    }
    let Some(module) = vgl_sema::analyze(&ast, &mut diags) else {
        return Verdict::Frontend { errors: render_diags(src, diags) };
    };

    // Pipeline with pass-level validation.
    let (mono_m, _) = vgl_passes::monomorphize(&module);
    let violations = vgl_ir::check_monomorphic(&mono_m);
    if !violations.is_empty() {
        return Verdict::Invariant { stage: "monomorphize", violations };
    }
    let mut norm_m = mono_m;
    vgl_passes::normalize(&mut norm_m);
    let violations = vgl_ir::check_normalized(&norm_m);
    if !violations.is_empty() {
        return Verdict::Invariant { stage: "normalize", violations };
    }
    let violations = strict_decl_tuple_violations(&norm_m);
    if !violations.is_empty() {
        return Verdict::Invariant { stage: "normalize (strict decls)", violations };
    }
    // `Module` is intentionally not `Clone`; rebuild the optimized variant
    // from the source module through the same (deterministic) passes.
    let (mut opt_m, _) = vgl_passes::monomorphize(&module);
    vgl_passes::normalize(&mut opt_m);
    vgl_passes::optimize(&mut opt_m);
    let violations = vgl_ir::check_normalized(&opt_m);
    if !violations.is_empty() {
        return Verdict::Invariant { stage: "optimize", violations };
    }

    // The sixth configuration runs the bytecode back-end optimizer over the
    // optimized lowering; its structural validator gates execution, and the
    // fused program must preserve the unfused baseline's per-function
    // allocation and write-barrier counts (the generational lane's safety
    // rests on every ref-store keeping its barrier through fusion).
    let baseline_prog = vgl_vm::lower(&opt_m);
    let mut fused_prog = baseline_prog.clone();
    vgl_vm::fuse(&mut fused_prog);
    let mut violations = vgl_vm::check_fused(&fused_prog);
    violations.extend(vgl_vm::check_fused_against(&baseline_prog, &fused_prog));
    if !violations.is_empty() {
        return Verdict::Invariant { stage: "fuse", violations };
    }
    tamper(&mut fused_prog);
    let (fused_run, fused_tuple_boxes) = run_vm_program("vm-fused", &fused_prog, cfg);
    if fused_tuple_boxes != 0 {
        return Verdict::Invariant {
            stage: "fuse (execution)",
            violations: vec![Violation {
                location: "heap".into(),
                message: format!(
                    "fused execution allocated {fused_tuple_boxes} tuple boxes; §4.2 \
                     requires exactly 0"
                ),
            }],
        };
    }

    // The seventh configuration rebuilds the same fused program with the
    // back end at jobs = 8 (parallel passes + instance cache) and first
    // asserts bit-for-bit determinism against the serial build.
    let par_cfg = vgl_passes::BackendConfig { jobs: 8, cache: true, chunking: true };
    let mut par_report = vgl_passes::BackendReport::default();
    let (mut par_m, _) = vgl_passes::monomorphize(&module);
    vgl_passes::normalize_cfg(&mut par_m, &par_cfg, &mut par_report);
    vgl_passes::optimize_cfg(&mut par_m, &par_cfg, &mut par_report);
    let mut par_prog = vgl_vm::lower(&par_m);
    vgl_vm::fuse_jobs(&mut par_prog, par_cfg.jobs, par_cfg.cache);
    tamper(&mut par_prog);
    if vgl_vm::disasm(&par_prog) != vgl_vm::disasm(&fused_prog) {
        return Verdict::Invariant {
            stage: "parallel back end (determinism)",
            violations: vec![Violation {
                location: "program".into(),
                message: "jobs=8 compile produced different bytecode than jobs=1".into(),
            }],
        };
    }
    let (par_run, _) = run_vm_program("vm-fused-par", &par_prog, cfg);

    // The eighth configuration re-runs the (tampered) fused program under
    // tiered execution: functions cross the hotness threshold mid-run and
    // re-fuse themselves from their own profile, speculating on monomorphic
    // sites and deoptimizing on guard failure — all of which must be
    // behaviourally invisible. `VGL_TIER_THRESHOLD` feeds the CI
    // forced-deopt lane (threshold 1 ⇒ tier-up on effectively every call).
    let tier_threshold = std::env::var("VGL_TIER_THRESHOLD")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(vgl_vm::DEFAULT_TIER_THRESHOLD);
    let (tiered_run, tiered_tuple_boxes) = run_vm_program_full(
        "vm-tiered",
        &fused_prog,
        cfg.heap_slots,
        0,
        cfg.vm_fuel,
        Some(tier_threshold),
    );
    if tiered_tuple_boxes != 0 {
        return Verdict::Invariant {
            stage: "tier (execution)",
            violations: vec![Violation {
                location: "heap".into(),
                message: format!(
                    "tiered execution allocated {tiered_tuple_boxes} tuple boxes; §4.2 \
                     requires exactly 0"
                ),
            }],
        };
    }

    // The ninth configuration runs the fused program on the generational
    // heap at the (seed-randomized) nursery/heap limits: minors, promotion,
    // write-barrier traffic, and heap growth must all be behaviourally
    // invisible, and the §4.2 invariant holds on this heap too.
    let (gen_run, gen_tuple_boxes) = run_vm_program_full(
        "vm-fused-gen",
        &fused_prog,
        cfg.gen_heap_slots,
        cfg.gen_nursery_slots,
        cfg.vm_fuel,
        None,
    );
    if gen_tuple_boxes != 0 {
        return Verdict::Invariant {
            stage: "generational heap (execution)",
            violations: vec![Violation {
                location: "heap".into(),
                message: format!(
                    "generational execution allocated {gen_tuple_boxes} tuple boxes; §4.2 \
                     requires exactly 0"
                ),
            }],
        };
    }

    // Nine engine configurations.
    let runs = vec![
        run_interp("interp-src", &module, cfg.interp_fuel),
        run_interp("interp-mono", &norm_m, cfg.interp_fuel),
        run_vm("vm-noopt", &norm_m, cfg),
        run_interp("interp-opt", &opt_m, cfg.interp_fuel),
        run_vm("vm-opt", &opt_m, cfg),
        fused_run,
        par_run,
        tiered_run,
        gen_run,
    ];

    // OutOfFuel anywhere ⇒ inconclusive, and never comparable to a trap.
    if let Some(r) = runs.iter().find(|r| r.outcome == Outcome::OutOfFuel) {
        return Verdict::Inconclusive { engine: r.engine };
    }
    let reference = &runs[0];
    let agree = runs[1..]
        .iter()
        .all(|r| r.outcome == reference.outcome && r.output == reference.output);
    if !agree {
        return Verdict::Mismatch { runs };
    }
    Verdict::Pass { trapped: matches!(reference.outcome, Outcome::Trap(_)) }
}

fn render_diags(src: &str, diags: vgl_syntax::Diagnostics) -> String {
    let lines = vgl_syntax::LineMap::new(src);
    diags
        .into_vec()
        .iter()
        .map(|d| d.render("<fuzz>", &lines))
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agreeing_program_passes() {
        let v = check_source(
            "def main() -> int { System.puti(7); return 40 + 2; }",
            &OracleConfig::default(),
        );
        assert!(matches!(v, Verdict::Pass { trapped: false }), "{}", describe(&v));
    }

    #[test]
    fn agreed_trap_is_a_pass_and_not_fuel() {
        let v = check_source(
            "def main() -> int { var z = 0; return 3 / z; }",
            &OracleConfig::default(),
        );
        assert!(matches!(v, Verdict::Pass { trapped: true }), "{}", describe(&v));
    }

    #[test]
    fn fuel_exhaustion_is_inconclusive_not_a_trap() {
        let cfg = OracleConfig { interp_fuel: 50, vm_fuel: 50, ..OracleConfig::default() };
        let v = check_source(
            "def main() -> int {\n\
                 var i = 0;\n\
                 while (i < 1000000) i = i + 1;\n\
                 return i;\n\
             }",
            &cfg,
        );
        assert!(matches!(v, Verdict::Inconclusive { .. }), "{}", describe(&v));
        assert!(!describe(&v).contains("Exception"));
    }

    #[test]
    fn frontend_rejection_is_reported() {
        let v = check_source("def main() -> int { return q; }", &OracleConfig::default());
        assert!(matches!(v, Verdict::Frontend { .. }));
        assert!(v.is_failure());
    }

    /// Rewrites every immediate equal to `from` so it reads `to` instead —
    /// in plain `ConstI` loads and in the fused immediate superinstructions
    /// (`BinI`, `CmpBrI`). Same code length, so jump offsets stay valid.
    fn swap_imm(prog: &mut vgl_vm::VmProgram, from: i64, to: i64) {
        for f in &mut prog.funcs {
            for i in &mut f.code {
                match i {
                    vgl_vm::Instr::ConstI(_, v) if *v == from => *v = to,
                    vgl_vm::Instr::BinI { imm, .. } | vgl_vm::Instr::CmpBrI { imm, .. }
                        if i64::from(*imm) == from =>
                    {
                        *imm = to as i32;
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn injected_value_bug_is_caught_with_flight_context() {
        // Miscompile the fused build only: the printed constant 7 becomes 8,
        // so the fused engines' output diverges from the reference.
        let v = check_source_tampered(
            "def main() -> int { System.puti(7); return 0; }",
            &OracleConfig::default(),
            |p| swap_imm(p, 7, 8),
        );
        let Verdict::Mismatch { runs } = &v else { panic!("expected mismatch: {}", describe(&v)) };
        assert!(runs.iter().any(|r| r.engine == "vm-fused" && r.output.contains('8')));
        assert!(runs.iter().all(|r| r.engine.starts_with("interp") == r.flight.is_none()));
        let report = describe(&v);
        assert!(report.contains("engines disagree"), "{report}");
        assert!(report.contains("flight recorder (vm-fused"), "{report}");
        assert!(report.contains("--- flight recorder"), "{report}");
        assert!(report.contains("main"), "dump names the entry frame:\n{report}");
    }

    #[test]
    fn injected_trap_bug_attaches_the_trap_flight_dump() {
        // Zero the loop bound in the fused build: the divisor stays 0, the
        // fused engines trap on the division, everything else returns 4.
        let v = check_source_tampered(
            "def main() -> int {\n\
                 var z = 0;\n\
                 for (i = 0; i < 9; i = i + 1) z = z + 1;\n\
                 return 36 / z;\n\
             }",
            &OracleConfig::default(),
            |p| swap_imm(p, 9, 0),
        );
        let Verdict::Mismatch { runs } = &v else { panic!("expected mismatch: {}", describe(&v)) };
        assert_eq!(runs[0].outcome, Outcome::Value("4".into()));
        let fused = runs.iter().find(|r| r.engine == "vm-fused").unwrap();
        assert_eq!(fused.outcome, Outcome::Trap("!DivideByZeroException".into()));
        let report = describe(&v);
        assert!(
            report.contains("!DivideByZeroException in"),
            "the dump's trap line rides along with the repro:\n{report}"
        );
    }

    #[test]
    fn untampered_path_is_the_production_path() {
        // The identity tamper must behave exactly like check_source,
        // including the parallel-determinism comparison.
        let v = check_source_tampered(
            "def main() -> int { return 40 + 2; }",
            &OracleConfig::default(),
            |_| {},
        );
        assert!(matches!(v, Verdict::Pass { trapped: false }), "{}", describe(&v));
    }
}
