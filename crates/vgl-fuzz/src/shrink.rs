//! Greedy test-case reduction: shrink a failing program while preserving its
//! failure, then report the minimal repro.
//!
//! Passes, applied to a fixpoint:
//!
//! 1. **drop statements** — delta-style chunk removal over every statement
//!    list (including nested if/loop bodies);
//! 2. **unwrap structure** — replace an `if` by either branch, a loop by its
//!    body (with `break`/`continue` guards stripped) or a single iteration;
//! 3. **simplify expressions** — replace any expression by a same-typed
//!    subexpression or a canonical literal;
//! 4. **narrow tuples** — shrink the program's wide-tuple width to 2,
//!    truncating literals and clamping projections;
//! 5. **flatten the class hierarchy** — replace `DerC`/`DerB` constructions,
//!    queries, and casts by `DerA`.
//!
//! Because helper declarations are emitted on demand, dropping the last use
//! of a feature also drops its declarations from the repro.

use crate::gen::{emit, ty_of, Cls, Ex, Prog, St, Ty, Var};
use crate::oracle::{check_source, OracleConfig, Verdict};

/// The failure class a shrink run must preserve.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FailKind {
    /// The front end rejected the program.
    Frontend,
    /// An IR invariant violation at the given stage.
    Invariant(&'static str),
    /// A differential mismatch between engines.
    Mismatch,
}

/// The failure class of a verdict, if it is a failure.
pub fn fail_kind(v: &Verdict) -> Option<FailKind> {
    match v {
        Verdict::Frontend { .. } => Some(FailKind::Frontend),
        Verdict::Invariant { stage, .. } => Some(FailKind::Invariant(stage)),
        Verdict::Mismatch { .. } => Some(FailKind::Mismatch),
        Verdict::Pass { .. } | Verdict::Inconclusive { .. } => None,
    }
}

/// Path to a statement list: each step is (index of the composite statement,
/// branch: 0 = then/body, 1 = else).
type ListPath = Vec<(usize, usize)>;

fn get_list<'a>(stmts: &'a [St], path: &[(usize, usize)]) -> &'a [St] {
    match path.split_first() {
        None => stmts,
        Some((&(i, b), rest)) => match &stmts[i] {
            St::If(_, t, e) => get_list(if b == 0 { t } else { e }, rest),
            St::For(_, body) | St::While(_, body) => get_list(body, rest),
            _ => unreachable!("path descends into a non-composite statement"),
        },
    }
}

fn get_list_mut<'a>(stmts: &'a mut Vec<St>, path: &[(usize, usize)]) -> &'a mut Vec<St> {
    match path.split_first() {
        None => stmts,
        Some((&(i, b), rest)) => match &mut stmts[i] {
            St::If(_, t, e) => get_list_mut(if b == 0 { t } else { e }, rest),
            St::For(_, body) | St::While(_, body) => get_list_mut(body, rest),
            _ => unreachable!("path descends into a non-composite statement"),
        },
    }
}

fn all_list_paths(stmts: &[St], base: ListPath, out: &mut Vec<ListPath>) {
    out.push(base.clone());
    for (i, s) in stmts.iter().enumerate() {
        match s {
            St::If(_, t, e) => {
                let mut p = base.clone();
                p.push((i, 0));
                all_list_paths(t, p, out);
                let mut p = base.clone();
                p.push((i, 1));
                all_list_paths(e, p, out);
            }
            St::For(_, body) | St::While(_, body) => {
                let mut p = base.clone();
                p.push((i, 0));
                all_list_paths(body, p, out);
            }
            _ => {}
        }
    }
}

/// Removes loop-control guards that would dangle outside a loop body.
fn strip_loop_ctl(stmts: &[St]) -> Vec<St> {
    stmts
        .iter()
        .filter(|s| !matches!(s, St::BreakIf(_) | St::ContinueIf(_)))
        .map(|s| match s {
            St::If(c, t, e) => St::If(c.clone(), strip_loop_ctl(t), strip_loop_ctl(e)),
            other => other.clone(),
        })
        .collect()
}

// --- expression navigation -------------------------------------------------

fn children(e: &Ex) -> Vec<&Ex> {
    match e {
        Ex::Lit(_)
        | Ex::Bool(_)
        | Ex::Null
        | Ex::Var(_)
        | Ex::RefInc
        | Ex::RefRec => Vec::new(),
        Ex::Bin(_, l, r)
        | Ex::Cmp(_, l, r)
        | Ex::Logic(_, l, r)
        | Ex::EqT(l, r)
        | Ex::AddT(l, r)
        | Ex::F2(l, r)
        | Ex::CallFun(l, r)
        | Ex::Virt(l, r) => vec![l, r],
        Ex::DivMod { l, r, .. } => vec![l, r],
        Ex::Not(x)
        | Ex::Proj(x, _)
        | Ex::Swap(x)
        | Ex::SumT(x)
        | Ex::ArrI(x, _)
        | Ex::ArrP(x)
        | Ex::AbsCall(x)
        | Ex::CastW(x)
        | Ex::Query(_, x)
        | Ex::CastO(_, x)
        | Ex::NullCmp(_, x)
        | Ex::ByteRound(x)
        | Ex::Rec(x)
        | Ex::BoxI(x)
        | Ex::BoxO(x)
        | Ex::New(_, x)
        | Ex::BindV(x)
        | Ex::FieldP(x, _)
        | Ex::Id(x) => vec![x],
        Ex::Cond(c, x, y) | Ex::Choose(c, x, y) => vec![c, x, y],
        Ex::Tup(es) => es.iter().collect(),
    }
}

fn with_child(e: &Ex, idx: usize, new: Ex) -> Ex {
    let mut e = e.clone();
    {
        let slots: Vec<&mut Ex> = match &mut e {
            Ex::Lit(_)
            | Ex::Bool(_)
            | Ex::Null
            | Ex::Var(_)
            | Ex::RefInc
            | Ex::RefRec => Vec::new(),
            Ex::Bin(_, l, r)
            | Ex::Cmp(_, l, r)
            | Ex::Logic(_, l, r)
            | Ex::EqT(l, r)
            | Ex::AddT(l, r)
            | Ex::F2(l, r)
            | Ex::CallFun(l, r)
            | Ex::Virt(l, r) => vec![l, r],
            Ex::DivMod { l, r, .. } => vec![l, r],
            Ex::Not(x)
            | Ex::Proj(x, _)
            | Ex::Swap(x)
            | Ex::SumT(x)
            | Ex::ArrI(x, _)
            | Ex::ArrP(x)
            | Ex::AbsCall(x)
            | Ex::CastW(x)
            | Ex::Query(_, x)
            | Ex::CastO(_, x)
            | Ex::NullCmp(_, x)
            | Ex::ByteRound(x)
            | Ex::Rec(x)
            | Ex::BoxI(x)
            | Ex::BoxO(x)
            | Ex::New(_, x)
            | Ex::BindV(x)
            | Ex::FieldP(x, _)
            | Ex::Id(x) => vec![x],
            Ex::Cond(c, x, y) | Ex::Choose(c, x, y) => vec![c, x, y],
            Ex::Tup(es) => es.iter_mut().collect(),
        };
        *slots.into_iter().nth(idx).expect("child index in range") = new;
    }
    e
}

fn get_at<'a>(e: &'a Ex, path: &[usize]) -> &'a Ex {
    match path.split_first() {
        None => e,
        Some((&i, rest)) => get_at(children(e)[i], rest),
    }
}

fn replace_at(e: &Ex, path: &[usize], new: Ex) -> Ex {
    match path.split_first() {
        None => new,
        Some((&i, rest)) => {
            let inner = replace_at(children(e)[i], rest, new);
            with_child(e, i, inner)
        }
    }
}

fn all_expr_paths(e: &Ex, base: Vec<usize>, out: &mut Vec<Vec<usize>>) {
    out.push(base.clone());
    for (i, c) in children(e).iter().enumerate() {
        let mut p = base.clone();
        p.push(i);
        all_expr_paths(c, p, out);
    }
}

/// Canonical minimal expressions of each type, tried as replacements.
fn canonical(ty: Ty) -> Vec<Ex> {
    match ty {
        Ty::Int => vec![Ex::Lit(0), Ex::Lit(1)],
        Ty::Bool => vec![Ex::Bool(true), Ex::Bool(false)],
        Ty::Tup(w) => vec![Ex::Tup(vec![Ex::Lit(1); w as usize])],
        Ty::Obj => vec![Ex::Var(Var::O), Ex::New(Cls::A, Box::new(Ex::Lit(1)))],
        Ty::Fun => vec![Ex::RefInc],
    }
}

/// The expression slots of a statement (loop-control guards included).
fn st_exprs(s: &St) -> Vec<&Ex> {
    match s {
        St::Set(_, e) | St::PrintI(e) | St::PrintB(e) | St::SinkT(e) => vec![e],
        St::ArrSetI(i, e, _) | St::ArrSetP(i, e) | St::FieldSet(i, e) | St::Delegate(i, e) => {
            vec![i, e]
        }
        St::If(c, _, _) | St::BreakIf(c) | St::ContinueIf(c) => vec![c],
        St::For(..) | St::While(..) | St::Gc(..) => Vec::new(),
    }
}

fn st_replace_expr(s: &St, slot: usize, new: Ex) -> St {
    let mut s = s.clone();
    {
        let slots: Vec<&mut Ex> = match &mut s {
            St::Set(_, e) | St::PrintI(e) | St::PrintB(e) | St::SinkT(e) => vec![e],
            St::ArrSetI(i, e, _)
            | St::ArrSetP(i, e)
            | St::FieldSet(i, e)
            | St::Delegate(i, e) => vec![i, e],
            St::If(c, _, _) | St::BreakIf(c) | St::ContinueIf(c) => vec![c],
            St::For(..) | St::While(..) | St::Gc(..) => Vec::new(),
        };
        *slots.into_iter().nth(slot).expect("slot in range") = new;
    }
    s
}

// --- width narrowing and hierarchy flattening ------------------------------

fn narrow_ex(e: &Ex, from: u8, to: u8) -> Ex {
    // Clamp projections whose operand currently has the wide width; `ty_of`
    // is computed with the *old* width while rewriting.
    let rebuilt = match e {
        Ex::Tup(es) if es.len() == from as usize => {
            Ex::Tup(es.iter().take(to as usize).map(|x| narrow_ex(x, from, to)).collect())
        }
        Ex::Proj(x, i) => {
            let clamped = if ty_of(x, from) == Ty::Tup(from) { (*i).min(to - 1) } else { *i };
            Ex::Proj(Box::new(narrow_ex(x, from, to)), clamped)
        }
        other => {
            let mut out = other.clone();
            for (i, c) in children(other).iter().enumerate() {
                out = with_child(&out, i, narrow_ex(c, from, to));
            }
            out
        }
    };
    rebuilt
}

fn narrow_st(s: &St, from: u8, to: u8) -> St {
    match s {
        St::If(c, t, e) => St::If(
            narrow_ex(c, from, to),
            t.iter().map(|s| narrow_st(s, from, to)).collect(),
            e.iter().map(|s| narrow_st(s, from, to)).collect(),
        ),
        St::For(n, b) => St::For(*n, b.iter().map(|s| narrow_st(s, from, to)).collect()),
        St::While(n, b) => St::While(*n, b.iter().map(|s| narrow_st(s, from, to)).collect()),
        other => {
            let mut out = other.clone();
            for (slot, e) in st_exprs(other).iter().enumerate() {
                out = st_replace_expr(&out, slot, narrow_ex(e, from, to));
            }
            out
        }
    }
}

fn flatten_ex(e: &Ex, from: Cls) -> Ex {
    let mapped = match e {
        Ex::New(c, x) if *c == from => Ex::New(Cls::A, x.clone()),
        Ex::Query(c, x) if *c == from => Ex::Query(Cls::A, x.clone()),
        Ex::CastO(c, x) if *c == from => Ex::CastO(Cls::A, x.clone()),
        other => other.clone(),
    };
    let mut out = mapped;
    for (i, c) in children(&out.clone()).iter().enumerate() {
        out = with_child(&out, i, flatten_ex(c, from));
    }
    out
}

fn flatten_st(s: &St, from: Cls) -> St {
    match s {
        St::If(c, t, e) => St::If(
            flatten_ex(c, from),
            t.iter().map(|s| flatten_st(s, from)).collect(),
            e.iter().map(|s| flatten_st(s, from)).collect(),
        ),
        St::For(n, b) => St::For(*n, b.iter().map(|s| flatten_st(s, from)).collect()),
        St::While(n, b) => St::While(*n, b.iter().map(|s| flatten_st(s, from)).collect()),
        other => {
            let mut out = other.clone();
            for (slot, e) in st_exprs(other).iter().enumerate() {
                out = st_replace_expr(&out, slot, flatten_ex(e, from));
            }
            out
        }
    }
}

// --- the greedy loop -------------------------------------------------------

struct Shrinker<'a> {
    cfg: &'a OracleConfig,
    kind: FailKind,
    tests: u32,
    budget: u32,
}

impl Shrinker<'_> {
    fn still_fails(&mut self, p: &Prog) -> bool {
        if self.tests >= self.budget {
            return false;
        }
        self.tests += 1;
        fail_kind(&check_source(&emit(p), self.cfg)).as_ref() == Some(&self.kind)
    }

    /// Tries `candidate`; on preserved failure commits it into `cur`.
    fn attempt(&mut self, cur: &mut Prog, candidate: Prog) -> bool {
        if candidate.stmts == cur.stmts && candidate.width == cur.width {
            return false;
        }
        if self.still_fails(&candidate) {
            *cur = candidate;
            true
        } else {
            false
        }
    }

    fn pass_drop_stmts(&mut self, cur: &mut Prog) -> bool {
        let mut changed = false;
        'restart: loop {
            let mut paths = Vec::new();
            all_list_paths(&cur.stmts, Vec::new(), &mut paths);
            for path in paths {
                let len = get_list(&cur.stmts, &path).len();
                if len == 0 {
                    continue;
                }
                let mut chunk = len;
                while chunk >= 1 {
                    let mut start = 0;
                    while start < get_list(&cur.stmts, &path).len() {
                        let mut cand = cur.clone();
                        {
                            let list = get_list_mut(&mut cand.stmts, &path);
                            let end = (start + chunk).min(list.len());
                            list.drain(start..end);
                        }
                        if self.attempt(cur, cand) {
                            changed = true;
                            // Paths into `cur` have shifted; recollect.
                            continue 'restart;
                        }
                        start += chunk;
                    }
                    chunk /= 2;
                }
            }
            return changed;
        }
    }

    fn pass_unwrap(&mut self, cur: &mut Prog) -> bool {
        let mut changed = false;
        'restart: loop {
            let mut paths = Vec::new();
            all_list_paths(&cur.stmts, Vec::new(), &mut paths);
            for path in paths {
                let len = get_list(&cur.stmts, &path).len();
                for i in 0..len {
                    let replacements: Vec<Vec<St>> = {
                        match &get_list(&cur.stmts, &path)[i] {
                            St::If(_, t, e) => vec![t.clone(), e.clone()],
                            St::For(n, b) | St::While(n, b) => {
                                let mut r = vec![strip_loop_ctl(b)];
                                if *n > 1 {
                                    let shorter = match &get_list(&cur.stmts, &path)[i] {
                                        St::For(_, b) => St::For(1, b.clone()),
                                        St::While(_, b) => St::While(1, b.clone()),
                                        _ => unreachable!(),
                                    };
                                    r.push(vec![shorter]);
                                }
                                r
                            }
                            _ => continue,
                        }
                    };
                    for repl in replacements {
                        let mut cand = cur.clone();
                        {
                            let list = get_list_mut(&mut cand.stmts, &path);
                            list.splice(i..=i, repl);
                        }
                        if self.attempt(cur, cand) {
                            changed = true;
                            continue 'restart;
                        }
                    }
                }
            }
            return changed;
        }
    }

    fn pass_simplify_exprs(&mut self, cur: &mut Prog) -> bool {
        let mut changed = false;
        'restart: loop {
            let mut paths = Vec::new();
            all_list_paths(&cur.stmts, Vec::new(), &mut paths);
            for path in paths {
                let len = get_list(&cur.stmts, &path).len();
                for i in 0..len {
                    let slots = st_exprs(&get_list(&cur.stmts, &path)[i]).len();
                    for slot in 0..slots {
                        let mut epaths = Vec::new();
                        {
                            let root = st_exprs(&get_list(&cur.stmts, &path)[i])[slot];
                            all_expr_paths(root, Vec::new(), &mut epaths);
                        }
                        for epath in epaths {
                            let (node_ty, mut candidates) = {
                                let root = st_exprs(&get_list(&cur.stmts, &path)[i])[slot];
                                let node = get_at(root, &epath);
                                let ty = ty_of(node, cur.width);
                                let mut cands: Vec<Ex> = children(node)
                                    .into_iter()
                                    .filter(|c| ty_of(c, cur.width) == ty)
                                    .cloned()
                                    .collect();
                                cands.extend(canonical(ty));
                                (ty, cands)
                            };
                            let _ = node_ty;
                            candidates.dedup();
                            for cand_ex in candidates {
                                let cand = {
                                    let root = st_exprs(&get_list(&cur.stmts, &path)[i])[slot];
                                    if *get_at(root, &epath) == cand_ex {
                                        continue;
                                    }
                                    let new_root = replace_at(root, &epath, cand_ex);
                                    let new_st = st_replace_expr(
                                        &get_list(&cur.stmts, &path)[i],
                                        slot,
                                        new_root,
                                    );
                                    let mut c = cur.clone();
                                    get_list_mut(&mut c.stmts, &path)[i] = new_st;
                                    c
                                };
                                if self.attempt(cur, cand) {
                                    changed = true;
                                    continue 'restart;
                                }
                            }
                        }
                    }
                }
            }
            return changed;
        }
    }

    fn pass_narrow_width(&mut self, cur: &mut Prog) -> bool {
        if cur.width <= 2 {
            return false;
        }
        let to = 2u8;
        let cand = Prog {
            seed: cur.seed,
            width: to,
            stmts: cur.stmts.iter().map(|s| narrow_st(s, cur.width, to)).collect(),
        };
        self.attempt(cur, cand)
    }

    fn pass_flatten_classes(&mut self, cur: &mut Prog) -> bool {
        let mut changed = false;
        for from in [Cls::C, Cls::B] {
            let cand = Prog {
                seed: cur.seed,
                width: cur.width,
                stmts: cur.stmts.iter().map(|s| flatten_st(s, from)).collect(),
            };
            changed |= self.attempt(cur, cand);
        }
        changed
    }
}

/// Greedily shrinks `prog`, preserving its failure class, and returns the
/// reduced program. `prog` must currently fail with `kind` (as classified by
/// [`fail_kind`]); the budget caps oracle re-runs so shrinking always
/// terminates quickly even for expensive programs.
pub fn shrink(prog: &Prog, kind: FailKind, cfg: &OracleConfig, budget: u32) -> Prog {
    let mut s = Shrinker { cfg, kind, tests: 0, budget };
    let mut cur = prog.clone();
    loop {
        let mut changed = false;
        changed |= s.pass_drop_stmts(&mut cur);
        changed |= s.pass_unwrap(&mut cur);
        changed |= s.pass_narrow_width(&mut cur);
        changed |= s.pass_flatten_classes(&mut cur);
        changed |= s.pass_simplify_exprs(&mut cur);
        if !changed || s.tests >= s.budget {
            return cur;
        }
    }
}

/// Minimizes a *textual* input while `still_fails` keeps returning `true`
/// (ddmin-lite: contiguous line chunks first, then character chunks). Used
/// by the chaos lane, whose inputs are mutated byte soup with no AST to
/// shrink structurally. `src` must currently satisfy `still_fails`; `budget`
/// caps predicate invocations so shrinking always terminates quickly.
pub fn shrink_text(
    src: &str,
    mut still_fails: impl FnMut(&str) -> bool,
    budget: u32,
) -> String {
    let mut spent: u32 = 0;
    let mut segs: Vec<String> = src.lines().map(str::to_string).collect();
    ddmin_pass(&mut segs, "\n", &mut still_fails, budget, &mut spent);
    let reduced = segs.join("\n");
    let mut segs: Vec<String> = reduced.chars().map(String::from).collect();
    ddmin_pass(&mut segs, "", &mut still_fails, budget, &mut spent);
    segs.join("")
}

/// One ddmin sweep over `segs`: tries removing contiguous chunks, halving
/// the chunk size down to single segments, until a full single-segment pass
/// removes nothing or the budget runs out.
fn ddmin_pass(
    segs: &mut Vec<String>,
    sep: &str,
    still_fails: &mut impl FnMut(&str) -> bool,
    budget: u32,
    spent: &mut u32,
) {
    let mut chunk = (segs.len() / 2).max(1);
    loop {
        let mut removed_any = false;
        let mut i = 0;
        while i < segs.len() {
            if *spent >= budget {
                return;
            }
            let end = (i + chunk).min(segs.len());
            let candidate = segs[..i]
                .iter()
                .chain(segs[end..].iter())
                .cloned()
                .collect::<Vec<_>>()
                .join(sep);
            *spent += 1;
            if still_fails(&candidate) {
                segs.drain(i..end);
                removed_any = true;
            } else {
                i = end;
            }
        }
        if chunk > 1 {
            chunk /= 2;
        } else if !removed_any {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{BinK, GenConfig};

    #[test]
    fn navigation_roundtrips() {
        let e = Ex::Bin(
            BinK::Add,
            Box::new(Ex::Lit(1)),
            Box::new(Ex::Bin(BinK::Mul, Box::new(Ex::Var(Var::A)), Box::new(Ex::Lit(3)))),
        );
        let mut paths = Vec::new();
        all_expr_paths(&e, Vec::new(), &mut paths);
        assert_eq!(paths.len(), 5);
        assert_eq!(*get_at(&e, &[1, 0]), Ex::Var(Var::A));
        let e2 = replace_at(&e, &[1, 0], Ex::Lit(9));
        assert_eq!(*get_at(&e2, &[1, 0]), Ex::Lit(9));
        assert_eq!(*get_at(&e2, &[0]), Ex::Lit(1));
    }

    #[test]
    fn narrowing_clamps_projections() {
        let wide = Ex::Proj(Box::new(Ex::Var(Var::T)), 7);
        let narrowed = narrow_ex(&wide, 8, 2);
        assert_eq!(narrowed, Ex::Proj(Box::new(Ex::Var(Var::T)), 1));
        // A pair projection is untouched.
        let pair = Ex::Proj(Box::new(Ex::Var(Var::P)), 1);
        assert_eq!(narrow_ex(&pair, 8, 2), pair);
    }

    #[test]
    fn flatten_maps_constructors() {
        let e = Ex::New(Cls::C, Box::new(Ex::Lit(2)));
        assert_eq!(flatten_ex(&e, Cls::C), Ex::New(Cls::A, Box::new(Ex::Lit(2))));
        assert_eq!(flatten_ex(&e, Cls::B), e);
    }

    #[test]
    fn strip_loop_ctl_removes_guards_recursively() {
        let body = vec![
            St::BreakIf(Ex::Bool(true)),
            St::If(Ex::Bool(false), vec![St::ContinueIf(Ex::Bool(true))], vec![]),
            St::Set(Var::A, Ex::Lit(1)),
        ];
        let stripped = strip_loop_ctl(&body);
        assert_eq!(stripped.len(), 2);
        assert_eq!(stripped[0], St::If(Ex::Bool(false), vec![], vec![]));
    }

    /// A mismatch failure seeded by a *wrong-by-construction* oracle is the
    /// cleanest way to exercise the whole shrink loop without a real
    /// miscompile: we mark programs whose emitted source contains a virtual
    /// call as "failing" and check the shrinker converges to a tiny program
    /// that still contains one.
    #[test]
    fn shrink_converges_on_synthetic_predicate() {
        let cfg = GenConfig::default();
        // Find a seed whose program contains a virtual call.
        let mut prog = None;
        for seed in 0..200 {
            let p = crate::gen::gen_program(seed, &cfg);
            if emit(&p).contains(").v(") {
                prog = Some(p);
                break;
            }
        }
        let prog = prog.expect("some generated program uses virtual dispatch");
        // Synthetic shrinker driver (not the oracle-backed one): reuse the
        // pass machinery through a local loop.
        let pred = |p: &Prog| emit(p).contains(").v(");
        let mut cur = prog.clone();
        // Drop statements greedily under the synthetic predicate.
        loop {
            let mut progressed = false;
            for i in 0..cur.stmts.len() {
                let mut cand = cur.clone();
                cand.stmts.remove(i);
                if pred(&cand) {
                    cur = cand;
                    progressed = true;
                    break;
                }
            }
            if !progressed {
                break;
            }
        }
        assert!(pred(&cur));
        assert!(cur.stmts.len() <= prog.stmts.len());
    }
}
