//! Adversarial byte streams for the `vgld` wire protocol.
//!
//! This module is **pure generation** — it produces hostile client
//! scripts (byte chunks + disconnect points) without touching sockets or
//! the daemon, so it lives here with the other generators and stays free
//! of a dependency on the compiler facade. The driver that throws these
//! at a live daemon (`vgl::serve::run_protocol_chaos`, wired to
//! `vglc fuzz --protocol`) asserts the serving contract: **no panic, no
//! hang, the daemon keeps serving healthy clients afterwards** — a
//! malformed stream may only ever cost its own connection.
//!
//! The wire format under attack: 4-byte big-endian length prefix, then
//! that many bytes of UTF-8 JSON (see `vgl::proto`). Streams cover every
//! way that can go wrong: garbage bytes, oversized and lying length
//! prefixes, non-UTF-8 and non-JSON payloads, well-formed JSON that is
//! not a valid request, frames split across many tiny writes, several
//! frames coalesced into one write, and disconnects at every stage —
//! including between a length prefix and its payload.

use crate::rng::Rng;

/// One step of a hostile client script.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Chunk {
    /// Write these bytes to the socket (one `write` call — chunk
    /// boundaries are exactly where the server sees short reads).
    Send(Vec<u8>),
    /// Drop the connection now, mid-whatever.
    Close,
}

/// A generated case: the script plus how many *well-formed* request
/// frames it contains (the driver may expect at most that many non-error
/// responses; it must not expect the count exactly, since the server is
/// free to close after the first malformed frame).
#[derive(Clone, Debug)]
pub struct ProtocolCase {
    /// The script, executed in order.
    pub chunks: Vec<Chunk>,
    /// Complete, valid request frames embedded in the stream.
    pub valid_frames: usize,
    /// Human-readable tags of the attack kinds used (for failure repro).
    pub kinds: Vec<&'static str>,
}

/// The [`MAX_FRAME`](https://docs.rs) bound the server enforces, mirrored
/// here so oversized-length attacks aim just past it.
pub const SERVER_MAX_FRAME: u32 = 16 << 20;

/// Tiny pool of sources a valid `compile`/`run` frame may carry; kept
/// small and fast so a 2000-case lane finishes in CI time.
const SOURCES: &[&str] = &[
    "def main() -> int { return 40 + 2; }",
    "def f(x: int) -> int { return x * 3; }\ndef main() -> int { return f(14); }",
    "def main() -> int { return x; }", // type error: diagnostics path
    "def main( {",                     // parse error: diagnostics path
    "",
];

fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload);
    out
}

/// A well-formed request payload (JSON bytes, no prefix).
fn valid_payload(rng: &mut Rng) -> Vec<u8> {
    let src = SOURCES[rng.below(SOURCES.len() as u64) as usize];
    let escaped: String = src
        .chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            '\n' => vec!['\\', 'n'],
            c => vec![c],
        })
        .collect();
    let cmd = *rng.pick(&["compile", "check", "run", "stats"]);
    let text = if cmd == "stats" {
        r#"{"cmd":"stats"}"#.to_string()
    } else {
        format!(r#"{{"cmd":"{cmd}","session":"chaos-{}","source":"{escaped}"}}"#, rng.below(4))
    };
    text.into_bytes()
}

/// One hostile fragment: bytes plus whether it embeds a valid frame.
fn fragment(rng: &mut Rng) -> (Vec<u8>, usize, &'static str) {
    match rng.below(9) {
        // A completely valid frame.
        0 => (frame(&valid_payload(rng)), 1, "valid"),
        // Valid JSON, invalid request (unknown cmd / missing fields /
        // wrong types).
        1 => {
            let bad = *rng.pick(&[
                r#"{"cmd":"warp"}"#,
                r#"{"cmd":"compile"}"#,
                r#"{"cmd":7}"#,
                r#"{"source":"x"}"#,
                r#"{"cmd":"run","source":42}"#,
                r#"[1,2,3]"#,
                r#""just a string""#,
                "null",
            ]);
            (frame(bad.as_bytes()), 0, "bad-request")
        }
        // Not JSON at all.
        2 => {
            let junk = *rng.pick(&["{oops", "}{", "tru", "", "\"unterminated", "{\"a\":}"]);
            (frame(junk.as_bytes()), 0, "bad-json")
        }
        // Not UTF-8.
        3 => {
            let n = 1 + rng.below(16) as usize;
            let mut bytes = vec![0xff; n];
            for b in bytes.iter_mut() {
                *b = 0x80 + (rng.below(0x7f) as u8);
            }
            (frame(&bytes), 0, "bad-utf8")
        }
        // Oversized length prefix: from just past the bound to u32::MAX.
        4 => {
            let len = SERVER_MAX_FRAME as u64 + 1 + rng.below(u64::from(u32::MAX) - u64::from(SERVER_MAX_FRAME) - 1);
            let mut bytes = (len as u32).to_be_bytes().to_vec();
            // A few bytes of "payload" the server must not wait for.
            bytes.extend(std::iter::repeat_n(0x41, rng.below(8) as usize));
            (bytes, 0, "oversized-length")
        }
        // Lying length prefix: claims more than it delivers (the stream
        // ends or closes mid-payload).
        5 => {
            let payload = valid_payload(rng);
            let mut bytes = ((payload.len() as u32) + 1 + rng.below(64) as u32)
                .to_be_bytes()
                .to_vec();
            bytes.extend_from_slice(&payload);
            (bytes, 0, "truncated-payload")
        }
        // Raw garbage, no framing discipline at all.
        6 => {
            let n = 1 + rng.below(64) as usize;
            let bytes: Vec<u8> = (0..n).map(|_| rng.below(256) as u8).collect();
            (bytes, 0, "garbage")
        }
        // A truncated length prefix (1–3 bytes of it).
        7 => {
            let full = frame(&valid_payload(rng));
            let keep = 1 + rng.below(3) as usize;
            (full[..keep].to_vec(), 0, "truncated-prefix")
        }
        // Several valid frames coalesced into one write.
        _ => {
            let n = 2 + rng.below(3) as usize;
            let mut bytes = Vec::new();
            for _ in 0..n {
                bytes.extend_from_slice(&frame(&valid_payload(rng)));
            }
            (bytes, n, "coalesced")
        }
    }
}

/// Generates one hostile client script from `seed`. Deterministic: equal
/// seeds yield equal scripts, so any failure reproduces from its printed
/// seed alone.
pub fn gen_case(seed: u64) -> ProtocolCase {
    let mut rng = Rng::new(seed);
    let mut chunks = Vec::new();
    let mut valid_frames = 0;
    let mut kinds = Vec::new();
    let fragments = 1 + rng.below(4);
    let mut poisoned = false;
    for _ in 0..fragments {
        let (bytes, valid, kind) = fragment(&mut rng);
        kinds.push(kind);
        // Frames after a malformed fragment may never be answered (the
        // server is allowed to close); they still get written.
        if !poisoned {
            valid_frames += valid;
        }
        poisoned = poisoned || valid == 0 && !bytes.is_empty();
        // Sometimes split the fragment across many tiny writes — the
        // server's reassembly path.
        if rng.chance(35) && bytes.len() > 1 {
            kinds.push("split");
            let mut at = 0;
            while at < bytes.len() {
                let step = 1 + rng.below(7.min(bytes.len() as u64 - at as u64)) as usize;
                chunks.push(Chunk::Send(bytes[at..at + step].to_vec()));
                at += step;
            }
        } else {
            chunks.push(Chunk::Send(bytes));
        }
        // Sometimes disconnect mid-script (possibly mid-frame, because the
        // previous fragment may have been split or truncated).
        if rng.chance(20) {
            kinds.push("early-close");
            chunks.push(Chunk::Close);
            break;
        }
    }
    ProtocolCase { chunks, valid_frames, kinds }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic() {
        for seed in 0..32 {
            let a = gen_case(seed);
            let b = gen_case(seed);
            assert_eq!(a.chunks, b.chunks);
            assert_eq!(a.valid_frames, b.valid_frames);
        }
    }

    #[test]
    fn corpus_covers_every_attack_kind() {
        let mut seen: std::collections::HashSet<&'static str> = Default::default();
        for seed in 0..2000 {
            seen.extend(gen_case(seed).kinds);
        }
        for kind in [
            "valid",
            "bad-request",
            "bad-json",
            "bad-utf8",
            "oversized-length",
            "truncated-payload",
            "garbage",
            "truncated-prefix",
            "coalesced",
            "split",
            "early-close",
        ] {
            assert!(seen.contains(kind), "2000 seeds never produced {kind}");
        }
    }

    #[test]
    fn valid_frames_really_are_valid() {
        // Every fragment tagged "valid" must carry a parseable length
        // prefix and UTF-8 JSON payload — otherwise the driver's response
        // expectations are meaningless.
        let mut checked = 0;
        for seed in 0..500 {
            let mut rng = Rng::new(seed);
            let (bytes, valid, kind) = fragment(&mut rng);
            if kind != "valid" {
                continue;
            }
            assert_eq!(valid, 1);
            let len = u32::from_be_bytes(bytes[..4].try_into().unwrap()) as usize;
            assert_eq!(len, bytes.len() - 4, "prefix matches payload");
            let text = std::str::from_utf8(&bytes[4..]).expect("utf-8");
            assert!(text.starts_with('{'), "json object: {text}");
            checked += 1;
        }
        assert!(checked > 10, "enough valid fragments sampled");
    }
}
