//! Semantic-analysis tests built from the paper's numbered listings.

use vgl_sema::analyze;
use vgl_syntax::{parse_program, Diagnostics};

fn check_ok(src: &str) -> vgl_ir::Module {
    let mut diags = Diagnostics::new();
    let ast = parse_program(src, &mut diags);
    assert!(!diags.has_errors(), "parse errors: {:?}", diags.into_vec());
    let mut diags = Diagnostics::new();
    match analyze(&ast, &mut diags) {
        Some(m) => m,
        None => panic!("sema errors: {:#?}", diags.into_vec()),
    }
}

fn check_err(src: &str, needle: &str) {
    let mut diags = Diagnostics::new();
    let ast = parse_program(src, &mut diags);
    assert!(!diags.has_errors(), "parse errors: {:?}", diags.into_vec());
    let mut diags = Diagnostics::new();
    let res = analyze(&ast, &mut diags);
    assert!(res.is_none(), "expected a sema error containing {needle:?}");
    let msgs: Vec<String> = diags.iter().map(|d| d.message.clone()).collect();
    assert!(
        msgs.iter().any(|m| m.contains(needle)),
        "no diagnostic contains {needle:?}; got {msgs:#?}"
    );
}

// ---- Section 2.1: classes (listings a1-a10) --------------------------------

#[test]
fn listing_a_classes() {
    let m = check_ok(
        "class A {\n\
           var f: int;\n\
           def g: int;\n\
           new(f, g) { }\n\
           def m(a: byte) -> int { return 0; }\n\
         }\n\
         class B extends A {\n\
           new(f: int, g: int) super(f, g) { }\n\
           def m(a: byte) -> int { return 1; }\n\
         }",
    );
    let a = m.class_by_name("A").expect("A exists");
    let b = m.class_by_name("B").expect("B exists");
    assert_eq!(m.class(a).fields.len(), 2);
    assert_eq!(m.class(b).parent, Some(a));
    // B.m overrides A.m: same vtable slot.
    let am = m.class_method_by_name(a, "m").expect("A.m");
    let bm = m.class(b).methods.iter().copied().find(|&x| m.method(x).name == "m").expect("B.m");
    assert_eq!(m.method(am).vtable_index, m.method(bm).vtable_index);
    assert_eq!(m.resolve_virtual(b, am), bm);
}

#[test]
fn no_universal_supertype_means_unrelated_classes_dont_unify() {
    check_err(
        "class A { }\nclass C { }\n\
         def f() { var x: A = C.new(); }",
        "type mismatch",
    );
}

#[test]
fn overloading_is_disallowed() {
    check_err(
        "class A { def m(a: int) { } def m(a: bool) { } }",
        "overloading",
    );
}

#[test]
fn override_must_keep_signature() {
    check_err(
        "class A { def m(a: byte) -> int { return 0; } }\n\
         class B extends A { def m(a: int) -> int { return 1; } }",
        "changes its type",
    );
}

#[test]
fn tuple_param_override_is_legal() {
    // §4.1 listings (p10-p15): overriding (a: int, b: int) with
    // (a: (int, int)) is legal — the method types are equal.
    check_ok(
        "class A { def m(a: int, b: int) -> int { return a + b; } }\n\
         class B extends A { def m(a: (int, int)) -> int { return a.0 - a.1; } }",
    );
}

#[test]
fn abstract_classes_cannot_be_instantiated() {
    check_err(
        "class Instr { def emit(buf: int); }\n\
         def f() { var i = Instr.new(); }",
        "abstract",
    );
}

#[test]
fn private_methods_are_invisible_outside() {
    check_err(
        "class A { private def p() { } }\n\
         def f(a: A) { a.p(); }",
        "private",
    );
}

// ---- Section 2.2: first-class functions (listings b1-b15) ------------------

#[test]
fn listing_b_first_class_functions() {
    let m = check_ok(
        "class A {\n\
           var f: int;\n\
           def g: int;\n\
           new(f, g) { }\n\
           def m(a: byte) -> int { return int.!(a); }\n\
         }\n\
         def main() {\n\
           var a = A.new(0, 1);            // A\n\
           var m1 = a.m;                   // byte -> int\n\
           var m2 = A.m;                   // (A, byte) -> int\n\
           var x = a.m('5');               // int\n\
           var y = m1('4');                // int\n\
           var z = m2(a, '6');             // int\n\
           var w = A.new;                  // (int, int) -> A\n\
           var p = byte.==;                // (byte, byte) -> bool\n\
           var q = A.!=;                   // (A, A) -> bool\n\
           var r = int.+;                  // (int, int) -> int\n\
           var s = int.-;\n\
           var c = A.!<B>;                 // B -> A\n\
           var d = A.?<B>;                 // B -> bool\n\
         }\n\
         class B extends A {\n\
           new(f: int, g: int) super(f, g) { }\n\
         }",
    );
    assert!(m.main.is_some());
}

#[test]
fn cast_between_unrelated_types_rejected() {
    // §2.2: "the compiler rejects casts and queries between unrelated types".
    check_err(
        "def f(x: int -> int) -> int { return int.!(x); }",
        "unrelated",
    );
}

#[test]
fn operators_as_values_have_function_types() {
    check_ok(
        "def apply2(f: (int, int) -> int, a: int, b: int) -> int { return f(a, b); }\n\
         def main() -> int { return apply2(int.+, 3, 4); }",
    );
}

// ---- Section 2.3: tuples (listings c1-c6) ----------------------------------

#[test]
fn listing_c_tuples() {
    check_ok(
        "def main() {\n\
           var x: (int, int) = (0, 1);\n\
           var y: (byte, bool) = ('a', true);\n\
           var z: ((int, int), (byte, bool)) = (x, y);\n\
           var w: (int) = x.0;\n\
           var u: byte = (z.1.0);\n\
           var v: () = ();\n\
         }",
    );
}

#[test]
fn tuple_equality_is_well_typed() {
    check_ok(
        "def main() -> bool {\n\
           var a = (1, true);\n\
           var b = (2, false);\n\
           return a == b;\n\
         }",
    );
}

#[test]
fn void_is_empty_tuple() {
    check_ok("def f() { }\ndef main() { var v: () = f(); }");
}

// ---- Section 2.4: type parameters (listings d1-d14, e1-e5) -----------------

#[test]
fn listing_d_generics_with_explicit_args() {
    check_ok(
        "class List<T> {\n\
           var head: T;\n\
           var tail: List<T>;\n\
           new(head, tail) { }\n\
         }\n\
         def apply<A>(list: List<A>, f: A -> void) {\n\
           for (l = list; l != null; l = l.tail) f(l.head);\n\
         }\n\
         def print(i: int) { System.puti(i); }\n\
         def main() {\n\
           var a = List<int>.new(0, null);\n\
           var b = List<(int, int)>.new((3, 4), null);\n\
           apply<int>(a, print);\n\
         }",
    );
}

#[test]
fn listing_d_prime_inference() {
    // (d10'-d12'): inference of class and method type arguments.
    check_ok(
        "class List<T> {\n\
           var head: T;\n\
           var tail: List<T>;\n\
           new(head, tail) { }\n\
         }\n\
         def apply<A>(list: List<A>, f: A -> void) {\n\
           for (l = list; l != null; l = l.tail) f(l.head);\n\
         }\n\
         def print(i: int) { System.puti(i); }\n\
         def main() {\n\
           var c = List.new(0, null);\n\
           var d = List.new((3, 4), null);\n\
           apply(c, print);\n\
         }",
    );
}

#[test]
fn listing_d_runtime_type_queries_on_generics() {
    // (d13-d14): no erasure — polymorphic types distinguishable at runtime.
    check_ok(
        "class List<T> {\n\
           var head: T;\n\
           var tail: List<T>;\n\
           new(head, tail) { }\n\
         }\n\
         def main() {\n\
           var a = List<int>.new(0, null);\n\
           var e = List<bool>.?(a);\n\
           var f = List<void>.?(a);\n\
         }",
    );
}

#[test]
fn listing_e_time_utility() {
    // (e1-e5): type params + tuples + first-class functions together.
    check_ok(
        "def time<A, B>(func: A -> B, a: A) -> (B, int) {\n\
           var start = System.ticks();\n\
           return (func(a), System.ticks() - start);\n\
         }\n\
         def sqrt(x: int) -> int { return x / 2; }\n\
         def main() { System.puti(time(sqrt, 37).1); }",
    );
}

#[test]
fn unrestricted_type_arguments_include_void() {
    check_ok(
        "class List<T> { var head: T; var tail: List<T>; new(head, tail) { } }\n\
         def main() {\n\
           var v = List<void>.new((), null);\n\
           var f = List<int -> int>.new(id, null);\n\
         }\n\
         def id(x: int) -> int { return x; }",
    );
}

#[test]
fn incomplete_inference_is_an_error() {
    check_err(
        "def f<T>() -> int { return 0; }\n\
         def main() { f(); }",
        "cannot infer",
    );
}

// ---- Section 3 patterns -----------------------------------------------------

#[test]
fn pattern_interface_adapter_typechecks() {
    // (f1-g9).
    check_ok(
        "class Record { }\n\
         class Key { }\n\
         class DatastoreInterface(\n\
           create: () -> Record,\n\
           load: Key -> Record,\n\
           store: Record -> ()) {\n\
         }\n\
         class DatastoreImpl {\n\
           def create() -> Record { return Record.new(); }\n\
           def load(k: Key) -> Record { return Record.new(); }\n\
           def store(r: Record) { }\n\
           def adapt() -> DatastoreInterface {\n\
             return DatastoreInterface.new(create, load, store);\n\
           }\n\
         }",
    );
}

#[test]
fn pattern_adt_number_interface() {
    // (h1-h9).
    check_ok(
        "class NumberInterface<T>(\n\
           add: (T, T) -> T,\n\
           sub: (T, T) -> T,\n\
           compare: (T, T) -> bool,\n\
           one: T,\n\
           zero: T) {\n\
         }\n\
         var IntInterface = NumberInterface.new(int.+, int.-, int.==, 1, 0);",
    );
}

#[test]
fn pattern_hashmap_with_function_valued_members() {
    // (i1-i18).
    check_ok(
        "class HashMap<K, V> {\n\
           def hash: K -> int;\n\
           def equals: (K, K) -> bool;\n\
           new(hash, equals) { }\n\
           def get(key: K) -> V { var v: V; return v; }\n\
         }\n\
         class X {\n\
           def deepEquals(x: X) -> bool { return this == x; }\n\
           def hash() -> int { return 13; }\n\
         }\n\
         def hash2(p: (int, int)) -> int { return p.0 ^ p.1; }\n\
         def eq2(a: (int, int), b: (int, int)) -> bool { return a == b; }\n\
         def main() {\n\
           HashMap<X, int>.new(X.hash, X.deepEquals);\n\
           HashMap<X, int>.new(X.hash, X.==);\n\
           HashMap<(int, int), X>.new(hash2, eq2);\n\
         }",
    );
}

#[test]
fn pattern_adhoc_polymorphism_print1() {
    // (j1-j9).
    check_ok(
        "def printInt(fmt: string, a: int) { System.puts(fmt); System.puti(a); }\n\
         def printBool(fmt: string, a: bool) { System.puts(fmt); System.putb(a); }\n\
         def printString(fmt: string, a: string) { System.puts(fmt); System.puts(a); }\n\
         def printByte(fmt: string, a: byte) { System.puts(fmt); System.putc(a); }\n\
         def print1<T>(fmt: string, a: T) {\n\
           if (int.?(a)) printInt(fmt, int.!(a));\n\
           if (bool.?(a)) printBool(fmt, bool.!(a));\n\
           if (string.?(a)) printString(fmt, string.!(a));\n\
           if (byte.?(a)) printByte(fmt, byte.!(a));\n\
         }\n\
         def main() {\n\
           print1(\"Result: \", 0);\n\
           print1(\"Boolean: \", false);\n\
           print1(\"Hello \", \"world\");\n\
         }",
    );
}

#[test]
fn pattern_polymorphic_matcher() {
    // (k1-m8): Box<T> extends Any; runtime-distinguishable Box<T -> void>.
    check_ok(
        "class Any { }\n\
         class Box<T> extends Any {\n\
           def val: T;\n\
           new(val) { }\n\
           def unbox() -> T { return val; }\n\
         }\n\
         class List<T> { var head: T; var tail: List<T>; new(head, tail) { } }\n\
         class Matcher {\n\
           var matches: List<Any>;\n\
           def add<T>(f: T -> void) {\n\
             matches = List<Any>.new(Box<T -> void>.new(f), matches);\n\
           }\n\
           def dispatch<T>(v: T) {\n\
             for (l = matches; l != null; l = l.tail) {\n\
               var f = l.head;\n\
               if (Box<T -> void>.?(f)) {\n\
                 Box<T -> void>.!(f).unbox()(v);\n\
                 return;\n\
               }\n\
             }\n\
           }\n\
         }\n\
         def printInt(a: int) { System.puti(a); }\n\
         def printBool(a: bool) { System.putb(a); }\n\
         def main() {\n\
           var m = Matcher.new();\n\
           m.add(printInt);\n\
           m.add(printBool);\n\
           m.dispatch(1);\n\
           m.dispatch(true);\n\
         }",
    );
}

#[test]
fn pattern_variant_types_instr() {
    // (n1-n14).
    check_ok(
        "class Buffer { }\n\
         class Instr {\n\
           def emit(buf: Buffer);\n\
         }\n\
         class InstrOf<T> extends Instr {\n\
           var emitFunc: (Buffer, T) -> void;\n\
           var val: T;\n\
           new(emitFunc, val) { }\n\
           def emit(buf: Buffer) {\n\
             emitFunc(buf, val);\n\
           }\n\
         }\n\
         class Reg { }\n\
         def add(b: Buffer, ops: (Reg, Reg)) { }\n\
         def addi(b: Buffer, ops: (Reg, int)) { }\n\
         def neg(b: Buffer, ops: Reg) { }\n\
         def main() {\n\
           var rax = Reg.new(), rbx = Reg.new();\n\
           var i: Instr = InstrOf.new(add, (rax, rbx));\n\
           var j: Instr = InstrOf.new(addi, (rax, -11));\n\
           var k: Instr = InstrOf.new(neg, rax);\n\
           if (InstrOf<Reg>.?(k)) System.puts(\"reg\");\n\
           if (InstrOf<(Reg, Reg)>.?(i)) System.puts(\"regreg\");\n\
         }",
    );
}

#[test]
fn pattern_variance_listing_o() {
    // (o1-o7): f(b) is an ERROR; apply(b, g) is OK.
    check_err(
        "class Animal { }\n\
         class Bat extends Animal { }\n\
         class List<T> { var head: T; var tail: List<T>; new(head, tail) { } }\n\
         def g(a: Animal) { }\n\
         def f(list: List<Animal>) { }\n\
         def main() {\n\
           var b: List<Bat> = List<Bat>.new(null, null);\n\
           f(b);\n\
         }",
        "type mismatch",
    );
    check_ok(
        "class Animal { }\n\
         class Bat extends Animal { }\n\
         class List<T> { var head: T; var tail: List<T>; new(head, tail) { } }\n\
         def g(a: Animal) { }\n\
         def apply<A>(list: List<A>, f: A -> void) {\n\
           for (l = list; l != null; l = l.tail) f(l.head);\n\
         }\n\
         def main() {\n\
           var b: List<Bat> = List<Bat>.new(null, null);\n\
           apply(b, g);\n\
         }",
    );
}

#[test]
fn listing_p_ambiguous_first_class_functions_typecheck() {
    // (p1-p8): both scalar and tuple forms are the same type and both call
    // shapes are legal.
    check_ok(
        "def f(a: int, b: int) { }\n\
         def g(a: (int, int)) { }\n\
         def r<A>(a: A) { }\n\
         var z = true;\n\
         def main() {\n\
           var x = z ? f : g, t = (0, 1);\n\
           x(0, 1);\n\
           x(t);\n\
           var y = z ? r<(int, int)> : f;\n\
           y(0, 2);\n\
         }",
    );
}

#[test]
fn listing_q_normalization_sources_typecheck() {
    check_ok(
        "def m(a: (string, int)) { }\n\
         def f(v: void) { }\n\
         def main() {\n\
           var b = (\"hello\", 15);\n\
           m(b);\n\
           m(\"goodbye\", b.1);\n\
           m(\"cheers\", (11, 22).0);\n\
           var t: void;\n\
           f(t);\n\
         }",
    );
}

// ---- misc semantic rules -----------------------------------------------------

#[test]
fn def_fields_and_locals_are_immutable() {
    check_err(
        "class A { def g: int; new(g) { } }\n\
         def main() { var a = A.new(1); a.g = 2; }",
        "immutable",
    );
    check_err("def main() { def x = 1; x = 2; }", "immutable");
}

#[test]
fn break_outside_loop_is_error() {
    check_err("def main() { break; }", "outside a loop");
}

#[test]
fn missing_return_is_error() {
    check_err(
        "def f(x: bool) -> int { if (x) return 1; }",
        "fall off the end",
    );
}

#[test]
fn while_true_terminates_analysis() {
    check_ok("def f() -> int { while (true) { return 1; } }");
}

#[test]
fn polymorphic_recursion_rejected() {
    check_err(
        "class List<T> { var head: T; new(head) { } }\n\
         def f<T>(x: T) { f(List.new(x)); }\n\
         def main() { f(1); }",
        "polymorphic recursion",
    );
}

#[test]
fn plain_polymorphic_recursion_allowed() {
    check_ok(
        "def f<T>(x: T, n: int) { if (n > 0) f(x, n - 1); }\n\
         def main() { f(true, 3); }",
    );
}

#[test]
fn null_comparison_against_object() {
    check_ok(
        "class A { }\n\
         def main() -> bool { var a = A.new(); return a != null; }",
    );
}

#[test]
fn arrays_and_strings() {
    check_ok(
        "def main() {\n\
           var a = Array<int>.new(10);\n\
           a[0] = 5;\n\
           var n = a.length;\n\
           var s = \"hello\";\n\
           var c: byte = s[0];\n\
           var grid = [[1, 2], [3, 4]];\n\
           var x = grid[1][0];\n\
         }",
    );
}

#[test]
fn array_of_tuples() {
    check_ok(
        "def main() {\n\
           var a = Array<(int, bool)>.new(4);\n\
           a[0] = (3, true);\n\
           var x: int = a[0].0;\n\
         }",
    );
}

#[test]
fn globals_initialize_with_inference() {
    let m = check_ok(
        "class A { def x: int; new(x) { } }\n\
         var g = A.new(3);\n\
         def main() -> int { return g.x; }",
    );
    assert_eq!(m.globals.len(), 1);
}

#[test]
fn duplicate_class_is_error() {
    check_err("class A { }\nclass A { }", "duplicate class");
}

#[test]
fn inheritance_cycle_is_error() {
    check_err("class A extends B { }\nclass B extends A { }", "cycle");
}

#[test]
fn main_with_params_is_rejected() {
    check_err("def main(x: int) { }", "main must take no parameters");
}

#[test]
fn generic_class_methods_on_generic_receiver() {
    check_ok(
        "class Pair<A, B> {\n\
           def fst: A;\n\
           def snd: B;\n\
           new(fst, snd) { }\n\
           def swap() -> Pair<B, A> { return Pair<B, A>.new(snd, fst); }\n\
         }\n\
         def main() {\n\
           var p = Pair<int, bool>.new(1, true);\n\
           var q: Pair<bool, int> = p.swap();\n\
         }",
    );
}

#[test]
fn generic_method_in_generic_class() {
    check_ok(
        "class Box<T> {\n\
           def val: T;\n\
           new(val) { }\n\
           def map<U>(f: T -> U) -> Box<U> { return Box<U>.new(f(val)); }\n\
         }\n\
         def inc(x: int) -> int { return x + 1; }\n\
         def main() {\n\
           var b = Box<int>.new(41);\n\
           var c = b.map(inc);\n\
         }",
    );
}

// ---- Error recovery: analysis continues past the first error ---------------

/// Runs the front end end-to-end (parse + sema, diagnostics shared) and
/// returns every error message, in order.
fn all_errors(src: &str) -> Vec<String> {
    let mut diags = Diagnostics::new();
    let ast = parse_program(src, &mut diags);
    let res = analyze(&ast, &mut diags);
    assert!(res.is_none(), "expected errors for {src:?}");
    diags
        .iter()
        .filter(|d| d.severity == vgl_syntax::Severity::Error)
        .map(|d| d.message.clone())
        .collect()
}

#[test]
fn five_independent_errors_all_reported() {
    // Five unrelated mistakes in five different statements; recovery must
    // surface every one of them in a single run.
    let msgs = all_errors(
        "def main() {\n\
           var a: int = true;\n\
           var b = unknown_name;\n\
           var c: NoSuchType = null;\n\
           var d: bool = 1 + false;\n\
           undefined_fn(1);\n\
         }",
    );
    assert_eq!(msgs.len(), 5, "want exactly 5 errors, got {msgs:#?}");
    for needle in ["mismatch", "unknown_name", "NoSuchType", "undefined_fn"] {
        assert!(
            msgs.iter().any(|m| m.contains(needle)),
            "no error mentions {needle:?}: {msgs:#?}"
        );
    }
}

#[test]
fn unknown_type_in_signature_does_not_hide_body_errors() {
    // The bad parameter type poisons `p`, but the body's independent
    // mistakes must still be diagnosed.
    let msgs = all_errors(
        "def f(p: Missing) -> int {\n\
           var x: bool = 3;\n\
           return p;\n\
         }\n\
         def main() { }",
    );
    assert!(
        msgs.iter().any(|m| m.contains("Missing")),
        "unknown type not reported: {msgs:#?}"
    );
    assert!(
        msgs.iter().any(|m| m.contains("mismatch")),
        "body error swallowed by the signature error: {msgs:#?}"
    );
    // `return p` has the poisoned error type, which unifies with `int`:
    // exactly the two real mistakes, no cascade.
    assert_eq!(msgs.len(), 2, "cascaded errors: {msgs:#?}");
}

#[test]
fn parse_error_does_not_hide_type_errors_elsewhere() {
    // A parse error in one function and a type error in another: both
    // surface in one run because sema analyzes the partial AST.
    let msgs = all_errors(
        "def broken() { var x = ; }\n\
         def main() { var y: int = true; }",
    );
    assert!(msgs.len() >= 2, "want parse + sema errors, got {msgs:#?}");
    assert!(
        msgs.iter().any(|m| m.contains("mismatch")),
        "sema did not run past the parse error: {msgs:#?}"
    );
}

#[test]
fn duplicate_class_reports_both_sites() {
    let mut diags = Diagnostics::new();
    let ast = parse_program(
        "class A { }\n\
         class A { def x: int; }\n\
         def main() { }",
        &mut diags,
    );
    assert!(analyze(&ast, &mut diags).is_none());
    let dup = diags
        .iter()
        .find(|d| d.message.contains("duplicate class"))
        .expect("duplicate class diagnostic");
    assert!(
        dup.notes.iter().any(|n| n.message.contains("first defined here")),
        "missing cross-reference note: {dup:#?}"
    );
}

#[test]
fn error_typed_receiver_does_not_cascade() {
    // `v` has the poisoned type; member access and calls on it must stay
    // silent rather than piling on "no such member" noise.
    let msgs = all_errors(
        "def main() {\n\
           var v = nope;\n\
           var w = v.anything;\n\
           v.method(1, 2);\n\
           var x: int = v;\n\
         }",
    );
    assert_eq!(msgs.len(), 1, "cascaded errors: {msgs:#?}");
    assert!(msgs[0].contains("nope"));
}
