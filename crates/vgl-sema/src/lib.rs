//! # vgl-sema
//!
//! Semantic analysis for virgil-rs: name resolution, the class hierarchy
//! (single inheritance, no universal supertype, no overloading), bidirectional
//! best-effort type-argument inference (paper §2.4), first-class operator
//! members, and typechecking of bodies into the typed IR of [`vgl_ir`].
//!
//! The entry point is [`analyze`]:
//!
//! ```
//! use vgl_syntax::{parse_program, Diagnostics};
//! use vgl_sema::analyze;
//!
//! let mut diags = Diagnostics::new();
//! let ast = parse_program("def main() -> int { return 6 * 7; }", &mut diags);
//! let module = analyze(&ast, &mut diags).expect("typechecks");
//! assert!(module.main.is_some());
//! ```

#![warn(missing_docs)]

mod analyzer;
mod check;
mod decls;
mod expr;
mod resolve;
mod stmt;

pub use analyzer::{analyze, Analyzer};
