//! Expression checking: AST expressions → typed IR, with bidirectional
//! best-effort type-argument inference.

use crate::analyzer::Analyzer;
use crate::resolve::TypeScope;
use std::collections::HashMap;
use vgl_ir::{
    Builtin, Expr as IrExpr, ExprKind as Ir, FieldRef, Local, LocalId, MethodId, Oper,
};
use vgl_syntax::ast::{self, MemberName, OpMember};
use vgl_syntax::span::Span;
use vgl_types::{CastRelation, ClassId, InferCtx, Type, TypeKind};

/// Context for checking one body (a method, constructor, or initializer).
pub(crate) struct BodyCx {
    /// Owning class, if inside one.
    pub class: Option<ClassId>,
    /// Type parameters in scope.
    pub tscope: TypeScope,
    /// Local slots (written back to the method/global afterwards).
    pub locals: Vec<Local>,
    /// Name scopes, innermost last.
    pub scopes: Vec<HashMap<String, LocalId>>,
    /// Nesting depth of loops (for break/continue).
    pub loop_depth: usize,
    /// Declared return type of the body.
    pub ret: Type,
    /// True if `this` (LocalId 0) exists.
    pub has_this: bool,
}

impl BodyCx {
    pub(crate) fn lookup(&self, name: &str) -> Option<LocalId> {
        for s in self.scopes.iter().rev() {
            if let Some(&l) = s.get(name) {
                return Some(l);
            }
        }
        None
    }

    pub(crate) fn declare(&mut self, name: &str, ty: Type, mutable: bool) -> LocalId {
        let id = LocalId(self.locals.len() as u32);
        self.locals.push(Local { name: name.to_string(), ty, mutable });
        self.scopes
            .last_mut()
            .expect("scope stack is never empty")
            .insert(name.to_string(), id);
        id
    }

    pub(crate) fn temp(&mut self, ty: Type) -> LocalId {
        let id = LocalId(self.locals.len() as u32);
        self.locals.push(Local { name: format!("$t{}", id.0), ty, mutable: true });
        id
    }
}

/// What a syntactic head (name or member chain prefix) denotes.
pub(crate) enum Head {
    /// An ordinary value.
    Value(IrExpr),
    /// A fully-applied type: primitive, `Array<T>`, class with args, or a
    /// type parameter.
    Type(Type),
    /// A generic class named without type arguments (to be inferred).
    ClassPartial(ClassId),
    /// The built-in `System` component.
    System,
}

/// What a member expression denotes, before choosing value/call form.
pub(crate) enum MemberKind {
    /// Object field access.
    FieldAcc {
        obj: IrExpr,
        fref: FieldRef,
        ty: Type,
        #[allow(dead_code)] // assignments re-resolve and check mutability
        mutable: bool,
    },
    /// Method of an object (`a.m`).
    ObjMethod {
        recv: IrExpr,
        method: MethodId,
        class_args: Vec<Type>,
        explicit: Option<Vec<Type>>,
    },
    /// Unbound method (`A.m`) or component method; receiver (if any) becomes
    /// the first parameter.
    StaticMethod {
        method: MethodId,
        class_args: Option<Vec<Type>>,
        explicit: Option<Vec<Type>>,
    },
    /// Constructor member (`A.new` / `A<int>.new`).
    Ctor {
        class: ClassId,
        class_args: Option<Vec<Type>>,
    },
    /// `Array<T>.new`.
    ArrayNew { elem: Type },
    /// `a.length`.
    ArrayLen { arr: IrExpr },
    /// An operator member with fully-known types.
    Op(Oper),
    /// A cast/query member whose *source* type is not yet known
    /// (`A.!` applied to an argument infers `from` from the argument).
    CastOrQuery {
        to: Type,
        from: Option<Type>,
        query: bool,
    },
    /// A `System` intrinsic.
    Builtin(Builtin),
}

impl Analyzer<'_> {
    // ---- small helpers -----------------------------------------------------

    pub(crate) fn join_types(&mut self, a: Type, b: Type) -> Option<Type> {
        if vgl_types::is_subtype(&mut self.module.store, &self.module.hier, a, b) {
            return Some(b);
        }
        if vgl_types::is_subtype(&mut self.module.store, &self.module.hier, b, a) {
            return Some(a);
        }
        // Walk a's supertype chain looking for a common class supertype.
        let sups = self
            .module
            .hier
            .supertypes(&mut self.module.store, a);
        sups.into_iter()
            .find(|&s| vgl_types::is_subtype(&mut self.module.store, &self.module.hier, b, s))
    }

    pub(crate) fn require_subtype(&mut self, got: Type, want: Type, span: Span) -> bool {
        if vgl_types::is_subtype(&mut self.module.store, &self.module.hier, got, want) {
            true
        } else {
            let g = self.show(got);
            let w = self.show(want);
            self.error(span, format!("type mismatch: expected {w}, found {g}"));
            false
        }
    }

    /// The external function type of a method under a substitution.
    fn method_func_type(
        &mut self,
        m: MethodId,
        subst: &HashMap<vgl_types::TypeVarId, Type>,
        include_receiver: bool,
    ) -> Type {
        let method = self.module.method(m);
        let start = if method.owner.is_some() && !include_receiver { 1 } else { 0 };
        let ptys: Vec<Type> = method.locals[start..method.param_count]
            .iter()
            .map(|l| l.ty)
            .collect();
        let ret = method.ret;
        let ptys: Vec<Type> = ptys
            .into_iter()
            .map(|t| self.module.store.substitute(t, subst))
            .collect();
        let p = self.module.store.tuple(ptys);
        let r = self.module.store.substitute(ret, subst);
        self.module.store.function(p, r)
    }

    /// The function type of an operator value.
    pub(crate) fn oper_type(&mut self, op: Oper) -> Type {
        let s = &mut self.module.store;
        let (int, byte, bool_) = (s.int, s.byte, s.bool_);
        match op {
            Oper::IntAdd
            | Oper::IntSub
            | Oper::IntMul
            | Oper::IntDiv
            | Oper::IntMod
            | Oper::IntAnd
            | Oper::IntOr
            | Oper::IntXor
            | Oper::IntShl
            | Oper::IntShr => {
                let p = s.tuple(vec![int, int]);
                s.function(p, int)
            }
            Oper::IntLt | Oper::IntLe | Oper::IntGt | Oper::IntGe => {
                let p = s.tuple(vec![int, int]);
                s.function(p, bool_)
            }
            Oper::IntNeg => s.function(int, int),
            Oper::ByteLt | Oper::ByteLe | Oper::ByteGt | Oper::ByteGe => {
                let p = s.tuple(vec![byte, byte]);
                s.function(p, bool_)
            }
            Oper::BoolNot => s.function(bool_, bool_),
            Oper::Eq(t) | Oper::Ne(t) => {
                let p = s.tuple(vec![t, t]);
                s.function(p, bool_)
            }
            Oper::Cast { from, to } => s.function(from, to),
            Oper::Query { from, .. } => s.function(from, bool_),
        }
    }

    fn builtin_sig(&mut self, b: Builtin) -> (Vec<Type>, Type) {
        let s = &mut self.module.store;
        match b {
            Builtin::Puts | Builtin::Error => (vec![s.string], s.void),
            Builtin::Puti => (vec![s.int], s.void),
            Builtin::Putb => (vec![s.bool_], s.void),
            Builtin::Putc => (vec![s.byte], s.void),
            Builtin::Ln => (vec![], s.void),
            Builtin::Ticks => (vec![], s.int),
        }
    }

    fn resolve_type_args(
        &mut self,
        args: &[ast::TypeExpr],
        scope: &TypeScope,
    ) -> Option<Vec<Type>> {
        let mut out = Vec::with_capacity(args.len());
        for a in args {
            out.push(self.resolve_type(a, scope)?);
        }
        Some(out)
    }

    // ---- head resolution ----------------------------------------------------

    pub(crate) fn resolve_head(
        &mut self,
        cx: &mut BodyCx,
        name: &ast::Ident,
        type_args: &[ast::TypeExpr],
        expect: Option<Type>,
    ) -> Option<Head> {
        // 1. Locals.
        if let Some(l) = cx.lookup(&name.name) {
            if !type_args.is_empty() {
                self.error(name.span, "type arguments are not valid on a local variable");
                return None;
            }
            let ty = cx.locals[l.index()].ty;
            return Some(Head::Value(IrExpr::new(Ir::Local(l), ty)));
        }
        // 2. Class members via implicit `this`.
        if let Some(c) = cx.class {
            if cx.has_this {
                if let Some((decl_class, ix)) = self.find_field(c, &name.name) {
                    if !type_args.is_empty() {
                        self.error(name.span, "type arguments are not valid on a field");
                        return None;
                    }
                    let this = self.this_expr(cx);
                    return Some(Head::Value(self.field_get(this, decl_class, ix)));
                }
                if let Some(m) = self.module.class_method_by_name(c, &name.name) {
                    let explicit = if type_args.is_empty() {
                        None
                    } else {
                        Some(self.resolve_type_args(type_args, &cx.tscope)?)
                    };
                    let recv = self.this_expr(cx);
                    let class_args = self.own_class_args(c);
                    let mk = MemberKind::ObjMethod { recv, method: m, class_args, explicit };
                    return Some(Head::Value(self.member_value(cx, mk, expect, name.span)?));
                }
            }
        }
        // 3. Type parameters.
        if let Some(&v) = cx.tscope.vars.get(&name.name) {
            if !type_args.is_empty() {
                self.error(name.span, "type parameters take no type arguments");
                return None;
            }
            let t = self.module.store.var(v);
            return Some(Head::Type(t));
        }
        // 4. Classes.
        if let Some(&cid) = self.class_names.get(&name.name) {
            let want = self.module.class(cid).type_params.len();
            if type_args.is_empty() && want > 0 {
                return Some(Head::ClassPartial(cid));
            }
            if type_args.len() != want {
                self.error(
                    name.span,
                    format!("class '{}' expects {want} type argument(s)", name.name),
                );
                return None;
            }
            let args = self.resolve_type_args(type_args, &cx.tscope)?;
            let t = self.module.store.class(cid, args);
            return Some(Head::Type(t));
        }
        // 5. Primitives & Array.
        match name.name.as_str() {
            "void" | "bool" | "byte" | "int" | "string" => {
                if !type_args.is_empty() {
                    self.error(name.span, "primitive types take no type arguments");
                    return None;
                }
                let t = match name.name.as_str() {
                    "void" => self.module.store.void,
                    "bool" => self.module.store.bool_,
                    "byte" => self.module.store.byte,
                    "int" => self.module.store.int,
                    _ => self.module.store.string,
                };
                return Some(Head::Type(t));
            }
            "Array" => {
                if type_args.len() != 1 {
                    self.error(name.span, "Array takes exactly one type argument");
                    return None;
                }
                let elem = self.resolve_type(&type_args[0], &cx.tscope)?;
                let t = self.module.store.array(elem);
                return Some(Head::Type(t));
            }
            "System" => return Some(Head::System),
            _ => {}
        }
        // 6. Component globals.
        if let Some(&g) = self.component_globals.get(&name.name) {
            if !type_args.is_empty() {
                self.error(name.span, "type arguments are not valid on a variable");
                return None;
            }
            if !self.global_ready[g.index()] {
                self.error(
                    name.span,
                    format!("variable '{}' is used before its type is known", name.name),
                );
                return None;
            }
            let ty = self.module.global(g).ty;
            return Some(Head::Value(IrExpr::new(Ir::Global(g), ty)));
        }
        // 7. Component methods.
        if let Some(&m) = self.component_methods.get(&name.name) {
            let explicit = if type_args.is_empty() {
                None
            } else {
                Some(self.resolve_type_args(type_args, &cx.tscope)?)
            };
            let mk = MemberKind::StaticMethod { method: m, class_args: Some(vec![]), explicit };
            return Some(Head::Value(self.member_value(cx, mk, expect, name.span)?));
        }
        self.error(name.span, format!("unknown identifier '{}'", name.name));
        None
    }

    fn this_expr(&mut self, cx: &BodyCx) -> IrExpr {
        debug_assert!(cx.has_this);
        let ty = cx.locals[0].ty;
        IrExpr::new(Ir::Local(LocalId(0)), ty)
    }

    /// The identity type arguments of class `c` (its own vars).
    fn own_class_args(&mut self, c: ClassId) -> Vec<Type> {
        self.module
            .class(c)
            .type_params
            .clone()
            .into_iter()
            .map(|v| self.module.store.var(v))
            .collect()
    }

    fn field_get(&mut self, obj: IrExpr, decl_class: ClassId, own_ix: usize) -> IrExpr {
        let field = &self.module.class(decl_class).fields[own_ix];
        let (slot, fty) = (field.slot, field.ty);
        // Substitute the declaring class's vars with the receiver's args.
        let ty = self.field_type_at(obj.ty, decl_class, fty);
        IrExpr::new(
            Ir::FieldGet(Box::new(obj), FieldRef { class: decl_class, slot }),
            ty,
        )
    }

    /// The type of a field declared in `decl_class` when accessed through a
    /// receiver of static type `recv_ty`.
    fn field_type_at(&mut self, recv_ty: Type, decl_class: ClassId, field_ty: Type) -> Type {
        // Find decl_class in the receiver's supertype chain to get its args.
        let sups = self.module.hier.supertypes(&mut self.module.store, recv_ty);
        for s in sups {
            if let TypeKind::Class(c, args) = self.module.store.kind(s).clone() {
                if c == decl_class {
                    let params = self.module.class(c).type_params.clone();
                    let subst: HashMap<_, _> =
                        params.into_iter().zip(args).collect();
                    return self.module.store.substitute(field_ty, &subst);
                }
            }
        }
        field_ty
    }

    // ---- member resolution ---------------------------------------------------

    /// Resolves `recv.member<targs>` to a [`MemberKind`].
    pub(crate) fn resolve_member(
        &mut self,
        cx: &mut BodyCx,
        recv: &ast::Expr,
        member: &MemberName,
        type_args: &[ast::TypeExpr],
        span: Span,
    ) -> Option<MemberKind> {
        let head = match &recv.kind {
            ast::ExprKind::Name { name, type_args } => {
                self.resolve_head(cx, name, type_args, None)?
            }
            _ => Head::Value(self.check_expr(cx, recv, None)?),
        };
        let explicit = if type_args.is_empty() {
            None
        } else {
            Some(self.resolve_type_args(type_args, &cx.tscope)?)
        };
        match head {
            Head::System => {
                let MemberName::Ident(id) = member else {
                    self.error(span, "System has no such member");
                    return None;
                };
                let b = match id.name.as_str() {
                    "puts" => Builtin::Puts,
                    "puti" => Builtin::Puti,
                    "putb" => Builtin::Putb,
                    "putc" => Builtin::Putc,
                    "ln" => Builtin::Ln,
                    "ticks" => Builtin::Ticks,
                    "error" => Builtin::Error,
                    other => {
                        self.error(id.span, format!("System has no member '{other}'"));
                        return None;
                    }
                };
                Some(MemberKind::Builtin(b))
            }
            Head::ClassPartial(cid) => match member {
                MemberName::New(_) => Some(MemberKind::Ctor { class: cid, class_args: None }),
                MemberName::Ident(id) => {
                    let Some(m) = self.module.class_method_by_name(cid, &id.name) else {
                        self.error(id.span, format!("class '{}' has no method '{}'", self.module.class(cid).name, id.name));
                        return None;
                    };
                    Some(MemberKind::StaticMethod { method: m, class_args: None, explicit })
                }
                MemberName::Op(op, sp) => {
                    self.error(*sp, format!(
                        "operator '{}' on generic class requires explicit type arguments",
                        op.symbol()
                    ));
                    None
                }
            },
            Head::Type(t) => self.type_member(cx, t, member, explicit, span),
            Head::Value(v) => self.value_member(cx, v, member, explicit, span),
        }
    }

    fn type_member(
        &mut self,
        _cx: &mut BodyCx,
        t: Type,
        member: &MemberName,
        explicit: Option<Vec<Type>>,
        span: Span,
    ) -> Option<MemberKind> {
        // Operator members available on every type.
        if let MemberName::Op(op, sp) = member {
            match op {
                OpMember::Eq => return Some(MemberKind::Op(Oper::Eq(t))),
                OpMember::Ne => return Some(MemberKind::Op(Oper::Ne(t))),
                OpMember::Cast => {
                    let from = explicit.as_ref().and_then(|e| e.first().copied());
                    if let Some(f) = from {
                        self.check_cast_legal(f, t, span)?;
                        return Some(MemberKind::Op(Oper::Cast { from: f, to: t }));
                    }
                    return Some(MemberKind::CastOrQuery { to: t, from: None, query: false });
                }
                OpMember::Query => {
                    let from = explicit.as_ref().and_then(|e| e.first().copied());
                    if let Some(f) = from {
                        self.check_cast_legal(f, t, span)?;
                        return Some(MemberKind::Op(Oper::Query { from: f, to: t }));
                    }
                    return Some(MemberKind::CastOrQuery { to: t, from: None, query: true });
                }
                _ => {
                    // Arithmetic operator members are specific to primitives.
                    let kind = self.module.store.kind(t).clone();
                    let oper = match (kind, op) {
                        (TypeKind::Int, OpMember::Add) => Some(Oper::IntAdd),
                        (TypeKind::Int, OpMember::Sub) => Some(Oper::IntSub),
                        (TypeKind::Int, OpMember::Mul) => Some(Oper::IntMul),
                        (TypeKind::Int, OpMember::Div) => Some(Oper::IntDiv),
                        (TypeKind::Int, OpMember::Mod) => Some(Oper::IntMod),
                        (TypeKind::Int, OpMember::Lt) => Some(Oper::IntLt),
                        (TypeKind::Int, OpMember::Le) => Some(Oper::IntLe),
                        (TypeKind::Int, OpMember::Gt) => Some(Oper::IntGt),
                        (TypeKind::Int, OpMember::Ge) => Some(Oper::IntGe),
                        (TypeKind::Int, OpMember::BitAnd) => Some(Oper::IntAnd),
                        (TypeKind::Int, OpMember::BitOr) => Some(Oper::IntOr),
                        (TypeKind::Int, OpMember::BitXor) => Some(Oper::IntXor),
                        (TypeKind::Int, OpMember::Shl) => Some(Oper::IntShl),
                        (TypeKind::Int, OpMember::Shr) => Some(Oper::IntShr),
                        (TypeKind::Byte, OpMember::Lt) => Some(Oper::ByteLt),
                        (TypeKind::Byte, OpMember::Le) => Some(Oper::ByteLe),
                        (TypeKind::Byte, OpMember::Gt) => Some(Oper::ByteGt),
                        (TypeKind::Byte, OpMember::Ge) => Some(Oper::ByteGe),
                        _ => None,
                    };
                    return match oper {
                        Some(o) => Some(MemberKind::Op(o)),
                        None => {
                            let ts = self.show(t);
                            self.error(
                                *sp,
                                format!("type {ts} has no operator member '{}'", op.symbol()),
                            );
                            None
                        }
                    };
                }
            }
        }
        match (self.module.store.kind(t).clone(), member) {
            (TypeKind::Class(cid, args), MemberName::New(_)) => {
                Some(MemberKind::Ctor { class: cid, class_args: Some(args) })
            }
            (TypeKind::Class(cid, args), MemberName::Ident(id)) => {
                let Some(m) = self.module.class_method_by_name(cid, &id.name) else {
                    self.error(
                        id.span,
                        format!("class '{}' has no method '{}'", self.module.class(cid).name, id.name),
                    );
                    return None;
                };
                // Map args onto the *declaring* class.
                let class_args = self.class_args_for_decl(cid, &args, self.module.method(m).owner.expect("class method is owned"));
                Some(MemberKind::StaticMethod { method: m, class_args: Some(class_args), explicit })
            }
            (TypeKind::Array(elem), MemberName::New(_)) => Some(MemberKind::ArrayNew { elem }),
            (TypeKind::Error, _) => None,
            (_, m) => {
                let ts = self.show(t);
                self.error(span, format!("type {ts} has no member '{m}'"));
                None
            }
        }
    }

    /// Given class type `C<args>` and a method declared in ancestor `decl`,
    /// computes the type arguments of `decl` implied by `args`.
    fn class_args_for_decl(&mut self, c: ClassId, args: &[Type], decl: ClassId) -> Vec<Type> {
        let start = self.module.store.class(c, args.to_vec());
        let sups = self.module.hier.supertypes(&mut self.module.store, start);
        for s in sups {
            if let TypeKind::Class(sc, sargs) = self.module.store.kind(s).clone() {
                if sc == decl {
                    return sargs;
                }
            }
        }
        args.to_vec()
    }

    fn value_member(
        &mut self,
        cx: &mut BodyCx,
        v: IrExpr,
        member: &MemberName,
        explicit: Option<Vec<Type>>,
        span: Span,
    ) -> Option<MemberKind> {
        if self.module.store.is_error(v.ty) {
            // The receiver already failed; don't pile a member error on top.
            return None;
        }
        match self.module.store.kind(v.ty).clone() {
            TypeKind::Array(_) => match member {
                MemberName::Ident(id) if id.name == "length" => {
                    Some(MemberKind::ArrayLen { arr: v })
                }
                m => {
                    self.error(span, format!("arrays have no member '{m}'"));
                    None
                }
            },
            TypeKind::Class(cid, args) => match member {
                MemberName::Ident(id) => {
                    if let Some((decl_class, ix)) = self.find_field(cid, &id.name) {
                        let field = &self.module.class(decl_class).fields[ix];
                        let (slot, fty, mutable) = (field.slot, field.ty, field.mutable);
                        let ty = self.field_type_at(v.ty, decl_class, fty);
                        return Some(MemberKind::FieldAcc {
                            obj: v,
                            fref: FieldRef { class: decl_class, slot },
                            ty,
                            mutable,
                        });
                    }
                    if let Some(m) = self.module.class_method_by_name(cid, &id.name) {
                        if self.module.method(m).is_private
                            && cx.class != self.module.method(m).owner
                        {
                            self.error(id.span, format!("method '{}' is private", id.name));
                            return None;
                        }
                        let decl = self.module.method(m).owner.expect("class method is owned");
                        let class_args = self.class_args_for_decl(cid, &args, decl);
                        return Some(MemberKind::ObjMethod {
                            recv: v,
                            method: m,
                            class_args,
                            explicit,
                        });
                    }
                    self.error(
                        id.span,
                        format!("class '{}' has no member '{}'", self.module.class(cid).name, id.name),
                    );
                    None
                }
                m => {
                    self.error(span, format!("objects have no member '{m}'"));
                    None
                }
            },
            _ => {
                let ts = self.show(v.ty);
                self.error(span, format!("value of type {ts} has no member '{member}'"));
                None
            }
        }
    }

    fn check_cast_legal(&mut self, from: Type, to: Type, span: Span) -> Option<()> {
        match vgl_types::cast_relation(&mut self.module.store, &self.module.hier, from, to) {
            CastRelation::Unrelated => {
                let f = self.show(from);
                let t = self.show(to);
                self.error(span, format!("cast/query between unrelated types {f} and {t}"));
                None
            }
            _ => Some(()),
        }
    }

    // ---- member as value -------------------------------------------------------

    /// Builds the first-class value form of a member.
    pub(crate) fn member_value(
        &mut self,
        cx: &mut BodyCx,
        mk: MemberKind,
        expect: Option<Type>,
        span: Span,
    ) -> Option<IrExpr> {
        match mk {
            MemberKind::FieldAcc { obj, fref, ty, .. } => {
                Some(IrExpr::new(Ir::FieldGet(Box::new(obj), fref), ty))
            }
            MemberKind::ArrayLen { arr } => {
                let int = self.module.store.int;
                Some(IrExpr::new(Ir::ArrayLen(Box::new(arr)), int))
            }
            MemberKind::Op(op) => {
                let ty = self.oper_type(op);
                Some(IrExpr::new(Ir::OpClosure(op), ty))
            }
            MemberKind::CastOrQuery { to, from, query } => {
                // As a value the source type must be known: `A.!<B>`.
                let Some(from) = from else {
                    self.error(
                        span,
                        "cast/query used as a value needs an explicit source type, e.g. A.!<B>",
                    );
                    return None;
                };
                let op = if query {
                    Oper::Query { from, to }
                } else {
                    Oper::Cast { from, to }
                };
                let ty = self.oper_type(op);
                Some(IrExpr::new(Ir::OpClosure(op), ty))
            }
            MemberKind::Builtin(b) => {
                let (params, ret) = self.builtin_sig(b);
                let p = self.module.store.tuple(params);
                let ty = self.module.store.function(p, ret);
                Some(IrExpr::new(Ir::BuiltinRef(b), ty))
            }
            MemberKind::ArrayNew { elem } => {
                let arr = self.module.store.array(elem);
                let int = self.module.store.int;
                let ty = self.module.store.function(int, arr);
                Some(IrExpr::new(Ir::ArrayNewRef { elem }, ty))
            }
            MemberKind::ObjMethod { recv, method, class_args, explicit } => {
                let targs = self.finish_method_targs(
                    cx, method, Some(class_args), explicit, expect, false, span,
                )?;
                let subst = self.subst_for(method, &targs);
                if self.module.method(method).kind == vgl_ir::MethodKind::Ctor {
                    self.error(span, "constructors cannot be bound as object methods");
                    return None;
                }
                let ty = self.method_func_type(method, &subst, false);
                Some(IrExpr::new(
                    Ir::BindMethod { method, type_args: targs, recv: Box::new(recv) },
                    ty,
                ))
            }
            MemberKind::StaticMethod { method, class_args, explicit } => {
                let targs = self.finish_method_targs(
                    cx, method, class_args, explicit, expect, true, span,
                )?;
                let subst = self.subst_for(method, &targs);
                let ty = self.method_func_type(method, &subst, true);
                Some(IrExpr::new(Ir::FuncRef { method, type_args: targs }, ty))
            }
            MemberKind::Ctor { class, class_args } => {
                let class_args = match class_args {
                    Some(a) => a,
                    None => self.infer_ctor_args_from_expect(cx, class, expect, span)?,
                };
                self.check_instantiable(class, span)?;
                let ctor = self.module.class(class).ctor.expect("every class has a ctor");
                let params = self.module.class(class).type_params.clone();
                let subst: HashMap<_, _> =
                    params.into_iter().zip(class_args.iter().copied()).collect();
                let m = self.module.method(ctor);
                let ptys: Vec<Type> = m.locals[1..m.param_count].iter().map(|l| l.ty).collect();
                let ptys: Vec<Type> = ptys
                    .into_iter()
                    .map(|t| self.module.store.substitute(t, &subst))
                    .collect();
                let p = self.module.store.tuple(ptys);
                let obj = self.module.store.class(class, class_args.clone());
                let ty = self.module.store.function(p, obj);
                Some(IrExpr::new(Ir::CtorRef { class, type_args: class_args }, ty))
            }
        }
    }

    fn check_instantiable(&mut self, class: ClassId, span: Span) -> Option<()> {
        if self.module.class(class).is_abstract {
            let name = self.module.class(class).name.clone();
            self.error(
                span,
                format!("class '{name}' has abstract methods and cannot be instantiated"),
            );
            return None;
        }
        Some(())
    }

    /// Builds the substitution for a method given its full type args.
    pub(crate) fn subst_for(
        &self,
        method: MethodId,
        targs: &[Type],
    ) -> HashMap<vgl_types::TypeVarId, Type> {
        let vars = self.module.all_type_params(method);
        vars.into_iter().zip(targs.iter().copied()).collect()
    }

    /// Determines the full type-argument list for a method reference used as
    /// a value (no call arguments to infer from): combines known class args,
    /// explicit args, and expected-type matching.
    #[allow(clippy::too_many_arguments)]
    fn finish_method_targs(
        &mut self,
        _cx: &mut BodyCx,
        method: MethodId,
        class_args: Option<Vec<Type>>,
        explicit: Option<Vec<Type>>,
        expect: Option<Type>,
        include_receiver: bool,
        span: Span,
    ) -> Option<Vec<Type>> {
        let class_params: Vec<_> = match self.module.method(method).owner {
            Some(c) => self.module.class(c).type_params.clone(),
            None => vec![],
        };
        let own_params = self.module.method(method).type_params.clone();
        if let Some(e) = &explicit {
            if e.len() != own_params.len() {
                self.error(
                    span,
                    format!(
                        "method '{}' expects {} type argument(s), found {}",
                        self.module.method(method).name,
                        own_params.len(),
                        e.len()
                    ),
                );
                return None;
            }
        }
        let mut unknown: Vec<vgl_types::TypeVarId> = Vec::new();
        if class_args.is_none() {
            unknown.extend(class_params.iter().copied());
        }
        if explicit.is_none() {
            unknown.extend(own_params.iter().copied());
        }
        if unknown.is_empty() {
            let mut out = class_args.unwrap_or_default();
            out.extend(explicit.unwrap_or_default());
            return Some(out);
        }
        // Build the known part of the substitution, then match the function
        // type against the expected type.
        let mut known: HashMap<vgl_types::TypeVarId, Type> = HashMap::new();
        if let Some(ca) = &class_args {
            known.extend(class_params.iter().copied().zip(ca.iter().copied()));
        }
        if let Some(e) = &explicit {
            known.extend(own_params.iter().copied().zip(e.iter().copied()));
        }
        let Some(expect) = expect else {
            self.error(
                span,
                format!(
                    "cannot infer type arguments for '{}' here; supply them explicitly",
                    self.module.method(method).name
                ),
            );
            return None;
        };
        let fty = self.method_func_type(method, &known, include_receiver);
        let mut ctx = InferCtx::new(&unknown);
        let matched = vgl_types::match_types(
            &mut self.module.store,
            &self.module.hier,
            fty,
            expect,
            &mut ctx,
        );
        if !matched || !ctx.is_complete() {
            let name = self.module.method(method).name.clone();
            let es = self.show(expect);
            self.error(
                span,
                format!("cannot infer type arguments for '{name}' from expected type {es}"),
            );
            return None;
        }
        let mut out = Vec::new();
        for v in class_params {
            out.push(match known.get(&v) {
                Some(&t) => t,
                None => ctx.get(v).expect("solved"),
            });
        }
        for v in own_params {
            out.push(match known.get(&v) {
                Some(&t) => t,
                None => ctx.get(v).expect("solved"),
            });
        }
        Some(out)
    }

    fn infer_ctor_args_from_expect(
        &mut self,
        _cx: &mut BodyCx,
        class: ClassId,
        expect: Option<Type>,
        span: Span,
    ) -> Option<Vec<Type>> {
        let params = self.module.class(class).type_params.clone();
        if params.is_empty() {
            return Some(vec![]);
        }
        if let Some(e) = expect {
            if let TypeKind::Function(_, r) = self.module.store.kind(e).clone() {
                if let TypeKind::Class(c2, args) = self.module.store.kind(r).clone() {
                    if c2 == class {
                        return Some(args);
                    }
                }
            }
            if let TypeKind::Class(c2, args) = self.module.store.kind(e).clone() {
                if c2 == class {
                    return Some(args);
                }
            }
        }
        let name = self.module.class(class).name.clone();
        self.error(
            span,
            format!("cannot infer type arguments for '{name}.new' here; write {name}<...>.new"),
        );
        None
    }
}
