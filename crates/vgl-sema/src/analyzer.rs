//! The analyzer driver: orchestrates declaration collection, signature
//! resolution, body checking, and whole-program checks.

use std::collections::HashMap;

use vgl_ir::{MethodId, Module};
use vgl_syntax::ast;
use vgl_syntax::diag::Diagnostics;
use vgl_syntax::span::Span;
use vgl_types::{ClassId, Hierarchy, Type, TypeStore, TypeVarId};

/// Runs semantic analysis over a parsed program.
///
/// Returns the typed module on success; on failure, diagnostics explain why
/// and `None` is returned.
pub fn analyze(program: &ast::Program, diags: &mut Diagnostics) -> Option<Module> {
    let mut a = Analyzer::new(diags);
    a.run(program);
    if a.diags.has_errors() {
        None
    } else {
        Some(a.module)
    }
}

/// Semantic analyzer state. Most users only need [`analyze`].
pub struct Analyzer<'d> {
    /// Diagnostics sink.
    pub(crate) diags: &'d mut Diagnostics,
    /// The module being built.
    pub(crate) module: Module,
    /// Class name → id.
    pub(crate) class_names: HashMap<String, ClassId>,
    /// Component method name → id.
    pub(crate) component_methods: HashMap<String, MethodId>,
    /// Component variable name → id.
    pub(crate) component_globals: HashMap<String, vgl_ir::GlobalId>,
    /// Display names for type variables.
    pub(crate) typevar_names: Vec<String>,
    /// Per-class map from type-parameter name to id.
    pub(crate) class_tparams: Vec<HashMap<String, TypeVarId>>,
    /// Per-method map from type-parameter name to id (parallel to methods).
    pub(crate) method_tparams: Vec<HashMap<String, TypeVarId>>,
    /// AST indices: class id → index into `program.decls`.
    pub(crate) class_decl_index: Vec<usize>,
    /// Whether each global's type is known yet (during initializer checking).
    pub(crate) global_ready: Vec<bool>,
    /// Methods whose bodies still need checking.
    pub(crate) pending: Vec<crate::decls::PendingBody>,
    /// Constructor parameter info, by ctor method id.
    pub(crate) ctor_infos: HashMap<MethodId, crate::decls::CtorInfo>,
    /// Global initializer AST locations (global, decl index).
    pub(crate) global_sources: Vec<(vgl_ir::GlobalId, usize)>,
    /// Number of header params per class (the first own fields).
    pub(crate) header_param_count: Vec<usize>,
}

impl<'d> Analyzer<'d> {
    pub(crate) fn new(diags: &'d mut Diagnostics) -> Analyzer<'d> {
        Analyzer {
            diags,
            module: Module {
                store: TypeStore::new(),
                hier: Hierarchy::new(),
                classes: Vec::new(),
                methods: Vec::new(),
                globals: Vec::new(),
                main: None,
            },
            class_names: HashMap::new(),
            component_methods: HashMap::new(),
            component_globals: HashMap::new(),
            typevar_names: Vec::new(),
            class_tparams: Vec::new(),
            method_tparams: Vec::new(),
            class_decl_index: Vec::new(),
            global_ready: Vec::new(),
            pending: Vec::new(),
            ctor_infos: HashMap::new(),
            global_sources: Vec::new(),
            header_param_count: Vec::new(),
        }
    }

    pub(crate) fn run(&mut self, program: &ast::Program) {
        // The first two phases gate hard: a broken class graph (duplicate or
        // cyclic inheritance) would poison the topological order every later
        // phase iterates in. Past that point, analysis continues through
        // errors — bad types resolve to the poisoned `store.error`, so
        // signature collection, vtable layout, and body checking still run
        // and report everything they can find.
        // Gate on errors introduced *here*: the shared sink may already hold
        // parse errors, and those must not stop analysis of the partial AST.
        let baseline = self.diags.error_count();
        self.collect_classes(program);
        if self.diags.error_count() > baseline {
            return;
        }
        self.resolve_class_structure(program);
        if self.diags.error_count() > baseline {
            return;
        }
        self.collect_signatures(program);
        self.build_vtables();
        self.check_bodies(program);
        if self.diags.error_count() > baseline {
            return;
        }
        self.find_main();
        self.check_polymorphic_recursion();
    }

    /// Allocates a fresh, globally-unique type variable.
    pub(crate) fn fresh_typevar(&mut self, name: &str) -> TypeVarId {
        let id = TypeVarId(self.typevar_names.len() as u32);
        self.typevar_names.push(name.to_string());
        id
    }

    pub(crate) fn error(&mut self, span: Span, msg: impl Into<String>) {
        self.diags.error(span, msg);
    }

    /// Renders a type for diagnostics.
    pub(crate) fn show(&self, t: Type) -> String {
        vgl_types::display_type(&self.module.store, &self.module.hier, t)
    }

    fn find_main(&mut self) {
        if let Some(&m) = self.component_methods.get("main") {
            let method = self.module.method(m);
            if !method.type_params.is_empty() {
                self.diags.error(
                    Span::point(0),
                    "main must not have type parameters",
                );
                return;
            }
            if method.param_count != 0 {
                self.diags.error(
                    Span::point(0),
                    "main must take no parameters",
                );
                return;
            }
            self.module.main = Some(m);
        }
    }

    /// Rejects polymorphic recursion (paper §4.3, footnote 9: "Virgil
    /// disallows polymorphic recursion but it is not currently enforced" —
    /// we enforce it, conservatively, so monomorphization terminates).
    ///
    /// An edge `caller → callee` is *expanding* when a type argument at the
    /// call site mentions one of the caller's type parameters nested inside a
    /// type constructor (e.g. `f<List<T>>` inside `f<T>`). A cycle containing
    /// an expanding edge would make monomorphization diverge.
    fn check_polymorphic_recursion(&mut self) {
        use vgl_ir::visit::for_each_expr;
        use vgl_ir::ExprKind;
        let n = self.module.methods.len();
        // edges[m] = (callee, expanding)
        let mut edges: Vec<Vec<(usize, bool)>> = vec![Vec::new(); n];
        for (i, m) in self.module.methods.iter().enumerate() {
            let Some(body) = &m.body else { continue };
            let own_vars: Vec<TypeVarId> = self.module.all_type_params(MethodId(i as u32));
            if own_vars.is_empty() {
                continue;
            }
            let store = &self.module.store;
            let mut local_edges = Vec::new();
            for_each_expr(body, &mut |e| {
                let (callee, targs): (Option<usize>, &[Type]) = match &e.kind {
                    ExprKind::CallStatic { method, type_args, .. }
                    | ExprKind::CallVirtual { method, type_args, .. }
                    | ExprKind::BindMethod { method, type_args, .. }
                    | ExprKind::FuncRef { method, type_args } => {
                        (Some(method.index()), type_args)
                    }
                    _ => (None, &[]),
                };
                let Some(callee) = callee else { return };
                let mut expanding = false;
                let mut mentions = false;
                for &t in targs {
                    let mut vars = Vec::new();
                    store.collect_vars(t, &mut vars);
                    let uses_own = vars.iter().any(|v| own_vars.contains(v));
                    if uses_own {
                        mentions = true;
                        // Bare `Var` arguments are non-expanding; anything
                        // nesting an own var inside a constructor expands.
                        if !matches!(store.kind(t), vgl_types::TypeKind::Var(_)) {
                            expanding = true;
                        }
                    }
                }
                if mentions {
                    local_edges.push((callee, expanding));
                }
            });
            edges[i] = local_edges;
        }
        // A cycle through an expanding edge u→v exists iff u is reachable
        // from v. Check each expanding edge with a DFS.
        for u in 0..n {
            for &(v, expanding) in &edges[u] {
                if !expanding {
                    continue;
                }
                let mut visited = vec![false; n];
                let mut stack = vec![v];
                visited[v] = true;
                let mut reachable = v == u;
                while let Some(cur) = stack.pop() {
                    if cur == u {
                        reachable = true;
                        break;
                    }
                    for &(next, _) in &edges[cur] {
                        if !visited[next] {
                            visited[next] = true;
                            stack.push(next);
                        }
                    }
                }
                if reachable {
                    let name = self.module.methods[u].name.clone();
                    self.diags.error(
                        Span::point(0),
                        format!(
                            "polymorphic recursion is not allowed: method '{name}' \
                             recursively instantiates itself at a larger type"
                        ),
                    );
                    return;
                }
            }
        }
    }
}
