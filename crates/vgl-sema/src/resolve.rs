//! Resolution of syntactic type expressions to interned types.

use crate::analyzer::Analyzer;
use std::collections::HashMap;
use vgl_syntax::ast::{TypeExpr, TypeExprKind};
use vgl_types::{Type, TypeVarId};

/// The set of type parameters in scope while resolving a type expression.
#[derive(Clone, Debug, Default)]
pub struct TypeScope {
    /// Name → variable id, innermost scope last (method params shadow class
    /// params, which is itself an error Virgil reports — we report too).
    pub vars: HashMap<String, TypeVarId>,
}

impl TypeScope {
    /// An empty scope.
    pub fn new() -> TypeScope {
        TypeScope::default()
    }

}

impl Analyzer<'_> {
    /// Resolves a syntactic type to an interned [`Type`].
    ///
    /// Unknown names and arity errors are reported and yield the poisoned
    /// error type (`store.error`), which unifies with everything, so one bad
    /// type annotation does not stop the rest of the module from being
    /// checked. The `Option` return is kept for call-site ergonomics; every
    /// path returns `Some`.
    pub(crate) fn resolve_type(&mut self, te: &TypeExpr, scope: &TypeScope) -> Option<Type> {
        match &te.kind {
            TypeExprKind::Tuple(elems) => {
                let mut tys = Vec::with_capacity(elems.len());
                for e in elems {
                    tys.push(self.resolve_type(e, scope)?);
                }
                Some(self.module.store.tuple(tys))
            }
            TypeExprKind::Function(p, r) => {
                let pt = self.resolve_type(p, scope)?;
                let rt = self.resolve_type(r, scope)?;
                Some(self.module.store.function(pt, rt))
            }
            TypeExprKind::Named { name, args } => {
                // Type parameters shadow nothing and accept no arguments.
                if let Some(&v) = scope.vars.get(&name.name) {
                    if !args.is_empty() {
                        self.error(name.span, format!("type parameter '{}' takes no type arguments", name.name));
                        return Some(self.module.store.error);
                    }
                    return Some(self.module.store.var(v));
                }
                match name.name.as_str() {
                    "void" | "bool" | "byte" | "int" | "string" => {
                        if !args.is_empty() {
                            self.error(
                                name.span,
                                format!("primitive type '{}' takes no type arguments", name.name),
                            );
                            return Some(self.module.store.error);
                        }
                        Some(match name.name.as_str() {
                            "void" => self.module.store.void,
                            "bool" => self.module.store.bool_,
                            "byte" => self.module.store.byte,
                            "int" => self.module.store.int,
                            _ => self.module.store.string,
                        })
                    }
                    "Array" => {
                        if args.len() != 1 {
                            self.error(name.span, "Array takes exactly one type argument");
                            return Some(self.module.store.error);
                        }
                        let elem = self.resolve_type(&args[0], scope)?;
                        Some(self.module.store.array(elem))
                    }
                    other => {
                        let Some(&cid) = self.class_names.get(other) else {
                            self.error(name.span, format!("unknown type '{other}'"));
                            return Some(self.module.store.error);
                        };
                        let want = self.module.class(cid).type_params.len();
                        if args.len() != want {
                            self.error(
                                name.span,
                                format!(
                                    "class '{other}' expects {want} type argument(s), found {}",
                                    args.len()
                                ),
                            );
                            return Some(self.module.store.error);
                        }
                        let mut tys = Vec::with_capacity(args.len());
                        for a in args {
                            tys.push(self.resolve_type(a, scope)?);
                        }
                        Some(self.module.store.class(cid, tys))
                    }
                }
            }
        }
    }
}
