//! The main expression checker: literals, operators, calls with
//! type-argument inference, and the tuple/argument duality.

use crate::analyzer::Analyzer;
use crate::expr::{BodyCx, Head, MemberKind};
use std::collections::HashMap;
use vgl_ir::{Expr as IrExpr, ExprKind as Ir, LocalId, MethodId, MethodKind, Oper};
use vgl_syntax::ast::{self, BinOp};
use vgl_syntax::span::Span;
use vgl_types::{ClassId, InferCtx, Type, TypeKind, TypeVarId};

impl Analyzer<'_> {
    /// Checks an expression against an optional expected type (a *hint*: the
    /// caller still verifies subtyping where it matters).
    pub(crate) fn check_expr(
        &mut self,
        cx: &mut BodyCx,
        e: &ast::Expr,
        expect: Option<Type>,
    ) -> Option<IrExpr> {
        match &e.kind {
            ast::ExprKind::IntLit(v) => {
                let Ok(v32) = i32::try_from(*v) else {
                    // Allow literals like 0xFFFFFFFF to mean their bit pattern.
                    if *v >= 0 && *v <= u32::MAX as i64 {
                        let int = self.module.store.int;
                        return Some(IrExpr::new(Ir::Int(*v as u32 as i32), int));
                    }
                    self.error(e.span, "integer literal out of range for int");
                    return None;
                };
                let int = self.module.store.int;
                Some(IrExpr::new(Ir::Int(v32), int))
            }
            ast::ExprKind::ByteLit(b) => {
                let byte = self.module.store.byte;
                Some(IrExpr::new(Ir::Byte(*b), byte))
            }
            ast::ExprKind::BoolLit(b) => {
                let bool_ = self.module.store.bool_;
                Some(IrExpr::new(Ir::Bool(*b), bool_))
            }
            ast::ExprKind::NullLit => {
                // Prefer the expected type when it is nullable.
                if let Some(t) = expect {
                    if self.module.store.is_nullable(t) {
                        return Some(IrExpr::new(Ir::Null, t));
                    }
                }
                let null = self.module.store.null;
                Some(IrExpr::new(Ir::Null, null))
            }
            ast::ExprKind::StringLit(bytes) => {
                let string = self.module.store.string;
                Some(IrExpr::new(Ir::String(bytes.clone()), string))
            }
            ast::ExprKind::Tuple(elems) => {
                if elems.is_empty() {
                    let void = self.module.store.void;
                    return Some(IrExpr::new(Ir::Unit, void));
                }
                let hints: Vec<Option<Type>> = match expect
                    .map(|t| self.module.store.kind(t).clone())
                {
                    Some(TypeKind::Tuple(ts)) if ts.len() == elems.len() => {
                        ts.into_iter().map(Some).collect()
                    }
                    _ => vec![None; elems.len()],
                };
                let mut parts = Vec::with_capacity(elems.len());
                let mut tys = Vec::with_capacity(elems.len());
                for (el, hint) in elems.iter().zip(hints) {
                    let p = self.check_expr(cx, el, hint)?;
                    tys.push(p.ty);
                    parts.push(p);
                }
                let ty = self.module.store.tuple(tys);
                Some(IrExpr::new(Ir::Tuple(parts), ty))
            }
            ast::ExprKind::ArrayLit(elems) => {
                let elem_hint = match expect.map(|t| self.module.store.kind(t).clone()) {
                    Some(TypeKind::Array(t)) => Some(t),
                    _ => None,
                };
                if elems.is_empty() && elem_hint.is_none() {
                    self.error(e.span, "cannot infer the element type of an empty array literal");
                    return None;
                }
                let mut parts = Vec::with_capacity(elems.len());
                let mut elem_ty = elem_hint;
                for el in elems {
                    let p = self.check_expr(cx, el, elem_ty)?;
                    elem_ty = Some(match elem_ty {
                        None => p.ty,
                        Some(t) => {
                            let Some(j) = self.join_types(t, p.ty) else {
                                let a = self.show(t);
                                let b = self.show(p.ty);
                                self.error(
                                    el.span,
                                    format!("array elements have incompatible types {a} and {b}"),
                                );
                                return None;
                            };
                            j
                        }
                    });
                    parts.push(p);
                }
                let ty = self.module.store.array(elem_ty.expect("nonempty or hinted"));
                Some(IrExpr::new(Ir::ArrayLit(parts), ty))
            }
            ast::ExprKind::Name { name, type_args } => {
                match self.resolve_head(cx, name, type_args, expect)? {
                    Head::Value(v) => Some(v),
                    Head::Type(_) | Head::ClassPartial(_) => {
                        self.error(name.span, format!("type '{}' used as a value", name.name));
                        None
                    }
                    Head::System => {
                        self.error(name.span, "'System' used as a value");
                        None
                    }
                }
            }
            ast::ExprKind::Member { recv, member, type_args } => {
                let mk = self.resolve_member(cx, recv, member, type_args, e.span)?;
                self.member_value(cx, mk, expect, e.span)
            }
            ast::ExprKind::TupleIndex { recv, index } => {
                let r = self.check_expr(cx, recv, None)?;
                match self.module.store.kind(r.ty).clone() {
                    TypeKind::Tuple(ts) => {
                        let Some(&ty) = ts.get(*index as usize) else {
                            self.error(
                                e.span,
                                format!("tuple index {index} out of range for {}", self.show(r.ty)),
                            );
                            return None;
                        };
                        Some(IrExpr::new(Ir::TupleIndex(Box::new(r), *index), ty))
                    }
                    TypeKind::Error => Some(IrExpr::new(Ir::Unit, r.ty)),
                    _ if *index == 0 => {
                        // Degenerate rule: (T) == T, so `.0` of a non-tuple is
                        // the value itself (paper listing (c4)).
                        Some(r)
                    }
                    _ => {
                        let ts = self.show(r.ty);
                        self.error(e.span, format!("cannot index non-tuple type {ts}"));
                        None
                    }
                }
            }
            ast::ExprKind::Call { func, args } => self.check_call(cx, func, args, expect, e.span),
            ast::ExprKind::Index { recv, index } => {
                let r = self.check_expr(cx, recv, None)?;
                let int = self.module.store.int;
                let i = self.check_expr(cx, index, Some(int))?;
                if !self.require_subtype(i.ty, int, index.span) {
                    return None;
                }
                match self.module.store.kind(r.ty).clone() {
                    TypeKind::Array(elem) => {
                        Some(IrExpr::new(Ir::ArrayGet(Box::new(r), Box::new(i)), elem))
                    }
                    TypeKind::Error => Some(IrExpr::new(Ir::Unit, r.ty)),
                    _ => {
                        let ts = self.show(r.ty);
                        self.error(e.span, format!("cannot index non-array type {ts}"));
                        None
                    }
                }
            }
            ast::ExprKind::Not(x) => {
                let bool_ = self.module.store.bool_;
                let v = self.check_expr(cx, x, Some(bool_))?;
                if !self.require_subtype(v.ty, bool_, x.span) {
                    return None;
                }
                Some(IrExpr::new(Ir::Apply(Oper::BoolNot, vec![v]), bool_))
            }
            ast::ExprKind::Neg(x) => {
                let int = self.module.store.int;
                let v = self.check_expr(cx, x, Some(int))?;
                if !self.require_subtype(v.ty, int, x.span) {
                    return None;
                }
                Some(IrExpr::new(Ir::Apply(Oper::IntNeg, vec![v]), int))
            }
            ast::ExprKind::Binary { op, lhs, rhs } => self.check_binary(cx, *op, lhs, rhs, e.span),
            ast::ExprKind::And(a, b) => {
                let bool_ = self.module.store.bool_;
                let l = self.check_expr(cx, a, Some(bool_))?;
                let r = self.check_expr(cx, b, Some(bool_))?;
                if !self.require_subtype(l.ty, bool_, a.span)
                    || !self.require_subtype(r.ty, bool_, b.span)
                {
                    return None;
                }
                Some(IrExpr::new(Ir::And(Box::new(l), Box::new(r)), bool_))
            }
            ast::ExprKind::Or(a, b) => {
                let bool_ = self.module.store.bool_;
                let l = self.check_expr(cx, a, Some(bool_))?;
                let r = self.check_expr(cx, b, Some(bool_))?;
                if !self.require_subtype(l.ty, bool_, a.span)
                    || !self.require_subtype(r.ty, bool_, b.span)
                {
                    return None;
                }
                Some(IrExpr::new(Ir::Or(Box::new(l), Box::new(r)), bool_))
            }
            ast::ExprKind::Ternary { cond, then, els } => {
                let bool_ = self.module.store.bool_;
                let c = self.check_expr(cx, cond, Some(bool_))?;
                if !self.require_subtype(c.ty, bool_, cond.span) {
                    return None;
                }
                let t = self.check_expr(cx, then, expect)?;
                let f = self.check_expr(cx, els, expect.or(Some(t.ty)))?;
                let Some(ty) = self.join_types(t.ty, f.ty) else {
                    let a = self.show(t.ty);
                    let b = self.show(f.ty);
                    self.error(e.span, format!("branches have incompatible types {a} and {b}"));
                    return None;
                };
                Some(IrExpr::new(
                    Ir::Ternary { cond: Box::new(c), then: Box::new(t), els: Box::new(f) },
                    ty,
                ))
            }
            ast::ExprKind::Assign { target, value } => self.check_assign(cx, target, value, e.span),
            ast::ExprKind::Error => {
                // The parser already reported this node; give it the poisoned
                // error type so surrounding checks proceed without cascading.
                // It never reaches later pipeline stages: analysis with any
                // error diagnostic yields no module.
                let err = self.module.store.error;
                Some(IrExpr::new(Ir::Unit, err))
            }
        }
    }

    fn check_binary(
        &mut self,
        cx: &mut BodyCx,
        op: BinOp,
        lhs: &ast::Expr,
        rhs: &ast::Expr,
        span: Span,
    ) -> Option<IrExpr> {
        let int = self.module.store.int;
        let byte = self.module.store.byte;
        let bool_ = self.module.store.bool_;
        match op {
            BinOp::Add
            | BinOp::Sub
            | BinOp::Mul
            | BinOp::Div
            | BinOp::Mod
            | BinOp::BitAnd
            | BinOp::BitOr
            | BinOp::BitXor
            | BinOp::Shl
            | BinOp::Shr => {
                let l = self.check_expr(cx, lhs, Some(int))?;
                let r = self.check_expr(cx, rhs, Some(int))?;
                if !self.require_subtype(l.ty, int, lhs.span)
                    || !self.require_subtype(r.ty, int, rhs.span)
                {
                    return None;
                }
                let oper = match op {
                    BinOp::Add => Oper::IntAdd,
                    BinOp::Sub => Oper::IntSub,
                    BinOp::Mul => Oper::IntMul,
                    BinOp::Div => Oper::IntDiv,
                    BinOp::Mod => Oper::IntMod,
                    BinOp::BitAnd => Oper::IntAnd,
                    BinOp::BitOr => Oper::IntOr,
                    BinOp::BitXor => Oper::IntXor,
                    BinOp::Shl => Oper::IntShl,
                    BinOp::Shr => Oper::IntShr,
                    _ => unreachable!(),
                };
                Some(IrExpr::new(Ir::Apply(oper, vec![l, r]), int))
            }
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                let l = self.check_expr(cx, lhs, None)?;
                let r = self.check_expr(cx, rhs, Some(l.ty))?;
                let oper = if l.ty == byte && r.ty == byte {
                    match op {
                        BinOp::Lt => Oper::ByteLt,
                        BinOp::Le => Oper::ByteLe,
                        BinOp::Gt => Oper::ByteGt,
                        BinOp::Ge => Oper::ByteGe,
                        _ => unreachable!(),
                    }
                } else {
                    if !self.require_subtype(l.ty, int, lhs.span)
                        || !self.require_subtype(r.ty, int, rhs.span)
                    {
                        return None;
                    }
                    match op {
                        BinOp::Lt => Oper::IntLt,
                        BinOp::Le => Oper::IntLe,
                        BinOp::Gt => Oper::IntGt,
                        BinOp::Ge => Oper::IntGe,
                        _ => unreachable!(),
                    }
                };
                Some(IrExpr::new(Ir::Apply(oper, vec![l, r]), bool_))
            }
            BinOp::Eq | BinOp::Ne => {
                let l = self.check_expr(cx, lhs, None)?;
                let r = self.check_expr(cx, rhs, Some(l.ty))?;
                let Some(ty) = self.join_types(l.ty, r.ty) else {
                    let a = self.show(l.ty);
                    let b = self.show(r.ty);
                    self.error(span, format!("cannot compare unrelated types {a} and {b}"));
                    return None;
                };
                let oper = if op == BinOp::Eq { Oper::Eq(ty) } else { Oper::Ne(ty) };
                Some(IrExpr::new(Ir::Apply(oper, vec![l, r]), bool_))
            }
        }
    }

    fn check_assign(
        &mut self,
        cx: &mut BodyCx,
        target: &ast::Expr,
        value: &ast::Expr,
        span: Span,
    ) -> Option<IrExpr> {
        match &target.kind {
            ast::ExprKind::Name { name, type_args } if type_args.is_empty() => {
                if let Some(l) = cx.lookup(&name.name) {
                    let (ty, mutable) = {
                        let local = &cx.locals[l.index()];
                        (local.ty, local.mutable)
                    };
                    if !mutable {
                        self.error(name.span, format!("cannot assign to immutable '{}'", name.name));
                    }
                    let v = self.check_expr(cx, value, Some(ty))?;
                    if !self.require_subtype(v.ty, ty, value.span) {
                        return None;
                    }
                    return Some(IrExpr::new(Ir::LocalSet(l, Box::new(v)), ty));
                }
                // Implicit this-field?
                if let Some(c) = cx.class {
                    if cx.has_this && self.find_field(c, &name.name).is_some() {
                        return self.assign_field_named(cx, None, &name.name, name.span, value);
                    }
                }
                if let Some(&g) = self.component_globals.get(&name.name) {
                    let (ty, mutable) = {
                        let global = self.module.global(g);
                        (global.ty, global.mutable)
                    };
                    if !mutable {
                        self.error(name.span, format!("cannot assign to immutable '{}'", name.name));
                    }
                    let v = self.check_expr(cx, value, Some(ty))?;
                    if !self.require_subtype(v.ty, ty, value.span) {
                        return None;
                    }
                    return Some(IrExpr::new(Ir::GlobalSet(g, Box::new(v)), ty));
                }
                self.error(name.span, format!("unknown variable '{}'", name.name));
                None
            }
            ast::ExprKind::Member { recv, member, type_args } if type_args.is_empty() => {
                let ast::MemberName::Ident(id) = member else {
                    self.error(span, "invalid assignment target");
                    return None;
                };
                self.assign_field_named(cx, Some(recv), &id.name, id.span, value)
            }
            ast::ExprKind::Index { recv, index } => {
                let r = self.check_expr(cx, recv, None)?;
                let int = self.module.store.int;
                let i = self.check_expr(cx, index, Some(int))?;
                if !self.require_subtype(i.ty, int, index.span) {
                    return None;
                }
                let TypeKind::Array(elem) = self.module.store.kind(r.ty).clone() else {
                    let ts = self.show(r.ty);
                    self.error(span, format!("cannot index non-array type {ts}"));
                    return None;
                };
                let v = self.check_expr(cx, value, Some(elem))?;
                if !self.require_subtype(v.ty, elem, value.span) {
                    return None;
                }
                Some(IrExpr::new(
                    Ir::ArraySet(Box::new(r), Box::new(i), Box::new(v)),
                    elem,
                ))
            }
            ast::ExprKind::Error => {
                // Already reported by the parser; still check the value side
                // so its own errors surface.
                let _ = self.check_expr(cx, value, None);
                let err = self.module.store.error;
                Some(IrExpr::new(Ir::Unit, err))
            }
            _ => {
                self.error(span, "invalid assignment target");
                None
            }
        }
    }

    fn assign_field_named(
        &mut self,
        cx: &mut BodyCx,
        recv: Option<&ast::Expr>,
        field_name: &str,
        name_span: Span,
        value: &ast::Expr,
    ) -> Option<IrExpr> {
        let obj = match recv {
            Some(r) => self.check_expr(cx, r, None)?,
            None => {
                let ty = cx.locals[0].ty;
                IrExpr::new(Ir::Local(LocalId(0)), ty)
            }
        };
        let TypeKind::Class(cid, _) = self.module.store.kind(obj.ty).clone() else {
            let ts = self.show(obj.ty);
            self.error(name_span, format!("type {ts} has no fields"));
            return None;
        };
        let Some((decl_class, ix)) = self.find_field(cid, field_name) else {
            self.error(name_span, format!("class has no field '{field_name}'"));
            return None;
        };
        let field = &self.module.class(decl_class).fields[ix];
        let (slot, fty, mutable) = (field.slot, field.ty, field.mutable);
        if !mutable {
            self.error(
                name_span,
                format!("cannot assign to immutable field '{field_name}' (declared with 'def')"),
            );
        }
        let ty = self.field_type_via(obj.ty, decl_class, fty);
        let v = self.check_expr(cx, value, Some(ty))?;
        if !self.require_subtype(v.ty, ty, value.span) {
            return None;
        }
        Some(IrExpr::new(
            Ir::FieldSet(
                Box::new(obj),
                vgl_ir::FieldRef { class: decl_class, slot },
                Box::new(v),
            ),
            ty,
        ))
    }

    pub(crate) fn field_type_via(&mut self, recv_ty: Type, decl_class: ClassId, field_ty: Type) -> Type {
        let sups = self.module.hier.supertypes(&mut self.module.store, recv_ty);
        for s in sups {
            if let TypeKind::Class(c, args) = self.module.store.kind(s).clone() {
                if c == decl_class {
                    let params = self.module.class(c).type_params.clone();
                    let subst: HashMap<_, _> = params.into_iter().zip(args).collect();
                    return self.module.store.substitute(field_ty, &subst);
                }
            }
        }
        field_ty
    }

    // ---- calls ------------------------------------------------------------------

    pub(crate) fn check_call(
        &mut self,
        cx: &mut BodyCx,
        func: &ast::Expr,
        args: &[ast::Expr],
        expect: Option<Type>,
        span: Span,
    ) -> Option<IrExpr> {
        // Resolve the callee without committing to a value form, so that
        // method calls can infer type arguments from the actual arguments.
        match &func.kind {
            ast::ExprKind::Name { name, type_args } => {
                match self.resolve_head_for_call(cx, name, type_args)? {
                    CallHead::Member(mk) => self.call_member(cx, mk, args, expect, span),
                    CallHead::Value(v) => self.call_value(cx, v, args, span),
                }
            }
            ast::ExprKind::Member { recv, member, type_args } => {
                let mk = self.resolve_member(cx, recv, member, type_args, span)?;
                self.call_member(cx, mk, args, expect, span)
            }
            _ => {
                let v = self.check_expr(cx, func, None)?;
                self.call_value(cx, v, args, span)
            }
        }
    }

    fn resolve_head_for_call(
        &mut self,
        cx: &mut BodyCx,
        name: &ast::Ident,
        type_args: &[ast::TypeExpr],
    ) -> Option<CallHead> {
        // Component/class methods keep their "method" nature so the call can
        // infer type arguments; everything else becomes a value.
        if cx.lookup(&name.name).is_none() {
            // Implicit this-method?
            if let Some(c) = cx.class {
                if cx.has_this
                    && self.find_field(c, &name.name).is_none()
                    && !cx.tscope.vars.contains_key(&name.name)
                {
                    if let Some(m) = self.module.class_method_by_name(c, &name.name) {
                        let explicit = if type_args.is_empty() {
                            None
                        } else {
                            Some(self.resolve_type_args_pub(type_args, &cx.tscope.clone())?)
                        };
                        let recv = {
                            let ty = cx.locals[0].ty;
                            IrExpr::new(Ir::Local(LocalId(0)), ty)
                        };
                        let class_args = self
                            .module
                            .class(c)
                            .type_params
                            .clone()
                            .into_iter()
                            .map(|v| self.module.store.var(v))
                            .collect();
                        return Some(CallHead::Member(MemberKind::ObjMethod {
                            recv,
                            method: m,
                            class_args,
                            explicit,
                        }));
                    }
                }
            }
            if !self.component_globals.contains_key(&name.name)
                && !cx.tscope.vars.contains_key(&name.name)
            {
                if let Some(&m) = self.component_methods.get(&name.name) {
                    let explicit = if type_args.is_empty() {
                        None
                    } else {
                        Some(self.resolve_type_args_pub(type_args, &cx.tscope.clone())?)
                    };
                    return Some(CallHead::Member(MemberKind::StaticMethod {
                        method: m,
                        class_args: Some(vec![]),
                        explicit,
                    }));
                }
            }
        }
        match self.resolve_head(cx, name, type_args, None)? {
            Head::Value(v) => Some(CallHead::Value(v)),
            Head::Type(_) | Head::ClassPartial(_) => {
                self.error(name.span, format!("type '{}' cannot be called", name.name));
                None
            }
            Head::System => {
                self.error(name.span, "'System' cannot be called");
                None
            }
        }
    }

    pub(crate) fn resolve_type_args_pub(
        &mut self,
        args: &[ast::TypeExpr],
        scope: &crate::resolve::TypeScope,
    ) -> Option<Vec<Type>> {
        let mut out = Vec::with_capacity(args.len());
        for a in args {
            out.push(self.resolve_type(a, scope)?);
        }
        Some(out)
    }

    fn call_member(
        &mut self,
        cx: &mut BodyCx,
        mk: MemberKind,
        args: &[ast::Expr],
        expect: Option<Type>,
        span: Span,
    ) -> Option<IrExpr> {
        match mk {
            MemberKind::ObjMethod { recv, method, class_args, explicit } => self.call_method(
                cx,
                method,
                CallForm::Instance { recv },
                Some(class_args),
                explicit,
                args,
                expect,
                span,
            ),
            MemberKind::StaticMethod { method, class_args, explicit } => self.call_method(
                cx,
                method,
                CallForm::Unbound,
                class_args,
                explicit,
                args,
                expect,
                span,
            ),
            MemberKind::Ctor { class, class_args } => {
                self.call_ctor(cx, class, class_args, args, expect, span)
            }
            MemberKind::ArrayNew { elem } => {
                if args.len() != 1 {
                    self.error(span, "Array.new takes exactly one length argument");
                    return None;
                }
                let int = self.module.store.int;
                let n = self.check_expr(cx, &args[0], Some(int))?;
                if !self.require_subtype(n.ty, int, args[0].span) {
                    return None;
                }
                let ty = self.module.store.array(elem);
                Some(IrExpr::new(Ir::ArrayNew(Box::new(n)), ty))
            }
            MemberKind::Op(op) => self.call_oper(cx, op, args, span),
            MemberKind::CastOrQuery { to, from, query } => {
                // Called form: the source type comes from the argument.
                if args.len() != 1 {
                    self.error(span, "casts and queries take exactly one argument");
                    return None;
                }
                let v = self.check_expr(cx, &args[0], None)?;
                let from = from.unwrap_or(v.ty);
                self.check_cast_legal_pub(from, to, span)?;
                let op = if query {
                    Oper::Query { from, to }
                } else {
                    Oper::Cast { from, to }
                };
                let ty = if query { self.module.store.bool_ } else { to };
                Some(IrExpr::new(Ir::Apply(op, vec![v]), ty))
            }
            MemberKind::Builtin(b) => {
                let (params, ret) = self.builtin_sig_pub(b);
                if args.len() != params.len() {
                    self.error(
                        span,
                        format!("intrinsic expects {} argument(s), found {}", params.len(), args.len()),
                    );
                    return None;
                }
                let mut irs = Vec::with_capacity(args.len());
                for (a, &p) in args.iter().zip(params.iter()) {
                    let v = self.check_expr(cx, a, Some(p))?;
                    if !self.require_subtype(v.ty, p, a.span) {
                        return None;
                    }
                    irs.push(v);
                }
                Some(IrExpr::new(Ir::CallBuiltin(b, irs), ret))
            }
            // Calling a field or array length that holds a function value.
            MemberKind::FieldAcc { .. } | MemberKind::ArrayLen { .. } => {
                let v = self.member_value(cx, mk, None, span)?;
                self.call_value(cx, v, args, span)
            }
        }
    }

    fn call_oper(
        &mut self,
        cx: &mut BodyCx,
        op: Oper,
        args: &[ast::Expr],
        span: Span,
    ) -> Option<IrExpr> {
        let fty = self.oper_type(op);
        let TypeKind::Function(p, r) = self.module.store.kind(fty).clone() else {
            unreachable!("operators have function type");
        };
        let (irs, pre) = self.check_args_against(cx, args, p, span)?;
        let call = IrExpr::new(Ir::Apply(op, irs), r);
        Some(self.wrap_pre(cx, pre, call))
    }

    pub(crate) fn check_cast_legal_pub(&mut self, from: Type, to: Type, span: Span) -> Option<()> {
        match vgl_types::cast_relation(&mut self.module.store, &self.module.hier, from, to) {
            vgl_types::CastRelation::Unrelated => {
                let f = self.show(from);
                let t = self.show(to);
                self.error(span, format!("cast/query between unrelated types {f} and {t}"));
                None
            }
            _ => Some(()),
        }
    }

    pub(crate) fn builtin_sig_pub(&mut self, b: vgl_ir::Builtin) -> (Vec<Type>, Type) {
        let s = &mut self.module.store;
        match b {
            vgl_ir::Builtin::Puts | vgl_ir::Builtin::Error => (vec![s.string], s.void),
            vgl_ir::Builtin::Puti => (vec![s.int], s.void),
            vgl_ir::Builtin::Putb => (vec![s.bool_], s.void),
            vgl_ir::Builtin::Putc => (vec![s.byte], s.void),
            vgl_ir::Builtin::Ln => (vec![], s.void),
            vgl_ir::Builtin::Ticks => (vec![], s.int),
        }
    }

    /// Checks written arguments against a single parameter type, applying the
    /// tuple/argument duality: n written args match a width-n tuple parameter.
    /// Returns the argument expressions in *parameter-list* form (one per
    /// tuple element when the width matches, etc.).
    fn check_args_against(
        &mut self,
        cx: &mut BodyCx,
        args: &[ast::Expr],
        param: Type,
        span: Span,
    ) -> Option<(Vec<IrExpr>, Option<IrExpr>)> {
        let ptys: Vec<Type> = match self.module.store.kind(param).clone() {
            TypeKind::Tuple(ts) => ts,
            TypeKind::Void => vec![],
            _ => vec![param],
        };
        if args.len() == ptys.len() {
            let mut out = Vec::with_capacity(args.len());
            for (a, &p) in args.iter().zip(ptys.iter()) {
                let v = self.check_expr(cx, a, Some(p))?;
                if !self.require_subtype(v.ty, p, a.span) {
                    return None;
                }
                out.push(v);
            }
            return Some((out, None));
        }
        if args.len() == 1 && ptys.len() != 1 {
            // One written argument that must *be* the whole tuple (p5).
            let v = self.check_expr(cx, &args[0], Some(param))?;
            if !self.require_subtype(v.ty, param, args[0].span) {
                return None;
            }
            return Some(self.spread_tuple(cx, v, &ptys));
        }
        self.error(
            span,
            format!("expected {} argument(s), found {}", ptys.len(), args.len()),
        );
        None
    }

    /// Splits a tuple-typed value into per-element expressions via a `Let`
    /// temp (evaluating the tuple exactly once). When the parameter list is
    /// empty (a `void` argument, listing (q8)) the value still must be
    /// evaluated for effect; it is returned as the `pre` expression and the
    /// caller wraps the call in a `Let` that discards it.
    pub(crate) fn spread_tuple(
        &mut self,
        cx: &mut BodyCx,
        v: IrExpr,
        ptys: &[Type],
    ) -> (Vec<IrExpr>, Option<IrExpr>) {
        if ptys.is_empty() {
            return (vec![], Some(v));
        }
        let tmp = cx.temp(v.ty);
        let mut out = Vec::with_capacity(ptys.len());
        for (i, &p) in ptys.iter().enumerate() {
            let read = IrExpr::new(
                Ir::TupleIndex(Box::new(IrExpr::new(Ir::Local(tmp), v.ty)), i as u32),
                p,
            );
            if i == 0 {
                // First element wraps the Let so the tuple is evaluated once.
                out.push(IrExpr::new(
                    Ir::Let { local: tmp, value: Box::new(v.clone()), body: Box::new(read) },
                    p,
                ));
            } else {
                out.push(read);
            }
        }
        (out, None)
    }

    /// Wraps `call` so that `pre` (a discarded argument value) is evaluated
    /// first.
    fn wrap_pre(&mut self, cx: &mut BodyCx, pre: Option<IrExpr>, call: IrExpr) -> IrExpr {
        match pre {
            None => call,
            Some(v) => {
                let tmp = cx.temp(v.ty);
                let ty = call.ty;
                IrExpr::new(
                    Ir::Let { local: tmp, value: Box::new(v), body: Box::new(call) },
                    ty,
                )
            }
        }
    }

    fn call_ctor(
        &mut self,
        cx: &mut BodyCx,
        class: ClassId,
        class_args: Option<Vec<Type>>,
        args: &[ast::Expr],
        _expect: Option<Type>,
        span: Span,
    ) -> Option<IrExpr> {
        if self.module.class(class).is_abstract {
            let name = self.module.class(class).name.clone();
            self.error(span, format!("class '{name}' has abstract methods and cannot be instantiated"));
            return None;
        }
        let ctor = self.module.class(class).ctor.expect("every class has a ctor");
        let class_params = self.module.class(class).type_params.clone();
        let m = self.module.method(ctor);
        let ptys: Vec<Type> = m.locals[1..m.param_count].iter().map(|l| l.ty).collect();

        let (final_args, pre, final_class_args) = match class_args {
            Some(ca) => {
                let subst: HashMap<_, _> =
                    class_params.iter().copied().zip(ca.iter().copied()).collect();
                let sub_ptys: Vec<Type> = ptys
                    .iter()
                    .map(|&t| self.module.store.substitute(t, &subst))
                    .collect();
                let (irs, pre) = self.check_args_list(cx, args, &sub_ptys, span)?;
                (irs, pre, ca)
            }
            None => {
                // Infer class args from the constructor arguments (d10').
                let (irs, pre, solved) =
                    self.infer_call(cx, &class_params, &ptys, args, None, None, span)?;
                (irs, pre, solved)
            }
        };
        let ty = self.module.store.class(class, final_class_args.clone());
        let call = IrExpr::new(
            Ir::New { class, type_args: final_class_args, args: final_args },
            ty,
        );
        Some(self.wrap_pre(cx, pre, call))
    }

    /// Checks written arguments against a method's *parameter list* (which,
    /// unlike a bare function type, distinguishes `(a: int, b: int)` from
    /// `(a: (int, int))`). Adapts between the written arity and the list:
    /// gathers n args into one tuple parameter, or spreads one tuple argument
    /// across k parameters.
    fn check_args_list(
        &mut self,
        cx: &mut BodyCx,
        args: &[ast::Expr],
        ptys: &[Type],
        span: Span,
    ) -> Option<(Vec<IrExpr>, Option<IrExpr>)> {
        let k = ptys.len();
        if args.len() == k {
            let mut out = Vec::with_capacity(k);
            for (a, &p) in args.iter().zip(ptys.iter()) {
                let v = self.check_expr(cx, a, Some(p))?;
                if !self.require_subtype(v.ty, p, a.span) {
                    return None;
                }
                out.push(v);
            }
            return Some((out, None));
        }
        if k == 1 {
            // Gather: the written arguments form the single (tuple or void)
            // parameter.
            let p = ptys[0];
            let elem_hints: Vec<Option<Type>> =
                match self.module.store.kind(p).clone() {
                    TypeKind::Tuple(ts) if ts.len() == args.len() => {
                        ts.into_iter().map(Some).collect()
                    }
                    TypeKind::Void if args.is_empty() => vec![],
                    _ => vec![None; args.len()],
                };
            let mut parts = Vec::with_capacity(args.len());
            let mut tys = Vec::with_capacity(args.len());
            for (a, hint) in args.iter().zip(elem_hints) {
                let v = self.check_expr(cx, a, hint)?;
                tys.push(v.ty);
                parts.push(v);
            }
            let whole_ty = self.module.store.tuple(tys);
            if !self.require_subtype(whole_ty, p, span) {
                return None;
            }
            let whole = if parts.is_empty() {
                IrExpr::new(Ir::Unit, whole_ty)
            } else if parts.len() == 1 {
                parts.pop().expect("one part")
            } else {
                IrExpr::new(Ir::Tuple(parts), whole_ty)
            };
            return Some((vec![whole], None));
        }
        if args.len() == 1 {
            // Spread: the single written argument provides all k parameters.
            let whole_ty = self.module.store.tuple(ptys.to_vec());
            let v = self.check_expr(cx, &args[0], Some(whole_ty))?;
            if !self.require_subtype(v.ty, whole_ty, args[0].span) {
                return None;
            }
            return Some(self.spread_tuple(cx, v, ptys));
        }
        self.error(
            span,
            format!("expected {} argument(s), found {}", k, args.len()),
        );
        None
    }

    /// Infers unknown type variables from call arguments, then checks them.
    /// Returns (args in parameter form, solutions in `unknown` order).
    #[allow(clippy::too_many_arguments)]
    fn infer_call(
        &mut self,
        cx: &mut BodyCx,
        unknown: &[TypeVarId],
        ptys: &[Type],
        args: &[ast::Expr],
        ret: Option<Type>,
        expect: Option<Type>,
        span: Span,
    ) -> Option<(Vec<IrExpr>, Option<IrExpr>, Vec<Type>)> {
        let mut ctx = InferCtx::new(unknown);
        // Shape-match the written arguments to the parameter list.
        enum Shape {
            Direct,
            Spread, // single written arg provides the whole parameter tuple
            Gather, // written args form the single tuple parameter
        }
        let shape = if args.len() == ptys.len() {
            Shape::Direct
        } else if ptys.len() == 1 {
            Shape::Gather
        } else if args.len() == 1 {
            Shape::Spread
        } else {
            self.error(
                span,
                format!("expected {} argument(s), found {}", ptys.len(), args.len()),
            );
            return None;
        };
        let mut irs: Vec<IrExpr> = Vec::new();
        match shape {
            Shape::Direct => {
                for (a, &p) in args.iter().zip(ptys.iter()) {
                    // Hint only when the parameter type is already concrete
                    // under the current partial solution.
                    let hinted = self.module.store.substitute(p, &ctx.bindings);
                    let hint = if self.module.store.is_polymorphic(hinted) {
                        None
                    } else {
                        Some(hinted)
                    };
                    let v = self.check_expr(cx, a, hint)?;
                    if !vgl_types::match_types(
                        &mut self.module.store,
                        &self.module.hier,
                        p,
                        v.ty,
                        &mut ctx,
                    ) {
                        let ps = self.show(p);
                        let vs = self.show(v.ty);
                        self.error(
                            a.span,
                            format!("argument type {vs} does not match parameter type {ps}"),
                        );
                        return None;
                    }
                    irs.push(v);
                }
            }
            Shape::Spread => {
                let whole = self.module.store.tuple(ptys.to_vec());
                let v = self.check_expr(cx, &args[0], None)?;
                if !vgl_types::match_types(
                    &mut self.module.store,
                    &self.module.hier,
                    whole,
                    v.ty,
                    &mut ctx,
                ) {
                    let ps = self.show(whole);
                    let vs = self.show(v.ty);
                    self.error(
                        args[0].span,
                        format!("argument type {vs} does not match parameter type {ps}"),
                    );
                    return None;
                }
                // Spreading happens below once types are final.
                irs.push(v);
            }
            Shape::Gather => {
                // Check each written argument (with elementwise hints when
                // the parameter is a known tuple), tuple them up, and match
                // the whole against the single parameter.
                let p = ptys[0];
                let hinted = self.module.store.substitute(p, &ctx.bindings);
                let elem_hints: Vec<Option<Type>> =
                    match self.module.store.kind(hinted).clone() {
                        TypeKind::Tuple(ts) if ts.len() == args.len() => ts
                            .into_iter()
                            .map(|t| {
                                if self.module.store.is_polymorphic(t) {
                                    None
                                } else {
                                    Some(t)
                                }
                            })
                            .collect(),
                        _ => vec![None; args.len()],
                    };
                let mut parts = Vec::with_capacity(args.len());
                let mut tys = Vec::with_capacity(args.len());
                for (a, hint) in args.iter().zip(elem_hints) {
                    let v = self.check_expr(cx, a, hint)?;
                    tys.push(v.ty);
                    parts.push(v);
                }
                let whole_ty = self.module.store.tuple(tys);
                if !vgl_types::match_types(
                    &mut self.module.store,
                    &self.module.hier,
                    p,
                    whole_ty,
                    &mut ctx,
                ) {
                    let ps = self.show(p);
                    let vs = self.show(whole_ty);
                    self.error(
                        span,
                        format!("argument type {vs} does not match parameter type {ps}"),
                    );
                    return None;
                }
                let whole = if parts.is_empty() {
                    IrExpr::new(Ir::Unit, whole_ty)
                } else if parts.len() == 1 {
                    parts.pop().expect("one part")
                } else {
                    IrExpr::new(Ir::Tuple(parts), whole_ty)
                };
                irs.push(whole);
            }
        }
        // Use the expected return type for anything still unknown.
        if let (Some(r), Some(e)) = (ret, expect) {
            if !ctx.is_complete() {
                let _ = vgl_types::match_types(
                    &mut self.module.store,
                    &self.module.hier,
                    r,
                    e,
                    &mut ctx,
                );
            }
        }
        if !ctx.is_complete() {
            self.error(
                span,
                "cannot infer type arguments for this call; supply them explicitly with <...>",
            );
            return None;
        }
        let solved: Vec<Type> = unknown
            .iter()
            .map(|v| ctx.get(*v).expect("complete"))
            .collect();
        // Final subtype checks under the full substitution.
        let subst: HashMap<_, _> = unknown.iter().copied().zip(solved.iter().copied()).collect();
        match shape {
            Shape::Direct => {
                for (i, &p) in ptys.iter().enumerate() {
                    let want = self.module.store.substitute(p, &subst);
                    let got = irs[i].ty;
                    if !self.require_subtype(got, want, args[i].span) {
                        return None;
                    }
                }
                Some((irs, None, solved))
            }
            Shape::Gather => {
                let want = self.module.store.substitute(ptys[0], &subst);
                let got = irs[0].ty;
                if !self.require_subtype(got, want, span) {
                    return None;
                }
                Some((irs, None, solved))
            }
            Shape::Spread => {
                let sub_ptys: Vec<Type> = ptys
                    .iter()
                    .map(|&p| self.module.store.substitute(p, &subst))
                    .collect();
                let whole = self.module.store.tuple(sub_ptys.clone());
                let v = irs.pop().expect("one arg");
                if !self.require_subtype(v.ty, whole, args[0].span) {
                    return None;
                }
                let (spread, pre) = self.spread_tuple(cx, v, &sub_ptys);
                Some((spread, pre, solved))
            }
        }
    }

    /// The central method-call checker.
    #[allow(clippy::too_many_arguments)]
    fn call_method(
        &mut self,
        cx: &mut BodyCx,
        method: MethodId,
        form: CallForm,
        class_args: Option<Vec<Type>>,
        explicit: Option<Vec<Type>>,
        args: &[ast::Expr],
        expect: Option<Type>,
        span: Span,
    ) -> Option<IrExpr> {
        let m = self.module.method(method);
        if m.kind == MethodKind::Ctor {
            self.error(span, "constructors are called through 'new'");
            return None;
        }
        let class_params: Vec<TypeVarId> = match m.owner {
            Some(c) => self.module.class(c).type_params.clone(),
            None => vec![],
        };
        let own_params = m.type_params.clone();
        if let Some(e) = &explicit {
            if e.len() != own_params.len() {
                self.error(
                    span,
                    format!(
                        "method '{}' expects {} type argument(s), found {}",
                        self.module.method(method).name,
                        own_params.len(),
                        e.len()
                    ),
                );
                return None;
            }
        }
        // Parameter types seen by the written arguments.
        let m = self.module.method(method);
        let skip_recv = matches!(form, CallForm::Instance { .. });
        let start = if m.owner.is_some() && skip_recv { 1 } else { 0 };
        let ptys: Vec<Type> = m.locals[start..m.param_count].iter().map(|l| l.ty).collect();
        let ret = m.ret;
        let is_private = m.is_private;
        let is_virtual = m.owner.is_some() && !is_private && m.vtable_index.is_some();

        // Known substitution.
        let mut known: HashMap<TypeVarId, Type> = HashMap::new();
        let mut unknown: Vec<TypeVarId> = Vec::new();
        match &class_args {
            Some(ca) => known.extend(class_params.iter().copied().zip(ca.iter().copied())),
            None => unknown.extend(class_params.iter().copied()),
        }
        match &explicit {
            Some(e) => known.extend(own_params.iter().copied().zip(e.iter().copied())),
            None => unknown.extend(own_params.iter().copied()),
        }
        let pre_ptys: Vec<Type> = ptys
            .iter()
            .map(|&t| self.module.store.substitute(t, &known))
            .collect();
        let pre_ret = self.module.store.substitute(ret, &known);

        let (final_args, pre, solved) = if unknown.is_empty() {
            let (irs, pre) = self.check_args_list(cx, args, &pre_ptys, span)?;
            (irs, pre, vec![])
        } else {
            self.infer_call(cx, &unknown, &pre_ptys, args, Some(pre_ret), expect, span)?
        };

        // Assemble the full type-argument vector in declaration order.
        let solved_map: HashMap<TypeVarId, Type> =
            unknown.iter().copied().zip(solved.iter().copied()).collect();
        let mut targs: Vec<Type> = Vec::new();
        for v in class_params.iter().chain(own_params.iter()) {
            let t = known
                .get(v)
                .copied()
                .or_else(|| solved_map.get(v).copied())
                .expect("all vars are known or solved");
            targs.push(t);
        }
        let full_subst: HashMap<TypeVarId, Type> = self
            .module
            .all_type_params(method)
            .into_iter()
            .zip(targs.iter().copied())
            .collect();
        let result_ty = self.module.store.substitute(ret, &full_subst);

        let call = match form {
            CallForm::Instance { recv } => {
                if is_virtual {
                    IrExpr::new(
                        Ir::CallVirtual {
                            method,
                            type_args: targs,
                            recv: Box::new(recv),
                            args: final_args,
                        },
                        result_ty,
                    )
                } else {
                    let mut all = vec![recv];
                    all.extend(final_args);
                    IrExpr::new(
                        Ir::CallStatic { method, type_args: targs, args: all },
                        result_ty,
                    )
                }
            }
            CallForm::Unbound => {
                // `A.m(a, ...)`: receiver is the first written argument; the
                // call still dispatches virtually on it.
                if self.module.method(method).owner.is_some() {
                    let mut it = final_args.into_iter();
                    let recv = it.next().expect("receiver argument present");
                    let rest: Vec<IrExpr> = it.collect();
                    if is_virtual {
                        IrExpr::new(
                            Ir::CallVirtual {
                                method,
                                type_args: targs,
                                recv: Box::new(recv),
                                args: rest,
                            },
                            result_ty,
                        )
                    } else {
                        let mut all = vec![recv];
                        all.extend(rest);
                        IrExpr::new(
                            Ir::CallStatic { method, type_args: targs, args: all },
                            result_ty,
                        )
                    }
                } else {
                    IrExpr::new(
                        Ir::CallStatic { method, type_args: targs, args: final_args },
                        result_ty,
                    )
                }
            }
        };
        Some(self.wrap_pre(cx, pre, call))
    }

    /// Calls a function-typed value.
    fn call_value(
        &mut self,
        cx: &mut BodyCx,
        f: IrExpr,
        args: &[ast::Expr],
        span: Span,
    ) -> Option<IrExpr> {
        if self.module.store.is_error(f.ty) {
            // The callee already failed; check the arguments for their own
            // errors but report nothing new.
            for a in args {
                let _ = self.check_expr(cx, a, None);
            }
            return Some(IrExpr::new(Ir::Unit, f.ty));
        }
        let TypeKind::Function(p, r) = self.module.store.kind(f.ty).clone() else {
            let ts = self.show(f.ty);
            self.error(span, format!("cannot call a value of non-function type {ts}"));
            return None;
        };
        let (irs, pre) = self.check_args_against(cx, args, p, span)?;
        let call = IrExpr::new(Ir::CallClosure { func: Box::new(f), args: irs }, r);
        Some(self.wrap_pre(cx, pre, call))
    }
}

enum CallForm {
    /// `a.m(...)` — receiver known separately.
    Instance { recv: IrExpr },
    /// `A.m(...)` or component `f(...)` — receiver (if any) among the args.
    Unbound,
}

enum CallHead {
    Member(MemberKind),
    Value(IrExpr),
}
