//! Statement and body checking, plus orchestration of all body checks
//! (global initializers, inferred field types, constructors, methods).

use crate::analyzer::Analyzer;
use crate::decls::{BodySource, PendingBody};
use crate::expr::BodyCx;
use crate::resolve::TypeScope;
use std::collections::HashMap;
use vgl_ir::{
    Body, Expr as IrExpr, ExprKind as Ir, FieldRef, LocalId, MethodId, Stmt as IrStmt,
};
use vgl_syntax::ast::{self, Decl, Member, StmtKind};
use vgl_types::{ClassId, Type};

impl Analyzer<'_> {
    /// Phase 5: all bodies.
    pub(crate) fn check_bodies(&mut self, program: &ast::Program) {
        self.infer_deferred_field_types(program);
        self.check_global_inits(program);
        for pending in self.pending.clone() {
            self.check_pending(program, pending);
        }
    }

    /// Fields declared without a type get it from their initializer, checked
    /// in a context with only the class's type parameters in scope.
    fn infer_deferred_field_types(&mut self, program: &ast::Program) {
        for cix in 0..self.module.classes.len() {
            let cid = ClassId(cix as u32);
            let dix = self.class_decl_index[cix];
            let Decl::Class(c) = &program.decls[dix] else { continue };
            let header_count = self.header_param_count[cix];
            let mut own_ix = header_count;
            for m in &c.members {
                let Member::Field(f) = m else { continue };
                if f.ty.is_none() {
                    if let Some(init) = &f.init {
                        let tscope = self.class_scope(cid);
                        let mut cx = BodyCx {
                            class: Some(cid),
                            tscope,
                            locals: Vec::new(),
                            scopes: vec![HashMap::new()],
                            loop_depth: 0,
                            ret: self.module.store.void,
                            has_this: false,
                        };
                        if let Some(v) = self.check_expr(&mut cx, init, None) {
                            if v.ty == self.module.store.null {
                                self.error(
                                    f.name.span,
                                    "cannot infer a field type from 'null'; annotate the field",
                                );
                            } else {
                                self.module.classes[cix].fields[own_ix].ty = v.ty;
                            }
                        }
                    }
                }
                own_ix += 1;
            }
            // Re-sync any constructor field-init parameter types that
            // referenced a deferred field type.
            if let Some(ctor) = self.module.class(cid).ctor {
                if let Some(info) = self.ctor_infos.get(&ctor).cloned() {
                    for (pix, slot) in info.field_init_params.iter().enumerate() {
                        if let Some(own) = slot {
                            let fty = self.module.class(cid).fields[*own].ty;
                            self.module.methods[ctor.index()].locals[pix + 1].ty = fty;
                        }
                    }
                }
            }
        }
    }

    fn check_global_inits(&mut self, program: &ast::Program) {
        for (g, dix) in self.global_sources.clone() {
            let Decl::Var(v) = &program.decls[dix] else { continue };
            let Some(init) = &v.init else {
                if !self.module.global(g).mutable {
                    self.error(v.name.span, "immutable component variables need an initializer");
                }
                self.global_ready[g.index()] = true;
                continue;
            };
            let declared = if self.global_ready[g.index()] {
                Some(self.module.global(g).ty)
            } else {
                None
            };
            let mut cx = BodyCx {
                class: None,
                tscope: TypeScope::new(),
                locals: Vec::new(),
                scopes: vec![HashMap::new()],
                loop_depth: 0,
                ret: self.module.store.void,
                has_this: false,
            };
            let Some(val) = self.check_expr(&mut cx, init, declared) else {
                self.global_ready[g.index()] = true; // avoid cascades
                continue;
            };
            match declared {
                Some(want) => {
                    self.require_subtype(val.ty, want, init.span);
                }
                None => {
                    if val.ty == self.module.store.null {
                        self.error(
                            v.name.span,
                            "cannot infer a variable type from 'null'; annotate the variable",
                        );
                    } else {
                        self.module.globals[g.index()].ty = val.ty;
                    }
                }
            }
            self.module.globals[g.index()].init = Some(val);
            self.module.globals[g.index()].locals = cx.locals;
            self.global_ready[g.index()] = true;
        }
    }

    fn check_pending(&mut self, program: &ast::Program, pending: PendingBody) {
        match pending.source {
            BodySource::Method { decl, member } => {
                let md = match member {
                    None => match &program.decls[decl] {
                        Decl::Method(m) => m,
                        _ => return,
                    },
                    Some(mix) => match &program.decls[decl] {
                        Decl::Class(c) => match &c.members[mix] {
                            Member::Method(m) => m,
                            _ => return,
                        },
                        _ => return,
                    },
                };
                self.check_method_body(pending.method, md);
            }
            BodySource::Ctor { decl, member } => {
                let Decl::Class(c) = &program.decls[decl] else { return };
                let ct = member.and_then(|mix| match &c.members[mix] {
                    Member::Ctor(ct) => Some(ct),
                    _ => None,
                });
                self.check_ctor_body(pending.method, c, ct);
            }
        }
    }

    fn body_cx(&mut self, method: MethodId) -> BodyCx {
        let m = self.module.method(method);
        let class = m.owner;
        let locals = m.locals.clone();
        let ret = m.ret;
        let mut tscope = match class {
            Some(c) => self.class_scope(c),
            None => TypeScope::new(),
        };
        for (name, v) in &self.method_tparams[method.index()] {
            tscope.vars.insert(name.clone(), *v);
        }
        let mut scope = HashMap::new();
        for (i, l) in locals.iter().enumerate() {
            scope.insert(l.name.clone(), LocalId(i as u32));
        }
        BodyCx {
            class,
            tscope,
            locals,
            scopes: vec![scope],
            loop_depth: 0,
            ret,
            has_this: class.is_some(),
        }
    }

    fn check_method_body(&mut self, method: MethodId, md: &ast::MethodDecl) {
        let Some(block) = &md.body else { return };
        let mut cx = self.body_cx(method);
        let stmts = self.check_block(&mut cx, block);
        // Fall-through check.
        let ret = cx.ret;
        if ret != self.module.store.void && !terminates(&stmts) {
            self.error(
                md.name.span,
                format!("method '{}' may fall off the end without returning a value", md.name),
            );
        }
        self.module.methods[method.index()].locals = cx.locals;
        self.module.methods[method.index()].body = Some(Body { stmts });
    }

    fn check_ctor_body(
        &mut self,
        method: MethodId,
        class_ast: &ast::ClassDecl,
        ct: Option<&ast::CtorDecl>,
    ) {
        let mut cx = self.body_cx(method);
        let cid = cx.class.expect("constructors are owned");
        let mut stmts: Vec<IrStmt> = Vec::new();

        // 1. Superclass constructor call.
        let parent = self.module.class(cid).parent;
        if let Some(p) = parent {
            let pctor = self.module.class(p).ctor.expect("every class has a ctor");
            let pm = self.module.method(pctor);
            let want: Vec<Type> = pm.locals[1..pm.param_count].iter().map(|l| l.ty).collect();
            // Substitute the parent's type params with parent_args.
            let pparams = self.module.class(p).type_params.clone();
            let pargs = self.module.class(cid).parent_args.clone();
            let subst: HashMap<_, _> = pparams.into_iter().zip(pargs.iter().copied()).collect();
            let want: Vec<Type> = want
                .into_iter()
                .map(|t| self.module.store.substitute(t, &subst))
                .collect();
            let supplied = ct.and_then(|c| c.super_args.as_ref());
            let mut args: Vec<IrExpr> = vec![self.this_ir(&cx)];
            match supplied {
                Some(sargs) => {
                    if sargs.len() != want.len() {
                        self.error(
                            ct.expect("explicit ctor").span,
                            format!(
                                "super constructor expects {} argument(s), found {}",
                                want.len(),
                                sargs.len()
                            ),
                        );
                        return;
                    }
                    for (a, &w) in sargs.iter().zip(want.iter()) {
                        let Some(v) = self.check_expr(&mut cx, a, Some(w)) else { return };
                        if !self.require_subtype(v.ty, w, a.span) {
                            return;
                        }
                        args.push(v);
                    }
                }
                None => {
                    if !want.is_empty() {
                        self.error(
                            class_ast.name.span,
                            format!(
                                "class '{}' must call the super constructor with {} argument(s)",
                                class_ast.name, want.len()
                            ),
                        );
                        return;
                    }
                }
            }
            let void = self.module.store.void;
            stmts.push(IrStmt::Expr(IrExpr::new(
                Ir::CallStatic { method: pctor, type_args: pargs, args },
                void,
            )));
        }

        // 2. Field initializers, in declaration order.
        let header_count = self.header_param_count[cid.index()];
        let mut own_ix = header_count;
        for m in &class_ast.members {
            let Member::Field(f) = m else { continue };
            if let Some(init) = &f.init {
                let field = self.module.class(cid).fields[own_ix].clone();
                let want = field.ty;
                let Some(v) = self.check_expr(&mut cx, init, Some(want)) else { return };
                if !self.require_subtype(v.ty, want, init.span) {
                    return;
                }
                let this = self.this_ir(&cx);
                stmts.push(IrStmt::Expr(IrExpr::new(
                    Ir::FieldSet(
                        Box::new(this),
                        FieldRef { class: cid, slot: field.slot },
                        Box::new(v),
                    ),
                    want,
                )));
            }
            own_ix += 1;
        }

        // 3. Field-init parameters.
        let info = self.ctor_infos.get(&method).cloned().unwrap_or_default();
        for (pix, slot) in info.field_init_params.iter().enumerate() {
            let Some(own) = slot else { continue };
            let field = self.module.class(cid).fields[*own].clone();
            let this = self.this_ir(&cx);
            let pty = cx.locals[pix + 1].ty;
            stmts.push(IrStmt::Expr(IrExpr::new(
                Ir::FieldSet(
                    Box::new(this),
                    FieldRef { class: cid, slot: field.slot },
                    Box::new(IrExpr::new(Ir::Local(LocalId(pix as u32 + 1)), pty)),
                ),
                pty,
            )));
        }

        // 4. Explicit body.
        if let Some(ct) = ct {
            let body = self.check_block(&mut cx, &ct.body);
            stmts.extend(body);
        }

        self.module.methods[method.index()].locals = cx.locals;
        self.module.methods[method.index()].body = Some(Body { stmts });
    }

    fn this_ir(&mut self, cx: &BodyCx) -> IrExpr {
        let ty = cx.locals[0].ty;
        IrExpr::new(Ir::Local(LocalId(0)), ty)
    }

    pub(crate) fn check_block(&mut self, cx: &mut BodyCx, block: &ast::Block) -> Vec<IrStmt> {
        cx.scopes.push(HashMap::new());
        let mut out = Vec::new();
        for s in &block.stmts {
            if let Some(ir) = self.check_stmt(cx, s) {
                out.push(ir);
            }
        }
        cx.scopes.pop();
        out
    }

    fn check_stmt_as_block(&mut self, cx: &mut BodyCx, s: &ast::Stmt) -> Vec<IrStmt> {
        match &s.kind {
            StmtKind::Block(b) => self.check_block(cx, b),
            _ => {
                cx.scopes.push(HashMap::new());
                let out = self.check_stmt(cx, s).into_iter().collect();
                cx.scopes.pop();
                out
            }
        }
    }

    fn check_stmt(&mut self, cx: &mut BodyCx, s: &ast::Stmt) -> Option<IrStmt> {
        match &s.kind {
            StmtKind::Block(b) => Some(IrStmt::Block(self.check_block(cx, b))),
            StmtKind::Empty => None,
            StmtKind::Expr(e) => {
                let v = self.check_expr(cx, e, None)?;
                Some(IrStmt::Expr(v))
            }
            StmtKind::Local { mutable, binders } => {
                let mut decls = Vec::new();
                for b in binders {
                    let declared = match &b.ty {
                        Some(te) => {
                            let scope = cx.tscope.clone();
                            Some(self.resolve_type(te, &scope)?)
                        }
                        None => None,
                    };
                    // A failed initializer already produced a diagnostic;
                    // bind the variable anyway (with the poisoned error
                    // type when nothing better is known) so later uses of
                    // the name don't cascade into "unknown identifier".
                    let init = match &b.init {
                        Some(e) => Some(match self.check_expr(cx, e, declared) {
                            Some(v) => v,
                            None => IrExpr::new(Ir::Unit, self.module.store.error),
                        }),
                        None => None,
                    };
                    let ty = match (declared, &init) {
                        (Some(t), Some(v)) => {
                            self.require_subtype(v.ty, t, b.name.span);
                            t
                        }
                        (Some(t), None) => t,
                        (None, Some(v)) => {
                            if v.ty == self.module.store.null {
                                self.error(
                                    b.name.span,
                                    "cannot infer a variable type from 'null'; annotate it",
                                );
                                self.module.store.error
                            } else {
                                v.ty
                            }
                        }
                        (None, None) => {
                            self.error(b.name.span, format!("variable '{}' needs a type or initializer", b.name));
                            self.module.store.error
                        }
                    };
                    if !*mutable && init.is_none() {
                        self.error(b.name.span, "immutable variables need an initializer");
                    }
                    let l = cx.declare(&b.name.name, ty, *mutable);
                    decls.push(IrStmt::Local(l, init));
                }
                if decls.len() == 1 {
                    decls.pop()
                } else {
                    Some(IrStmt::Block(decls))
                }
            }
            StmtKind::If(c, t, e) => {
                let bool_ = self.module.store.bool_;
                let cond = self.check_expr(cx, c, Some(bool_))?;
                self.require_subtype(cond.ty, bool_, c.span);
                let then = self.check_stmt_as_block(cx, t);
                let els = match e {
                    Some(e) => self.check_stmt_as_block(cx, e),
                    None => Vec::new(),
                };
                Some(IrStmt::If(cond, then, els))
            }
            StmtKind::While(c, b) => {
                let bool_ = self.module.store.bool_;
                let cond = self.check_expr(cx, c, Some(bool_))?;
                self.require_subtype(cond.ty, bool_, c.span);
                cx.loop_depth += 1;
                let body = self.check_stmt_as_block(cx, b);
                cx.loop_depth -= 1;
                Some(IrStmt::While(cond, body))
            }
            StmtKind::For { decl, init, cond, update, body } => {
                // Lower to: { decls/init; while (cond) { body; update; } }
                cx.scopes.push(HashMap::new());
                let mut out: Vec<IrStmt> = Vec::new();
                if let Some(binders) = decl {
                    for b in binders {
                        let declared = match &b.ty {
                            Some(te) => {
                                let scope = cx.tscope.clone();
                                Some(self.resolve_type(te, &scope)?)
                            }
                            None => None,
                        };
                        let init = match &b.init {
                            Some(e) => Some(match self.check_expr(cx, e, declared) {
                                Some(v) => v,
                                None => IrExpr::new(Ir::Unit, self.module.store.error),
                            }),
                            None => None,
                        };
                        let ty = match (declared, &init) {
                            (Some(t), _) => t,
                            (None, Some(v)) => v.ty,
                            (None, None) => {
                                self.error(b.name.span, "for-loop variable needs an initializer");
                                self.module.store.error
                            }
                        };
                        let l = cx.declare(&b.name.name, ty, true);
                        out.push(IrStmt::Local(l, init));
                    }
                } else if let Some(e) = init {
                    let v = self.check_expr(cx, e, None)?;
                    out.push(IrStmt::Expr(v));
                }
                let bool_ = self.module.store.bool_;
                let cond_ir = match cond {
                    Some(c) => {
                        let v = self.check_expr(cx, c, Some(bool_))?;
                        self.require_subtype(v.ty, bool_, c.span);
                        v
                    }
                    None => IrExpr::new(Ir::Bool(true), bool_),
                };
                cx.loop_depth += 1;
                let mut loop_body = self.check_stmt_as_block(cx, body);
                cx.loop_depth -= 1;
                if let Some(u) = update {
                    let v = self.check_expr(cx, u, None)?;
                    loop_body.push(IrStmt::Expr(v));
                }
                out.push(IrStmt::While(cond_ir, loop_body));
                cx.scopes.pop();
                Some(IrStmt::Block(out))
            }
            StmtKind::Return(e) => {
                let ret = cx.ret;
                match e {
                    Some(e) => {
                        let v = self.check_expr(cx, e, Some(ret))?;
                        self.require_subtype(v.ty, ret, e.span);
                        Some(IrStmt::Return(Some(v)))
                    }
                    None => {
                        if ret != self.module.store.void {
                            self.error(
                                s.span,
                                format!("this method must return a value of type {}", self.show(ret)),
                            );
                        }
                        Some(IrStmt::Return(None))
                    }
                }
            }
            StmtKind::Break => {
                if cx.loop_depth == 0 {
                    self.error(s.span, "'break' outside a loop");
                }
                Some(IrStmt::Break)
            }
            StmtKind::Continue => {
                if cx.loop_depth == 0 {
                    self.error(s.span, "'continue' outside a loop");
                }
                Some(IrStmt::Continue)
            }
        }
    }
}

/// Conservative termination analysis: true if the statement list cannot fall
/// through (every path returns, or loops forever).
pub(crate) fn terminates(stmts: &[IrStmt]) -> bool {
    stmts.iter().any(stmt_terminates)
}

fn stmt_terminates(s: &IrStmt) -> bool {
    match s {
        IrStmt::Return(_) => true,
        IrStmt::Block(b) => terminates(b),
        IrStmt::If(_, t, e) => terminates(t) && terminates(e),
        IrStmt::While(c, body) => {
            // `while (true)` with no break anywhere inside never falls through.
            matches!(c.kind, Ir::Bool(true)) && !contains_break(body)
        }
        _ => false,
    }
}

fn contains_break(stmts: &[IrStmt]) -> bool {
    stmts.iter().any(|s| match s {
        IrStmt::Break => true,
        IrStmt::Block(b) => contains_break(b),
        IrStmt::If(_, t, e) => contains_break(t) || contains_break(e),
        // A nested while consumes its own breaks.
        IrStmt::While(..) => false,
        _ => false,
    })
}
