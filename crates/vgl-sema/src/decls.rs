//! Declaration collection: classes, fields, method signatures, vtables.

use crate::analyzer::Analyzer;
use crate::resolve::TypeScope;
use std::collections::{HashMap, HashSet};
use vgl_ir::{Class, Field, Global, GlobalId, Local, Method, MethodId, MethodKind};
use vgl_syntax::ast::{self, Decl, Member};
use vgl_types::{ClassId, ClassInfo, Type, TypeVarId};

/// Where the AST body of a pending method lives.
#[derive(Clone, Copy, Debug)]
pub(crate) enum BodySource {
    /// A method: `decl` indexes `program.decls`; `member` indexes the class's
    /// members (or `None` for a component method).
    Method {
        /// Index into `program.decls`.
        decl: usize,
        /// Index into the class's member list.
        member: Option<usize>,
    },
    /// A constructor; `member` is `None` for the implicit constructor.
    Ctor {
        /// Index into `program.decls`.
        decl: usize,
        /// Index into the class's member list.
        member: Option<usize>,
    },
}

/// A method whose body still needs checking.
#[derive(Clone, Copy, Debug)]
pub(crate) struct PendingBody {
    pub(crate) method: MethodId,
    pub(crate) source: BodySource,
}

/// Constructor-specific info: which params are field-init params.
#[derive(Clone, Debug, Default)]
pub(crate) struct CtorInfo {
    /// For each declared parameter (excluding `this`): the *own-field index*
    /// it initializes, or `None` for an ordinary typed parameter.
    pub(crate) field_init_params: Vec<Option<usize>>,
}

impl Analyzer<'_> {
    /// Phase 1: register class names and type parameters.
    pub(crate) fn collect_classes(&mut self, program: &ast::Program) {
        for (i, d) in program.decls.iter().enumerate() {
            let Decl::Class(c) = d else { continue };
            if matches!(
                c.name.name.as_str(),
                "void" | "bool" | "byte" | "int" | "string" | "Array" | "System"
            ) {
                self.error(c.name.span, format!("cannot redefine built-in name '{}'", c.name.name));
                continue;
            }
            if let Some(&first) = self.class_names.get(&c.name.name) {
                self.error(c.name.span, format!("duplicate class '{}'", c.name.name));
                if let Decl::Class(fc) = &program.decls[self.class_decl_index[first.index()]] {
                    self.diags.note_last(Some(fc.name.span), "first defined here");
                }
                continue;
            }
            let mut tparams = Vec::new();
            let mut tmap = HashMap::new();
            for tp in &c.type_params {
                let v = self.fresh_typevar(&tp.name);
                if tmap.insert(tp.name.clone(), v).is_some() {
                    self.error(tp.span, format!("duplicate type parameter '{}'", tp.name));
                }
                tparams.push(v);
            }
            let id = self.module.hier.add_class(ClassInfo {
                name: c.name.name.clone(),
                type_params: tparams.clone(),
                parent: None,
            });
            debug_assert_eq!(id.index(), self.module.classes.len());
            self.module.classes.push(Class {
                name: c.name.name.clone(),
                type_params: tparams,
                parent: None,
                parent_args: Vec::new(),
                fields: Vec::new(),
                first_field_slot: 0,
                methods: Vec::new(),
                ctor: None,
                vtable: Vec::new(),
                is_abstract: false,
            });
            self.class_names.insert(c.name.name.clone(), id);
            self.class_tparams.push(tmap);
            self.class_decl_index.push(i);
            self.header_param_count.push(c.header_params.len());
        }
    }

    pub(crate) fn class_scope(&self, c: ClassId) -> TypeScope {
        TypeScope { vars: self.class_tparams[c.index()].clone() }
    }

    /// Phase 2: parents, inheritance cycles, fields, slots.
    pub(crate) fn resolve_class_structure(&mut self, program: &ast::Program) {
        // Parents first.
        for (cix, &dix) in self.class_decl_index.clone().iter().enumerate() {
            let Decl::Class(c) = &program.decls[dix] else { continue };
            let cid = ClassId(cix as u32);
            let Some(parent) = &c.parent else { continue };
            let Some(&pid) = self.class_names.get(&parent.name.name) else {
                self.error(parent.name.span, format!("unknown parent class '{}'", parent.name.name));
                continue;
            };
            let scope = self.class_scope(cid);
            let want = self.module.class(pid).type_params.len();
            if parent.type_args.len() != want {
                self.error(
                    parent.name.span,
                    format!(
                        "parent class '{}' expects {want} type argument(s), found {}",
                        parent.name.name,
                        parent.type_args.len()
                    ),
                );
                continue;
            }
            let mut args = Vec::new();
            let mut ok = true;
            for a in &parent.type_args {
                match self.resolve_type(a, &scope) {
                    Some(t) => args.push(t),
                    None => ok = false,
                }
            }
            if !ok {
                continue;
            }
            self.module.classes[cix].parent = Some(pid);
            self.module.classes[cix].parent_args = args.clone();
            self.module.hier.info_mut(cid).parent = Some((pid, args));
        }
        // Cycle detection.
        for cix in 0..self.module.classes.len() {
            let mut seen = HashSet::new();
            let mut cur = ClassId(cix as u32);
            loop {
                if !seen.insert(cur) {
                    let name = self.module.class(ClassId(cix as u32)).name.clone();
                    self.error(
                        vgl_syntax::span::Span::point(0),
                        format!("inheritance cycle involving class '{name}'"),
                    );
                    // Break the cycle so later phases terminate.
                    self.module.classes[cur.index()].parent = None;
                    self.module.hier.info_mut(cur).parent = None;
                    break;
                }
                match self.module.class(cur).parent {
                    Some(p) => cur = p,
                    None => break,
                }
            }
        }
        // Fields, in topological (parent-first) order.
        let order = self.topo_order();
        for cid in order {
            let dix = self.class_decl_index[cid.index()];
            let Decl::Class(c) = &program.decls[dix] else { continue };
            let scope = self.class_scope(cid);
            let first_slot = match self.module.class(cid).parent {
                Some(p) => self.module.object_size(p),
                None => 0,
            };
            self.module.classes[cid.index()].first_field_slot = first_slot;
            let mut own_names: HashSet<String> = HashSet::new();
            let mut fields = Vec::new();
            // Header params become immutable fields (compact §3.1 form).
            for p in &c.header_params {
                let ty = self.resolve_type(&p.ty, &scope).unwrap_or(self.module.store.void);
                if !own_names.insert(p.name.name.clone()) {
                    self.error(p.name.span, format!("duplicate field '{}'", p.name.name));
                }
                fields.push(Field {
                    name: p.name.name.clone(),
                    mutable: false,
                    ty,
                    slot: first_slot + fields.len(),
                    init: None,
                });
            }
            for m in &c.members {
                let Member::Field(f) = m else { continue };
                if !own_names.insert(f.name.name.clone()) {
                    self.error(f.name.span, format!("duplicate field '{}'", f.name.name));
                    continue;
                }
                if self.inherited_field(cid, &f.name.name).is_some() {
                    self.error(
                        f.name.span,
                        format!("field '{}' shadows an inherited field", f.name.name),
                    );
                }
                let ty = match &f.ty {
                    Some(te) => self.resolve_type(te, &scope).unwrap_or(self.module.store.void),
                    None if f.init.is_some() => {
                        // Deferred: inferred from the initializer before body
                        // checking. Use void as a placeholder; `pending_field`
                        // records it.
                        self.module.store.void
                    }
                    None => {
                        self.error(
                            f.name.span,
                            format!("field '{}' needs a type or an initializer", f.name.name),
                        );
                        self.module.store.void
                    }
                };
                fields.push(Field {
                    name: f.name.name.clone(),
                    mutable: f.mutable,
                    ty,
                    slot: first_slot + fields.len(),
                    init: None, // filled during body checking
                });
            }
            self.module.classes[cid.index()].fields = fields;
        }
    }

    /// Classes ordered parents-before-children.
    pub(crate) fn topo_order(&self) -> Vec<ClassId> {
        let n = self.module.classes.len();
        let mut order: Vec<ClassId> = (0..n).map(|i| ClassId(i as u32)).collect();
        order.sort_by_key(|&c| self.module.hier.depth(c));
        order
    }

    /// Looks up a field by name in `c`'s ancestors (not `c` itself).
    pub(crate) fn inherited_field(&self, c: ClassId, name: &str) -> Option<(ClassId, usize)> {
        let mut cur = self.module.class(c).parent;
        while let Some(p) = cur {
            if let Some(ix) = self.module.class(p).fields.iter().position(|f| f.name == name) {
                return Some((p, ix));
            }
            cur = self.module.class(p).parent;
        }
        None
    }

    /// Looks up a field by name in `c` or its ancestors.
    pub(crate) fn find_field(&self, c: ClassId, name: &str) -> Option<(ClassId, usize)> {
        if let Some(ix) = self.module.class(c).fields.iter().position(|f| f.name == name) {
            return Some((c, ix));
        }
        self.inherited_field(c, name)
    }

    /// Phase 3: method and constructor signatures, component globals.
    pub(crate) fn collect_signatures(&mut self, program: &ast::Program) {
        // Class members first (so component code can call them).
        for (cix, &dix) in self.class_decl_index.clone().iter().enumerate() {
            let Decl::Class(c) = &program.decls[dix] else { continue };
            let cid = ClassId(cix as u32);
            self.collect_class_members(cid, dix, c);
        }
        // Component declarations in source order.
        for (dix, d) in program.decls.iter().enumerate() {
            match d {
                Decl::Method(m) => self.collect_component_method(dix, m),
                Decl::Var(v) => self.collect_component_var(dix, v),
                Decl::Class(_) => {}
            }
        }
    }

    fn collect_class_members(&mut self, cid: ClassId, dix: usize, c: &ast::ClassDecl) {
        let mut member_names: HashSet<String> = HashSet::new();
        for f in &self.module.class(cid).fields {
            member_names.insert(f.name.clone());
        }
        let mut saw_ctor = false;
        for (mix, m) in c.members.iter().enumerate() {
            match m {
                Member::Field(_) => {}
                Member::Method(md) => {
                    if !member_names.insert(md.name.name.clone()) {
                        // Virgil "chooses to disallow overloading altogether,
                        // requiring every method in the same class to have a
                        // unique name" (§3.3).
                        self.error(
                            md.name.span,
                            format!(
                                "duplicate member '{}': Virgil does not allow overloading",
                                md.name.name
                            ),
                        );
                        continue;
                    }
                    self.declare_method(Some(cid), dix, Some(mix), md);
                }
                Member::Ctor(ct) => {
                    if saw_ctor {
                        self.error(ct.span, "a class may declare at most one constructor");
                        continue;
                    }
                    saw_ctor = true;
                    if !c.header_params.is_empty() {
                        self.error(
                            ct.span,
                            "a class with header parameters cannot also declare a constructor",
                        );
                        continue;
                    }
                    self.declare_ctor(cid, dix, Some(mix), Some(ct));
                }
            }
        }
        if !saw_ctor {
            // Implicit constructor: header params as field-init params, or a
            // zero-argument default.
            self.declare_ctor(cid, dix, None, None);
        }
    }

    fn method_scope(&mut self, owner: Option<ClassId>, tparams: &[vgl_syntax::ast::Ident]) -> (TypeScope, Vec<TypeVarId>, HashMap<String, TypeVarId>) {
        let mut scope = match owner {
            Some(c) => self.class_scope(c),
            None => TypeScope::new(),
        };
        let mut ids = Vec::new();
        let mut map = HashMap::new();
        for tp in tparams {
            let v = self.fresh_typevar(&tp.name);
            if scope.vars.insert(tp.name.clone(), v).is_some() {
                self.error(tp.span, format!("type parameter '{}' shadows another", tp.name));
            }
            if map.insert(tp.name.clone(), v).is_some() {
                self.error(tp.span, format!("duplicate type parameter '{}'", tp.name));
            }
            ids.push(v);
        }
        (scope, ids, map)
    }

    /// The `this` type for methods of class `c`: `C<T0, ..., Tn>` over the
    /// class's own type parameters.
    pub(crate) fn this_type(&mut self, c: ClassId) -> Type {
        let vars: Vec<Type> = self
            .module
            .class(c)
            .type_params
            .clone()
            .into_iter()
            .map(|v| self.module.store.var(v))
            .collect();
        self.module.store.class(c, vars)
    }

    fn declare_method(
        &mut self,
        owner: Option<ClassId>,
        dix: usize,
        mix: Option<usize>,
        md: &ast::MethodDecl,
    ) {
        let (scope, tparam_ids, tparam_map) = self.method_scope(owner, &md.type_params);
        let mut locals = Vec::new();
        if let Some(c) = owner {
            let this_ty = self.this_type(c);
            locals.push(Local { name: "this".into(), ty: this_ty, mutable: false });
        }
        let mut seen = HashSet::new();
        for p in &md.params {
            if !seen.insert(p.name.name.clone()) {
                self.error(p.name.span, format!("duplicate parameter '{}'", p.name.name));
            }
            let ty = self.resolve_type(&p.ty, &scope).unwrap_or(self.module.store.void);
            locals.push(Local { name: p.name.name.clone(), ty, mutable: false });
        }
        let ret = match &md.ret {
            Some(te) => self.resolve_type(te, &scope).unwrap_or(self.module.store.void),
            None => self.module.store.void,
        };
        let kind = if md.body.is_some() { MethodKind::Normal } else { MethodKind::Abstract };
        if kind == MethodKind::Abstract && owner.is_none() {
            self.error(md.name.span, "component methods must have a body");
        }
        if kind == MethodKind::Abstract && md.is_private {
            self.error(md.name.span, "a private method cannot be abstract");
        }
        let id = MethodId(self.module.methods.len() as u32);
        self.module.methods.push(Method {
            name: md.name.name.clone(),
            owner,
            is_private: md.is_private,
            kind,
            type_params: tparam_ids,
            param_count: locals.len(),
            locals,
            ret,
            body: None,
            vtable_index: None,
        });
        self.method_tparams.push(tparam_map);
        debug_assert_eq!(self.method_tparams.len(), self.module.methods.len());
        match owner {
            Some(c) => self.module.classes[c.index()].methods.push(id),
            None => {
                if self.component_methods.insert(md.name.name.clone(), id).is_some()
                    || self.component_globals.contains_key(&md.name.name)
                {
                    self.error(md.name.span, format!("duplicate component declaration '{}'", md.name.name));
                }
            }
        }
        if md.body.is_some() {
            self.pending.push(PendingBody {
                method: id,
                source: BodySource::Method { decl: dix, member: mix },
            });
        }
    }

    fn declare_ctor(
        &mut self,
        cid: ClassId,
        dix: usize,
        mix: Option<usize>,
        ct: Option<&ast::CtorDecl>,
    ) {
        let scope = self.class_scope(cid);
        let this_ty = self.this_type(cid);
        let mut locals = vec![Local { name: "this".into(), ty: this_ty, mutable: false }];
        let mut info = CtorInfo::default();
        match ct {
            Some(ct) => {
                let mut seen = HashSet::new();
                for p in &ct.params {
                    if !seen.insert(p.name.name.clone()) {
                        self.error(p.name.span, format!("duplicate parameter '{}'", p.name.name));
                    }
                    match &p.ty {
                        Some(te) => {
                            let ty = self.resolve_type(te, &scope).unwrap_or(self.module.store.void);
                            locals.push(Local { name: p.name.name.clone(), ty, mutable: false });
                            info.field_init_params.push(None);
                        }
                        None => {
                            // Field-init parameter: takes the type of the
                            // same-named own field (paper listing (a4)).
                            let class = self.module.class(cid);
                            match class.fields.iter().position(|f| f.name == p.name.name) {
                                Some(ix) => {
                                    let ty = class.fields[ix].ty;
                                    locals.push(Local {
                                        name: p.name.name.clone(),
                                        ty,
                                        mutable: false,
                                    });
                                    info.field_init_params.push(Some(ix));
                                }
                                None => {
                                    self.error(
                                        p.name.span,
                                        format!(
                                            "constructor parameter '{}' has no type and no \
                                             matching field to initialize",
                                            p.name.name
                                        ),
                                    );
                                    locals.push(Local {
                                        name: p.name.name.clone(),
                                        ty: self.module.store.void,
                                        mutable: false,
                                    });
                                    info.field_init_params.push(None);
                                }
                            }
                        }
                    }
                }
            }
            None => {
                // Implicit ctor: one field-init param per header param (the
                // first `k` own fields are exactly the header params).
                let k = self.header_param_count[cid.index()];
                for ix in 0..k {
                    let f = &self.module.class(cid).fields[ix];
                    let (name, ty) = (f.name.clone(), f.ty);
                    locals.push(Local { name, ty, mutable: false });
                    info.field_init_params.push(Some(ix));
                }
            }
        }
        let id = MethodId(self.module.methods.len() as u32);
        self.module.methods.push(Method {
            name: "new".into(),
            owner: Some(cid),
            is_private: false,
            kind: MethodKind::Ctor,
            type_params: Vec::new(),
            param_count: locals.len(),
            locals,
            ret: self.module.store.void,
            body: None,
            vtable_index: None,
        });
        self.method_tparams.push(HashMap::new());
        self.module.classes[cid.index()].ctor = Some(id);
        self.ctor_infos.insert(id, info);
        self.pending.push(PendingBody {
            method: id,
            source: BodySource::Ctor { decl: dix, member: mix },
        });
    }

    fn collect_component_method(&mut self, dix: usize, md: &ast::MethodDecl) {
        if self.class_names.contains_key(&md.name.name) {
            self.error(md.name.span, format!("'{}' is already a class name", md.name.name));
            return;
        }
        self.declare_method(None, dix, None, md);
    }

    fn collect_component_var(&mut self, dix: usize, v: &ast::FieldDecl) {
        if self.component_globals.contains_key(&v.name.name)
            || self.component_methods.contains_key(&v.name.name)
            || self.class_names.contains_key(&v.name.name)
        {
            self.error(v.name.span, format!("duplicate component declaration '{}'", v.name.name));
            return;
        }
        let scope = TypeScope::new();
        let ty = match &v.ty {
            Some(te) => self.resolve_type(te, &scope).unwrap_or(self.module.store.void),
            None if v.init.is_some() => self.module.store.void, // inferred later
            None => {
                self.error(v.name.span, format!("variable '{}' needs a type or an initializer", v.name.name));
                self.module.store.void
            }
        };
        let id = GlobalId(self.module.globals.len() as u32);
        self.module.globals.push(Global {
            name: v.name.name.clone(),
            mutable: v.mutable,
            ty,
            init: None,
            locals: Vec::new(),
        });
        self.global_ready.push(v.ty.is_some());
        self.component_globals.insert(v.name.name.clone(), id);
        self.global_sources.push((id, dix));
    }

    /// Phase 4: virtual dispatch tables and override checks.
    pub(crate) fn build_vtables(&mut self) {
        for cid in self.topo_order() {
            let parent_vt = match self.module.class(cid).parent {
                Some(p) => self.module.class(p).vtable.clone(),
                None => Vec::new(),
            };
            let mut vt = parent_vt;
            for mid in self.module.class(cid).methods.clone() {
                if self.module.method(mid).is_private {
                    continue;
                }
                let name = self.module.method(mid).name.clone();
                // Find an overridden method in an ancestor.
                let overridden = self.find_virtual_in_ancestors(cid, &name);
                match overridden {
                    Some(parent_mid) => {
                        self.check_override(cid, mid, parent_mid);
                        let slot = self
                            .module
                            .method(parent_mid)
                            .vtable_index
                            .expect("virtual parent method has a slot");
                        self.module.methods[mid.index()].vtable_index = Some(slot);
                        vt[slot] = mid;
                    }
                    None => {
                        let slot = vt.len();
                        self.module.methods[mid.index()].vtable_index = Some(slot);
                        vt.push(mid);
                    }
                }
            }
            let is_abstract = vt
                .iter()
                .any(|&m| self.module.method(m).kind == MethodKind::Abstract);
            let class = &mut self.module.classes[cid.index()];
            class.vtable = vt;
            class.is_abstract = is_abstract;
        }
    }

    fn find_virtual_in_ancestors(&self, c: ClassId, name: &str) -> Option<MethodId> {
        let mut cur = self.module.class(c).parent;
        while let Some(p) = cur {
            for &m in &self.module.class(p).methods {
                let method = self.module.method(m);
                if method.name == name && !method.is_private {
                    return Some(m);
                }
            }
            cur = self.module.class(p).parent;
        }
        None
    }

    /// Overriding requires the same method *type* once the parent's type
    /// arguments are substituted — note that `(int, int)` parameters and a
    /// single `(a: (int, int))` tuple parameter are the *same type* (§4.1,
    /// listings p10–p17), so that override is legal.
    fn check_override(&mut self, cid: ClassId, child: MethodId, parent: MethodId) {
        // Build substitution: parent class's type params -> the args this
        // class (transitively) supplies.
        let parent_owner = self.module.method(parent).owner.expect("parent method is owned");
        let mut subst: HashMap<TypeVarId, Type> = HashMap::new();
        {
            // Walk from cid up to parent_owner accumulating substitutions.
            let mut cur = cid;
            while cur != parent_owner {
                let class = self.module.class(cur).clone();
                let Some(p) = class.parent else { break };
                let pparams = self.module.class(p).type_params.clone();
                let mut next: HashMap<TypeVarId, Type> = HashMap::new();
                for (v, &a) in pparams.iter().zip(class.parent_args.iter()) {
                    let substituted = self.module.store.substitute(a, &subst);
                    next.insert(*v, substituted);
                }
                // Note: `subst` maps ancestors' vars; merge.
                subst.extend(next);
                cur = p;
            }
        }
        // Alpha-rename the child's own type params to the parent's.
        let child_tp = self.module.method(child).type_params.clone();
        let parent_tp = self.module.method(parent).type_params.clone();
        if child_tp.len() != parent_tp.len() {
            let name = self.module.method(child).name.clone();
            self.error(
                vgl_syntax::span::Span::point(0),
                format!("override of '{name}' changes the number of type parameters"),
            );
            return;
        }
        let mut alpha: HashMap<TypeVarId, Type> = HashMap::new();
        for (c, p) in child_tp.iter().zip(parent_tp.iter()) {
            let pv = self.module.store.var(*p);
            alpha.insert(*c, pv);
        }
        let child_sig = {
            let m = self.module.method(child).clone();
            let params: Vec<Type> = m.locals[1..m.param_count]
                .iter()
                .map(|l| {
                    self.module.store.substitute(l.ty, &alpha)
                })
                .collect();
            let p = self.module.store.tuple(params);
            let r = self.module.store.substitute(m.ret, &alpha);
            self.module.store.function(p, r)
        };
        let parent_sig = {
            let m = self.module.method(parent).clone();
            let params: Vec<Type> = m.locals[1..m.param_count]
                .iter()
                .map(|l| self.module.store.substitute(l.ty, &subst))
                .collect();
            let p = self.module.store.tuple(params);
            let r = self.module.store.substitute(m.ret, &subst);
            self.module.store.function(p, r)
        };
        if child_sig != parent_sig {
            let name = self.module.method(child).name.clone();
            let cs = self.show(child_sig);
            let ps = self.show(parent_sig);
            self.error(
                vgl_syntax::span::Span::point(0),
                format!("override of '{name}' changes its type: {cs} vs inherited {ps}"),
            );
        }
    }
}
