//! The served-compilation column of the determinism matrix: a daemon that
//! reuses cached per-function artifacts must produce **byte-identical**
//! bytecode to a cold one-shot `vglc` compile of the same source — across
//! edit histories, backend job counts, and concurrent sessions.
//!
//! "Byte-identical" is literal: the full disassembly of the fused program
//! is compared as a string. Everything the VM executes is in that text, so
//! equality here is equality of compiled output, not just of run results.

use std::sync::Arc;

use vgl::incremental::IncrementalCompiler;
use vgl::serve::{with_daemon, Client, Request, ServeConfig};
use vgl::{Compiler, Options};
use vgl_obs::json::Json;
use vgl_vm::disasm;

/// A small edit-model program: a battery of classes and workers that never
/// change, plus one `hot` function the edit stamp rewrites — the same
/// shape the serving bench uses, sized for debug-build test time.
fn edited_program(edit: u64) -> String {
    let mut src = String::from(
        "class Gauge { def get(x: int) -> int { return x; } }\n\
         class Wide extends Gauge { def get(x: int) -> int { return x + 1; } }\n",
    );
    for f in 0..3 {
        src.push_str(&format!("def work{f}(n: int) -> int {{\n    var acc = n;\n"));
        src.push_str("    var b: Gauge = Wide.new();\n");
        for s in 0..24 {
            let k = (f * 31 + s * 7) % 97 + 2;
            match s % 4 {
                0 => src.push_str(&format!(
                    "    var t{s} = (acc + {k}, acc * 2); acc = t{s}.0 + t{s}.1;\n"
                )),
                1 => src.push_str(&format!("    acc = acc + b.get(acc % 64) + {k};\n")),
                2 => src.push_str(&format!(
                    "    if (acc % {k} == 0) acc = acc + {k}; else acc = acc - 1;\n"
                )),
                _ => src.push_str(&format!("    acc = acc ^ (acc / {k} + {k});\n")),
            }
        }
        src.push_str("    return acc;\n}\n");
    }
    let (a, b) = (edit % 97 + 1, edit % 8191);
    src.push_str(&format!("def hot(x: int) -> int {{ return (x * {a} + {b}) % 8191; }}\n"));
    src.push_str(
        "def main() -> int {\n    var acc = 0;\n    acc = work0(3) + work1(5) + work2(7);\n",
    );
    src.push_str(&format!("    return hot(acc % 1000) + {};\n}}\n", edit % 13));
    src
}

fn serving_options() -> Options {
    Options { fuse: true, jobs: 1, ..Options::default() }
}

/// Disassembles a cold one-shot compile — the reference output.
fn cold_disasm(options: &Options, src: &str) -> String {
    let c = Compiler::with_options(*options).compile(src).expect("cold compile");
    disasm(&c.program)
}

#[test]
fn warm_output_is_byte_identical_to_cold_across_edits() {
    let options = serving_options();
    let inc = IncrementalCompiler::new(Compiler::with_options(options));
    // Seed the store, then replay an edit history: every warm compile
    // (which splices cached post-optimize bodies and reuses lowered code
    // for every unchanged function) must equal a cold compile byte for
    // byte. Edit 3 repeats an earlier fingerprint on purpose.
    inc.compile(&edited_program(0)).expect("seed");
    for edit in [1u64, 2, 99, 1] {
        let src = edited_program(edit);
        let warm = inc.compile(&src).expect("warm compile");
        assert_eq!(
            disasm(&warm.program),
            cold_disasm(&options, &src),
            "edit {edit}: warm disassembly diverged from cold"
        );
    }
    let stats = inc.stats();
    assert!(stats.funcs.hits > 0, "the warm path must actually engage: {stats:?}");
}

#[test]
fn jobs_do_not_change_warm_output() {
    // The backend job count must never leak into compiled output — not in
    // a one-shot compile, and not through the cached warm path either.
    let reference = {
        let options = serving_options();
        cold_disasm(&options, &edited_program(5))
    };
    for jobs in [1usize, 8] {
        let options = Options { jobs, ..serving_options() };
        let inc = IncrementalCompiler::new(Compiler::with_options(options));
        inc.compile(&edited_program(4)).expect("seed");
        let warm = inc.compile(&edited_program(5)).expect("warm compile");
        assert_eq!(
            disasm(&warm.program),
            reference,
            "jobs={jobs}: warm disassembly diverged from the jobs=1 cold reference"
        );
        assert_eq!(cold_disasm(&options, &edited_program(5)), reference, "jobs={jobs} cold");
    }
}

#[test]
fn concurrent_warm_compiles_are_deterministic() {
    // Eight sessions compile overlapping edit histories against one shared
    // store (the daemon's exact concurrency shape, minus the socket).
    // Racing compiles publish into the store first-writer-wins; whichever
    // artifact a session observes, output must equal the cold reference.
    let options = serving_options();
    let inc = Arc::new(IncrementalCompiler::new(Compiler::with_options(options)));
    inc.compile(&edited_program(0)).expect("seed");
    let edits: Vec<u64> = vec![1, 2, 3, 4];
    let references: Vec<String> =
        edits.iter().map(|&e| cold_disasm(&options, &edited_program(e))).collect();
    std::thread::scope(|s| {
        for session in 0..8 {
            let inc = Arc::clone(&inc);
            let edits = &edits;
            let references = &references;
            s.spawn(move || {
                // Sessions walk the history in different orders so cache
                // publication races actually interleave.
                for i in 0..edits.len() {
                    let at = (i + session) % edits.len();
                    let warm =
                        inc.compile(&edited_program(edits[at])).expect("warm compile");
                    assert_eq!(
                        disasm(&warm.program),
                        references[at],
                        "session {session}, edit {}: diverged",
                        edits[at]
                    );
                }
            });
        }
    });
}

#[test]
fn fuzz_programs_warm_equal_cold() {
    // A sweep of generated programs through one shared store: every warm
    // recompile (second submission of the same source arrives via the
    // artifact cache; a fresh store compile of a *mutated* neighbor goes
    // through the function store) matches its cold compile.
    use vgl_fuzz::gen::{emit, gen_program, GenConfig};
    let options = serving_options();
    let inc = IncrementalCompiler::new(Compiler::with_options(options));
    let cfg = GenConfig::default();
    let mut checked = 0;
    for seed in 0..40u64 {
        let src = emit(&gen_program(seed, &cfg));
        let Ok(cold) = Compiler::with_options(options).compile(&src) else {
            continue; // generator emitted a diagnostic-bearing program
        };
        let warm = inc.compile(&src).expect("warm compiles what cold compiles");
        assert_eq!(
            disasm(&warm.program),
            disasm(&cold.program),
            "seed {seed}: warm disassembly diverged"
        );
        checked += 1;
    }
    assert!(checked >= 20, "enough fuzz programs compiled: {checked}");
}

#[test]
fn served_run_equals_one_shot_over_the_wire() {
    // End to end through the socket: the daemon's `run` of an edit history
    // reports the same result, output, and code size as one-shot compiles,
    // at jobs 1 and 8.
    for jobs in [1usize, 8] {
        let options = Options { jobs, ..serving_options() };
        let config = ServeConfig { options, ..ServeConfig::default() };
        with_daemon(config, |path| {
            let mut client = Client::connect(path).expect("connects");
            for edit in [0u64, 6, 7, 6] {
                let src = edited_program(edit);
                let cold = Compiler::with_options(options)
                    .compile(&src)
                    .expect("cold compile");
                let want = match cold.execute().result {
                    Ok(v) => v,
                    Err(t) => panic!("reference run trapped: {t}"),
                };
                let resp = client
                    .request(&Request::Run { session: "det".into(), source: src })
                    .expect("daemon responds");
                assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "edit {edit}: {resp}");
                assert_eq!(
                    resp.get("result").and_then(Json::as_str),
                    Some(want.as_str()),
                    "jobs={jobs}, edit {edit}: served result diverged"
                );
                assert_eq!(
                    resp.get("code_size").and_then(Json::as_u64),
                    Some(cold.code_size() as u64),
                    "jobs={jobs}, edit {edit}: served code size diverged"
                );
            }
        });
    }
}
