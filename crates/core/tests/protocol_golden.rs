//! Golden-frame tests for the `vgld` wire protocol, end to end: raw bytes
//! are written to a live daemon's socket (no [`vgl::serve::Client`]
//! convenience layer in the loop) and the exact response frames are pinned.
//! Every byte sequence here travels through the real framing code —
//! `read_frame` on the daemon's connection reader, the request decoder,
//! and `write_frame` on the way back.
//!
//! The corpus covers the four frame classes the serving contract names:
//! valid frames, oversized-length frames, frames split across many short
//! writes, and garbage payloads. Error responses are fully deterministic,
//! so they are compared against exact expected JSON; success responses pin
//! every stable field and the full key set (only `compile_us` and
//! `code_size` carry build-dependent numbers).

use std::io::Write;
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Duration;

use vgl::proto::{read_frame, write_frame, Request, MAX_FRAME};
use vgl::serve::{with_daemon, ServeConfig};
use vgl_obs::json::Json;

const PROGRAM: &str = "def main() -> int { return 40 + 2; }";

/// A length-prefixed frame around arbitrary payload bytes (which need not
/// be valid UTF-8 or JSON — that is the point).
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(4 + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    buf.extend_from_slice(payload);
    buf
}

/// Connects, writes `bytes` in one shot, and reads a single response frame.
fn roundtrip_raw(path: &Path, bytes: &[u8]) -> Json {
    let stream = UnixStream::connect(path).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout set");
    (&stream).write_all(bytes).expect("writes");
    read_frame(&mut &stream).expect("response reads").expect("one response frame")
}

/// The `{"ok":false,"error":…}` object `proto::error_response` renders —
/// the exact shape every protocol-level failure must come back as.
fn error_json(message: &str) -> Json {
    let mut o = Json::object();
    o.set("ok", Json::Bool(false));
    o.set("error", Json::from(message));
    o
}

#[test]
fn golden_valid_run_frame() {
    with_daemon(ServeConfig::default(), |path| {
        let payload = format!(
            r#"{{"cmd":"run","session":"golden","source":{}}}"#,
            Json::from(PROGRAM).render()
        );
        let resp = roundtrip_raw(path, &frame(payload.as_bytes()));
        // Every stable field, exactly.
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(resp.get("compiled"), Some(&Json::Bool(true)));
        assert_eq!(resp.get("result").and_then(Json::as_str), Some("42"));
        assert_eq!(resp.get("output").and_then(Json::as_str), Some(""));
        assert_eq!(resp.get("methods").and_then(Json::as_u64), Some(1));
        let warm = resp.get("warm").expect("warm block");
        assert_eq!(warm.get("artifact_hit"), Some(&Json::Bool(false)));
        assert_eq!(warm.get("methods_spliced").and_then(Json::as_u64), Some(0));
        // The full key set is part of the contract: clients match on it.
        let Json::Obj(entries) = &resp else { panic!("response is an object") };
        let keys: Vec<&str> = entries.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            keys,
            ["ok", "compiled", "code_size", "methods", "compile_us", "warm", "result", "output"],
            "response key set and order are pinned"
        );
    });
}

#[test]
fn golden_valid_check_frame_with_default_session() {
    with_daemon(ServeConfig::default(), |path| {
        // No `session` field: the decoder must default it, not error.
        let payload = r#"{"cmd":"check","source":"def main() -> int { return nope; }"}"#;
        let resp = roundtrip_raw(path, &frame(payload.as_bytes()));
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
        let errors = resp
            .get("report")
            .and_then(|r| r.get("errors"))
            .and_then(Json::as_u64)
            .expect("error count");
        assert!(errors >= 1, "unknown identifier is a diagnostic: {resp}");
    });
}

#[test]
fn golden_oversized_length_prefix() {
    with_daemon(ServeConfig::default(), |path| {
        // A 4 GiB length prefix: rejected before any allocation, with the
        // bound spelled out. The daemon closes only this connection.
        let mut bytes = u32::MAX.to_be_bytes().to_vec();
        bytes.extend_from_slice(b"junk");
        let resp = roundtrip_raw(path, &bytes);
        assert_eq!(
            resp,
            error_json(&format!(
                "frame of 4294967295 bytes exceeds the {MAX_FRAME}-byte limit"
            ))
        );
        // One byte over the bound is also rejected…
        let resp = roundtrip_raw(path, &(((MAX_FRAME + 1) as u32).to_be_bytes())[..]);
        assert_eq!(
            resp,
            error_json(&format!(
                "frame of {} bytes exceeds the {MAX_FRAME}-byte limit",
                MAX_FRAME + 1
            ))
        );
        // …and the daemon still serves the next client.
        let resp = roundtrip_raw(
            path,
            &frame(
                Request::Run { session: "after".into(), source: PROGRAM.into() }
                    .to_json()
                    .render()
                    .as_bytes(),
            ),
        );
        assert_eq!(resp.get("result").and_then(Json::as_str), Some("42"));
    });
}

#[test]
fn golden_garbage_payloads() {
    with_daemon(ServeConfig::default(), |path| {
        // Valid frame, invalid UTF-8 payload.
        let resp = roundtrip_raw(path, &frame(&[0xff, 0xfe, 0x80]));
        assert_eq!(resp, error_json("frame payload is not utf-8"));

        // Valid frame, valid UTF-8, not JSON.
        let resp = roundtrip_raw(path, &frame(b"?not json"));
        let err = resp.get("error").and_then(Json::as_str).expect("error text");
        assert_eq!(resp.get("ok"), Some(&Json::Bool(false)));
        assert!(
            err.starts_with("frame payload is not json: json error at byte 0"),
            "parse failures name the byte offset: {err}"
        );

        // Valid JSON, invalid request — one exact message per defect.
        let cases = [
            (r#"{"cmd":"warp"}"#, "invalid request: unknown cmd 'warp'"),
            (r#"{"session":"s"}"#, "invalid request: missing field 'cmd'"),
            (r#"{"cmd":"compile"}"#, "invalid request: missing field 'source'"),
            (
                r#"{"cmd":"run","session":7,"source":"x"}"#,
                "invalid request: field 'session' must be a string",
            ),
            (r#"{"cmd":"run","source":[]}"#, "invalid request: field 'source' must be a string"),
        ];
        // Invalid *requests* (unlike invalid frames) keep the connection:
        // run the whole table plus a healthy request on one stream.
        let stream = UnixStream::connect(path).expect("connects");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("timeout set");
        for (payload, want) in cases {
            (&stream).write_all(&frame(payload.as_bytes())).expect("writes");
            let resp =
                read_frame(&mut &stream).expect("response reads").expect("response frame");
            assert_eq!(resp, error_json(want), "payload: {payload}");
        }
        write_frame(
            &mut &stream,
            &Request::Run { session: "still-alive".into(), source: PROGRAM.into() }.to_json(),
        )
        .expect("writes");
        let resp = read_frame(&mut &stream).expect("reads").expect("frame");
        assert_eq!(resp.get("result").and_then(Json::as_str), Some("42"));
    });
}

#[test]
fn golden_frame_split_across_many_writes() {
    with_daemon(ServeConfig::default(), |path| {
        let req = Request::Run { session: "dribble".into(), source: PROGRAM.into() };
        let mut bytes = Vec::new();
        write_frame(&mut bytes, &req.to_json()).expect("encodes");
        let stream = UnixStream::connect(path).expect("connects");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("timeout set");
        // One byte per write, flushed every time — the worst legal client.
        // The length prefix itself is split too.
        for b in &bytes {
            (&stream).write_all(std::slice::from_ref(b)).expect("writes");
            (&stream).flush().expect("flushes");
        }
        let resp = read_frame(&mut &stream).expect("reads").expect("frame");
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(resp.get("result").and_then(Json::as_str), Some("42"));
    });
}

#[test]
fn golden_two_frames_one_write() {
    with_daemon(ServeConfig::default(), |path| {
        // Two complete frames coalesced into a single write: the framing
        // layer must answer each in order on the same connection.
        let first = Request::Run {
            session: "pipelined".into(),
            source: "def main() -> int { return 7; }".into(),
        };
        let second = Request::Run {
            session: "pipelined".into(),
            source: "def main() -> int { return 11; }".into(),
        };
        let mut bytes = Vec::new();
        write_frame(&mut bytes, &first.to_json()).expect("encodes");
        write_frame(&mut bytes, &second.to_json()).expect("encodes");
        let stream = UnixStream::connect(path).expect("connects");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("timeout set");
        (&stream).write_all(&bytes).expect("writes");
        let r1 = read_frame(&mut &stream).expect("reads").expect("first frame");
        let r2 = read_frame(&mut &stream).expect("reads").expect("second frame");
        assert_eq!(r1.get("result").and_then(Json::as_str), Some("7"));
        assert_eq!(r2.get("result").and_then(Json::as_str), Some("11"));
    });
}

#[test]
fn golden_truncated_frame_on_close() {
    with_daemon(ServeConfig::default(), |path| {
        // A client that promises 64 bytes, sends 10, and half-closes: the
        // daemon reports the truncation and drops only that connection.
        let stream = UnixStream::connect(path).expect("connects");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("timeout set");
        (&stream).write_all(&64u32.to_be_bytes()).expect("writes");
        (&stream).write_all(b"0123456789").expect("writes");
        stream.shutdown(std::net::Shutdown::Write).expect("half-close");
        let resp = read_frame(&mut &stream).expect("reads").expect("error frame");
        assert_eq!(resp, error_json("connection closed mid-frame"));
        assert!(
            matches!(read_frame(&mut &stream), Ok(None)),
            "connection is closed after the error response"
        );
        // The daemon survives.
        let resp = roundtrip_raw(
            path,
            &frame(
                Request::Run { session: "after".into(), source: PROGRAM.into() }
                    .to_json()
                    .render()
                    .as_bytes(),
            ),
        );
        assert_eq!(resp.get("result").and_then(Json::as_str), Some("42"));
    });
}

#[test]
fn golden_largest_legal_frame_is_served() {
    with_daemon(ServeConfig::default(), |path| {
        // A legal frame just under the bound: a comment pads the source to
        // ~1 MiB (full 16 MiB would dominate test time for no extra
        // coverage of the bound check, which `golden_oversized_length_prefix`
        // pins from the other side).
        let padding = "x".repeat(1 << 20);
        let source = format!("// {padding}\n{PROGRAM}");
        let req = Request::Run { session: "big".into(), source };
        let mut bytes = Vec::new();
        write_frame(&mut bytes, &req.to_json()).expect("encodes");
        let resp = roundtrip_raw(path, &bytes);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(resp.get("result").and_then(Json::as_str), Some("42"));
    });
}
