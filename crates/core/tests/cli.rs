//! End-to-end tests of the `vglc` binary: every subcommand over the checked-in
//! examples, exit codes, engine agreement under `both`, and the shape of
//! `stats --json`.

use std::path::PathBuf;
use std::process::{Command, Output};

fn vglc(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_vglc"))
        .args(args)
        .output()
        .expect("vglc runs")
}

fn examples() -> Vec<PathBuf> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/v");
    let mut v: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("read {dir:?}: {e}"))
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "v"))
        .collect();
    v.sort();
    assert!(!v.is_empty(), "no examples found in {dir:?}");
    v
}

#[test]
fn run_interp_and_both_agree_on_every_example() {
    for path in examples() {
        let p = path.to_str().expect("utf8 path");
        let run = vglc(&["run", p]);
        let interp = vglc(&["interp", p]);
        let both = vglc(&["both", p]);
        assert!(run.status.success(), "{p}: run failed: {run:?}");
        assert!(interp.status.success(), "{p}: interp failed: {interp:?}");
        assert!(both.status.success(), "{p}: engines disagree: {both:?}");
        assert_eq!(run.stdout, interp.stdout, "{p}: stdout differs across engines");
        assert_eq!(run.stdout, both.stdout, "{p}: both prints the agreed output");
    }
}

#[test]
fn stats_json_is_valid_and_complete_for_every_example() {
    for path in examples() {
        let p = path.to_str().expect("utf8 path");
        let out = vglc(&["stats", "--json", p]);
        assert!(out.status.success(), "{p}: stats --json failed: {out:?}");
        let text = String::from_utf8(out.stdout).expect("utf8");
        let json = vgl_obs::json::parse(text.trim())
            .unwrap_or_else(|e| panic!("{p}: invalid JSON: {e:?}\n{text}"));
        for key in ["phases", "pipeline", "bytecode_instrs", "interp", "vm", "runtime"] {
            assert!(json.get(key).is_some(), "{p}: missing key {key:?}");
        }
        // The unified runtime object carries both engines' counters.
        let rt = json.get("runtime").unwrap();
        assert!(
            rt.get("vm").and_then(|v| v.get("ic")).is_some(),
            "{p}: runtime.vm.ic missing"
        );
        assert!(
            rt.get("interp").and_then(|v| v.get("tuple_boxes")).is_some(),
            "{p}: runtime.interp.tuple_boxes missing"
        );
        // Both engines embedded in one report must agree on the result.
        let interp = json.get("interp").and_then(|o| o.get("result"));
        let vm = json.get("vm").and_then(|o| o.get("result"));
        assert!(interp.is_some() && vm.is_some(), "{p}: missing results");
        assert_eq!(
            interp.and_then(vgl_obs::json::Json::as_str),
            vm.and_then(vgl_obs::json::Json::as_str),
            "{p}: engines disagree in the report"
        );
        // The VM profile rides along with opcode counts.
        let profile = json.get("vm").and_then(|o| o.get("profile"));
        assert!(profile.is_some(), "{p}: missing vm profile");
    }
}

#[test]
fn profile_prints_phase_and_opcode_tables() {
    let path = examples().remove(0);
    let out = vglc(&["profile", path.to_str().expect("utf8 path")]);
    assert!(out.status.success(), "profile failed: {out:?}");
    let text = String::from_utf8(out.stdout).expect("utf8");
    assert!(text.contains("== compile phases =="), "missing phase table:\n{text}");
    assert!(text.contains("== vm profile =="), "missing vm table:\n{text}");
    assert!(text.contains("== hotness =="), "missing hotness table:\n{text}");
    for phase in ["lex", "parse", "sema", "mono", "normalize", "optimize", "lower"] {
        assert!(text.contains(phase), "missing phase {phase}:\n{text}");
    }
    assert!(text.contains("gc:"), "missing gc summary:\n{text}");
}

#[test]
fn trace_writes_a_valid_chrome_trace_for_every_example() {
    let dir = std::env::temp_dir().join(format!("vglc-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    for path in examples() {
        let p = path.to_str().expect("utf8 path");
        let dest = dir.join(format!(
            "{}.json",
            path.file_stem().and_then(|s| s.to_str()).unwrap_or("trace")
        ));
        let out = vglc(&["trace", "--jobs", "8", "-o", dest.to_str().unwrap(), p]);
        assert!(out.status.success(), "{p}: trace failed: {out:?}");
        let text = std::fs::read_to_string(&dest)
            .unwrap_or_else(|e| panic!("{p}: trace file missing: {e}"));
        let json = vgl_obs::json::parse(&text)
            .unwrap_or_else(|e| panic!("{p}: invalid trace JSON: {e:?}"));
        let events = json
            .get("traceEvents")
            .and_then(vgl_obs::json::Json::as_arr)
            .unwrap_or_else(|| panic!("{p}: no traceEvents array"));
        // Compile-phase spans and at least one VM function span, always.
        let has = |want_ph: &str, want_pid: f64, name_pred: &dyn Fn(&str) -> bool| {
            events.iter().any(|e| {
                e.get("ph").and_then(vgl_obs::json::Json::as_str) == Some(want_ph)
                    && e.get("pid").and_then(vgl_obs::json::Json::as_f64) == Some(want_pid)
                    && e.get("name")
                        .and_then(vgl_obs::json::Json::as_str)
                        .map(name_pred)
                        .unwrap_or(false)
            })
        };
        assert!(has("X", 1.0, &|n| n == "mono"), "{p}: no compile spans");
        assert!(has("X", 2.0, &|n| n.contains("main")), "{p}: no VM span for main");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn flight_record_dumps_only_on_traps() {
    let dir = std::env::temp_dir().join(format!("vglc-flight-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let trap = dir.join("trap.v");
    std::fs::write(
        &trap,
        "class A { var x: int; new(x) { } }\n\
         def get(a: A) -> int { return a.x; }\n\
         def main() -> int { var a: A; return get(a); }",
    )
    .expect("write");
    let out = vglc(&["run", "--flight-record", trap.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8(out.stderr).expect("utf8");
    assert!(err.contains("--- flight recorder"), "missing dump:\n{err}");
    assert!(err.contains("!NullCheckException in"), "trap line missing:\n{err}");
    assert!(err.contains("runtime error: !NullCheckException"), "{err}");

    // A clean run stays quiet even with the recorder on.
    let clean = examples().remove(0);
    let out = vglc(&["run", "--flight-record=16", clean.to_str().unwrap()]);
    assert!(out.status.success(), "{out:?}");
    let err = String::from_utf8(out.stderr).expect("utf8");
    assert!(!err.contains("flight recorder"), "dump on success:\n{err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn plain_stats_still_prints_pass_times() {
    let path = examples().remove(0);
    let out = vglc(&["stats", path.to_str().expect("utf8 path")]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).expect("utf8");
    assert!(text.contains("pass times:"), "missing pass times:\n{text}");
}

/// The golden shape of `disasm --tiered` on the dispatch-chain example:
/// a side-by-side baseline/tiered view where the mixed-chain walker stays
/// a plain virtual call, the monomorphic walker's site is speculated (the
/// one-expression `Inc.apply` inlines behind its class guard), and guard
/// sites carry their deopt target.
#[test]
fn disasm_tiered_shows_guarded_and_inlined_sites() {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/v/dispatch_chain.v");
    let p = path.to_str().expect("utf8 path");
    let out = vglc(&["disasm", "--tiered", p]);
    assert!(out.status.success(), "disasm --tiered failed: {out:?}");
    let text = String::from_utf8(out.stdout).expect("utf8");
    assert!(text.contains("functions tiered (threshold"), "missing header:\n{text}");
    assert!(text.contains("-- baseline --"), "missing baseline column:\n{text}");
    assert!(text.contains("-- tiered --"), "missing tiered column:\n{text}");
    // The monomorphic walker speculates and inlines `x + 1`.
    let runinc = text.split("runinc").nth(1).expect("runinc section");
    let runinc = runinc.split("\n\n").next().expect("runinc block");
    assert!(runinc.contains("call_inline"), "mono site should inline:\n{runinc}");
    assert!(runinc.contains("!deopt@"), "guard sites carry a deopt target:\n{runinc}");
    // The mixed-chain walker's site stays an unspeculated virtual call.
    let run = text.split("\nf").find(|s| s.contains(" run (")).expect("run section");
    let run = run.split("\n\n").next().expect("run block");
    assert!(run.contains("call_virt"), "polymorphic site stays virtual:\n{run}");
    assert!(!run.contains("call_guard") && !run.contains("call_inline"), "{run}");
    // Both columns show the per-function tier counters.
    assert!(text.contains("tier-ups="), "missing per-function counters:\n{text}");
}

#[test]
fn bad_usage_exits_2() {
    let out = vglc(&[]);
    assert_eq!(out.status.code(), Some(2));
    let out = vglc(&["frobnicate", "--json", "x.v"]);
    assert_eq!(out.status.code(), Some(2), "--json is stats-only");
}

#[test]
fn missing_file_fails_cleanly() {
    let out = vglc(&["run", "/nonexistent/nope.v"]);
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8(out.stderr).expect("utf8");
    assert!(err.contains("cannot read"), "unexpected stderr: {err}");
}
