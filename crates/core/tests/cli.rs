//! End-to-end tests of the `vglc` binary: every subcommand over the checked-in
//! examples, exit codes, engine agreement under `both`, and the shape of
//! `stats --json`.

use std::path::PathBuf;
use std::process::{Command, Output};

fn vglc(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_vglc"))
        .args(args)
        .output()
        .expect("vglc runs")
}

fn examples() -> Vec<PathBuf> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/v");
    let mut v: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("read {dir:?}: {e}"))
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "v"))
        .collect();
    v.sort();
    assert!(!v.is_empty(), "no examples found in {dir:?}");
    v
}

#[test]
fn run_interp_and_both_agree_on_every_example() {
    for path in examples() {
        let p = path.to_str().expect("utf8 path");
        let run = vglc(&["run", p]);
        let interp = vglc(&["interp", p]);
        let both = vglc(&["both", p]);
        assert!(run.status.success(), "{p}: run failed: {run:?}");
        assert!(interp.status.success(), "{p}: interp failed: {interp:?}");
        assert!(both.status.success(), "{p}: engines disagree: {both:?}");
        assert_eq!(run.stdout, interp.stdout, "{p}: stdout differs across engines");
        assert_eq!(run.stdout, both.stdout, "{p}: both prints the agreed output");
    }
}

#[test]
fn stats_json_is_valid_and_complete_for_every_example() {
    for path in examples() {
        let p = path.to_str().expect("utf8 path");
        let out = vglc(&["stats", "--json", p]);
        assert!(out.status.success(), "{p}: stats --json failed: {out:?}");
        let text = String::from_utf8(out.stdout).expect("utf8");
        let json = vgl_obs::json::parse(text.trim())
            .unwrap_or_else(|e| panic!("{p}: invalid JSON: {e:?}\n{text}"));
        for key in ["phases", "pipeline", "bytecode_instrs", "interp", "vm"] {
            assert!(json.get(key).is_some(), "{p}: missing key {key:?}");
        }
        // Both engines embedded in one report must agree on the result.
        let interp = json.get("interp").and_then(|o| o.get("result"));
        let vm = json.get("vm").and_then(|o| o.get("result"));
        assert!(interp.is_some() && vm.is_some(), "{p}: missing results");
        assert_eq!(
            interp.and_then(vgl_obs::json::Json::as_str),
            vm.and_then(vgl_obs::json::Json::as_str),
            "{p}: engines disagree in the report"
        );
        // The VM profile rides along with opcode counts.
        let profile = json.get("vm").and_then(|o| o.get("profile"));
        assert!(profile.is_some(), "{p}: missing vm profile");
    }
}

#[test]
fn profile_prints_phase_and_opcode_tables() {
    let path = examples().remove(0);
    let out = vglc(&["profile", path.to_str().expect("utf8 path")]);
    assert!(out.status.success(), "profile failed: {out:?}");
    let text = String::from_utf8(out.stdout).expect("utf8");
    assert!(text.contains("== compile phases =="), "missing phase table:\n{text}");
    assert!(text.contains("== vm profile =="), "missing vm table:\n{text}");
    for phase in ["lex", "parse", "sema", "mono", "normalize", "optimize", "lower"] {
        assert!(text.contains(phase), "missing phase {phase}:\n{text}");
    }
    assert!(text.contains("gc:"), "missing gc summary:\n{text}");
}

#[test]
fn plain_stats_still_prints_pass_times() {
    let path = examples().remove(0);
    let out = vglc(&["stats", path.to_str().expect("utf8 path")]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).expect("utf8");
    assert!(text.contains("pass times:"), "missing pass times:\n{text}");
}

#[test]
fn bad_usage_exits_2() {
    let out = vglc(&[]);
    assert_eq!(out.status.code(), Some(2));
    let out = vglc(&["frobnicate", "--json", "x.v"]);
    assert_eq!(out.status.code(), Some(2), "--json is stats-only");
}

#[test]
fn missing_file_fails_cleanly() {
    let out = vglc(&["run", "/nonexistent/nope.v"]);
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8(out.stderr).expect("utf8");
    assert!(err.contains("cannot read"), "unexpected stderr: {err}");
}
