//! The `vgld` wire protocol: length-prefixed JSON frames.
//!
//! A frame is a 4-byte **big-endian** payload length followed by exactly
//! that many bytes of UTF-8 JSON. The prefix makes framing independent of
//! payload content (sources may contain anything, including newlines and
//! braces), and the strict [`MAX_FRAME`] bound means a malicious or
//! corrupted length can never make the daemon allocate unbounded memory —
//! the protocol-chaos fuzz lane (`vglc fuzz --protocol`) throws random,
//! truncated, oversized, and interleaved bytes at this module and the
//! daemon must neither panic nor hang.
//!
//! Requests are JSON objects with a `cmd` field (`compile`, `check`,
//! `run`, `stats`, `shutdown`); `compile`/`check`/`run` carry `source` and
//! an optional `session` name (sessions keep per-client latency series
//! apart in `stats`). Responses always carry `ok: bool`; errors carry
//! `error: string`. A malformed frame gets an error *response* and closes
//! only the offending connection — the daemon stays up.

use std::fmt;
use std::io::{self, Read, Write};

use vgl_obs::json::{self, Json};

/// Hard upper bound on a frame payload (16 MiB). Larger lengths are
/// rejected before any allocation.
pub const MAX_FRAME: usize = 16 << 20;

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying transport failed.
    Io(io::Error),
    /// The length prefix exceeds [`MAX_FRAME`].
    TooLarge(u64),
    /// The peer disconnected in the middle of a frame.
    Truncated,
    /// The payload is not UTF-8.
    BadUtf8,
    /// The payload is not a single JSON document.
    BadJson(json::JsonError),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "io error: {e}"),
            FrameError::TooLarge(n) => {
                write!(f, "frame of {n} bytes exceeds the {MAX_FRAME}-byte limit")
            }
            FrameError::Truncated => write!(f, "connection closed mid-frame"),
            FrameError::BadUtf8 => write!(f, "frame payload is not utf-8"),
            FrameError::BadJson(e) => write!(f, "frame payload is not json: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> FrameError {
        FrameError::Io(e)
    }
}

/// Writes one frame: 4-byte big-endian length, then the rendered JSON.
///
/// # Errors
/// Propagates transport errors; refuses (without writing anything) to send
/// a payload over [`MAX_FRAME`].
pub fn write_frame(w: &mut impl Write, msg: &Json) -> io::Result<()> {
    let payload = msg.render();
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds the {MAX_FRAME}-byte limit", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload.as_bytes())?;
    w.flush()
}

/// Reads one frame. `Ok(None)` is a clean disconnect — EOF *between*
/// frames; EOF anywhere inside a frame is [`FrameError::Truncated`].
/// Handles payloads split across arbitrarily many short reads.
///
/// # Errors
/// Any transport, bound, or decode failure; the caller should answer with
/// [`error_response`] where possible and drop the connection.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Json>, FrameError> {
    let mut len_buf = [0u8; 4];
    match read_full(r, &mut len_buf)? {
        0 => return Ok(None),
        4 => {}
        _ => return Err(FrameError::Truncated),
    }
    let len = u32::from_be_bytes(len_buf) as u64;
    if len > MAX_FRAME as u64 {
        return Err(FrameError::TooLarge(len));
    }
    let mut payload = vec![0u8; len as usize];
    if read_full(r, &mut payload)? != payload.len() {
        return Err(FrameError::Truncated);
    }
    let text = std::str::from_utf8(&payload).map_err(|_| FrameError::BadUtf8)?;
    json::parse(text).map(Some).map_err(FrameError::BadJson)
}

/// Reads until `buf` is full or EOF; returns how many bytes landed.
/// Interrupted reads are retried, so a slow peer that dribbles one byte at
/// a time still assembles a complete frame.
fn read_full(r: &mut impl Read, buf: &mut [u8]) -> io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

/// A decoded daemon request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Compile `source`, report pipeline statistics and cache effectiveness.
    Compile {
        /// Session name (defaults to `"default"`).
        session: String,
        /// The program text.
        source: String,
    },
    /// Front-end diagnostics only (never cached, never runs the program).
    Check {
        /// Session name.
        session: String,
        /// The program text.
        source: String,
    },
    /// Compile (through the same caches) and execute on the VM.
    Run {
        /// Session name.
        session: String,
        /// The program text.
        source: String,
    },
    /// Serving statistics: cache hit rates, sessions, latency percentiles.
    Stats,
    /// Orderly daemon shutdown.
    Shutdown,
}

impl Request {
    /// Decodes a request object. Errors are protocol-level (unknown `cmd`,
    /// missing field, wrong type) and name the offending field.
    ///
    /// # Errors
    /// A human-readable message suitable for an `error` response.
    pub fn from_json(j: &Json) -> Result<Request, String> {
        let cmd = j
            .get("cmd")
            .ok_or("missing field 'cmd'")?
            .as_str()
            .ok_or("field 'cmd' must be a string")?;
        let session = || -> Result<String, String> {
            match j.get("session") {
                None => Ok("default".to_string()),
                Some(s) => Ok(s
                    .as_str()
                    .ok_or("field 'session' must be a string")?
                    .to_string()),
            }
        };
        let source = || -> Result<String, String> {
            Ok(j.get("source")
                .ok_or("missing field 'source'")?
                .as_str()
                .ok_or("field 'source' must be a string")?
                .to_string())
        };
        match cmd {
            "compile" => Ok(Request::Compile { session: session()?, source: source()? }),
            "check" => Ok(Request::Check { session: session()?, source: source()? }),
            "run" => Ok(Request::Run { session: session()?, source: source()? }),
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown cmd '{other}'")),
        }
    }

    /// Encodes the request as a wire object (the client side of
    /// [`Request::from_json`]).
    pub fn to_json(&self) -> Json {
        let mut o = Json::object();
        match self {
            Request::Compile { session, source } => {
                o.set("cmd", Json::from("compile"));
                o.set("session", Json::from(session.as_str()));
                o.set("source", Json::from(source.as_str()));
            }
            Request::Check { session, source } => {
                o.set("cmd", Json::from("check"));
                o.set("session", Json::from(session.as_str()));
                o.set("source", Json::from(source.as_str()));
            }
            Request::Run { session, source } => {
                o.set("cmd", Json::from("run"));
                o.set("session", Json::from(session.as_str()));
                o.set("source", Json::from(source.as_str()));
            }
            Request::Stats => o.set("cmd", Json::from("stats")),
            Request::Shutdown => o.set("cmd", Json::from("shutdown")),
        }
        o
    }
}

/// The standard failure response: `{"ok": false, "error": message}`.
pub fn error_response(message: &str) -> Json {
    let mut o = Json::object();
    o.set("ok", Json::Bool(false));
    o.set("error", Json::from(message));
    o
}

/// An empty success response to extend: `{"ok": true}`.
pub fn ok_response() -> Json {
    let mut o = Json::object();
    o.set("ok", Json::Bool(true));
    o
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let req = Request::Compile {
            session: "s1".into(),
            source: "def main() -> int { return 1; }\n\"brace {\"".into(),
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, &req.to_json()).expect("writes");
        let back = read_frame(&mut buf.as_slice()).expect("reads").expect("one frame");
        assert_eq!(Request::from_json(&back), Ok(req));
        // Nothing left: a second read is a clean EOF.
        let mut rest = &buf[buf.len()..];
        assert!(matches!(read_frame(&mut rest), Ok(None)));
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        buf.extend_from_slice(b"whatever");
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(FrameError::TooLarge(n)) if n == u64::from(u32::MAX)
        ));
    }

    #[test]
    fn truncation_is_detected_at_both_positions() {
        // Mid-prefix.
        let mut b: &[u8] = &[0, 0];
        assert!(matches!(read_frame(&mut b), Err(FrameError::Truncated)));
        // Mid-payload.
        let mut buf = Vec::new();
        buf.extend_from_slice(&10u32.to_be_bytes());
        buf.extend_from_slice(b"{\"a\"");
        assert!(matches!(read_frame(&mut buf.as_slice()), Err(FrameError::Truncated)));
    }

    #[test]
    fn split_reads_reassemble() {
        /// Yields one byte per read call — the worst legal transport.
        struct OneByte<'a>(&'a [u8]);
        impl Read for OneByte<'_> {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                if self.0.is_empty() || buf.is_empty() {
                    return Ok(0);
                }
                buf[0] = self.0[0];
                self.0 = &self.0[1..];
                Ok(1)
            }
        }
        let mut buf = Vec::new();
        write_frame(&mut buf, &Request::Stats.to_json()).expect("writes");
        let v = read_frame(&mut OneByte(&buf)).expect("reads").expect("frame");
        assert_eq!(Request::from_json(&v), Ok(Request::Stats));
    }

    #[test]
    fn garbage_payloads_are_errors_not_panics() {
        let frame = |bytes: &[u8]| {
            let mut buf = Vec::new();
            buf.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
            buf.extend_from_slice(bytes);
            buf
        };
        assert!(matches!(
            read_frame(&mut frame(&[0xff, 0xfe, 0x80]).as_slice()),
            Err(FrameError::BadUtf8)
        ));
        assert!(matches!(
            read_frame(&mut frame(b"{not json").as_slice()),
            Err(FrameError::BadJson(_))
        ));
        assert!(matches!(
            read_frame(&mut frame(b"").as_slice()),
            Err(FrameError::BadJson(_))
        ));
    }

    #[test]
    fn requests_decode_and_reject_precisely() {
        let ok = json::parse(r#"{"cmd":"run","source":"x"}"#).unwrap();
        assert_eq!(
            Request::from_json(&ok),
            Ok(Request::Run { session: "default".into(), source: "x".into() })
        );
        let cases = [
            (r#"{}"#, "missing field 'cmd'"),
            (r#"{"cmd":7}"#, "field 'cmd' must be a string"),
            (r#"{"cmd":"warp"}"#, "unknown cmd 'warp'"),
            (r#"{"cmd":"compile"}"#, "missing field 'source'"),
            (r#"{"cmd":"compile","source":3}"#, "field 'source' must be a string"),
            (r#"{"cmd":"check","session":1,"source":"x"}"#, "field 'session' must be a string"),
        ];
        for (text, want) in cases {
            let j = json::parse(text).unwrap();
            assert_eq!(Request::from_json(&j), Err(want.to_string()), "{text}");
        }
    }
}
