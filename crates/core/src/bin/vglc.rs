//! `vglc` — the virgil-rs command-line driver.
//!
//! ```text
//! vglc run <file.v>            compile and run on the VM (default)
//! vglc interp <file.v>         run on the reference interpreter
//! vglc both <file.v>           run on both engines and compare
//! vglc stats [--json] <file.v> print pipeline statistics; --json emits one
//!                              JSON object (phases, pipeline, both engines,
//!                              and the unified `runtime` counters)
//! vglc profile <file.v>        run on the VM with profiling: per-phase
//!                              compile times, opcode histogram (with the
//!                              superinstruction share), the per-function
//!                              hotness ranking, IC hit/miss, GC
//! vglc trace [-o out] <file.v> compile and run with wall-clock tracing,
//!                              writing a Chrome trace-event JSON file
//!                              (default trace.json) that unifies compile
//!                              phases, back-end worker lanes, VM function
//!                              spans, and GC events — open it in
//!                              chrome://tracing or Perfetto
//! vglc disasm <file.v>         print the compiled bytecode; with fusion on
//!                              (the default in release), unfused and fused
//!                              code are shown side by side
//! vglc check [--json] <file.v> parse and typecheck only, reporting every
//!                              diagnostic the front end can find (parse
//!                              errors do not hide type errors); --json
//!                              emits one JSON object
//! vglc fuzz [--seed N] [--cases N] [--dump]
//!                              differential fuzzing: generate N programs,
//!                              run them on nine engine configurations, and
//!                              shrink + report the first disagreement
//! vglc fuzz --chaos [--seed N] [--cases N]
//!                              crash fuzzing: corrupt generated programs
//!                              (token surgery, byte splices, truncation,
//!                              nesting bombs) and demand diagnostics, not
//!                              panics; minimizes + reports the first crash
//! ```
//!
//! `--fuse` / `--no-fuse` override the bytecode back-end optimizer (default:
//! on in release builds, off in debug) for any compile-based subcommand.
//!
//! `--jobs N` sets the worker-thread count for the parallel back-end phases
//! (default: the `VGL_JOBS` environment variable, else the machine's
//! available parallelism). The jobs count never changes compiled output —
//! `--jobs 1` and `--jobs 8` produce bit-identical bytecode. `--no-cache`
//! disables the per-instance pass cache (also output-identical; it only
//! recomputes what duplicate instances would have shared).
//!
//! `--heap-slots N` sets the VM heap size in 8-byte slots (default 2^20);
//! `--nursery-slots N` sets the generational collector's nursery size
//! (default 2^14, clamped to half the heap). `--nursery-slots 0` disables
//! the nursery and falls back to the pure semispace collector — every
//! collection is then a major.
//!
//! `--flight-record[=N]` (for `run`) keeps a ring of the last N runtime
//! events (calls, IC misses, collections, tier-ups, deopts; default 64) and
//! dumps it to stderr when the run ends in a trap or `System.error`.
//!
//! Tiered execution: `run` and `trace` tier by default — functions start
//! unfused and re-fuse themselves with their own runtime profile once hot.
//! `--no-tier` restores the static pipeline; `--tier` forces tiering for
//! any compile-based subcommand; `--tier-threshold N` (or the
//! `VGL_TIER_THRESHOLD` environment variable) sets the hotness weight at
//! which a function tiers up. `disasm --tiered` runs the program and shows
//! each tiered function's baseline and hot-tier bodies side by side with
//! guard sites annotated.

use std::process::ExitCode;
use vgl::Compiler;

fn usage() -> ExitCode {
    eprintln!(
        "usage: vglc [run|interp|both|check [--json]|stats [--json]|profile|\
         disasm [--tiered]|trace [-o out.json]] \
         [--fuse|--no-fuse] [--tier|--no-tier] [--tier-threshold N] [--jobs N] \
         [--heap-slots N] [--nursery-slots N] [--no-cache] [--flight-record[=N]] <file.v>\n\
         \x20      vglc fuzz [--chaos|--protocol] [--seed N] [--cases N] [--dump]\n\
         \x20      vglc serve [--socket PATH] [--fuse|--no-fuse] [--jobs N] [--no-cache]\n\
         \x20      vglc client [--socket PATH] [--session NAME] \
         <compile|check|run|stats|shutdown> [file.v]"
    );
    ExitCode::from(2)
}

/// The daemon socket: `--socket`, else `VGLD_SOCKET`, else a fixed name in
/// the system temp dir (one default daemon per machine/user temp).
fn default_socket() -> std::path::PathBuf {
    std::env::var_os("VGLD_SOCKET")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("vgld.sock"))
}

/// `vglc serve`: run the compile daemon in the foreground until a client
/// sends `shutdown`.
fn serve(args: &[String]) -> ExitCode {
    let mut config = vgl::serve::ServeConfig::default();
    let mut socket = default_socket();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--socket" => match it.next() {
                Some(p) => socket = std::path::PathBuf::from(p),
                None => return usage(),
            },
            "--fuse" => config.options.fuse = true,
            "--no-fuse" => config.options.fuse = false,
            "--no-cache" => config.options.pass_cache = false,
            "--no-opt" => config.options.optimize = false,
            "--jobs" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => config.options.jobs = n,
                None => return usage(),
            },
            "--artifact-cap" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => config.artifact_capacity = n,
                None => return usage(),
            },
            "--func-cap" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => config.func_capacity = n,
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let daemon = match vgl::serve::Daemon::start(&socket, config) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("vgld: cannot bind {}: {e}", socket.display());
            return ExitCode::FAILURE;
        }
    };
    println!("vgld: serving on {}", socket.display());
    daemon.wait();
    println!("vgld: shut down");
    ExitCode::SUCCESS
}

/// `vglc client`: one request against a running daemon, response printed
/// as JSON (except `run`, which prints program output then the result).
fn client(args: &[String]) -> ExitCode {
    use vgl::serve::Client;
    let mut socket = default_socket();
    let mut session = "default".to_string();
    let mut rest: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--socket" => match it.next() {
                Some(p) => socket = std::path::PathBuf::from(p),
                None => return usage(),
            },
            "--session" => match it.next() {
                Some(s) => session = s.clone(),
                None => return usage(),
            },
            _ => rest.push(flag),
        }
    }
    let with_source = |cmd: &str, path: &String| {
        let source = std::fs::read_to_string(path).map_err(|e| {
            eprintln!("vglc: cannot read {path}: {e}");
        })?;
        Ok::<_, ()>(match cmd {
            "compile" => vgl::serve::Request::Compile { session: session.clone(), source },
            "check" => vgl::serve::Request::Check { session: session.clone(), source },
            _ => vgl::serve::Request::Run { session: session.clone(), source },
        })
    };
    let req = match rest.as_slice() {
        [cmd, path] if matches!(cmd.as_str(), "compile" | "check" | "run") => {
            match with_source(cmd, path) {
                Ok(r) => r,
                Err(()) => return ExitCode::FAILURE,
            }
        }
        [cmd] if cmd.as_str() == "stats" => vgl::serve::Request::Stats,
        [cmd] if cmd.as_str() == "shutdown" => vgl::serve::Request::Shutdown,
        _ => return usage(),
    };
    let mut client = match Client::connect(&socket) {
        Ok(c) => c,
        Err(e) => {
            eprintln!(
                "vglc: cannot connect to {} ({e}); is `vglc serve` running?",
                socket.display()
            );
            return ExitCode::FAILURE;
        }
    };
    let resp = match client.request(&req) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("vglc: daemon request failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let ok = resp.get("ok").and_then(vgl::serve::Json::as_bool).unwrap_or(false);
    if let vgl::serve::Request::Run { .. } = req {
        if let Some(out) = resp.get("output").and_then(vgl::serve::Json::as_str) {
            print!("{out}");
        }
        match (
            resp.get("result").and_then(vgl::serve::Json::as_str),
            resp.get("trap").and_then(vgl::serve::Json::as_str),
        ) {
            (Some(v), _) => println!("result: {v}"),
            (None, Some(t)) => println!("trap: {t}"),
            (None, None) => println!("{resp}"),
        }
    } else {
        println!("{resp}");
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn chaos(seed: Option<u64>, cases: Option<u64>) -> ExitCode {
    let mut cfg = vgl::fuzz::ChaosConfig::default();
    if let Some(s) = seed {
        cfg.seed = s;
    }
    if let Some(c) = cases {
        cfg.cases = c;
    }
    println!(
        "chaos fuzzing: seed {}, {} cases (mutated inputs, full pipeline, \
         diagnostics-or-bust)",
        cfg.seed, cfg.cases
    );
    let report = vgl::fuzz::run_chaos(&cfg, |i, _| {
        if (i + 1) % 500 == 0 {
            println!("  ... case {}", i + 1);
        }
    });
    println!("{}", report.summary());
    match report.failure {
        None => ExitCode::SUCCESS,
        Some(f) => {
            eprintln!("\nFAILURE at case {} (seed {}):", f.case_index, f.seed);
            eprintln!("{}", f.kind);
            eprintln!("\nminimized input:\n{}", f.shrunk);
            eprintln!("reproduce with: vglc fuzz --chaos --seed {} --cases 1", f.seed);
            ExitCode::FAILURE
        }
    }
}

fn protocol_chaos(seed: Option<u64>, cases: Option<u64>) -> ExitCode {
    let seed = seed.unwrap_or(0xC0FFEE);
    let cases = cases.unwrap_or(2000);
    println!(
        "protocol chaos: seed {seed}, {cases} hostile client scripts against a live \
         daemon (no panic, no hang, or bust)"
    );
    let report = vgl::serve::run_protocol_chaos(seed, cases, |i| {
        if i % 500 == 0 {
            println!("  ... case {i}");
        }
    });
    println!("{}", report.summary());
    match report.failure {
        None => ExitCode::SUCCESS,
        Some(f) => {
            eprintln!("\nFAILURE: {f}");
            eprintln!("reproduce with: vglc fuzz --protocol --seed <seed> --cases 1");
            ExitCode::FAILURE
        }
    }
}

fn fuzz(args: &[String]) -> ExitCode {
    let mut cfg = vgl::fuzz::FuzzConfig::default();
    let mut dump = false;
    let mut chaos_mode = false;
    let mut protocol_mode = false;
    let mut seed = None;
    let mut cases = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if flag == "--dump" {
            dump = true;
            continue;
        }
        if flag == "--chaos" {
            chaos_mode = true;
            continue;
        }
        if flag == "--protocol" {
            protocol_mode = true;
            continue;
        }
        let value = it.next().and_then(|v| v.parse::<u64>().ok());
        match (flag.as_str(), value) {
            ("--seed", Some(v)) => seed = Some(v),
            ("--cases", Some(v)) => cases = Some(v),
            _ => return usage(),
        }
    }
    if protocol_mode {
        return protocol_chaos(seed, cases);
    }
    if chaos_mode {
        return chaos(seed, cases);
    }
    if let Some(v) = seed {
        cfg.seed = v;
    }
    if let Some(v) = cases {
        cfg.cases = v;
    }
    if dump {
        for i in 0..cfg.cases {
            let seed = cfg.seed.wrapping_add(i);
            let prog = vgl::fuzz::gen_program(seed, &cfg.gen);
            eprintln!("// ---- seed {seed} ----\n{}", vgl::fuzz::emit(&prog));
        }
    }
    println!("fuzzing: seed {}, {} cases, 9 engine configurations", cfg.seed, cfg.cases);
    let report = vgl::fuzz::run_fuzz(&cfg, |i, v| {
        if (i + 1) % 50 == 0 {
            println!("  ... case {} ({})", i + 1, vgl::fuzz::describe(v));
        }
    });
    println!("{}", report.summary());
    match report.failure {
        None => ExitCode::SUCCESS,
        Some(f) => {
            eprintln!("\nFAILURE at case {} (seed {}):", f.case_index, f.seed);
            eprintln!("{}", f.verdict);
            eprintln!("\nshrunk repro ({} lines):\n{}", f.shrunk_lines, f.shrunk);
            eprintln!("reproduce with: vglc fuzz --seed {} --cases 1", f.seed);
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("fuzz") {
        return fuzz(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("serve") {
        return serve(&args[1..]);
    }
    if let Some(pos) = args.iter().position(|a| a == "--serve") {
        args.remove(pos);
        return serve(&args);
    }
    if args.first().map(String::as_str) == Some("client") {
        return client(&args[1..]);
    }
    let mut options = vgl::Options::default();
    let mut out_path: Option<String> = None;
    let mut flight: Option<usize> = None;
    let mut tier_flag: Option<bool> = None;
    let mut tier_threshold: Option<u64> = None;
    let mut tiered_view = false;
    // Valued flags (`--jobs N`, `-o out`, `--flight-record[=N]`): consume
    // them before the positional scan.
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--jobs" && i + 1 < args.len() {
            let Ok(n) = args[i + 1].parse::<usize>() else { return usage() };
            options.jobs = n;
            args.drain(i..i + 2);
        } else if let Some(v) = args[i].strip_prefix("--jobs=") {
            let Ok(n) = v.parse::<usize>() else { return usage() };
            options.jobs = n;
            args.remove(i);
        } else if args[i] == "--heap-slots" && i + 1 < args.len() {
            let Ok(n) = args[i + 1].parse::<usize>() else { return usage() };
            options.heap_slots = n;
            args.drain(i..i + 2);
        } else if let Some(v) = args[i].strip_prefix("--heap-slots=") {
            let Ok(n) = v.parse::<usize>() else { return usage() };
            options.heap_slots = n;
            args.remove(i);
        } else if args[i] == "--nursery-slots" && i + 1 < args.len() {
            let Ok(n) = args[i + 1].parse::<usize>() else { return usage() };
            options.nursery_slots = n;
            args.drain(i..i + 2);
        } else if let Some(v) = args[i].strip_prefix("--nursery-slots=") {
            let Ok(n) = v.parse::<usize>() else { return usage() };
            options.nursery_slots = n;
            args.remove(i);
        } else if args[i] == "-o" && i + 1 < args.len() {
            out_path = Some(args[i + 1].clone());
            args.drain(i..i + 2);
        } else if args[i] == "--tier-threshold" && i + 1 < args.len() {
            let Ok(n) = args[i + 1].parse::<u64>() else { return usage() };
            tier_threshold = Some(n);
            args.drain(i..i + 2);
        } else if let Some(v) = args[i].strip_prefix("--tier-threshold=") {
            let Ok(n) = v.parse::<u64>() else { return usage() };
            tier_threshold = Some(n);
            args.remove(i);
        } else if args[i] == "--flight-record" {
            flight = Some(64);
            args.remove(i);
        } else if let Some(v) = args[i].strip_prefix("--flight-record=") {
            let Ok(n) = v.parse::<usize>() else { return usage() };
            flight = Some(n.max(1));
            args.remove(i);
        } else {
            i += 1;
        }
    }
    args.retain(|a| match a.as_str() {
        "--fuse" => {
            options.fuse = true;
            false
        }
        "--no-fuse" => {
            options.fuse = false;
            false
        }
        "--no-cache" => {
            options.pass_cache = false;
            false
        }
        "--tier" => {
            tier_flag = Some(true);
            false
        }
        "--no-tier" => {
            tier_flag = Some(false);
            false
        }
        "--tiered" => {
            tiered_view = true;
            false
        }
        _ => true,
    });
    let (cmd, json, path) = match args.as_slice() {
        [path] if !path.starts_with('-') => ("run".to_string(), false, path.clone()),
        [cmd, path] if !path.starts_with('-') => (cmd.clone(), false, path.clone()),
        [cmd, flag, path] if flag == "--json" => (cmd.clone(), true, path.clone()),
        _ => return usage(),
    };
    if json && cmd != "stats" && cmd != "check" {
        return usage();
    }
    let source = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("vglc: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if cmd == "check" {
        return check(&path, &source, json);
    }
    // Tier policy: `run` and `trace` tier by default (the production
    // configuration); everything else opts in via `--tier` or an explicit
    // `--tier-threshold`. `VGL_TIER_THRESHOLD` overrides the threshold.
    let env_threshold = std::env::var("VGL_TIER_THRESHOLD")
        .ok()
        .and_then(|v| v.parse::<u64>().ok());
    if let Some(t) = tier_threshold.or(env_threshold) {
        options.tier_threshold = t;
    }
    options.tier = match tier_flag {
        Some(v) => v,
        None => tier_threshold.is_some() || matches!(cmd.as_str(), "run" | "trace"),
    };
    // `disasm` always compiles unfused so the side-by-side view can show the
    // fusion pass's before and after on the same baseline.
    let fuse_requested = options.fuse;
    if cmd == "disasm" {
        options.fuse = false;
        options.tier = false;
    }
    let compilation = match Compiler::with_options(options).compile(&source) {
        Ok(c) => c,
        Err(e) => {
            // Re-render with the real file name.
            let lines = vgl::LineMap::new(&source);
            for d in &e.diagnostics {
                eprintln!("{}", d.render(&path, &lines));
            }
            return ExitCode::FAILURE;
        }
    };
    match cmd.as_str() {
        "run" => {
            if let Some(capacity) = flight {
                let (out, dump) = compilation.execute_flight_recorded(capacity);
                print!("{}", out.output);
                if out.result.is_err() {
                    if let Some(d) = dump {
                        eprint!("{d}");
                    }
                }
                finish(out.result)
            } else {
                let out = compilation.execute();
                print!("{}", out.output);
                finish(out.result)
            }
        }
        "trace" => {
            let (out, log) = compilation.execute_traced();
            let trace = vgl::chrome::chrome_trace(&compilation, &out, &log);
            let text = trace.render();
            // Self-validate: the exporter's output must round-trip through
            // the in-tree parser before it is allowed on disk.
            if let Err(e) = vgl_obs::json::parse(&text) {
                eprintln!("vglc: internal error: trace output is not valid JSON: {e}");
                return ExitCode::FAILURE;
            }
            let dest = out_path.unwrap_or_else(|| "trace.json".to_string());
            if let Err(e) = std::fs::write(&dest, &text) {
                eprintln!("vglc: cannot write {dest}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!(
                "vglc: wrote {dest}: {} events (compile {:.1}us, {} vm spans, {} gc)",
                trace.len(),
                compilation.trace.total().as_secs_f64() * 1e6,
                log.span_count(),
                log.gc.len()
            );
            print!("{}", out.output);
            finish(out.result)
        }
        "interp" => {
            let out = compilation.interpret();
            print!("{}", out.output);
            finish(out.result)
        }
        "both" => {
            let i = compilation.interpret();
            let v = compilation.execute();
            if i.result != v.result || i.output != v.output {
                eprintln!("vglc: ENGINES DISAGREE");
                eprintln!("interp: {:?}\n{}", i.result, i.output);
                eprintln!("vm:     {:?}\n{}", v.result, v.output);
                return ExitCode::FAILURE;
            }
            print!("{}", v.output);
            finish(v.result)
        }
        "stats" if json => {
            let i = compilation.interpret();
            let (v, profile, hotness) = compilation.execute_profiled_full();
            let report = vgl::report::stats_json(
                &compilation,
                Some(&i),
                Some(&v),
                Some(&profile),
                Some(&hotness),
            );
            println!("{report}");
            ExitCode::SUCCESS
        }
        "profile" => {
            let (out, profile, hotness) = compilation.execute_profiled_full();
            println!("== compile phases ==");
            print!("{}", compilation.trace.render_table());
            let b = &compilation.backend;
            println!(
                "backend: {} job(s); instance cache: norm {}/{} hits ({:.0}%), \
                 opt {}/{} hits ({:.0}%)",
                b.jobs,
                b.norm_cache.hits,
                b.norm_cache.lookups,
                b.norm_cache.hit_rate() * 100.0,
                b.opt_cache.hits,
                b.opt_cache.lookups,
                b.opt_cache.hit_rate() * 100.0
            );
            let workers = compilation.trace.render_workers();
            if !workers.is_empty() {
                println!("== workers ==");
                print!("{workers}");
            }
            let f = &compilation.fuse;
            if f.instrs_before > 0 {
                println!(
                    "fuse: {} -> {} instrs ({} rewrites)",
                    f.instrs_before,
                    f.instrs_after,
                    f.fused_total()
                );
            }
            println!("== vm profile ==");
            print!("{}", profile.render_table());
            println!("== hotness ==");
            print!("{}", hotness.render_table(&compilation.program));
            if let Some(s) = &out.vm_stats {
                println!(
                    "ic: {} hits, {} misses ({:.1}% hit rate); ret spills: {}",
                    s.ic_hits,
                    s.ic_misses,
                    s.ic_hit_rate() * 100.0,
                    s.ret_spills
                );
                if s.tier_ups > 0 || s.deopts > 0 {
                    println!(
                        "tier: {} tier-ups, {} deopts; {} guarded calls, {} inlined calls",
                        s.tier_ups, s.deopts, s.guarded_calls, s.inlined_calls
                    );
                }
            }
            if !out.output.is_empty() {
                println!("== program output ==");
                print!("{}", out.output);
            }
            finish(out.result)
        }
        "stats" => {
            let s = &compilation.stats;
            println!("size before:       {}", s.size_before);
            println!("size after mono:   {}", s.size_after_mono);
            println!("size after all:    {}", s.size_after);
            println!("bytecode:          {} instructions", compilation.code_size());
            println!(
                "mono:  {} method instances, {} class instances (from {} / {} live)",
                s.mono.method_instances,
                s.mono.class_instances,
                s.mono.live_source_methods,
                s.mono.live_source_classes
            );
            println!(
                "norm:  {} tuple exprs removed, {} params expanded, {} fields expanded, \
                 {} multi-return methods, {} wrappers",
                s.norm.tuple_exprs_removed,
                s.norm.params_expanded,
                s.norm.fields_expanded,
                s.norm.multi_return_methods,
                s.norm.wrappers_synthesized
            );
            println!(
                "opt:   {} consts, {} queries, {} casts, {} branches folded; \
                 {} dead stmts; {} devirtualized",
                s.opt.consts_folded,
                s.opt.queries_folded,
                s.opt.casts_folded,
                s.opt.branches_folded,
                s.opt.dead_stmts_removed,
                s.opt.devirtualized
            );
            let f = &compilation.fuse;
            if f.instrs_before > 0 {
                println!(
                    "fuse:  {} -> {} instrs; {} copies propagated, {} movs coalesced, \
                     {} dead removed, {} pairs fused",
                    f.instrs_before,
                    f.instrs_after,
                    f.copies_propagated,
                    f.movs_coalesced,
                    f.dead_removed,
                    f.fused_total()
                );
            }
            println!("expansion:         x{:.2}", compilation.expansion_ratio());
            println!(
                "pass times:        mono {:.1}us, norm {:.1}us, opt {:.1}us",
                s.times.mono.as_secs_f64() * 1e6,
                s.times.norm.as_secs_f64() * 1e6,
                s.times.opt.as_secs_f64() * 1e6
            );
            ExitCode::SUCCESS
        }
        "disasm" => {
            if tiered_view {
                // Run the program with tiering forced on, then show each
                // tiered function pre/post tier-up with guard sites.
                let (out, view) = compilation.execute_tiered_disasm();
                print!("{view}");
                if let Err(e) = out.result {
                    eprintln!("runtime error: {e}");
                    return ExitCode::FAILURE;
                }
            } else if fuse_requested {
                let mut fused = compilation.program.clone();
                vgl_vm::fuse(&mut fused);
                print!("{}", vgl_vm::side_by_side(&compilation.program, &fused));
            } else {
                print!("{}", vgl_vm::disasm(&compilation.program));
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}

fn check(path: &str, source: &str, json: bool) -> ExitCode {
    let report = Compiler::new().check(path, source);
    if json {
        println!("{}", report.to_json().render());
    } else {
        for r in &report.rendered {
            eprint!("{r}");
        }
        eprintln!(
            "{}: {} error(s), {} diagnostic(s)",
            path,
            report.error_count(),
            report.diagnostics.len()
        );
    }
    if report.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn finish(result: Result<String, String>) -> ExitCode {
    match result {
        Ok(v) => {
            if v != "()" {
                eprintln!("=> {v}");
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("runtime error: {e}");
            ExitCode::FAILURE
        }
    }
}
