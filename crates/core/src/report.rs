//! The unified machine-readable report behind `vglc stats --json`.
//!
//! One JSON object ties together every observability surface of the system:
//! per-phase compile times ([`crate::PhaseTrace`]), the pipeline statistics
//! (E4's code-expansion data), the interpreter's dynamic cost counters
//! (boxed tuples, §4.1 call-site checks, type-environment lookups), and the
//! VM's counters plus, when profiled, the per-opcode histogram and GC event
//! log. `crates/bench` consumes this shape for the paper tables.

use crate::{Compilation, InterpStats, RunOutcome, RuntimeProfile, VmProfile, VmStats};
use vgl_obs::json::Json;

/// Builds the full report for one compiled program.
///
/// `interp` and `vm` are outcomes from the respective engines (either may be
/// omitted); `profile` and `hotness` are the VM profiles from
/// [`Compilation::execute_profiled_full`].
pub fn stats_json(
    c: &Compilation,
    interp: Option<&RunOutcome>,
    vm: Option<&RunOutcome>,
    profile: Option<&VmProfile>,
    hotness: Option<&RuntimeProfile>,
) -> Json {
    let mut root = Json::object();
    root.set("phases", c.trace.to_json());
    root.set("pipeline", pipeline_json(c));
    root.set("bytecode_instrs", Json::from(c.code_size()));
    root.set("fuse", fuse_json(&c.fuse));
    root.set("backend", backend_json(&c.backend));
    if let Some(run) = interp {
        let mut o = outcome_json(run);
        if let Some(s) = &run.interp_stats {
            o.set("stats", interp_stats_json(s));
        }
        root.set("interp", o);
    }
    if let Some(run) = vm {
        let mut o = outcome_json(run);
        if let Some(s) = &run.vm_stats {
            o.set("stats", vm_stats_json(s));
        }
        if let Some(p) = profile {
            o.set("profile", p.to_json());
        }
        root.set("vm", o);
    }
    root.set("runtime", runtime_json(c, interp, vm, hotness));
    root
}

/// The unified `runtime` object: one schema for every dynamic-cost counter
/// the E-series scripts read, regardless of engine. The paper's headline
/// comparison — the interpreter boxes tuples and pays §4.1 call-site
/// checks, the VM structurally cannot — reads off the two `tuple_boxes`
/// fields, and the VM's inline-cache counters live under `vm.ic` instead of
/// being flattened into the stats bag.
fn runtime_json(
    c: &Compilation,
    interp: Option<&RunOutcome>,
    vm: Option<&RunOutcome>,
    hotness: Option<&RuntimeProfile>,
) -> Json {
    let mut rt = Json::object();
    if let Some(s) = interp.and_then(|r| r.interp_stats.as_ref()) {
        let mut o = Json::object();
        o.set("steps", Json::from(s.steps));
        o.set("tuple_boxes", Json::from(s.allocs.tuples));
        o.set("callsite_checks", Json::from(s.callsite_checks));
        o.set("callsite_adaptations", Json::from(s.callsite_adaptations));
        o.set("type_substitutions", Json::from(s.type_substitutions));
        o.set("env_lookups", Json::from(s.env_lookups));
        rt.set("interp", o);
    }
    if let Some(s) = vm.and_then(|r| r.vm_stats.as_ref()) {
        let mut o = Json::object();
        o.set("instrs", Json::from(s.instrs));
        o.set("tuple_boxes", Json::from(s.heap.tuple_boxes));
        o.set("calls", Json::from(s.calls));
        o.set("virtual_calls", Json::from(s.virtual_calls));
        o.set("closure_calls", Json::from(s.closure_calls));
        let mut ic = Json::object();
        ic.set("hits", Json::from(s.ic_hits));
        ic.set("misses", Json::from(s.ic_misses));
        ic.set("hit_rate", Json::Num(s.ic_hit_rate()));
        o.set("ic", ic);
        let mut tier = Json::object();
        tier.set("tier_ups", Json::from(s.tier_ups));
        tier.set("deopts", Json::from(s.deopts));
        tier.set("guarded_calls", Json::from(s.guarded_calls));
        tier.set("inlined_calls", Json::from(s.inlined_calls));
        o.set("tier", tier);
        o.set("gc_collections", Json::from(s.heap.collections));
        o.set("gc_minor", Json::from(s.heap.minor_collections));
        o.set("gc_major", Json::from(s.heap.major_collections));
        if let Some(h) = hotness {
            o.set("hotness", h.to_json(&c.program));
        }
        rt.set("vm", o);
    }
    rt
}

fn pipeline_json(c: &Compilation) -> Json {
    let s = &c.stats;
    let mut o = Json::object();

    let mut mono = Json::object();
    mono.set("method_instances", Json::from(s.mono.method_instances));
    mono.set("class_instances", Json::from(s.mono.class_instances));
    mono.set("live_source_methods", Json::from(s.mono.live_source_methods));
    mono.set("live_source_classes", Json::from(s.mono.live_source_classes));
    o.set("mono", mono);

    let mut norm = Json::object();
    norm.set("tuple_exprs_removed", Json::from(s.norm.tuple_exprs_removed));
    norm.set("params_expanded", Json::from(s.norm.params_expanded));
    norm.set("fields_expanded", Json::from(s.norm.fields_expanded));
    norm.set("globals_expanded", Json::from(s.norm.globals_expanded));
    norm.set("multi_return_methods", Json::from(s.norm.multi_return_methods));
    norm.set("wrappers_synthesized", Json::from(s.norm.wrappers_synthesized));
    o.set("normalize", norm);

    let mut opt = Json::object();
    opt.set("consts_folded", Json::from(s.opt.consts_folded));
    opt.set("queries_folded", Json::from(s.opt.queries_folded));
    opt.set("casts_folded", Json::from(s.opt.casts_folded));
    opt.set("branches_folded", Json::from(s.opt.branches_folded));
    opt.set("dead_stmts_removed", Json::from(s.opt.dead_stmts_removed));
    opt.set("devirtualized", Json::from(s.opt.devirtualized));
    opt.set("inlined", Json::from(s.opt.inlined));
    o.set("optimize", opt);

    o.set("size_before", size_json(&s.size_before));
    o.set("size_after_mono", size_json(&s.size_after_mono));
    o.set("size_after", size_json(&s.size_after));
    o.set("expansion_ratio", Json::Num(c.expansion_ratio()));

    let mut times = Json::object();
    times.set("mono_us", Json::Num(s.times.mono.as_secs_f64() * 1e6));
    times.set("norm_us", Json::Num(s.times.norm.as_secs_f64() * 1e6));
    times.set("opt_us", Json::Num(s.times.opt.as_secs_f64() * 1e6));
    times.set("total_us", Json::Num(s.times.total().as_secs_f64() * 1e6));
    o.set("pass_times", times);
    o
}

fn size_json(s: &vgl_ir::ModuleSize) -> Json {
    let mut o = Json::object();
    o.set("methods", Json::from(s.methods));
    o.set("classes", Json::from(s.classes));
    o.set("expr_nodes", Json::from(s.expr_nodes));
    o.set("locals", Json::from(s.locals));
    o
}

fn outcome_json(run: &RunOutcome) -> Json {
    let mut o = Json::object();
    match &run.result {
        Ok(v) => o.set("result", Json::Str(v.clone())),
        Err(e) => o.set("error", Json::Str(e.clone())),
    }
    o.set("output_bytes", Json::from(run.output.len()));
    o
}

fn interp_stats_json(s: &InterpStats) -> Json {
    let mut o = Json::object();
    o.set("steps", Json::from(s.steps));
    o.set("callsite_checks", Json::from(s.callsite_checks));
    o.set("callsite_adaptations", Json::from(s.callsite_adaptations));
    o.set("type_substitutions", Json::from(s.type_substitutions));
    o.set("env_lookups", Json::from(s.env_lookups));
    o.set("env_depth_total", Json::from(s.env_depth_total));
    o.set("max_env_depth", Json::from(s.max_env_depth));
    let mut a = Json::object();
    a.set("tuples", Json::from(s.allocs.tuples));
    a.set("objects", Json::from(s.allocs.objects));
    a.set("arrays", Json::from(s.allocs.arrays));
    a.set("closures", Json::from(s.allocs.closures));
    o.set("allocs", a);
    o
}

/// What the bytecode back-end optimizer did (static rewrite counts).
fn fuse_json(f: &crate::FuseStats) -> Json {
    let mut o = Json::object();
    o.set("instrs_before", Json::from(f.instrs_before));
    o.set("instrs_after", Json::from(f.instrs_after));
    o.set("copies_propagated", Json::from(f.copies_propagated));
    o.set("movs_coalesced", Json::from(f.movs_coalesced));
    o.set("dead_removed", Json::from(f.dead_removed));
    o.set("bin_imm_fused", Json::from(f.bin_imm_fused));
    o.set("cmp_br_fused", Json::from(f.cmp_br_fused));
    o.set("not_br_folded", Json::from(f.not_br_folded));
    o.set("field_ret_fused", Json::from(f.field_ret_fused));
    o.set("inc_local_fused", Json::from(f.inc_local_fused));
    o.set("global_fused", Json::from(f.global_fused));
    o
}

fn cache_json(c: &crate::CacheStats) -> Json {
    let mut o = Json::object();
    o.set("lookups", Json::from(c.lookups));
    o.set("hits", Json::from(c.hits));
    o.set("unique", Json::from(c.unique));
    o.set("hit_rate", Json::Num(c.hit_rate()));
    o
}

/// The parallel/cached back-end report: effective jobs, per-pass instance
/// cache effectiveness, and worker-attributed spans.
fn backend_json(b: &crate::BackendReport) -> Json {
    let mut o = Json::object();
    o.set("jobs", Json::from(b.jobs));
    o.set("norm_cache", cache_json(&b.norm_cache));
    o.set("opt_cache", cache_json(&b.opt_cache));
    let mut workers = Json::Arr(Vec::new());
    if let Json::Arr(items) = &mut workers {
        for w in &b.workers {
            let mut wo = Json::object();
            wo.set("phase", Json::Str(w.phase.to_string()));
            wo.set("worker", Json::from(w.worker));
            wo.set("items", Json::from(w.items));
            wo.set("start_us", Json::Num(w.start.as_secs_f64() * 1e6));
            wo.set("dur_us", Json::Num(w.duration.as_secs_f64() * 1e6));
            items.push(wo);
        }
    }
    o.set("workers", workers);
    o
}

fn vm_stats_json(s: &VmStats) -> Json {
    let mut o = Json::object();
    o.set("instrs", Json::from(s.instrs));
    o.set("calls", Json::from(s.calls));
    o.set("virtual_calls", Json::from(s.virtual_calls));
    o.set("closure_calls", Json::from(s.closure_calls));
    o.set("ic_hits", Json::from(s.ic_hits));
    o.set("ic_misses", Json::from(s.ic_misses));
    o.set("ic_hit_rate", Json::Num(s.ic_hit_rate()));
    o.set("tier_ups", Json::from(s.tier_ups));
    o.set("deopts", Json::from(s.deopts));
    o.set("guarded_calls", Json::from(s.guarded_calls));
    o.set("inlined_calls", Json::from(s.inlined_calls));
    o.set("ret_spills", Json::from(s.ret_spills));
    let mut h = Json::object();
    h.set("objects", Json::from(s.heap.objects));
    h.set("arrays", Json::from(s.heap.arrays));
    h.set("closures", Json::from(s.heap.closures));
    h.set("tuple_boxes", Json::from(s.heap.tuple_boxes));
    h.set("collections", Json::from(s.heap.collections));
    h.set("minor_collections", Json::from(s.heap.minor_collections));
    h.set("major_collections", Json::from(s.heap.major_collections));
    h.set("copied_slots", Json::from(s.heap.copied_slots));
    h.set("promoted_slots", Json::from(s.heap.promoted_slots));
    h.set("allocated_slots", Json::from(s.heap.allocated_slots));
    o.set("heap", h);
    o
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Compiler;

    #[test]
    fn report_round_trips_through_the_parser() {
        let c = Compiler::new()
            .compile(
                "def pair<T>(x: T) -> (T, T) { return (x, x); }\n\
                 def main() -> int { var p = pair(21); return p.0 + p.1; }",
            )
            .expect("compiles");
        let i = c.interpret();
        let (v, prof, hot) = c.execute_profiled_full();
        let j = stats_json(&c, Some(&i), Some(&v), Some(&prof), Some(&hot));
        let text = j.render();
        let back = vgl_obs::json::parse(&text).expect("valid json");
        assert_eq!(back.get("vm").and_then(|v| v.get("result")).and_then(Json::as_str), Some("42"));
        assert_eq!(
            back.get("interp").and_then(|v| v.get("result")).and_then(Json::as_str),
            Some("42")
        );
        let phases = back.get("phases").and_then(Json::as_arr).expect("phases array");
        let names: Vec<&str> =
            phases.iter().filter_map(|p| p.get("name").and_then(Json::as_str)).collect();
        assert_eq!(names, ["lex", "parse", "sema", "mono", "normalize", "optimize", "lower"]);
        // The interpreter boxes the tuple; the VM structurally cannot.
        let tuples = back
            .get("interp")
            .and_then(|v| v.get("stats"))
            .and_then(|v| v.get("allocs"))
            .and_then(|v| v.get("tuples"))
            .and_then(Json::as_u64);
        assert!(tuples.unwrap_or(0) > 0, "interp should box tuples: {tuples:?}");
        let backend = back.get("backend").expect("backend object");
        assert!(backend.get("jobs").and_then(Json::as_u64).unwrap_or(0) >= 1);
        assert!(
            backend.get("opt_cache").and_then(|v| v.get("lookups")).and_then(Json::as_u64)
                .unwrap_or(0)
                > 0,
            "optimize should have fingerprinted method instances"
        );
        assert!(backend.get("workers").and_then(Json::as_arr).is_some());
        let opcodes =
            back.get("vm").and_then(|v| v.get("profile")).and_then(|v| v.get("opcodes"));
        let retired: u64 = match opcodes {
            Some(Json::Obj(entries)) => entries.iter().filter_map(|(_, v)| v.as_u64()).sum(),
            _ => 0,
        };
        assert!(retired > 0, "profile should retire instructions");

        // The unified `runtime` object: one schema across both engines,
        // with tuple boxing at the same key on each side.
        let rt = back.get("runtime").expect("runtime object");
        let rt_tuples = |engine: &str| {
            rt.get(engine).and_then(|v| v.get("tuple_boxes")).and_then(Json::as_u64)
        };
        assert!(rt_tuples("interp").unwrap_or(0) > 0, "interp boxes tuples");
        assert_eq!(rt_tuples("vm"), Some(0), "the VM structurally cannot box tuples");
        let ic = rt.get("vm").and_then(|v| v.get("ic")).expect("ic counters");
        assert!(ic.get("hit_rate").and_then(Json::as_f64).is_some());
        let hotness = rt
            .get("vm")
            .and_then(|v| v.get("hotness"))
            .and_then(Json::as_arr)
            .expect("hotness ranking");
        assert!(!hotness.is_empty());
        assert!(hotness[0].get("excl_instrs").and_then(Json::as_u64).is_some());
    }
}
