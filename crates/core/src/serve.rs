//! `vgld`: the compile-as-a-service daemon.
//!
//! One process, one unix socket, many concurrent sessions. Each
//! connection is served by its own thread; all of them compile through a
//! single shared [`IncrementalCompiler`], so every request warms the
//! persistent content-addressed stores for every other client — the
//! edit/recompile cycle an editor or build server drives hits the
//! per-function cache for everything the edit did not touch.
//!
//! Robustness contract (enforced by the protocol-chaos fuzz lane and the
//! golden frame tests): a malformed, oversized, truncated, or interleaved
//! frame gets an error response where the transport still works and costs
//! at most that one connection. Request handlers run under
//! `catch_unwind`, so a panic in a compile (an internal compiler error)
//! is reported to the one client that triggered it and the daemon stays
//! up. Nothing a client sends can make the daemon exit except an explicit
//! `shutdown` request.
//!
//! Observability: every request is timed and recorded as a `vgl-obs` span
//! (JSON-lines, retrievable via [`Daemon::trace_lines`]); `stats` reports
//! per-command counts, live session names, in-flight requests, store hit
//! rates, and p50/p90/p99 request latency.

use std::collections::HashMap;
use std::io::{self, Read};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use vgl_obs::{FieldValue, JsonLinesSink, Tracer};

use crate::incremental::IncrementalCompiler;
use crate::proto::{self, error_response, ok_response, read_frame, write_frame};
use crate::{Compiler, Options};

pub use crate::proto::Request;
pub use vgl_obs::json::Json;

/// How a daemon is configured. The compiler options are fixed for the
/// daemon's lifetime — they are part of every cache key, so one daemon
/// serves exactly one configuration (as `vglc --serve` flags request).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Compiler options shared by every request.
    pub options: Options,
    /// Level-1 (whole-artifact) store capacity.
    pub artifact_capacity: usize,
    /// Level-2 (per-function) store capacity.
    pub func_capacity: usize,
    /// A connection with no complete read for this long is dropped; keeps
    /// half-open peers from pinning threads forever.
    pub idle_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            options: Options::default(),
            artifact_capacity: crate::incremental::DEFAULT_ARTIFACT_CAPACITY,
            func_capacity: crate::incremental::DEFAULT_FUNC_CAPACITY,
            idle_timeout: Duration::from_secs(30),
        }
    }
}

/// Bounded reservoir of request latencies; percentiles sort a copy on
/// demand. Capacity 4096 ≈ the last few minutes of a busy daemon, enough
/// for serving percentiles without unbounded growth.
struct LatencyRing {
    samples: Vec<u64>,
    next: usize,
    recorded: u64,
}

const LATENCY_CAPACITY: usize = 4096;

impl LatencyRing {
    fn new() -> LatencyRing {
        LatencyRing { samples: Vec::new(), next: 0, recorded: 0 }
    }

    fn record(&mut self, micros: u64) {
        if self.samples.len() < LATENCY_CAPACITY {
            self.samples.push(micros);
        } else {
            self.samples[self.next] = micros;
            self.next = (self.next + 1) % LATENCY_CAPACITY;
        }
        self.recorded += 1;
    }

    /// (p50, p90, p99, max) over the retained window, zeros when empty.
    fn percentiles(&self) -> (u64, u64, u64, u64) {
        if self.samples.is_empty() {
            return (0, 0, 0, 0);
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let at = |q: f64| sorted[((sorted.len() - 1) as f64 * q).round() as usize];
        (at(0.50), at(0.90), at(0.99), *sorted.last().expect("non-empty"))
    }
}

/// Everything the request threads share.
struct DaemonState {
    compiler: IncrementalCompiler,
    shutdown: AtomicBool,
    started: Instant,
    in_flight: AtomicUsize,
    connections: AtomicUsize,
    /// Requests served per command name, plus `"errors"`.
    counts: Mutex<HashMap<&'static str, u64>>,
    /// Session name → requests served for it.
    sessions: Mutex<HashMap<String, u64>>,
    latency: Mutex<LatencyRing>,
    /// Accumulated per-request spans, JSON-lines.
    trace: Mutex<String>,
    idle_timeout: Duration,
}

impl DaemonState {
    fn count(&self, key: &'static str) {
        *self.counts.lock().expect("counts poisoned").entry(key).or_insert(0) += 1;
    }

    fn note_session(&self, name: &str) {
        let mut s = self.sessions.lock().expect("sessions poisoned");
        match s.get_mut(name) {
            Some(n) => *n += 1,
            None => {
                s.insert(name.to_string(), 1);
            }
        }
    }

    /// Handles one decoded request. The bool asks the connection loop to
    /// stop reading (shutdown).
    fn handle(self: &Arc<Self>, req: &Request) -> (Json, bool) {
        match req {
            Request::Compile { session, source } => {
                self.count("compile");
                self.note_session(session);
                (self.compile_response(source, None), false)
            }
            Request::Run { session, source } => {
                self.count("run");
                self.note_session(session);
                (self.compile_response(source, Some(())), false)
            }
            Request::Check { session, source } => {
                self.count("check");
                self.note_session(session);
                let report = Compiler::with_options(*self.compiler.options())
                    .check("<serve>", source);
                let mut resp = ok_response();
                resp.set("report", report.to_json());
                (resp, false)
            }
            Request::Stats => {
                self.count("stats");
                (self.stats_response(), false)
            }
            Request::Shutdown => {
                self.count("shutdown");
                self.shutdown.store(true, Ordering::SeqCst);
                let mut resp = ok_response();
                resp.set("shutting_down", Json::Bool(true));
                (resp, true)
            }
        }
    }

    /// `compile` and `run` share the cached pipeline; `run` additionally
    /// executes on the VM.
    fn compile_response(&self, source: &str, run: Option<()>) -> Json {
        // Per-request store deltas; approximate when requests overlap (the
        // counters are global), exact for the serial smoke/golden tests.
        let before = self.compiler.stats();
        let started = Instant::now();
        match self.compiler.compile(source) {
            Ok(c) => {
                let after = self.compiler.stats();
                let mut resp = ok_response();
                resp.set("compiled", Json::Bool(true));
                resp.set("code_size", Json::from(c.code_size()));
                resp.set("methods", Json::from(c.compiled.methods.len()));
                resp.set(
                    "compile_us",
                    Json::from(started.elapsed().as_micros() as u64),
                );
                let mut warm = Json::object();
                warm.set(
                    "artifact_hit",
                    Json::Bool(after.artifacts.hits > before.artifacts.hits),
                );
                warm.set(
                    "methods_spliced",
                    Json::from(after.methods_spliced - before.methods_spliced),
                );
                warm.set(
                    "methods_compiled",
                    Json::from(after.methods_compiled - before.methods_compiled),
                );
                resp.set("warm", warm);
                if run.is_some() {
                    let outcome = c.execute();
                    match outcome.result {
                        Ok(v) => resp.set("result", Json::from(v.as_str())),
                        Err(e) => resp.set("trap", Json::from(e.as_str())),
                    }
                    resp.set("output", Json::from(outcome.output.as_str()));
                }
                resp
            }
            Err(e) => {
                let mut resp = ok_response();
                resp.set("compiled", Json::Bool(false));
                resp.set(
                    "diagnostics",
                    Json::Arr(
                        e.rendered.iter().map(|r| Json::from(r.as_str())).collect(),
                    ),
                );
                resp
            }
        }
    }

    fn stats_response(&self) -> Json {
        let mut resp = ok_response();
        resp.set(
            "uptime_ms",
            Json::from(self.started.elapsed().as_millis() as u64),
        );
        resp.set("in_flight", Json::from(self.in_flight.load(Ordering::Relaxed)));
        resp.set(
            "connections",
            Json::from(self.connections.load(Ordering::Relaxed)),
        );
        let mut counts = Json::object();
        {
            let c = self.counts.lock().expect("counts poisoned");
            let mut keys: Vec<_> = c.keys().copied().collect();
            keys.sort_unstable();
            for k in keys {
                counts.set(k, Json::from(c[k]));
            }
        }
        resp.set("requests", counts);
        let mut sessions = Json::object();
        {
            let s = self.sessions.lock().expect("sessions poisoned");
            let mut names: Vec<_> = s.keys().cloned().collect();
            names.sort_unstable();
            for n in names {
                let count = s[&n];
                sessions.set(&n, Json::from(count));
            }
        }
        resp.set("sessions", sessions);
        let st = self.compiler.stats();
        let store = |s: vgl_passes::StoreStats| {
            let mut o = Json::object();
            o.set("lookups", Json::from(s.lookups));
            o.set("hits", Json::from(s.hits));
            o.set("inserts", Json::from(s.inserts));
            o.set("evictions", Json::from(s.evictions));
            o.set("hit_rate", Json::Num(s.hit_rate()));
            o
        };
        let mut cache = Json::object();
        cache.set("artifacts", store(st.artifacts));
        cache.set("funcs", store(st.funcs));
        cache.set("methods_spliced", Json::from(st.methods_spliced));
        cache.set("methods_compiled", Json::from(st.methods_compiled));
        cache.set("splice_rate", Json::Num(st.splice_rate()));
        resp.set("cache", cache);
        let (p50, p90, p99, max) = self.latency.lock().expect("latency poisoned").percentiles();
        let recorded = self.latency.lock().expect("latency poisoned").recorded;
        let mut lat = Json::object();
        lat.set("count", Json::from(recorded));
        lat.set("p50_us", Json::from(p50));
        lat.set("p90_us", Json::from(p90));
        lat.set("p99_us", Json::from(p99));
        lat.set("max_us", Json::from(max));
        resp.set("latency_us", lat);
        resp
    }

    /// Emits one `vgl-obs` span for a finished request into the shared
    /// JSON-lines trace.
    fn span(&self, cmd: &'static str, dur: Duration, ok: bool) {
        let mut sink = JsonLinesSink::new();
        {
            let mut tracer = Tracer::new(&mut sink);
            let span = tracer.start("request");
            tracer.finish(
                span,
                &[
                    ("cmd", FieldValue::Str(cmd.to_string())),
                    ("dur_us", FieldValue::UInt(dur.as_micros() as u64)),
                    ("ok", FieldValue::Bool(ok)),
                ],
            );
        }
        self.trace
            .lock()
            .expect("trace poisoned")
            .push_str(sink.as_str());
    }
}

/// A [`Read`] adapter over the connection that polls a short socket
/// timeout so it can observe daemon shutdown and the idle limit without a
/// dedicated wakeup channel. Timeouts during an *idle* wait surface as
/// EOF (clean close); shutdown likewise.
struct ConnReader<'a> {
    stream: &'a UnixStream,
    state: &'a DaemonState,
    last_byte: Instant,
}

impl Read for ConnReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        loop {
            if self.state.shutdown.load(Ordering::SeqCst) {
                return Ok(0);
            }
            match (&mut &*self.stream).read(buf) {
                Ok(0) => return Ok(0),
                Ok(n) => {
                    self.last_byte = Instant::now();
                    return Ok(n);
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    if self.last_byte.elapsed() > self.state.idle_timeout {
                        return Ok(0);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

/// Serves one connection: a loop of read-frame → handle → write-frame.
/// Frame errors get a best-effort error response and close only this
/// connection. Handler panics are caught and reported as internal errors.
fn handle_conn(state: Arc<DaemonState>, stream: UnixStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(25)));
    state.connections.fetch_add(1, Ordering::Relaxed);
    let mut reader =
        ConnReader { stream: &stream, state: &state, last_byte: Instant::now() };
    loop {
        let frame = read_frame(&mut reader);
        let msg = match frame {
            Ok(Some(msg)) => msg,
            Ok(None) => break,
            Err(e) => {
                state.count("errors");
                let _ = write_frame(&mut &stream, &error_response(&e.to_string()));
                break;
            }
        };
        state.in_flight.fetch_add(1, Ordering::SeqCst);
        let started = Instant::now();
        let (cmd, outcome) = match Request::from_json(&msg) {
            Ok(req) => {
                let cmd = match req {
                    Request::Compile { .. } => "compile",
                    Request::Check { .. } => "check",
                    Request::Run { .. } => "run",
                    Request::Stats => "stats",
                    Request::Shutdown => "shutdown",
                };
                // A panicking handler is an internal compiler error; it
                // must cost this request, not the daemon.
                let st = Arc::clone(&state);
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                    move || st.handle(&req),
                ));
                (cmd, result)
            }
            Err(e) => {
                state.count("errors");
                (
                    "invalid",
                    Ok((error_response(&format!("invalid request: {e}")), false)),
                )
            }
        };
        let (resp, stop) = match outcome {
            Ok(pair) => pair,
            Err(_) => {
                state.count("errors");
                (error_response("internal error: request handler panicked"), false)
            }
        };
        let dur = started.elapsed();
        state.latency.lock().expect("latency poisoned").record(dur.as_micros() as u64);
        state.in_flight.fetch_sub(1, Ordering::SeqCst);
        let ok = resp.get("ok").and_then(Json::as_bool).unwrap_or(false);
        state.span(cmd, dur, ok);
        if write_frame(&mut &stream, &resp).is_err() {
            break;
        }
        if stop {
            break;
        }
    }
    state.connections.fetch_sub(1, Ordering::Relaxed);
}

/// A running daemon: the bound socket plus its accept thread. Dropping the
/// handle does **not** stop the daemon; send [`Request::Shutdown`] (or call
/// [`Daemon::shutdown`]) and then [`Daemon::join`].
pub struct Daemon {
    path: PathBuf,
    state: Arc<DaemonState>,
    accept: Option<thread::JoinHandle<()>>,
}

impl Daemon {
    /// Binds `path` (removing a stale socket file first) and starts
    /// serving. Returns once the socket is accepting — a client may
    /// connect immediately.
    ///
    /// # Errors
    /// Propagates socket bind failures.
    pub fn start(path: &Path, config: ServeConfig) -> io::Result<Daemon> {
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        let state = Arc::new(DaemonState {
            compiler: IncrementalCompiler::with_capacity(
                Compiler::with_options(config.options),
                config.artifact_capacity,
                config.func_capacity,
            ),
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
            in_flight: AtomicUsize::new(0),
            connections: AtomicUsize::new(0),
            counts: Mutex::new(HashMap::new()),
            sessions: Mutex::new(HashMap::new()),
            latency: Mutex::new(LatencyRing::new()),
            trace: Mutex::new(String::new()),
            idle_timeout: config.idle_timeout,
        });
        let accept_state = Arc::clone(&state);
        let accept = thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_state.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let conn_state = Arc::clone(&accept_state);
                thread::spawn(move || handle_conn(conn_state, stream));
            }
        });
        Ok(Daemon { path: path.to_path_buf(), state, accept: Some(accept) })
    }

    /// The socket path clients connect to.
    pub fn socket_path(&self) -> &Path {
        &self.path
    }

    /// Whether a shutdown has been requested (by request or locally).
    pub fn shutdown_requested(&self) -> bool {
        self.state.shutdown.load(Ordering::SeqCst)
    }

    /// Requests shutdown locally (equivalent to a `shutdown` frame).
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        // Wake the accept loop: it only observes the flag on its next
        // (possibly never-arriving) connection.
        let _ = UnixStream::connect(&self.path);
    }

    /// The accumulated per-request `vgl-obs` spans, JSON-lines.
    pub fn trace_lines(&self) -> String {
        self.state.trace.lock().expect("trace poisoned").clone()
    }

    /// The current `stats` response (same shape the wire returns).
    pub fn stats_json(&self) -> Json {
        self.state.stats_response()
    }

    /// Blocks until some client sends a `shutdown` request, then tears the
    /// daemon down — the foreground `vglc serve` loop.
    pub fn wait(self) {
        while !self.shutdown_requested() {
            thread::sleep(Duration::from_millis(50));
        }
        self.join();
    }

    /// Waits for shutdown: joins the accept loop, then waits for live
    /// connections to drain, then removes the socket file.
    pub fn join(mut self) {
        self.shutdown();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Connection threads observe the flag within one poll interval.
        while self.state.connections.load(Ordering::Relaxed) > 0 {
            thread::sleep(Duration::from_millis(5));
        }
        let _ = std::fs::remove_file(&self.path);
    }
}

/// A client connection to a running daemon. One request/response pair in
/// flight at a time (the protocol is strictly alternating per connection;
/// concurrency comes from multiple connections).
pub struct Client {
    stream: UnixStream,
}

impl Client {
    /// Connects to the daemon socket at `path`.
    ///
    /// # Errors
    /// Propagates connection failures.
    pub fn connect(path: &Path) -> io::Result<Client> {
        Ok(Client { stream: UnixStream::connect(path)? })
    }

    /// Sends `req` and waits for the response frame.
    ///
    /// # Errors
    /// Transport or framing failures; a daemon-side error still decodes
    /// as `Ok` (inspect the `ok` field).
    pub fn request(&mut self, req: &Request) -> Result<Json, proto::FrameError> {
        write_frame(&mut &self.stream, &req.to_json())?;
        match read_frame(&mut &self.stream)? {
            Some(resp) => Ok(resp),
            None => Err(proto::FrameError::Truncated),
        }
    }
}

/// What the protocol-chaos lane did; `failure` is `None` when the serving
/// contract held for every case.
#[derive(Clone, Debug, Default)]
pub struct ProtocolChaosReport {
    /// Hostile client scripts executed.
    pub cases: u64,
    /// Individual socket writes performed.
    pub chunks_sent: u64,
    /// Total hostile bytes written.
    pub bytes_sent: u64,
    /// Response frames the daemon produced (valid or error).
    pub responses: u64,
    /// Interleaved health probes that compiled and ran a real program.
    pub health_checks: u64,
    /// First contract violation, with the seed to reproduce it.
    pub failure: Option<String>,
}

impl ProtocolChaosReport {
    /// Whether every case upheld the contract.
    pub fn ok(&self) -> bool {
        self.failure.is_none()
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "protocol chaos: {} cases, {} chunks ({} bytes) sent, {} responses, \
             {} health checks — {}",
            self.cases,
            self.chunks_sent,
            self.bytes_sent,
            self.responses,
            self.health_checks,
            if self.ok() { "all survived" } else { "FAILED" }
        )
    }
}

/// Probes daemon health end to end: compile + run a known program, expect
/// its result within `deadline`. `Err` is a contract violation (the chaos
/// traffic broke or wedged the daemon).
fn health_probe(path: &Path, deadline: Duration) -> Result<(), String> {
    let stream = UnixStream::connect(path).map_err(|e| format!("connect failed: {e}"))?;
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let req = Request::Run {
        session: "health".into(),
        source: "def main() -> int { return 40 + 2; }".into(),
    };
    write_frame(&mut &stream, &req.to_json()).map_err(|e| format!("write failed: {e}"))?;
    let limit = Instant::now() + deadline;
    loop {
        match read_frame(&mut &stream) {
            Ok(Some(resp)) => {
                return if resp.get("result").and_then(Json::as_str) == Some("42") {
                    Ok(())
                } else {
                    Err(format!("unexpected health response: {resp}"))
                };
            }
            Ok(None) => return Err("daemon closed the health connection".into()),
            Err(proto::FrameError::Io(e))
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if Instant::now() > limit {
                    return Err("daemon did not answer the health probe (hang)".into());
                }
            }
            Err(e) => return Err(format!("health frame error: {e}")),
        }
    }
}

/// Runs the protocol-chaos lane: `cases` hostile client scripts
/// ([`vgl_fuzz::protocol::gen_case`]) against a live in-process daemon,
/// with a health probe every 100 cases and at the end. The contract: no
/// panic (the daemon answers the probe from the same process), no hang
/// (every probe answers within its deadline), and hostile traffic costs
/// at most its own connection.
pub fn run_protocol_chaos(
    seed: u64,
    cases: u64,
    mut progress: impl FnMut(u64),
) -> ProtocolChaosReport {
    use vgl_fuzz::protocol::{gen_case, Chunk};
    let mut report = ProtocolChaosReport::default();
    with_daemon(ServeConfig::default(), |path| {
        for i in 0..cases {
            let case_seed = seed.wrapping_add(i);
            let case = gen_case(case_seed);
            let Ok(stream) = UnixStream::connect(path) else {
                report.failure =
                    Some(format!("seed {case_seed}: daemon stopped accepting"));
                break;
            };
            let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
            let mut closed = false;
            for chunk in &case.chunks {
                match chunk {
                    Chunk::Send(bytes) => {
                        use io::Write;
                        // The daemon may already have dropped us after a
                        // malformed fragment; that is its right.
                        if (&stream).write_all(bytes).is_err() {
                            closed = true;
                            break;
                        }
                        report.chunks_sent += 1;
                        report.bytes_sent += bytes.len() as u64;
                    }
                    Chunk::Close => {
                        let _ = stream.shutdown(std::net::Shutdown::Both);
                        closed = true;
                        break;
                    }
                }
            }
            if !closed {
                let _ = stream.shutdown(std::net::Shutdown::Write);
                // Drain whatever the daemon answers; bounded so a wedged
                // daemon is a detected failure, not a hung lane.
                let limit = Instant::now() + Duration::from_secs(10);
                loop {
                    match read_frame(&mut &stream) {
                        Ok(Some(_)) => report.responses += 1,
                        Ok(None) => break,
                        Err(proto::FrameError::Io(e))
                            if matches!(
                                e.kind(),
                                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                            ) =>
                        {
                            if Instant::now() > limit {
                                report.failure = Some(format!(
                                    "seed {case_seed}: daemon neither answered nor \
                                     closed within 10s (kinds: {:?})",
                                    case.kinds
                                ));
                                break;
                            }
                        }
                        Err(_) => break,
                    }
                }
            }
            report.cases += 1;
            if report.failure.is_some() {
                break;
            }
            if (i + 1) % 100 == 0 || i + 1 == cases {
                if let Err(e) = health_probe(path, Duration::from_secs(10)) {
                    report.failure = Some(format!("after seed {case_seed}: {e}"));
                    break;
                }
                report.health_checks += 1;
            }
            progress(i + 1);
        }
    });
    report
}

/// A convenient scoped daemon for tests and benches: starts on a unique
/// socket under the system temp dir, runs `f` with the path, always joins.
pub fn with_daemon<T>(config: ServeConfig, f: impl FnOnce(&Path) -> T) -> T {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let path = std::env::temp_dir().join(format!(
        "vgld-{}-{}.sock",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let daemon = Daemon::start(&path, config).expect("daemon binds");
    let result = f(&path);
    daemon.join();
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROGRAM: &str = "def main() -> int { return 40 + 2; }";

    #[test]
    fn serves_compile_run_and_stats() {
        with_daemon(ServeConfig::default(), |path| {
            let mut client = Client::connect(path).expect("connects");
            let resp = client
                .request(&Request::Run {
                    session: "t".into(),
                    source: PROGRAM.into(),
                })
                .expect("responds");
            assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
            assert_eq!(resp.get("result").and_then(Json::as_str), Some("42"));
            // Identical resubmission is a level-1 artifact hit.
            let resp = client
                .request(&Request::Compile {
                    session: "t".into(),
                    source: PROGRAM.into(),
                })
                .expect("responds");
            assert_eq!(
                resp.get("warm").and_then(|w| w.get("artifact_hit")),
                Some(&Json::Bool(true))
            );
            let stats = client.request(&Request::Stats).expect("responds");
            assert_eq!(stats.get("ok"), Some(&Json::Bool(true)));
            assert!(
                stats
                    .get("cache")
                    .and_then(|c| c.get("artifacts"))
                    .and_then(|a| a.get("hits"))
                    .and_then(Json::as_u64)
                    .unwrap_or(0)
                    >= 1
            );
            assert!(
                stats
                    .get("latency_us")
                    .and_then(|l| l.get("count"))
                    .and_then(Json::as_u64)
                    .unwrap_or(0)
                    >= 2
            );
        });
    }

    #[test]
    fn check_reports_diagnostics_without_closing() {
        with_daemon(ServeConfig::default(), |path| {
            let mut client = Client::connect(path).expect("connects");
            let resp = client
                .request(&Request::Check {
                    session: "t".into(),
                    source: "def main() -> int { return x; }".into(),
                })
                .expect("responds");
            assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
            let errors = resp
                .get("report")
                .and_then(|r| r.get("errors"))
                .and_then(Json::as_u64)
                .unwrap_or(0);
            assert!(errors >= 1, "unknown identifier must be reported: {resp}");
            // The connection is still usable.
            let resp = client.request(&Request::Stats).expect("responds");
            assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
        });
    }

    #[test]
    fn malformed_frames_cost_one_connection_not_the_daemon() {
        use std::io::Write;
        with_daemon(ServeConfig::default(), |path| {
            // Garbage length prefix far over the bound.
            let mut s = UnixStream::connect(path).expect("connects");
            s.write_all(&u32::MAX.to_be_bytes()).expect("writes");
            s.write_all(b"junk").expect("writes");
            let resp = read_frame(&mut &s).expect("error response").expect("frame");
            assert_eq!(resp.get("ok"), Some(&Json::Bool(false)));
            // The daemon still serves a healthy client afterwards.
            let mut client = Client::connect(path).expect("connects");
            let resp = client
                .request(&Request::Run {
                    session: "t".into(),
                    source: PROGRAM.into(),
                })
                .expect("responds");
            assert_eq!(resp.get("result").and_then(Json::as_str), Some("42"));
        });
    }

    #[test]
    fn shutdown_request_stops_the_daemon() {
        let path = std::env::temp_dir()
            .join(format!("vgld-shutdown-{}.sock", std::process::id()));
        let daemon = Daemon::start(&path, ServeConfig::default()).expect("binds");
        let mut client = Client::connect(&path).expect("connects");
        let resp = client.request(&Request::Shutdown).expect("responds");
        assert_eq!(resp.get("shutting_down"), Some(&Json::Bool(true)));
        assert!(daemon.shutdown_requested());
        daemon.join();
        assert!(!path.exists(), "socket file removed on join");
    }

    #[test]
    fn concurrent_sessions_share_the_store() {
        with_daemon(ServeConfig::default(), |path| {
            let sources: Vec<String> = (0..4)
                .map(|i| format!("def main() -> int {{ return {i} + 1; }}"))
                .collect();
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    let path = path.to_path_buf();
                    let src = sources[i].clone();
                    thread::spawn(move || {
                        let mut client = Client::connect(&path).expect("connects");
                        for _ in 0..3 {
                            let resp = client
                                .request(&Request::Run {
                                    session: format!("s{i}"),
                                    source: src.clone(),
                                })
                                .expect("responds");
                            assert_eq!(
                                resp.get("result").and_then(Json::as_str),
                                Some(format!("{}", i + 1).as_str())
                            );
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("client thread");
            }
            let mut client = Client::connect(path).expect("connects");
            let stats = client.request(&Request::Stats).expect("responds");
            let sessions = stats.get("sessions").expect("sessions");
            for i in 0..4 {
                assert!(sessions.get(&format!("s{i}")).is_some(), "session s{i} recorded");
            }
        });
    }

    #[test]
    fn request_spans_reach_the_obs_trace() {
        let path = std::env::temp_dir()
            .join(format!("vgld-trace-{}.sock", std::process::id()));
        let daemon = Daemon::start(&path, ServeConfig::default()).expect("binds");
        let mut client = Client::connect(&path).expect("connects");
        client
            .request(&Request::Compile { session: "t".into(), source: PROGRAM.into() })
            .expect("responds");
        // Spans are appended after the response is computed but possibly
        // around the write; give the handler thread a generous beat (the
        // full suite can oversubscribe a small CI box).
        let mut lines = String::new();
        for _ in 0..1000 {
            lines = daemon.trace_lines();
            if !lines.is_empty() {
                break;
            }
            thread::sleep(Duration::from_millis(5));
        }
        assert!(lines.contains("\"request\""), "span recorded: {lines:?}");
        assert!(lines.contains("compile"), "cmd field recorded: {lines:?}");
        daemon.join();
    }
}
