//! Chrome-trace assembly for `vglc trace`: one timeline unifying the
//! compile phases, the parallel back-end worker lanes, the VM's function
//! spans, and GC activity.
//!
//! The layout uses two process lanes:
//!
//! * **pid 1 "compile"** — tid 0 carries the phase spans (lex through
//!   fuse) laid end to end from `t = 0`; tids 1+ carry one lane per
//!   back-end worker, offset from the start of the parallel phase that ran
//!   them;
//! * **pid 2 "runtime"** — tid 0 carries the VM's per-function wall-clock
//!   spans (offset so execution starts where compilation ends), with GC
//!   collections as instant ticks and the heap occupancy curve as a
//!   stacked counter track (`live` + `free` = semispace capacity).
//!
//! Truncation is reported, never hidden: when the VM's span log hit its
//! cap, a `vm-spans-truncated` instant carries the dropped count; when the
//! run trapped, a `trap` instant carries the error.

use crate::{Compilation, RunOutcome};
use vgl_obs::json::Json;
use vgl_obs::trace::ChromeTrace;
use vgl_vm::TraceLog;

/// Process id of the compile-time lanes.
pub const COMPILE_PID: u64 = 1;
/// Process id of the runtime lanes.
pub const RUNTIME_PID: u64 = 2;
/// First thread id used for back-end worker lanes (tid 0 is the phases).
pub const WORKER_TID0: u64 = 1;

/// Builds the unified Chrome trace for one compiled-and-executed program.
///
/// `run` and `log` come from [`Compilation::execute_traced`]; the compile
/// side is read off the compilation's own [`crate::PhaseTrace`].
pub fn chrome_trace(c: &Compilation, run: &RunOutcome, log: &TraceLog) -> ChromeTrace {
    let mut t = ChromeTrace::new();
    t.name_process(COMPILE_PID, "compile");
    t.name_thread(COMPILE_PID, 0, "phases");
    t.name_process(RUNTIME_PID, "runtime");
    t.name_thread(RUNTIME_PID, 0, "vm");

    // Compile phases laid end to end. The per-phase samples are wall-clock
    // durations, not absolute timestamps, so the trace presents them as a
    // contiguous strip starting at t = 0.
    let mut phase_start: Vec<(&str, f64)> = Vec::new();
    let mut cursor = 0.0;
    for p in &c.trace.phases {
        let dur = p.duration.as_secs_f64() * 1e6;
        phase_start.push((p.name, cursor));
        t.complete(
            p.name,
            COMPILE_PID,
            0,
            cursor,
            dur,
            &[
                ("items_in", Json::from(p.items_in as u64)),
                ("items_out", Json::from(p.items_out as u64)),
            ],
        );
        cursor += dur;
    }
    let compile_total = cursor;

    // Worker lanes. A sample's `start` is relative to its pool's start,
    // which coincides with its parallel phase's start. The "hash"
    // fingerprinting pool has no phase of its own — it runs at the head of
    // the next parallel phase in commit order, so anchor it there.
    let anchor =
        |name: &str| phase_start.iter().find(|&&(n, _)| n == name).map(|&(_, s)| s);
    let workers = &c.trace.workers;
    let mut max_worker = None;
    for (i, w) in workers.iter().enumerate() {
        let base = anchor(w.phase)
            .or_else(|| workers[i + 1..].iter().find_map(|later| anchor(later.phase)))
            .unwrap_or(0.0);
        max_worker = Some(max_worker.unwrap_or(0).max(w.worker));
        t.complete(
            w.phase,
            COMPILE_PID,
            WORKER_TID0 + w.worker as u64,
            base + w.start.as_secs_f64() * 1e6,
            w.duration.as_secs_f64() * 1e6,
            &[("items", Json::from(w.items as u64))],
        );
    }
    if let Some(max) = max_worker {
        for worker in 0..=max {
            t.name_thread(COMPILE_PID, WORKER_TID0 + worker as u64, &format!("worker {worker}"));
        }
    }

    // VM function spans, shifted so the runtime strip starts where the
    // compile strip ends.
    let at = |d: std::time::Duration| compile_total + d.as_secs_f64() * 1e6;
    let mut run_end = compile_total;
    for span in log.spans() {
        let name = c
            .program
            .funcs
            .get(span.func as usize)
            .map(|f| f.name.as_str())
            .unwrap_or("<unknown>");
        t.complete(
            name,
            RUNTIME_PID,
            0,
            at(span.start),
            span.dur.as_secs_f64() * 1e6,
            &[("func", Json::from(span.func as u64)), ("depth", Json::from(span.depth as u64))],
        );
        run_end = run_end.max(at(span.start) + span.dur.as_secs_f64() * 1e6);
    }

    // GC: an instant tick per collection (named by generation, so minor
    // and major pauses are visually distinct) plus the occupancy curve.
    // The `live`/`free` series stack to the heap capacity in the viewer.
    for g in &log.gc {
        let ts = at(g.at);
        t.instant(
            match g.kind {
                vgl_vm::GcKind::Minor => "gc-minor",
                vgl_vm::GcKind::Major => "gc-major",
            },
            RUNTIME_PID,
            0,
            ts,
            &[
                ("kind", Json::Str(g.kind.label().into())),
                ("pause_us", Json::Num(g.pause.as_secs_f64() * 1e6)),
                ("live_slots", Json::from(g.live_slots as u64)),
                ("capacity_slots", Json::from(g.capacity_slots as u64)),
            ],
        );
        t.counter(
            "heap",
            RUNTIME_PID,
            ts,
            &[
                ("live", g.live_slots as f64),
                ("free", g.capacity_slots.saturating_sub(g.live_slots) as f64),
            ],
        );
        run_end = run_end.max(ts);
    }

    // Tier transitions: tier-up / deopt instants on the runtime lane, so
    // the warmup knee is visible right next to the function spans.
    for ti in &log.tier {
        let ts = at(ti.at);
        let name = c
            .program
            .funcs
            .get(ti.func as usize)
            .map(|f| f.name.as_str())
            .unwrap_or("<unknown>");
        t.instant(
            if ti.deopt { "deopt" } else { "tier-up" },
            RUNTIME_PID,
            0,
            ts,
            &[("func", Json::Str(name.to_string()))],
        );
        run_end = run_end.max(ts);
    }

    if log.spans_dropped() > 0 {
        t.instant(
            "vm-spans-truncated",
            RUNTIME_PID,
            0,
            run_end,
            &[("dropped", Json::from(log.spans_dropped()))],
        );
    }
    if let Err(e) = &run.result {
        t.instant("trap", RUNTIME_PID, 0, run_end, &[("error", Json::Str(e.clone()))]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Compiler;
    use vgl_obs::json::parse;

    const ALLOCATING: &str = "class Node { var v: int; var next: Node; new(v, next) { } }\n\
        def build(n: int) -> Node {\n\
          var head: Node;\n\
          for (i = 0; i < n; i = i + 1) head = Node.new(i, head);\n\
          return head;\n\
        }\n\
        def total(h: Node) -> int {\n\
          var s = 0;\n\
          for (x = h; x != null; x = x.next) s = s + x.v;\n\
          return s;\n\
        }\n\
        def main() -> int {\n\
          var t = 0;\n\
          for (round = 0; round < 40; round = round + 1) t = t + total(build(50));\n\
          return t;\n\
        }";

    #[test]
    fn trace_unifies_compile_and_runtime_lanes() {
        // Small heap to force collections.
        let options = crate::Options { heap_slots: 512, ..Default::default() };
        let c = Compiler::with_options(options).compile(ALLOCATING).expect("compiles");
        let (run, log) = c.execute_traced();
        assert!(run.result.is_ok(), "{:?}", run.result);
        let trace = chrome_trace(&c, &run, &log);

        let parsed = parse(&trace.render()).expect("valid Chrome trace JSON");
        let events = parsed.get("traceEvents").unwrap().as_arr().unwrap().to_vec();
        assert!(!events.is_empty());

        let phase = |ev: &Json| ev.get("ph").and_then(Json::as_str).unwrap_or("").to_string();
        let name = |ev: &Json| ev.get("name").and_then(Json::as_str).unwrap_or("").to_string();
        let pid = |ev: &Json| ev.get("pid").and_then(Json::as_f64).unwrap_or(-1.0) as u64;

        // Compile-phase spans are present as X events on pid 1.
        for want in ["lex", "parse", "sema", "mono", "normalize", "optimize", "lower"] {
            assert!(
                events.iter().any(|e| phase(e) == "X" && name(e) == want && pid(e) == COMPILE_PID),
                "missing compile span {want}"
            );
        }
        // VM function spans on pid 2, including main.
        assert!(
            events
                .iter()
                .any(|e| phase(e) == "X" && pid(e) == RUNTIME_PID && name(e).contains("main")),
            "missing VM span for main"
        );
        // GC instants and the occupancy counter for an allocating program.
        assert!(events
            .iter()
            .any(|e| phase(e) == "i" && (name(e) == "gc-minor" || name(e) == "gc-major")));
        assert!(events.iter().any(|e| phase(e) == "C" && name(e) == "heap"));
        // Lanes are labeled.
        assert!(events.iter().any(|e| phase(e) == "M" && name(e) == "process_name"));

        // Runtime spans start after the compile strip ends.
        let compile_end: f64 = events
            .iter()
            .filter(|e| phase(e) == "X" && pid(e) == COMPILE_PID)
            .map(|e| {
                e.get("ts").and_then(Json::as_f64).unwrap_or(0.0)
                    + e.get("dur").and_then(Json::as_f64).unwrap_or(0.0)
            })
            .fold(0.0, f64::max);
        let runtime_min = events
            .iter()
            .filter(|e| phase(e) == "X" && pid(e) == RUNTIME_PID)
            .map(|e| e.get("ts").and_then(Json::as_f64).unwrap_or(0.0))
            .fold(f64::INFINITY, f64::min);
        assert!(runtime_min >= compile_end - 1e-6, "{runtime_min} < {compile_end}");
    }

    #[test]
    fn worker_lanes_appear_at_higher_job_counts() {
        let c = Compiler::new().with_jobs(8).with_fuse().compile(ALLOCATING).expect("compiles");
        let (run, log) = c.execute_traced();
        let trace = chrome_trace(&c, &run, &log);
        let parsed = parse(&trace.render()).expect("valid");
        let events = parsed.get("traceEvents").unwrap().as_arr().unwrap().to_vec();
        let worker_spans = events
            .iter()
            .filter(|e| {
                e.get("ph").and_then(Json::as_str) == Some("X")
                    && e.get("pid").and_then(Json::as_f64) == Some(COMPILE_PID as f64)
                    && e.get("tid").and_then(Json::as_f64).unwrap_or(0.0) >= WORKER_TID0 as f64
            })
            .count();
        assert!(worker_spans >= 1, "expected at least one worker lane span at --jobs 8");
        assert!(events.iter().any(|e| {
            e.get("name").and_then(Json::as_str) == Some("thread_name")
                && e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    .map(|n| n.starts_with("worker "))
                    .unwrap_or(false)
        }));
    }

    #[test]
    fn trapped_runs_still_export_with_a_trap_instant() {
        let src = "class A { var x: int; new(x) { } }\n\
            def main() -> int { var a: A; return a.x; }";
        let c = Compiler::new().compile(src).expect("compiles");
        let (run, log) = c.execute_traced();
        assert!(run.result.is_err());
        let trace = chrome_trace(&c, &run, &log);
        let parsed = parse(&trace.render()).expect("valid");
        let events = parsed.get("traceEvents").unwrap().as_arr().unwrap().to_vec();
        let trap = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("trap"))
            .expect("trap instant");
        let err = trap.get("args").and_then(|a| a.get("error")).and_then(Json::as_str);
        assert_eq!(err, Some("!NullCheckException"));
        // The unwound frames were still closed into spans.
        assert!(events
            .iter()
            .any(|e| e.get("name").and_then(Json::as_str).map(|n| n.contains("main")) == Some(true)));
    }
}
