//! Cross-request incremental compilation — the daemon's warm path.
//!
//! [`IncrementalCompiler`] wraps a [`Compiler`] with two persistent,
//! content-addressed, bounded-LRU stores (`vgl_passes::ShardedLru`):
//!
//! * **Level 1 — whole artifacts.** Keyed by a 128-bit source fingerprint
//!   plus the codegen-relevant option bits. A byte-identical resubmission
//!   (the same file saved twice, or two clients compiling the same source)
//!   returns the shared [`Compilation`] `Arc` without running anything.
//!
//! * **Level 2 — per-function artifacts.** Keyed by
//!   ([`vgl_passes::context_digest`], `method_fingerprint`, option bits),
//!   both computed **post-normalize**. On an edit, the front end, mono,
//!   and normalize always run — normalize is cheap and serial, and its
//!   wrapper synthesis and type interning are order-sensitive global
//!   state, so skipping it would change id spaces. Every method whose
//!   fingerprint matches under the same context digest then skips
//!   optimize (its cached *post-optimize* body is spliced into the module
//!   and masked out of rewriting, so the devirtualization and inlining
//!   tables other methods fold against match the cold fixpoint) and skips
//!   lower + fuse (its cached fused bytecode is relocated into the
//!   reserved function slot by [`vgl_vm::lower_fuse_incremental`]).
//!
//! The contract, pinned by the serving determinism suite: warm output is
//! **byte-identical** to a cold one-shot [`Compiler::compile`] of the same
//! source under the same options. A digest or fingerprint miss falls back
//! to exactly the cold path for that method, so the stores can be evicted
//! (or raced) freely without affecting output — only latency.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use vgl_obs::PhaseTrace;
use vgl_passes::{
    cache, context_digest, BackendConfig, BackendReport, OptStats, ShardedLru, StoreStats,
};
use vgl_syntax::Diagnostics;
use vgl_vm::{ReusePlan, SpliceFunc};

use crate::{
    render, render_violations, Compilation, CompileError, Compiler, Options, PassTimes,
    PipelineStats,
};

/// Default level-1 capacity: whole compilations are big (module + bytecode),
/// and a serving session rarely juggles more than a few dozen live sources.
pub const DEFAULT_ARTIFACT_CAPACITY: usize = 64;

/// Default level-2 capacity: per-function artifacts are small and the whole
/// point is surviving edits, so keep room for many generations of a
/// program's method set.
pub const DEFAULT_FUNC_CAPACITY: usize = 4096;

/// Level-2 store key: an artifact is reusable exactly when the module
/// context, the method content, and the codegen options all match.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct FuncKey {
    ctx: (u64, u64),
    fp: (u64, u64),
    opts: u64,
}

/// One cached function: the post-optimize IR body (spliced into warm
/// modules so unchanged methods skip the optimizer while still feeding its
/// interprocedural tables) and the relocatable fused bytecode capture.
struct CachedFunc {
    opt_body: Option<vgl_ir::Body>,
    opt_locals: Vec<vgl_ir::Local>,
    splice: Arc<SpliceFunc>,
}

/// Snapshot of the incremental stores' effectiveness, for `vgld stats`.
#[derive(Clone, Copy, Debug, Default)]
pub struct IncrementalStats {
    /// Level-1 (whole-artifact) store counters.
    pub artifacts: StoreStats,
    /// Level-2 (per-function) store counters.
    pub funcs: StoreStats,
    /// Methods whose optimize+lower+fuse work was skipped via splicing.
    pub methods_spliced: usize,
    /// Methods compiled from scratch (and published to the store).
    pub methods_compiled: usize,
}

impl IncrementalStats {
    /// Fraction of per-method back-end work skipped across all compiles.
    pub fn splice_rate(&self) -> f64 {
        let total = self.methods_spliced + self.methods_compiled;
        if total == 0 {
            0.0
        } else {
            self.methods_spliced as f64 / total as f64
        }
    }
}

/// Option bits that change compiled bytes and therefore partition the
/// stores. `jobs`, `pass_cache`, and `chunking` are excluded by the
/// determinism contract (they never change output); heap/fuel/tiering
/// thresholds only affect execution, except `tier` itself, which gates the
/// static fuse pass.
fn options_key(o: &Options) -> u64 {
    u64::from(o.optimize) | u64::from(o.fuse) << 1 | u64::from(o.tier) << 2
}

/// 128-bit source fingerprint (FNV-1a + 31-multiplier streams, the same
/// construction as `vgl_passes::cache`), joined with the option bits.
fn source_key(source: &str, opts: u64) -> (u64, u64, u64) {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut a = FNV_OFFSET;
    let mut b = 0x9e37_79b9_7f4a_7c15_u64;
    for &byte in source.as_bytes() {
        a = (a ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
        b = b.wrapping_mul(31).wrapping_add(u64::from(byte));
    }
    (a, b, opts)
}

/// A [`Compiler`] with persistent cross-request caching. Shareable across
/// threads (`&self` everywhere; the stores are lock-striped internally) —
/// the daemon holds one in an `Arc` and every session thread compiles
/// through it.
pub struct IncrementalCompiler {
    compiler: Compiler,
    opts_key: u64,
    artifacts: ShardedLru<(u64, u64, u64), Compilation>,
    funcs: ShardedLru<FuncKey, CachedFunc>,
    methods_spliced: AtomicUsize,
    methods_compiled: AtomicUsize,
}

impl IncrementalCompiler {
    /// Wraps `compiler` with default store capacities.
    pub fn new(compiler: Compiler) -> IncrementalCompiler {
        IncrementalCompiler::with_capacity(
            compiler,
            DEFAULT_ARTIFACT_CAPACITY,
            DEFAULT_FUNC_CAPACITY,
        )
    }

    /// Wraps `compiler` with explicit level-1 / level-2 capacities.
    pub fn with_capacity(
        compiler: Compiler,
        artifact_capacity: usize,
        func_capacity: usize,
    ) -> IncrementalCompiler {
        let opts_key = options_key(&compiler.options);
        IncrementalCompiler {
            compiler,
            opts_key,
            artifacts: ShardedLru::new(artifact_capacity),
            funcs: ShardedLru::new(func_capacity),
            methods_spliced: AtomicUsize::new(0),
            methods_compiled: AtomicUsize::new(0),
        }
    }

    /// The wrapped compiler's options.
    pub fn options(&self) -> &Options {
        &self.compiler.options
    }

    /// Store effectiveness counters since construction.
    pub fn stats(&self) -> IncrementalStats {
        IncrementalStats {
            artifacts: self.artifacts.stats(),
            funcs: self.funcs.stats(),
            methods_spliced: self.methods_spliced.load(Ordering::Relaxed),
            methods_compiled: self.methods_compiled.load(Ordering::Relaxed),
        }
    }

    /// Compiles `source`, reusing whole artifacts (level 1) and per-function
    /// artifacts (level 2) from previous calls where sound. Output is
    /// byte-identical to [`Compiler::compile`] with the same options.
    ///
    /// # Errors
    /// Returns every parse and type error with rendered positions, exactly
    /// as the one-shot path does (diagnostics are never cached).
    pub fn compile(&self, source: &str) -> Result<Arc<Compilation>, CompileError> {
        let skey = source_key(source, self.opts_key);
        if let Some(art) = self.artifacts.get(&skey) {
            return Ok(art);
        }
        let compilation = self.compile_warm(source)?;
        // First-writer-wins: concurrent compiles of the same source share
        // whichever artifact published first (they are byte-identical).
        Ok(self.artifacts.insert(skey, compilation))
    }

    /// The level-1-miss path: full front end + mono + normalize, then
    /// per-function reuse through optimize/lower/fuse.
    fn compile_warm(&self, source: &str) -> Result<Compilation, CompileError> {
        let o = self.compiler.options;
        let mut trace = PhaseTrace::new();
        let token_count = {
            let mut scratch = Diagnostics::new();
            trace
                .time(
                    "lex",
                    source.len(),
                    || vgl_syntax::lexer::lex(source, &mut scratch),
                    Vec::len,
                )
                .len()
        };
        let mut diags = Diagnostics::new();
        let ast = trace.time(
            "parse",
            token_count,
            || vgl_syntax::parse_program(source, &mut diags),
            |p| p.decls.len(),
        );
        if diags.has_errors() {
            return Err(render(source, diags));
        }
        let analyzed =
            trace.time("sema", ast.decls.len(), || vgl_sema::analyze(&ast, &mut diags), |_| 0);
        let Some(module) = analyzed else {
            return Err(render(source, diags));
        };

        let backend_cfg = BackendConfig {
            jobs: vgl_passes::sched::resolve_jobs(o.jobs),
            cache: o.pass_cache,
            chunking: true,
        };
        let mut backend = BackendReport { jobs: backend_cfg.jobs, ..BackendReport::default() };
        // Each `vgl_ir::measure` is a full IR walk (~0.5 ms on a serving
        // workload), so every size below is computed exactly once and
        // threaded into both the trace and the pipeline stats.
        let size_before = vgl_ir::measure(&module);
        trace.set_items_out("sema", size_before.expr_nodes);
        let (mut compiled, mono) = trace.time(
            "mono",
            size_before.expr_nodes,
            || vgl_passes::monomorphize_cfg(&module, &backend_cfg, &mut backend),
            |_| 0,
        );
        if o.validate_ir {
            let violations = vgl_ir::check_monomorphic(&compiled);
            assert!(
                violations.is_empty(),
                "internal compiler error: monomorphization left polymorphism behind:\n{}",
                render_violations(&violations)
            );
        }
        let size_after_mono = vgl_ir::measure(&compiled);
        trace.set_items_out("mono", size_after_mono.expr_nodes);
        let norm = trace.time(
            "normalize",
            size_after_mono.expr_nodes,
            || vgl_passes::normalize_cfg(&mut compiled, &backend_cfg, &mut backend),
            |_| 0,
        );
        let size_after_norm = vgl_ir::measure(&compiled);
        trace.set_items_out("normalize", size_after_norm.expr_nodes);

        // Post-normalize is the reuse horizon: id spaces are final, bodies
        // are in tuple normal form, and both keys are well-defined.
        let ctx = context_digest(&compiled);
        let n = compiled.methods.len();
        let mut memo: HashMap<(u64, u64), Option<Arc<CachedFunc>>> = HashMap::new();
        let mut fps = Vec::with_capacity(n);
        let mut hits = Vec::with_capacity(n);
        for m in &compiled.methods {
            let fp = cache::method_fingerprint(m);
            // Memoized per fingerprint so duplicate instances (equal
            // fingerprint, different name) always agree — the optimizer's
            // skip mask must be duplicate-consistent even if the store
            // evicts between two lookups.
            let hit = memo
                .entry(fp)
                .or_insert_with(|| self.funcs.get(&FuncKey { ctx, fp, opts: self.opts_key }))
                .clone();
            fps.push(fp);
            hits.push(hit);
        }
        let mut mask = vec![false; n];
        for (i, h) in hits.iter().enumerate() {
            if let Some(c) = h {
                mask[i] = true;
                compiled.methods[i].body.clone_from(&c.opt_body);
                compiled.methods[i].locals.clone_from(&c.opt_locals);
            }
        }
        let spliced = mask.iter().filter(|&&b| b).count();
        self.methods_spliced.fetch_add(spliced, Ordering::Relaxed);
        self.methods_compiled.fetch_add(n - spliced, Ordering::Relaxed);

        let opt = trace.time(
            "optimize",
            size_after_norm.expr_nodes,
            || {
                if o.optimize {
                    vgl_passes::optimize_cfg_masked(
                        &mut compiled,
                        &backend_cfg,
                        &mut backend,
                        Some(&mask),
                    )
                } else {
                    OptStats::default()
                }
            },
            |_| 0,
        );
        if o.validate_ir {
            let violations = vgl_ir::check_normalized(&compiled);
            assert!(
                violations.is_empty(),
                "internal compiler error: pipeline broke tuple normal form:\n{}",
                render_violations(&violations)
            );
        }
        let size_after = vgl_ir::measure(&compiled);
        trace.set_items_out("optimize", size_after.expr_nodes);

        let do_fuse = o.fuse && !o.tier;
        let plan = ReusePlan {
            funcs: hits.iter().map(|h| h.as_ref().map(|c| c.splice.clone())).collect(),
        };
        let (program, fuse, captures) = trace.time(
            "lower",
            size_after.expr_nodes,
            || vgl_vm::lower_fuse_incremental(&compiled, Some(&plan), do_fuse),
            |(p, _, _)| p.code_size(),
        );
        if o.validate_ir {
            let violations = vgl_vm::check_fused(&program);
            assert!(
                violations.is_empty(),
                "internal compiler error: bytecode back end broke a VM invariant:\n{}",
                render_violations(&violations)
            );
        }

        // Publish what this compile produced. Insert is content-addressed
        // first-writer-wins, so racing compiles of equal methods share one
        // entry; duplicate instances collapse onto their representative's
        // key by fingerprint equality.
        for (i, cap) in captures.into_iter().enumerate() {
            let Some(cap) = cap else { continue };
            self.funcs.insert(
                FuncKey { ctx, fp: fps[i], opts: self.opts_key },
                CachedFunc {
                    opt_body: compiled.methods[i].body.clone(),
                    opt_locals: compiled.methods[i].locals.clone(),
                    splice: Arc::new(cap),
                },
            );
        }

        let dur = |name: &str| {
            trace
                .phases
                .iter()
                .find(|p| p.name == name)
                .map(|p| p.duration)
                .unwrap_or_default()
        };
        let times =
            PassTimes { mono: dur("mono"), norm: dur("normalize"), opt: dur("optimize") };
        trace.workers = backend.workers.clone();
        Ok(Compilation {
            options: o,
            module,
            compiled,
            program,
            fuse,
            backend,
            stats: PipelineStats {
                mono,
                norm,
                opt,
                size_before,
                size_after_mono,
                size_after,
                times,
            },
            trace,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = "
        class Shape {
            def area() -> int { return 0; }
        }
        class Square(s: int) extends Shape {
            def area() -> int { return s * s; }
        }
        def id<T>(x: T) -> T { return x; }
        def twice(x: int) -> int { return id(x) + id(x); }
        def main() -> int {
            var sh: Shape = Square.new(5);
            return sh.area() + twice(8);
        }
    ";

    // The same edit a serving client would make: only `twice` changes.
    const EDITED: &str = "
        class Shape {
            def area() -> int { return 0; }
        }
        class Square(s: int) extends Shape {
            def area() -> int { return s * s; }
        }
        def id<T>(x: T) -> T { return x; }
        def twice(x: int) -> int { return id(x) * 2; }
        def main() -> int {
            var sh: Shape = Square.new(5);
            return sh.area() + twice(8);
        }
    ";

    fn program_bytes(c: &Compilation) -> String {
        format!("{:?}|{:?}", c.program, vgl_passes::module_fingerprint(&c.compiled))
    }

    #[test]
    fn identical_source_shares_the_artifact() {
        let inc = IncrementalCompiler::new(Compiler::new());
        let a = inc.compile(BASE).expect("compiles");
        let b = inc.compile(BASE).expect("compiles");
        assert!(Arc::ptr_eq(&a, &b), "level-1 hit must return the shared artifact");
        let st = inc.stats();
        assert_eq!(st.artifacts.hits, 1);
        assert_eq!(a.execute().result.unwrap(), "41");
    }

    #[test]
    fn edited_source_reuses_functions_with_identical_output() {
        let inc = IncrementalCompiler::new(Compiler::new());
        inc.compile(BASE).expect("compiles");
        let warm = inc.compile(EDITED).expect("compiles");
        let cold = Compiler::new().compile(EDITED).expect("compiles");
        assert_eq!(program_bytes(&warm), program_bytes(&cold));
        assert_eq!(warm.execute().result.unwrap(), cold.execute().result.unwrap());
        let st = inc.stats();
        assert!(st.funcs.hits > 0, "unchanged methods must hit the store: {st:?}");
        assert!(st.methods_spliced > 0);
    }

    #[test]
    fn fused_artifacts_splice_byte_identically() {
        let mk = || Compiler::new().with_fuse().with_jobs(2);
        let inc = IncrementalCompiler::new(mk());
        inc.compile(BASE).expect("compiles");
        let warm = inc.compile(EDITED).expect("compiles");
        let cold = mk().compile(EDITED).expect("compiles");
        assert_eq!(program_bytes(&warm), program_bytes(&cold));
        assert!(inc.stats().methods_spliced > 0);
    }

    #[test]
    fn different_options_do_not_share_artifacts() {
        let inc_opt = IncrementalCompiler::new(Compiler::new());
        let inc_noopt = IncrementalCompiler::new(Compiler::new().without_optimizer());
        let a = inc_opt.compile(BASE).expect("compiles");
        let b = inc_noopt.compile(BASE).expect("compiles");
        // Same source, different option bits: separate keys, same result.
        assert_eq!(a.execute().result.unwrap(), b.execute().result.unwrap());
        assert_ne!(
            source_key(BASE, options_key(inc_opt.options())),
            source_key(BASE, options_key(inc_noopt.options()))
        );
    }
}
