//! # vgl — virgil-rs
//!
//! A Rust reproduction of the language and compiler described in
//! *Harmonizing Classes, Functions, Tuples, and Type Parameters in Virgil
//! III* (Ben L. Titzer, PLDI 2013).
//!
//! This crate is the public facade over the whole system:
//!
//! * front end: `vgl-syntax` (lexer/parser) and `vgl-sema` (typechecking,
//!   inference) produce a typed [`Module`];
//! * the **reference interpreter** (`vgl-interp`) executes it directly with
//!   runtime type arguments and boxed tuples — the paper's §4.3 interpreter
//!   strategy;
//! * the **static pipeline** (`vgl-passes`) monomorphizes (§4.3), normalizes
//!   tuples away (§4.2), and optimizes (§3.3's query folding);
//! * the **VM** (`vgl-vm`) runs the compiled form with a scalar calling
//!   convention, vtables, constant-time type tests, and a generational GC.
//!
//! ## Quickstart
//!
//! ```
//! use vgl::Compiler;
//!
//! let source = "
//!     def square(x: int) -> int { return x * x; }
//!     def main() -> int { return square(6) + 6; }
//! ";
//! let c = Compiler::new().compile(source).expect("compiles");
//! let run = c.execute();                  // compiled, on the VM
//! assert_eq!(run.result.unwrap(), "42");
//! let run = c.interpret();                // reference interpreter
//! assert_eq!(run.result.unwrap(), "42");
//! ```

#![warn(missing_docs)]

pub mod chrome;
pub mod incremental;
pub mod proto;
pub mod report;
pub mod serve;

use std::fmt;

pub use vgl_interp::{Interp, InterpError, InterpStats};
pub use vgl_ir::{Exception, Module, ModuleSize};
pub use vgl_obs::{JsonLinesSink, PhaseTrace, Sink, TableSink, Tracer};
pub use vgl_passes::{
    module_fingerprint, BackendConfig, BackendReport, CacheStats, MonoStats, NormStats,
    OptStats, PassTimes, PipelineStats,
};
pub use vgl_runtime::{AllocStats, GcInfo, HeapStats};
pub use vgl_syntax::{Diagnostic, Diagnostics, LineMap, Severity};
pub use vgl_types::{constructor_summary, ConstructorRow, Variance};
pub use vgl_obs::trace::ChromeTrace;
pub use vgl_vm::{
    FlightRecorder, FuncSpan, FuseStats, GcEvent, GcInstant, GcKind, HotFunc, RuntimeProfile,
    TraceLog, Vm, VmError, VmProfile, VmProgram, VmStats,
};

pub use vgl_fuzz as fuzz;

pub use incremental::{IncrementalCompiler, IncrementalStats};

/// A compilation failure: rendered diagnostics.
#[derive(Clone, Debug)]
pub struct CompileError {
    /// The diagnostics, in source order.
    pub diagnostics: Vec<Diagnostic>,
    /// Diagnostics rendered with line/column positions.
    pub rendered: Vec<String>,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, r) in self.rendered.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            f.write_str(r)?;
        }
        Ok(())
    }
}

impl std::error::Error for CompileError {}

/// Compiler options.
#[derive(Clone, Copy, Debug)]
pub struct Options {
    /// Run the optimizer after normalization (default true). Turning it off
    /// isolates the effect of §3.3 query folding in ablation benchmarks.
    pub optimize: bool,
    /// Heap size (slots) for VMs created by [`Compilation::execute`].
    pub heap_slots: usize,
    /// Nursery size (slots) carved out of the heap for the generational
    /// collector's young generation. `0` disables the nursery and falls
    /// back to the pure semispace collector — every collection is a major.
    /// `vglc --nursery-slots` overrides it.
    pub nursery_slots: usize,
    /// Fuel (steps/instructions) for the convenience runners; `None` means
    /// unbounded.
    pub fuel: Option<u64>,
    /// Validate IR invariants ([`vgl_ir::check_monomorphic`] after
    /// monomorphization, [`vgl_ir::check_normalized`] after the pipeline,
    /// [`vgl_vm::check_fused`] after bytecode fusion) and panic on
    /// violation. On by default in debug builds and tests, off in release
    /// builds to keep the hot path clean.
    pub validate_ir: bool,
    /// Run the bytecode back-end optimizer after lowering: copy propagation,
    /// dead-register elimination, and superinstruction fusion
    /// ([`vgl_vm::fuse`]). Default **on in release builds** (the measured
    /// configuration), off in debug so the unfused opcode set stays the
    /// tested baseline; flip explicitly with [`Compiler::with_fuse`] /
    /// [`Compiler::without_fuse`] or `vglc --fuse` / `--no-fuse`.
    pub fuse: bool,
    /// Worker threads for the parallel back-end phases (optimize, fuse, and
    /// instance fingerprinting). `0` (the default) means auto: the
    /// `VGL_JOBS` environment variable if set, else the machine's available
    /// parallelism. **The jobs count never changes compiled output** —
    /// results are committed in stable function-index order, so `--jobs 1`
    /// and `--jobs 8` produce bit-identical modules and bytecode.
    pub jobs: usize,
    /// Per-instance pass cache (default on): duplicate post-mono method
    /// instances — content-identical up to their name — skip
    /// normalize/optimize and copy their representative's result. Output
    /// is identical either way; see [`BackendReport`] for hit rates.
    pub pass_cache: bool,
    /// Tiered profile-guided execution (default off in the library; `vglc`
    /// turns it on): functions start in the cheap unfused tier and re-fuse
    /// themselves with their own runtime profile once hot — IC-feedback
    /// devirtualization behind receiver-class guards, profile-selected
    /// superinstructions, and deoptimization on guard failure. When set,
    /// the static whole-program fuse pass is skipped: the baseline tier
    /// *is* the unfused code.
    pub tier: bool,
    /// Hotness weight (calls + back-edge ticks) at which a function tiers
    /// up. `vglc --tier-threshold` / `VGL_TIER_THRESHOLD` override it.
    pub tier_threshold: u64,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            optimize: true,
            heap_slots: 1 << 20,
            nursery_slots: vgl_vm::DEFAULT_NURSERY_SLOTS,
            fuel: Some(1 << 32),
            validate_ir: cfg!(debug_assertions),
            fuse: cfg!(not(debug_assertions)),
            jobs: 0,
            pass_cache: true,
            tier: false,
            tier_threshold: vgl_vm::DEFAULT_TIER_THRESHOLD,
        }
    }
}

/// The compiler driver.
#[derive(Clone, Debug, Default)]
pub struct Compiler {
    pub(crate) options: Options,
}

impl Compiler {
    /// A compiler with default options.
    pub fn new() -> Compiler {
        Compiler::default()
    }

    /// Overrides the options.
    pub fn with_options(options: Options) -> Compiler {
        Compiler { options }
    }

    /// Disables the optimizer (ablation).
    pub fn without_optimizer(mut self) -> Compiler {
        self.options.optimize = false;
        self
    }

    /// Forces the bytecode fusion pass on (it defaults on only in release).
    pub fn with_fuse(mut self) -> Compiler {
        self.options.fuse = true;
        self
    }

    /// Forces the bytecode fusion pass off (ablation / unfused baseline).
    pub fn without_fuse(mut self) -> Compiler {
        self.options.fuse = false;
        self
    }

    /// Sets the back-end worker count (`0` = auto; see [`Options::jobs`]).
    pub fn with_jobs(mut self, jobs: usize) -> Compiler {
        self.options.jobs = jobs;
        self
    }

    /// Disables the per-instance pass cache (ablation / cold baseline).
    pub fn without_pass_cache(mut self) -> Compiler {
        self.options.pass_cache = false;
        self
    }

    /// Enables tiered profile-guided execution (see [`Options::tier`]).
    pub fn with_tiering(mut self) -> Compiler {
        self.options.tier = true;
        self
    }

    /// Enables tiering with an explicit tier-up threshold.
    pub fn with_tier_threshold(mut self, threshold: u64) -> Compiler {
        self.options.tier = true;
        self.options.tier_threshold = threshold;
        self
    }

    /// Disables tiered execution (the static-pipeline default).
    pub fn without_tiering(mut self) -> Compiler {
        self.options.tier = false;
        self
    }

    /// Parses, typechecks, and runs the full static pipeline.
    ///
    /// # Errors
    /// Returns every parse and type error with rendered positions.
    pub fn compile(&self, source: &str) -> Result<Compilation, CompileError> {
        self.compile_traced(source, &mut Tracer::disabled())
    }

    /// [`Compiler::compile`], emitting one span per phase (lex, parse, sema,
    /// mono, normalize, optimize, lower) into `tracer`. The same samples are
    /// kept on the returned [`Compilation::trace`] either way, so a disabled
    /// tracer only skips the sink writes, not the timing.
    ///
    /// # Errors
    /// Returns every parse and type error with rendered positions.
    pub fn compile_traced(
        &self,
        source: &str,
        tracer: &mut Tracer<'_>,
    ) -> Result<Compilation, CompileError> {
        let mut trace = PhaseTrace::new();
        // Lexing is timed on a scratch pass (the parser re-lexes internally;
        // lexing is linear and cheap, so the duplication is negligible).
        let token_count = {
            let mut scratch = Diagnostics::new();
            trace.time(
                "lex",
                source.len(),
                || vgl_syntax::lexer::lex(source, &mut scratch),
                Vec::len,
            )
            .len()
        };
        let mut diags = Diagnostics::new();
        let ast = trace.time(
            "parse",
            token_count,
            || vgl_syntax::parse_program(source, &mut diags),
            |p| p.decls.len(),
        );
        if diags.has_errors() {
            return Err(render(source, diags));
        }
        let analyzed =
            trace.time("sema", ast.decls.len(), || vgl_sema::analyze(&ast, &mut diags), |_| 0);
        let Some(module) = analyzed else {
            return Err(render(source, diags));
        };
        // Back-end configuration: jobs resolved once per compile (explicit
        // request → VGL_JOBS → available parallelism) and shared by mono's
        // streamed hashing, normalize, optimize, and fuse. No knob changes
        // output.
        let backend_cfg = BackendConfig {
            jobs: vgl_passes::sched::resolve_jobs(self.options.jobs),
            cache: self.options.pass_cache,
            chunking: true,
        };
        let mut backend = BackendReport { jobs: backend_cfg.jobs, ..BackendReport::default() };
        // Pipeline: mono → norm → (opt). With the cache on, mono streams
        // finished instances to hash workers so the duplicate map is ready
        // for normalize the moment it returns.
        // Each `vgl_ir::measure` is a full IR walk, so every size below is
        // computed exactly once and threaded into both the trace and the
        // pipeline stats.
        let size_before = vgl_ir::measure(&module);
        trace.set_items_out("sema", size_before.expr_nodes);
        let (mut compiled, mono) = trace.time(
            "mono",
            size_before.expr_nodes,
            || vgl_passes::monomorphize_cfg(&module, &backend_cfg, &mut backend),
            |_| 0,
        );
        if self.options.validate_ir {
            let violations = vgl_ir::check_monomorphic(&compiled);
            assert!(
                violations.is_empty(),
                "internal compiler error: monomorphization left polymorphism behind:\n{}",
                render_violations(&violations)
            );
        }
        let size_after_mono = vgl_ir::measure(&compiled);
        trace.set_items_out("mono", size_after_mono.expr_nodes);
        let norm = trace.time(
            "normalize",
            size_after_mono.expr_nodes,
            || vgl_passes::normalize_cfg(&mut compiled, &backend_cfg, &mut backend),
            |_| 0,
        );
        let size_after_norm = vgl_ir::measure(&compiled);
        trace.set_items_out("normalize", size_after_norm.expr_nodes);
        let opt = trace.time(
            "optimize",
            size_after_norm.expr_nodes,
            || {
                if self.options.optimize {
                    vgl_passes::optimize_cfg(&mut compiled, &backend_cfg, &mut backend)
                } else {
                    OptStats::default()
                }
            },
            |_| 0,
        );
        if self.options.validate_ir {
            let violations = vgl_ir::check_normalized(&compiled);
            assert!(
                violations.is_empty(),
                "internal compiler error: pipeline broke tuple normal form:\n{}",
                render_violations(&violations)
            );
        }
        let size_after = vgl_ir::measure(&compiled);
        trace.set_items_out("optimize", size_after.expr_nodes);
        let mut program = trace.time(
            "lower",
            size_after.expr_nodes,
            || vgl_vm::lower(&compiled),
            vgl_vm::VmProgram::code_size,
        );
        // Under tiering the baseline tier *is* the unfused code — hot
        // functions re-fuse themselves at run time from their own profile,
        // so the static whole-program pass would only blur the comparison.
        let fuse = if self.options.fuse && !self.options.tier {
            let stats = trace.time(
                "fuse",
                program.code_size(),
                || {
                    let (stats, workers) = vgl_vm::fuse_cfg(&mut program, &backend_cfg);
                    backend.workers.extend(workers);
                    stats
                },
                |_| 0,
            );
            trace.set_items_out("fuse", program.code_size());
            stats
        } else {
            vgl_vm::FuseStats::default()
        };
        if self.options.validate_ir {
            let violations = vgl_vm::check_fused(&program);
            assert!(
                violations.is_empty(),
                "internal compiler error: bytecode back end broke a VM invariant:\n{}",
                render_violations(&violations)
            );
        }
        let dur = |name: &str| {
            trace
                .phases
                .iter()
                .find(|p| p.name == name)
                .map(|p| p.duration)
                .unwrap_or_default()
        };
        let times =
            PassTimes { mono: dur("mono"), norm: dur("normalize"), opt: dur("optimize") };
        trace.workers = backend.workers.clone();
        if tracer.enabled() {
            trace.emit(tracer);
        }
        Ok(Compilation {
            options: self.options,
            module,
            compiled,
            program,
            fuse,
            backend,
            stats: PipelineStats {
                mono,
                norm,
                opt,
                size_before,
                size_after_mono,
                size_after,
                times,
            },
            trace,
        })
    }
}

pub(crate) fn render_violations(violations: &[vgl_ir::Violation]) -> String {
    violations
        .iter()
        .map(|v| format!("  {}: {}", v.location, v.message))
        .collect::<Vec<_>>()
        .join("\n")
}

/// The result of [`Compiler::check`]: every front-end diagnostic for one
/// source file, with rendered source windows, produced without running the
/// program.
///
/// Unlike [`Compiler::compile`], a parse error does not stop semantic
/// analysis here — the partial AST (with its error placeholders) is analyzed
/// anyway, so a single run reports everything the front end can find.
#[derive(Clone, Debug)]
pub struct CheckReport {
    /// File name used in rendered positions.
    pub file_name: String,
    /// The diagnostics, in source order.
    pub diagnostics: Vec<Diagnostic>,
    /// Line/column of each diagnostic's start (parallel to `diagnostics`).
    pub positions: Vec<vgl_syntax::LineCol>,
    /// Each diagnostic rendered as a rustc-style source window (parallel to
    /// `diagnostics`).
    pub rendered: Vec<String>,
}

impl CheckReport {
    /// Whether the file is clean (no errors; warnings are fine).
    pub fn ok(&self) -> bool {
        self.error_count() == 0
    }

    /// Number of error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == vgl_syntax::Severity::Error)
            .count()
    }

    /// The report as a JSON object (for `vglc check --json`).
    pub fn to_json(&self) -> vgl_obs::json::Json {
        use vgl_obs::json::Json;
        let mut o = Json::object();
        o.set("file", Json::from(self.file_name.as_str()));
        o.set("errors", Json::from(self.error_count()));
        o.set(
            "warnings",
            Json::from(
                self.diagnostics
                    .iter()
                    .filter(|d| d.severity == vgl_syntax::Severity::Warning)
                    .count(),
            ),
        );
        let mut arr = Vec::new();
        for (i, d) in self.diagnostics.iter().enumerate() {
            let mut jd = Json::object();
            jd.set("severity", Json::from(d.severity.to_string().as_str()));
            jd.set("line", Json::from(self.positions[i].line as u64));
            jd.set("col", Json::from(self.positions[i].col as u64));
            jd.set("message", Json::from(d.message.as_str()));
            if !d.notes.is_empty() {
                jd.set(
                    "notes",
                    Json::Arr(
                        d.notes
                            .iter()
                            .map(|n| Json::from(n.message.as_str()))
                            .collect(),
                    ),
                );
            }
            jd.set("rendered", Json::from(self.rendered[i].as_str()));
            arr.push(jd);
        }
        o.set("diagnostics", Json::Arr(arr));
        o
    }
}

impl Compiler {
    /// Parses and typechecks `source`, reporting every diagnostic the front
    /// end can find, without running the program. Parse errors do not
    /// suppress semantic analysis: the partial AST is analyzed so
    /// independent mistakes all surface in one run.
    pub fn check(&self, file_name: &str, source: &str) -> CheckReport {
        let mut diags = Diagnostics::new();
        let ast = vgl_syntax::parse_program(source, &mut diags);
        // Analyze even when parsing failed: error nodes carry the poisoned
        // type, so this is safe and finds independent type errors.
        let _ = vgl_sema::analyze(&ast, &mut diags);
        let lines = LineMap::new(source);
        let diagnostics = diags.into_vec();
        let positions = diagnostics
            .iter()
            .map(|d| lines.lookup(d.span.start))
            .collect();
        let rendered = diagnostics
            .iter()
            .map(|d| d.render_window(file_name, source, &lines))
            .collect();
        CheckReport {
            file_name: file_name.to_string(),
            diagnostics,
            positions,
            rendered,
        }
    }
}

pub(crate) fn render(source: &str, diags: Diagnostics) -> CompileError {
    let lines = LineMap::new(source);
    let diagnostics = diags.into_vec();
    let rendered = diagnostics
        .iter()
        .map(|d| d.render("<input>", &lines))
        .collect();
    CompileError { diagnostics, rendered }
}

/// The outcome of running a program on either engine.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// `Ok(value)` (display form) or `Err(exception)` (display form).
    pub result: Result<String, String>,
    /// Everything printed via `System.*`.
    pub output: String,
    /// Interpreter cost counters, when run on the interpreter.
    pub interp_stats: Option<InterpStats>,
    /// VM counters, when run on the VM.
    pub vm_stats: Option<VmStats>,
}

/// A compiled program: the typed source module, the post-pipeline module,
/// the bytecode, and the pipeline statistics (code-expansion data for E4).
#[derive(Debug)]
pub struct Compilation {
    pub(crate) options: Options,
    /// The typed source-level module (polymorphic; what the interpreter runs).
    pub module: Module,
    /// The monomorphized + normalized (+ optimized) module.
    pub compiled: Module,
    /// The bytecode program (post-fusion when [`Options::fuse`] is set).
    pub program: VmProgram,
    /// What the bytecode back-end optimizer did (all zero when disabled).
    pub fuse: FuseStats,
    /// Parallel/cached back-end report: effective jobs, per-pass instance
    /// cache hit rates, and worker-attributed spans (also mirrored on
    /// [`Compilation::trace`] as `workers`).
    pub backend: BackendReport,
    /// Pipeline statistics.
    pub stats: PipelineStats,
    /// Per-phase wall-clock samples (lex through lower).
    pub trace: PhaseTrace,
}

impl Compilation {
    /// Runs the *reference interpreter* on the source module — the paper's
    /// type-argument-passing strategy with boxed tuples and §4.1 dynamic
    /// call-site checks.
    pub fn interpret(&self) -> RunOutcome {
        self.interpret_module(&self.module)
    }

    /// Runs the interpreter on the *compiled* module (used by differential
    /// tests; boundary tuples are still boxed here, unlike on the VM).
    pub fn interpret_compiled(&self) -> RunOutcome {
        self.interpret_module(&self.compiled)
    }

    fn interpret_module(&self, m: &Module) -> RunOutcome {
        let mut i = Interp::new(m);
        if let Some(f) = self.options.fuel {
            i.set_fuel(f);
        }
        let result = match i.run() {
            Ok(v) => Ok(v.to_string()),
            Err(e) => Err(e.to_string()),
        };
        RunOutcome {
            result,
            output: i.output(),
            interp_stats: Some(i.stats),
            vm_stats: None,
        }
    }

    /// Runs the compiled program on the VM — the "native target" with the
    /// scalar calling convention and the generational collector.
    pub fn execute(&self) -> RunOutcome {
        let mut vm = Vm::with_heap_config(
            &self.program,
            self.options.heap_slots,
            self.options.nursery_slots,
        );
        if self.options.tier {
            vm.enable_tiering(self.options.tier_threshold);
        }
        if let Some(f) = self.options.fuel {
            vm.set_fuel(f);
        }
        let result = match vm.run() {
            Ok(words) => Ok(display_words(&words)),
            Err(e) => Err(e.to_string()),
        };
        RunOutcome {
            result,
            output: vm.output(),
            interp_stats: None,
            vm_stats: Some(vm.stats),
        }
    }

    /// [`Compilation::execute`] with VM profiling enabled: also returns the
    /// per-opcode retired-instruction histogram and the GC event log.
    pub fn execute_profiled(&self) -> (RunOutcome, VmProfile) {
        let mut vm = Vm::with_heap_config(
            &self.program,
            self.options.heap_slots,
            self.options.nursery_slots,
        );
        if self.options.tier {
            vm.enable_tiering(self.options.tier_threshold);
        }
        vm.enable_profiling();
        if let Some(f) = self.options.fuel {
            vm.set_fuel(f);
        }
        let result = match vm.run() {
            Ok(words) => Ok(display_words(&words)),
            Err(e) => Err(e.to_string()),
        };
        let outcome = RunOutcome {
            result,
            output: vm.output(),
            interp_stats: None,
            vm_stats: Some(vm.stats),
        };
        let profile = vm.take_profile().unwrap_or_default();
        (outcome, profile)
    }

    /// [`Compilation::execute`] with **only** the hotness profiler enabled,
    /// in its default sampling mode — the low-overhead production
    /// configuration `bench_obs` gates: call counters plus back-edge ticks,
    /// no per-return accounting, no per-opcode histogram.
    pub fn execute_hotness_profiled(&self) -> (RunOutcome, RuntimeProfile) {
        self.execute_hotness(false)
    }

    /// [`Compilation::execute_hotness_profiled`] in precise mode: exact
    /// inclusive/exclusive retired-instruction accounting at every frame
    /// exit. Costs more (`bench_obs` reports it ungated); `vglc stats` and
    /// `vglc profile` use it for offline analysis.
    pub fn execute_hotness_profiled_precise(&self) -> (RunOutcome, RuntimeProfile) {
        self.execute_hotness(true)
    }

    fn execute_hotness(&self, precise: bool) -> (RunOutcome, RuntimeProfile) {
        let mut vm = Vm::with_heap_config(
            &self.program,
            self.options.heap_slots,
            self.options.nursery_slots,
        );
        if self.options.tier {
            vm.enable_tiering(self.options.tier_threshold);
        }
        if precise {
            vm.enable_runtime_profiling_precise();
        } else {
            vm.enable_runtime_profiling();
        }
        if let Some(f) = self.options.fuel {
            vm.set_fuel(f);
        }
        let result = match vm.run() {
            Ok(words) => Ok(display_words(&words)),
            Err(e) => Err(e.to_string()),
        };
        let outcome = RunOutcome {
            result,
            output: vm.output(),
            interp_stats: None,
            vm_stats: Some(vm.stats),
        };
        let hotness = vm.take_runtime_profile().unwrap_or_default();
        (outcome, hotness)
    }

    /// [`Compilation::execute_profiled`] plus the deterministic per-function
    /// hotness profile (calls, back-edge ticks, inclusive/exclusive retired
    /// instructions) — everything `vglc profile` and `vglc stats --json`
    /// report.
    pub fn execute_profiled_full(&self) -> (RunOutcome, VmProfile, RuntimeProfile) {
        let mut vm = Vm::with_heap_config(
            &self.program,
            self.options.heap_slots,
            self.options.nursery_slots,
        );
        if self.options.tier {
            vm.enable_tiering(self.options.tier_threshold);
        }
        vm.enable_profiling();
        vm.enable_runtime_profiling_precise();
        if let Some(f) = self.options.fuel {
            vm.set_fuel(f);
        }
        let result = match vm.run() {
            Ok(words) => Ok(display_words(&words)),
            Err(e) => Err(e.to_string()),
        };
        let outcome = RunOutcome {
            result,
            output: vm.output(),
            interp_stats: None,
            vm_stats: Some(vm.stats),
        };
        let profile = vm.take_profile().unwrap_or_default();
        let hotness = vm.take_runtime_profile().unwrap_or_default();
        (outcome, profile, hotness)
    }

    /// [`Compilation::execute`] with the wall-clock trace log enabled: the
    /// returned [`TraceLog`] carries per-function spans and GC instants,
    /// ready for [`chrome::chrome_trace`](crate::chrome::chrome_trace).
    pub fn execute_traced(&self) -> (RunOutcome, TraceLog) {
        let mut vm = Vm::with_heap_config(
            &self.program,
            self.options.heap_slots,
            self.options.nursery_slots,
        );
        if self.options.tier {
            vm.enable_tiering(self.options.tier_threshold);
        }
        vm.enable_trace_log(1 << 18);
        if let Some(f) = self.options.fuel {
            vm.set_fuel(f);
        }
        let result = match vm.run() {
            Ok(words) => Ok(display_words(&words)),
            Err(e) => Err(e.to_string()),
        };
        let outcome = RunOutcome {
            result,
            output: vm.output(),
            interp_stats: None,
            vm_stats: Some(vm.stats),
        };
        let log = vm.take_trace_log().unwrap_or_else(|| TraceLog::new(1));
        (outcome, log)
    }

    /// [`Compilation::execute`] with the crash flight recorder on
    /// (`vglc run --flight-record`): returns the run plus the rendered dump
    /// of the last `capacity` runtime events, when anything was recorded.
    pub fn execute_flight_recorded(&self, capacity: usize) -> (RunOutcome, Option<String>) {
        let mut vm = Vm::with_heap_config(
            &self.program,
            self.options.heap_slots,
            self.options.nursery_slots,
        );
        if self.options.tier {
            vm.enable_tiering(self.options.tier_threshold);
        }
        vm.enable_flight_recorder(capacity);
        if let Some(f) = self.options.fuel {
            vm.set_fuel(f);
        }
        let result = match vm.run() {
            Ok(words) => Ok(display_words(&words)),
            Err(e) => Err(e.to_string()),
        };
        let dump = vm.flight_dump();
        let outcome = RunOutcome {
            result,
            output: vm.output(),
            interp_stats: None,
            vm_stats: Some(vm.stats),
        };
        (outcome, dump)
    }

    /// Runs the program with tiering **forced on** (regardless of
    /// [`Options::tier`]) and renders the `vglc disasm --tiered` view:
    /// every function that tiered up, baseline and hot-tier bodies side by
    /// side, guard sites annotated, megamorphic sites listed.
    pub fn execute_tiered_disasm(&self) -> (RunOutcome, String) {
        let mut vm = Vm::with_heap_config(
            &self.program,
            self.options.heap_slots,
            self.options.nursery_slots,
        );
        vm.enable_tiering(self.options.tier_threshold);
        if let Some(f) = self.options.fuel {
            vm.set_fuel(f);
        }
        let result = match vm.run() {
            Ok(words) => Ok(display_words(&words)),
            Err(e) => Err(e.to_string()),
        };
        let view = vm
            .tier_state()
            .map(|t| vgl_vm::tiered_view(&self.program, t))
            .unwrap_or_default();
        let outcome = RunOutcome {
            result,
            output: vm.output(),
            interp_stats: None,
            vm_stats: Some(vm.stats),
        };
        (outcome, view)
    }

    /// Code expansion ratio due to monomorphization (E4): IR nodes after
    /// specialization over IR nodes before.
    pub fn expansion_ratio(&self) -> f64 {
        self.stats.size_after_mono.expansion_over(&self.stats.size_before)
    }

    /// Static bytecode size (instructions).
    pub fn code_size(&self) -> usize {
        self.program.code_size()
    }
}

fn display_words(words: &[vgl_runtime::Word]) -> String {
    match words.len() {
        0 => "()".to_string(),
        1 => {
            if vgl_vm::ret_is_ref(words) {
                "<ref>".to_string()
            } else {
                vgl_vm::ret_as_int(words).unwrap_or(0).to_string()
            }
        }
        _ => {
            let parts: Vec<String> = words
                .iter()
                .map(|&w| {
                    if vgl_runtime::heap::is_ref(w) {
                        "<ref>".to_string()
                    } else {
                        vgl_runtime::heap::as_i32(w).to_string()
                    }
                })
                .collect();
            format!("({})", parts.join(", "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_and_run_both_engines() {
        let c = Compiler::new()
            .compile("def main() -> int { return 40 + 2; }")
            .expect("compiles");
        assert_eq!(c.interpret().result.unwrap(), "42");
        assert_eq!(c.execute().result.unwrap(), "42");
    }

    #[test]
    fn compile_error_is_rendered() {
        let err = Compiler::new()
            .compile("def main() -> int { return x; }")
            .expect_err("unknown identifier");
        assert!(err.to_string().contains("unknown identifier"));
        assert!(err.to_string().contains("<input>:1:"));
    }

    #[test]
    fn stats_expose_expansion() {
        let c = Compiler::new()
            .compile(
                "def id<T>(x: T) -> T { return x; }\n\
                 def main() -> int { id(true); id('x'); return id(3); }",
            )
            .expect("compiles");
        assert!(c.stats.mono.method_instances >= 4);
        assert!(c.expansion_ratio() > 1.0);
        assert!(c.code_size() > 0);
    }

    #[test]
    fn without_optimizer_keeps_queries() {
        let src = "def q<T>(x: T) -> bool { return int.?(x); }\n\
                   def main() -> bool { return q(1); }";
        let with_opt = Compiler::new().compile(src).expect("compiles");
        let without = Compiler::new().without_optimizer().compile(src).expect("compiles");
        assert!(with_opt.stats.opt.queries_folded >= 1);
        assert_eq!(without.stats.opt.queries_folded, 0);
        // Both still run correctly.
        assert_eq!(with_opt.execute().result.unwrap(), "1");
        assert_eq!(without.execute().result.unwrap(), "1");
    }

    #[test]
    fn outputs_agree_across_engines() {
        let c = Compiler::new()
            .compile(
                "def main() { System.puts(\"hi \"); System.puti(3); System.ln(); }",
            )
            .expect("compiles");
        assert_eq!(c.interpret().output, c.execute().output);
    }
}
