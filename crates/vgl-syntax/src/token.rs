//! Token definitions for the Virgil III core lexer.

use crate::span::Span;
use std::fmt;

/// The kind of a lexical token.
///
/// Keyword and punctuation variants are self-describing; see
/// [`TokenKind::fixed_text`] for their source text.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
#[allow(missing_docs)]
pub enum TokenKind {
    // Literals and identifiers.
    /// An identifier such as `foo` or a type name such as `List`.
    Ident,
    /// A decimal or hexadecimal integer literal.
    IntLit,
    /// A character literal such as `'a'`, denoting a `byte`.
    ByteLit,
    /// A string literal such as `"hi"`, denoting `Array<byte>`.
    StringLit,

    // Keywords.
    KwClass,
    KwExtends,
    KwDef,
    KwVar,
    KwNew,
    KwPrivate,
    KwIf,
    KwElse,
    KwWhile,
    KwFor,
    KwReturn,
    KwBreak,
    KwContinue,
    KwTrue,
    KwFalse,
    KwNull,
    KwSuper,

    // Punctuation and operators.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Colon,
    Dot,
    Arrow,     // ->
    Question,  // ?
    Bang,      // !
    Assign,    // =
    Eq,        // ==
    Ne,        // !=
    Lt,        // <
    Le,        // <=
    Gt,        // >
    Ge,        // >=
    Shl,       // <<
    Shr,       // >>
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,       // &
    Pipe,      // |
    Caret,     // ^
    AndAnd,    // &&
    OrOr,      // ||

    /// End of input.
    Eof,
    /// A lexing error; the diagnostic was reported separately.
    Error,
}

impl TokenKind {
    /// The canonical source text of a keyword or punctuation token, for
    /// diagnostics. `None` for variable-text tokens.
    pub fn fixed_text(self) -> Option<&'static str> {
        use TokenKind::*;
        Some(match self {
            KwClass => "class",
            KwExtends => "extends",
            KwDef => "def",
            KwVar => "var",
            KwNew => "new",
            KwPrivate => "private",
            KwIf => "if",
            KwElse => "else",
            KwWhile => "while",
            KwFor => "for",
            KwReturn => "return",
            KwBreak => "break",
            KwContinue => "continue",
            KwTrue => "true",
            KwFalse => "false",
            KwNull => "null",
            KwSuper => "super",
            LParen => "(",
            RParen => ")",
            LBrace => "{",
            RBrace => "}",
            LBracket => "[",
            RBracket => "]",
            Comma => ",",
            Semi => ";",
            Colon => ":",
            Dot => ".",
            Arrow => "->",
            Question => "?",
            Bang => "!",
            Assign => "=",
            Eq => "==",
            Ne => "!=",
            Lt => "<",
            Le => "<=",
            Gt => ">",
            Ge => ">=",
            Shl => "<<",
            Shr => ">>",
            Plus => "+",
            Minus => "-",
            Star => "*",
            Slash => "/",
            Percent => "%",
            Amp => "&",
            Pipe => "|",
            Caret => "^",
            AndAnd => "&&",
            OrOr => "||",
            Eof => "<eof>",
            _ => return None,
        })
    }

    /// Looks up the keyword kind for an identifier, if it is a keyword.
    pub fn keyword(text: &str) -> Option<TokenKind> {
        use TokenKind::*;
        Some(match text {
            "class" => KwClass,
            "extends" => KwExtends,
            "def" => KwDef,
            "var" => KwVar,
            "new" => KwNew,
            "private" => KwPrivate,
            "if" => KwIf,
            "else" => KwElse,
            "while" => KwWhile,
            "for" => KwFor,
            "return" => KwReturn,
            "break" => KwBreak,
            "continue" => KwContinue,
            "true" => KwTrue,
            "false" => KwFalse,
            "null" => KwNull,
            "super" => KwSuper,
            _ => return None,
        })
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.fixed_text() {
            Some(t) => write!(f, "'{t}'"),
            None => match self {
                TokenKind::Ident => write!(f, "identifier"),
                TokenKind::IntLit => write!(f, "integer literal"),
                TokenKind::ByteLit => write!(f, "byte literal"),
                TokenKind::StringLit => write!(f, "string literal"),
                TokenKind::Error => write!(f, "invalid token"),
                _ => write!(f, "{self:?}"),
            },
        }
    }
}

/// One lexed token: a kind plus the span of its text.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Where its text lives in the source.
    pub span: Span,
}

impl Token {
    /// Extracts the token's text from the source it was lexed from.
    pub fn text(self, source: &str) -> &str {
        self.span.text(source)
    }
}
