//! Diagnostics: errors and warnings with source locations.

use crate::span::{LineMap, Span};
use std::fmt;

/// How bad a diagnostic is.
#[derive(Clone, Copy, PartialEq, Eq, Debug, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational note attached to another diagnostic.
    Note,
    /// Suspicious but not fatal.
    Warning,
    /// Compilation cannot produce a program.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Note => write!(f, "note"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One diagnostic message anchored to a span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Severity of the message.
    pub severity: Severity,
    /// Where in the source the problem is.
    pub span: Span,
    /// Human-readable message, lowercase, no trailing punctuation.
    pub message: String,
}

impl Diagnostic {
    /// Creates an error diagnostic.
    pub fn error(span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic { severity: Severity::Error, span, message: message.into() }
    }

    /// Creates a warning diagnostic.
    pub fn warning(span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic { severity: Severity::Warning, span, message: message.into() }
    }

    /// Renders the diagnostic as `line:col: severity: message` given the file's
    /// line map and (optional) name.
    pub fn render(&self, file_name: &str, lines: &LineMap) -> String {
        let lc = lines.lookup(self.span.start);
        format!("{file_name}:{lc}: {}: {}", self.severity, self.message)
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} (at {:?})", self.severity, self.message, self.span)
    }
}

/// Accumulates diagnostics during a compiler phase.
#[derive(Clone, Debug, Default)]
pub struct Diagnostics {
    items: Vec<Diagnostic>,
}

impl Diagnostics {
    /// Creates an empty sink.
    pub fn new() -> Diagnostics {
        Diagnostics::default()
    }

    /// Records an error.
    pub fn error(&mut self, span: Span, message: impl Into<String>) {
        self.items.push(Diagnostic::error(span, message));
    }

    /// Records a warning.
    pub fn warning(&mut self, span: Span, message: impl Into<String>) {
        self.items.push(Diagnostic::warning(span, message));
    }

    /// Records a prebuilt diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.items.push(d);
    }

    /// True if any error-severity diagnostic has been recorded.
    pub fn has_errors(&self) -> bool {
        self.items.iter().any(|d| d.severity == Severity::Error)
    }

    /// Number of error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.items.iter().filter(|d| d.severity == Severity::Error).count()
    }

    /// All recorded diagnostics in order.
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.items.iter()
    }

    /// Consumes the sink, returning the diagnostics.
    pub fn into_vec(self) -> Vec<Diagnostic> {
        self.items
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Total number of diagnostics of any severity.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Merges another sink's diagnostics into this one.
    pub fn extend(&mut self, other: Diagnostics) {
        self.items.extend(other.items);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_errors_only_for_errors() {
        let mut d = Diagnostics::new();
        d.warning(Span::point(0), "meh");
        assert!(!d.has_errors());
        d.error(Span::point(1), "bad");
        assert!(d.has_errors());
        assert_eq!(d.error_count(), 1);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn render_includes_position() {
        let lines = LineMap::new("ab\ncd");
        let d = Diagnostic::error(Span::new(3, 4), "unexpected token");
        assert_eq!(d.render("f.v", &lines), "f.v:2:1: error: unexpected token");
    }
}
