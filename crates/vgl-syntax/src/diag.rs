//! Diagnostics: errors and warnings with source locations.

use crate::span::{LineMap, Span};
use std::fmt;

/// How bad a diagnostic is.
#[derive(Clone, Copy, PartialEq, Eq, Debug, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational note attached to another diagnostic.
    Note,
    /// Suspicious but not fatal.
    Warning,
    /// Compilation cannot produce a program.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Note => write!(f, "note"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// A secondary message attached to a [`Diagnostic`], optionally anchored to
/// its own span (e.g. "first defined here").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Note {
    /// Where the note points, if anywhere.
    pub span: Option<Span>,
    /// The note text, lowercase, no trailing punctuation.
    pub message: String,
}

/// One diagnostic message anchored to a span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Severity of the message.
    pub severity: Severity,
    /// Where in the source the problem is.
    pub span: Span,
    /// Human-readable message, lowercase, no trailing punctuation.
    pub message: String,
    /// Attached notes, rendered after the main message.
    pub notes: Vec<Note>,
}

impl Diagnostic {
    /// Creates an error diagnostic.
    pub fn error(span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Error,
            span,
            message: message.into(),
            notes: Vec::new(),
        }
    }

    /// Creates a warning diagnostic.
    pub fn warning(span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Warning,
            span,
            message: message.into(),
            notes: Vec::new(),
        }
    }

    /// Attaches a note (builder-style).
    pub fn with_note(mut self, span: Option<Span>, message: impl Into<String>) -> Diagnostic {
        self.notes.push(Note { span, message: message.into() });
        self
    }

    /// Renders the diagnostic as `line:col: severity: message` given the file's
    /// line map and (optional) name.
    pub fn render(&self, file_name: &str, lines: &LineMap) -> String {
        let lc = lines.lookup(self.span.start);
        format!("{file_name}:{lc}: {}: {}", self.severity, self.message)
    }

    /// Renders the diagnostic rustc-style: the header line, a source window
    /// showing the offending line with a caret marker underneath, and any
    /// notes after it.
    ///
    /// ```text
    /// f.v:2:8: error: unknown type 'Foo'
    ///   2 | var x: Foo = 1;
    ///     |        ^^^
    ///     = note: types are declared with 'class'
    /// ```
    pub fn render_window(&self, file_name: &str, source: &str, lines: &LineMap) -> String {
        let mut out = self.render(file_name, lines);
        out.push('\n');
        out.push_str(&source_window(source, lines, self.span));
        for n in &self.notes {
            match n.span {
                Some(s) => {
                    let lc = lines.lookup(s.start);
                    out.push_str(&format!(
                        "    = note: {} (at {file_name}:{lc})\n{}",
                        n.message,
                        source_window(source, lines, s)
                    ));
                }
                None => out.push_str(&format!("    = note: {}\n", n.message)),
            }
        }
        out
    }
}

/// The `  N | line text` / `    |  ^^^` window for one span. Multi-line spans
/// are clipped to their first line; zero-width spans render a single caret.
fn source_window(source: &str, lines: &LineMap, span: Span) -> String {
    let lc = lines.lookup(span.start);
    let line_ix = lc.line as usize - 1;
    let start = match lines.line_start(line_ix) {
        Some(s) => s as usize,
        None => return String::new(),
    };
    let rest = source.get(start..).unwrap_or("");
    let text = rest.split(['\n', '\r']).next().unwrap_or("").trim_end();
    let gutter = format!("{:>4}", lc.line);
    let col = lc.col as usize - 1;
    // Carets cover the span clipped to this line (tabs render one column).
    let span_len = (span.len() as usize).max(1);
    let caret_len = span_len.min(text.len().saturating_sub(col).max(1));
    let mut out = format!("{gutter} | {text}\n");
    out.push_str(&format!(
        "{} | {}{}\n",
        " ".repeat(gutter.len()),
        " ".repeat(col.min(text.len())),
        "^".repeat(caret_len)
    ));
    out
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} (at {:?})", self.severity, self.message, self.span)
    }
}

/// Accumulates diagnostics during a compiler phase.
#[derive(Clone, Debug, Default)]
pub struct Diagnostics {
    items: Vec<Diagnostic>,
}

impl Diagnostics {
    /// Creates an empty sink.
    pub fn new() -> Diagnostics {
        Diagnostics::default()
    }

    /// Records an error.
    pub fn error(&mut self, span: Span, message: impl Into<String>) {
        self.items.push(Diagnostic::error(span, message));
    }

    /// Records a warning.
    pub fn warning(&mut self, span: Span, message: impl Into<String>) {
        self.items.push(Diagnostic::warning(span, message));
    }

    /// Records a prebuilt diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.items.push(d);
    }

    /// True if any error-severity diagnostic has been recorded.
    pub fn has_errors(&self) -> bool {
        self.items.iter().any(|d| d.severity == Severity::Error)
    }

    /// Number of error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.items.iter().filter(|d| d.severity == Severity::Error).count()
    }

    /// All recorded diagnostics in order.
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.items.iter()
    }

    /// Consumes the sink, returning the diagnostics.
    pub fn into_vec(self) -> Vec<Diagnostic> {
        self.items
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Total number of diagnostics of any severity.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Merges another sink's diagnostics into this one.
    pub fn extend(&mut self, other: Diagnostics) {
        self.items.extend(other.items);
    }

    /// Drops every diagnostic past the first `len` (used to roll back
    /// diagnostics recorded during speculative parsing).
    pub fn truncate(&mut self, len: usize) {
        self.items.truncate(len);
    }

    /// Attaches a note to the most recently recorded diagnostic, if any.
    pub fn note_last(&mut self, span: Option<Span>, message: impl Into<String>) {
        if let Some(d) = self.items.last_mut() {
            d.notes.push(Note { span, message: message.into() });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_errors_only_for_errors() {
        let mut d = Diagnostics::new();
        d.warning(Span::point(0), "meh");
        assert!(!d.has_errors());
        d.error(Span::point(1), "bad");
        assert!(d.has_errors());
        assert_eq!(d.error_count(), 1);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn render_includes_position() {
        let lines = LineMap::new("ab\ncd");
        let d = Diagnostic::error(Span::new(3, 4), "unexpected token");
        assert_eq!(d.render("f.v", &lines), "f.v:2:1: error: unexpected token");
    }

    #[test]
    fn render_window_marks_span() {
        let src = "var ok = 1;\nvar x: Foo = 1;\n";
        let lines = LineMap::new(src);
        let foo = src.find("Foo").unwrap() as u32;
        let d = Diagnostic::error(Span::new(foo, foo + 3), "unknown type 'Foo'");
        let r = d.render_window("f.v", src, &lines);
        assert!(r.starts_with("f.v:2:8: error: unknown type 'Foo'\n"), "{r}");
        assert!(r.contains("   2 | var x: Foo = 1;\n"), "{r}");
        assert!(r.contains("     |        ^^^\n"), "{r}");
    }

    #[test]
    fn render_window_handles_eof_and_zero_width() {
        let src = "x";
        let lines = LineMap::new(src);
        // Zero-width span at end of input still draws one caret.
        let d = Diagnostic::error(Span::point(1), "unexpected end of input");
        let r = d.render_window("f.v", src, &lines);
        assert!(r.contains('^'), "{r}");
        // Empty source doesn't panic.
        let d2 = Diagnostic::error(Span::point(0), "empty");
        let _ = d2.render_window("f.v", "", &LineMap::new(""));
    }

    #[test]
    fn notes_render_after_window() {
        let src = "class A { }\nclass A { }\n";
        let lines = LineMap::new(src);
        let second = src.rfind('A').unwrap() as u32;
        let d = Diagnostic::error(Span::new(second, second + 1), "duplicate class 'A'")
            .with_note(Some(Span::new(6, 7)), "first defined here");
        let r = d.render_window("f.v", src, &lines);
        assert!(r.contains("= note: first defined here"), "{r}");
        assert!(r.matches('^').count() >= 2, "{r}");
    }

    #[test]
    fn truncate_rolls_back() {
        let mut d = Diagnostics::new();
        d.error(Span::point(0), "keep");
        let mark = d.len();
        d.error(Span::point(1), "speculative");
        d.truncate(mark);
        assert_eq!(d.len(), 1);
        assert!(d.iter().all(|x| x.message == "keep"));
    }
}
