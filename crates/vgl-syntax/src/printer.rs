//! Pretty-printer: AST → canonical source text.
//!
//! The printer produces parseable Virgil source. The round-trip property
//! `parse(print(parse(s)))` structurally equals `parse(s)` is enforced by the
//! integration test suite.

use crate::ast::*;
use std::fmt::Write as _;

/// Pretty-prints a whole program.
pub fn print_program(p: &Program) -> String {
    let mut pr = Printer::default();
    for d in &p.decls {
        pr.decl(d);
        pr.out.push('\n');
    }
    pr.out
}

/// Pretty-prints a type expression.
pub fn print_type(t: &TypeExpr) -> String {
    let mut pr = Printer::default();
    pr.type_expr(t);
    pr.out
}

/// Pretty-prints an expression.
pub fn print_expr(e: &Expr) -> String {
    let mut pr = Printer::default();
    pr.expr(e);
    pr.out
}

#[derive(Default)]
struct Printer {
    out: String,
    indent: usize,
}

impl Printer {
    fn nl(&mut self) {
        self.out.push('\n');
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
    }

    fn decl(&mut self, d: &Decl) {
        match d {
            Decl::Class(c) => self.class(c),
            Decl::Method(m) => self.method(m),
            Decl::Var(f) => self.field(f),
        }
    }

    fn class(&mut self, c: &ClassDecl) {
        let _ = write!(self.out, "class {}", c.name);
        self.type_params(&c.type_params);
        if !c.header_params.is_empty() {
            self.out.push('(');
            for (i, p) in c.header_params.iter().enumerate() {
                if i > 0 {
                    self.out.push_str(", ");
                }
                let _ = write!(self.out, "{}: ", p.name);
                self.type_expr(&p.ty);
            }
            self.out.push(')');
        }
        if let Some(parent) = &c.parent {
            let _ = write!(self.out, " extends {}", parent.name);
            if !parent.type_args.is_empty() {
                self.type_args(&parent.type_args);
            }
        }
        self.out.push_str(" {");
        self.indent += 1;
        for m in &c.members {
            self.nl();
            match m {
                Member::Field(f) => self.field(f),
                Member::Method(m) => self.method(m),
                Member::Ctor(ct) => self.ctor(ct),
            }
        }
        self.indent -= 1;
        self.nl();
        self.out.push('}');
    }

    fn field(&mut self, f: &FieldDecl) {
        self.out.push_str(if f.mutable { "var " } else { "def " });
        let _ = write!(self.out, "{}", f.name);
        if let Some(t) = &f.ty {
            self.out.push_str(": ");
            self.type_expr(t);
        }
        if let Some(e) = &f.init {
            self.out.push_str(" = ");
            self.expr(e);
        }
        self.out.push(';');
    }

    fn method(&mut self, m: &MethodDecl) {
        if m.is_private {
            self.out.push_str("private ");
        }
        let _ = write!(self.out, "def {}", m.name);
        self.type_params(&m.type_params);
        self.out.push('(');
        for (i, p) in m.params.iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            let _ = write!(self.out, "{}: ", p.name);
            self.type_expr(&p.ty);
        }
        self.out.push(')');
        if let Some(r) = &m.ret {
            self.out.push_str(" -> ");
            self.type_expr(r);
        }
        match &m.body {
            Some(b) => {
                self.out.push(' ');
                self.block(b);
            }
            None => self.out.push(';'),
        }
    }

    fn ctor(&mut self, c: &CtorDecl) {
        self.out.push_str("new(");
        for (i, p) in c.params.iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            let _ = write!(self.out, "{}", p.name);
            if let Some(t) = &p.ty {
                self.out.push_str(": ");
                self.type_expr(t);
            }
        }
        self.out.push(')');
        if let Some(args) = &c.super_args {
            self.out.push_str(" super(");
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    self.out.push_str(", ");
                }
                self.expr(a);
            }
            self.out.push(')');
        }
        self.out.push(' ');
        self.block(&c.body);
    }

    fn type_params(&mut self, tps: &[Ident]) {
        if tps.is_empty() {
            return;
        }
        self.out.push('<');
        for (i, t) in tps.iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            let _ = write!(self.out, "{t}");
        }
        self.out.push('>');
    }

    fn type_args(&mut self, args: &[TypeExpr]) {
        if args.is_empty() {
            return;
        }
        self.out.push('<');
        for (i, a) in args.iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            self.type_expr(a);
        }
        self.out.push('>');
    }

    fn type_expr(&mut self, t: &TypeExpr) {
        match &t.kind {
            TypeExprKind::Named { name, args } => {
                let _ = write!(self.out, "{name}");
                self.type_args(args);
            }
            TypeExprKind::Tuple(elems) => {
                self.out.push('(');
                for (i, e) in elems.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.type_expr(e);
                }
                self.out.push(')');
            }
            TypeExprKind::Function(p, r) => {
                // Parenthesize a function-typed parameter: (A -> B) -> C.
                if matches!(p.kind, TypeExprKind::Function(..)) {
                    self.out.push('(');
                    self.type_expr(p);
                    self.out.push(')');
                } else {
                    self.type_expr(p);
                }
                self.out.push_str(" -> ");
                self.type_expr(r);
            }
        }
    }

    fn block(&mut self, b: &Block) {
        self.out.push('{');
        self.indent += 1;
        for s in &b.stmts {
            self.nl();
            self.stmt(s);
        }
        self.indent -= 1;
        self.nl();
        self.out.push('}');
    }

    fn stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Block(b) => self.block(b),
            StmtKind::If(c, t, e) => {
                self.out.push_str("if (");
                self.expr(c);
                self.out.push_str(") ");
                self.stmt(t);
                if let Some(e) = e {
                    self.out.push_str(" else ");
                    self.stmt(e);
                }
            }
            StmtKind::While(c, b) => {
                self.out.push_str("while (");
                self.expr(c);
                self.out.push_str(") ");
                self.stmt(b);
            }
            StmtKind::For { decl, init, cond, update, body } => {
                self.out.push_str("for (");
                if let Some(binders) = decl {
                    self.out.push_str("var ");
                    self.binders(binders);
                } else if let Some(e) = init {
                    self.expr(e);
                }
                self.out.push_str("; ");
                if let Some(c) = cond {
                    self.expr(c);
                }
                self.out.push_str("; ");
                if let Some(u) = update {
                    self.expr(u);
                }
                self.out.push_str(") ");
                self.stmt(body);
            }
            StmtKind::Local { mutable, binders } => {
                self.out.push_str(if *mutable { "var " } else { "def " });
                self.binders(binders);
                self.out.push(';');
            }
            StmtKind::Return(e) => {
                self.out.push_str("return");
                if let Some(e) = e {
                    self.out.push(' ');
                    self.expr(e);
                }
                self.out.push(';');
            }
            StmtKind::Break => self.out.push_str("break;"),
            StmtKind::Continue => self.out.push_str("continue;"),
            StmtKind::Expr(e) => {
                self.expr(e);
                self.out.push(';');
            }
            StmtKind::Empty => self.out.push(';'),
        }
    }

    fn binders(&mut self, binders: &[VarBinder]) {
        for (i, b) in binders.iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            let _ = write!(self.out, "{}", b.name);
            if let Some(t) = &b.ty {
                self.out.push_str(": ");
                self.type_expr(t);
            }
            if let Some(e) = &b.init {
                self.out.push_str(" = ");
                self.expr(e);
            }
        }
    }

    /// Prints `e` with parentheses if its precedence is lower than `min`.
    fn expr_prec(&mut self, e: &Expr, min: u8) {
        let p = prec(e);
        if p < min {
            self.out.push('(');
            self.expr(e);
            self.out.push(')');
        } else {
            self.expr(e);
        }
    }

    fn expr(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::IntLit(v) => {
                let _ = write!(self.out, "{v}");
            }
            ExprKind::ByteLit(b) => {
                let c = *b as char;
                if c.is_ascii_graphic() && c != '\'' && c != '\\' {
                    let _ = write!(self.out, "'{c}'");
                } else {
                    let _ = write!(
                        self.out,
                        "{}",
                        match b {
                            b'\n' => "'\\n'".to_string(),
                            b'\r' => "'\\r'".to_string(),
                            b'\t' => "'\\t'".to_string(),
                            b'\\' => "'\\\\'".to_string(),
                            b'\'' => "'\\''".to_string(),
                            0 => "'\\0'".to_string(),
                            _ => format!("byte.!({b})"),
                        }
                    );
                }
            }
            ExprKind::BoolLit(b) => {
                let _ = write!(self.out, "{b}");
            }
            ExprKind::StringLit(bytes) => {
                self.out.push('"');
                for &b in bytes {
                    match b {
                        b'\n' => self.out.push_str("\\n"),
                        b'\r' => self.out.push_str("\\r"),
                        b'\t' => self.out.push_str("\\t"),
                        b'\\' => self.out.push_str("\\\\"),
                        b'"' => self.out.push_str("\\\""),
                        0 => self.out.push_str("\\0"),
                        _ => self.out.push(b as char),
                    }
                }
                self.out.push('"');
            }
            ExprKind::NullLit => self.out.push_str("null"),
            ExprKind::Tuple(elems) => {
                self.out.push('(');
                for (i, x) in elems.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.expr(x);
                }
                self.out.push(')');
            }
            ExprKind::ArrayLit(elems) => {
                self.out.push('[');
                for (i, x) in elems.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.expr(x);
                }
                self.out.push(']');
            }
            ExprKind::Name { name, type_args } => {
                let _ = write!(self.out, "{name}");
                self.type_args(type_args);
            }
            ExprKind::Member { recv, member, type_args } => {
                self.expr_prec(recv, PREC_POSTFIX);
                let _ = write!(self.out, ".{member}");
                self.type_args(type_args);
            }
            ExprKind::TupleIndex { recv, index } => {
                self.expr_prec(recv, PREC_POSTFIX);
                let _ = write!(self.out, ".{index}");
            }
            ExprKind::Call { func, args } => {
                self.expr_prec(func, PREC_POSTFIX);
                self.out.push('(');
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.expr(a);
                }
                self.out.push(')');
            }
            ExprKind::Index { recv, index } => {
                self.expr_prec(recv, PREC_POSTFIX);
                self.out.push('[');
                self.expr(index);
                self.out.push(']');
            }
            ExprKind::Not(x) => {
                self.out.push('!');
                self.expr_prec(x, PREC_UNARY);
            }
            ExprKind::Neg(x) => {
                self.out.push('-');
                self.expr_prec(x, PREC_UNARY);
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let p = bin_prec(*op);
                self.expr_prec(lhs, p);
                let _ = write!(self.out, " {} ", op.symbol());
                self.expr_prec(rhs, p + 1);
            }
            ExprKind::And(l, r) => {
                self.expr_prec(l, PREC_AND);
                self.out.push_str(" && ");
                self.expr_prec(r, PREC_AND + 1);
            }
            ExprKind::Or(l, r) => {
                self.expr_prec(l, PREC_OR);
                self.out.push_str(" || ");
                self.expr_prec(r, PREC_OR + 1);
            }
            ExprKind::Ternary { cond, then, els } => {
                self.expr_prec(cond, PREC_TERNARY + 1);
                self.out.push_str(" ? ");
                self.expr(then);
                self.out.push_str(" : ");
                self.expr_prec(els, PREC_TERNARY);
            }
            ExprKind::Assign { target, value } => {
                self.expr_prec(target, PREC_TERNARY + 1);
                self.out.push_str(" = ");
                self.expr_prec(value, PREC_ASSIGN);
            }
            // Error placeholders only exist for source that already failed to
            // parse, so the printed form does not need to re-lex.
            ExprKind::Error => self.out.push_str("<error>"),
        }
    }
}

const PREC_ASSIGN: u8 = 1;
const PREC_TERNARY: u8 = 2;
const PREC_OR: u8 = 3;
const PREC_AND: u8 = 4;
const PREC_UNARY: u8 = 13;
const PREC_POSTFIX: u8 = 14;

fn bin_prec(op: BinOp) -> u8 {
    match op {
        BinOp::BitOr => 5,
        BinOp::BitXor => 6,
        BinOp::BitAnd => 7,
        BinOp::Eq | BinOp::Ne => 8,
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 9,
        BinOp::Shl | BinOp::Shr => 10,
        BinOp::Add | BinOp::Sub => 11,
        BinOp::Mul | BinOp::Div | BinOp::Mod => 12,
    }
}

fn prec(e: &Expr) -> u8 {
    match &e.kind {
        ExprKind::Assign { .. } => PREC_ASSIGN,
        ExprKind::Ternary { .. } => PREC_TERNARY,
        ExprKind::Or(..) => PREC_OR,
        ExprKind::And(..) => PREC_AND,
        ExprKind::Binary { op, .. } => bin_prec(*op),
        ExprKind::Not(..) | ExprKind::Neg(..) => PREC_UNARY,
        _ => PREC_POSTFIX + 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Diagnostics;
    use crate::parser::{parse_expr, parse_program};

    fn roundtrip_expr(src: &str) {
        let mut d = Diagnostics::new();
        let e1 = parse_expr(src, &mut d).expect("parse 1");
        assert!(!d.has_errors(), "{d:?}");
        let printed = print_expr(&e1);
        let mut d2 = Diagnostics::new();
        let e2 = parse_expr(&printed, &mut d2).expect("parse 2");
        assert!(!d2.has_errors(), "reparse failed for {printed:?}: {d2:?}");
        assert_eq!(print_expr(&e2), printed, "fixpoint for {src:?}");
    }

    #[test]
    fn roundtrip_core_exprs() {
        for src in [
            "1 + 2 * 3",
            "(1 + 2) * 3",
            "a.m(5)",
            "A.new(0, 1)",
            "int.+",
            "A.!<B>",
            "List<bool>.?(a)",
            "z ? f : g",
            "a && b || !c",
            "x = y = 5",
            "(0, 1)",
            "z.1.0",
            "[1, 2, 3]",
            "a[i] = b[j]",
            "-x - -y",
            "\"hi\\n\"",
        ] {
            roundtrip_expr(src);
        }
    }

    #[test]
    fn roundtrip_program() {
        let src = "class List<T> {\n\
                     var head: T;\n\
                     var tail: List<T>;\n\
                     new(head, tail) { }\n\
                   }\n\
                   def apply<A>(list: List<A>, f: A -> void) {\n\
                     for (l = list; l != null; l = l.tail) f(l.head);\n\
                   }";
        let mut d = Diagnostics::new();
        let p1 = parse_program(src, &mut d);
        assert!(!d.has_errors());
        let printed = print_program(&p1);
        let mut d2 = Diagnostics::new();
        let p2 = parse_program(&printed, &mut d2);
        assert!(!d2.has_errors(), "reparse failed:\n{printed}\n{d2:?}");
        assert_eq!(print_program(&p2), printed);
    }

    #[test]
    fn function_type_param_parenthesized() {
        let mut d = Diagnostics::new();
        let t = crate::parser::parse_type("(A -> B) -> C", &mut d).expect("type");
        assert_eq!(print_type(&t), "(A -> B) -> C");
        let t = crate::parser::parse_type("A -> B -> C", &mut d).expect("type");
        assert_eq!(print_type(&t), "A -> B -> C");
    }
}
