//! Source positions and spans.
//!
//! Every token and AST node carries a [`Span`] — a half-open byte range into a
//! source file. Spans are deliberately tiny (`Copy`, two `u32`s) so they can be
//! sprinkled everywhere without cost. A [`LineMap`] converts byte offsets back
//! into 1-based line/column pairs for diagnostics.

use std::fmt;

/// A half-open byte range `[start, end)` into a source file.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
}

impl Span {
    /// Creates a span covering `[start, end)`.
    ///
    /// # Panics
    /// Panics (in debug builds) if `start > end`.
    pub fn new(start: u32, end: u32) -> Span {
        debug_assert!(start <= end, "span start {start} > end {end}");
        Span { start, end }
    }

    /// A zero-width span at a given offset.
    pub fn point(at: u32) -> Span {
        Span { start: at, end: at }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Length of the span in bytes.
    pub fn len(self) -> u32 {
        self.end - self.start
    }

    /// True if the span covers no bytes.
    pub fn is_empty(self) -> bool {
        self.start == self.end
    }

    /// Extracts the spanned text from `source`.
    pub fn text(self, source: &str) -> &str {
        &source[self.start as usize..self.end as usize]
    }
}

impl fmt::Debug for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// A 1-based line/column position, produced by [`LineMap::lookup`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LineCol {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column (in bytes, not grapheme clusters).
    pub col: u32,
}

impl fmt::Display for LineCol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Maps byte offsets to line/column pairs for one source file.
#[derive(Clone, Debug)]
pub struct LineMap {
    /// Byte offset of the start of each line; `line_starts[0] == 0`.
    line_starts: Vec<u32>,
}

impl LineMap {
    /// Builds a line map by scanning `source` for newlines.
    pub fn new(source: &str) -> LineMap {
        let mut line_starts = vec![0u32];
        for (i, b) in source.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i as u32 + 1);
            }
        }
        LineMap { line_starts }
    }

    /// Converts a byte offset to a 1-based line/column.
    pub fn lookup(&self, offset: u32) -> LineCol {
        let line = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        LineCol {
            line: line as u32 + 1,
            col: offset - self.line_starts[line] + 1,
        }
    }

    /// Number of lines in the file.
    pub fn line_count(&self) -> usize {
        self.line_starts.len()
    }

    /// Byte offset at which 0-based `line` starts, if it exists.
    pub fn line_start(&self, line: usize) -> Option<u32> {
        self.line_starts.get(line).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_to_covers_both() {
        let a = Span::new(2, 5);
        let b = Span::new(7, 9);
        assert_eq!(a.to(b), Span::new(2, 9));
        assert_eq!(b.to(a), Span::new(2, 9));
    }

    #[test]
    fn span_text_slices_source() {
        let src = "hello world";
        assert_eq!(Span::new(6, 11).text(src), "world");
    }

    #[test]
    fn point_span_is_empty() {
        assert!(Span::point(4).is_empty());
        assert_eq!(Span::point(4).len(), 0);
    }

    #[test]
    fn linemap_lookup_first_line() {
        let m = LineMap::new("abc\ndef\nghi");
        assert_eq!(m.lookup(0), LineCol { line: 1, col: 1 });
        assert_eq!(m.lookup(2), LineCol { line: 1, col: 3 });
    }

    #[test]
    fn linemap_lookup_later_lines() {
        let m = LineMap::new("abc\ndef\nghi");
        assert_eq!(m.lookup(4), LineCol { line: 2, col: 1 });
        assert_eq!(m.lookup(8), LineCol { line: 3, col: 1 });
        assert_eq!(m.lookup(10), LineCol { line: 3, col: 3 });
    }

    #[test]
    fn linemap_newline_belongs_to_line_it_ends() {
        let m = LineMap::new("a\nb");
        assert_eq!(m.lookup(1), LineCol { line: 1, col: 2 });
        assert_eq!(m.lookup(2), LineCol { line: 2, col: 1 });
    }

    #[test]
    fn linemap_empty_source() {
        let m = LineMap::new("");
        assert_eq!(m.line_count(), 1);
        assert_eq!(m.lookup(0), LineCol { line: 1, col: 1 });
    }
}
