//! The lexer: source text → token stream.
//!
//! Comments are `//` to end of line. Whitespace separates tokens. Integer
//! literals are decimal or `0x` hexadecimal. Byte literals are single-quoted
//! with the escapes `\n \r \t \\ \' \" \0`; string literals are double-quoted
//! with the same escapes.

use crate::diag::Diagnostics;
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Lexes an entire source string into tokens (ending with one `Eof` token),
/// reporting malformed input into `diags`.
pub fn lex(source: &str, diags: &mut Diagnostics) -> Vec<Token> {
    Lexer { src: source.as_bytes(), pos: 0, diags }.run()
}

struct Lexer<'a, 'd> {
    src: &'a [u8],
    pos: usize,
    diags: &'d mut Diagnostics,
}

impl Lexer<'_, '_> {
    fn run(mut self) -> Vec<Token> {
        let mut out = Vec::new();
        loop {
            let tok = self.next_token();
            let done = tok.kind == TokenKind::Eof;
            out.push(tok);
            if done {
                return out;
            }
        }
    }

    fn peek(&self) -> u8 {
        self.src.get(self.pos).copied().unwrap_or(0)
    }

    fn peek2(&self) -> u8 {
        self.src.get(self.pos + 1).copied().unwrap_or(0)
    }

    fn bump(&mut self) -> u8 {
        let b = self.peek();
        self.pos += 1;
        b
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.pos += 1;
                }
                b'/' if self.peek2() == b'/' => {
                    while self.pos < self.src.len() && self.peek() != b'\n' {
                        self.pos += 1;
                    }
                }
                _ => return,
            }
        }
    }

    fn next_token(&mut self) -> Token {
        self.skip_trivia();
        let start = self.pos as u32;
        if self.pos >= self.src.len() {
            return Token { kind: TokenKind::Eof, span: Span::point(start) };
        }
        let kind = self.scan();
        Token { kind, span: Span::new(start, self.pos as u32) }
    }

    fn scan(&mut self) -> TokenKind {
        use TokenKind::*;
        let start = self.pos;
        let c = self.bump();
        match c {
            b'(' => LParen,
            b')' => RParen,
            b'{' => LBrace,
            b'}' => RBrace,
            b'[' => LBracket,
            b']' => RBracket,
            b',' => Comma,
            b';' => Semi,
            b':' => Colon,
            b'.' => Dot,
            b'?' => Question,
            b'+' => Plus,
            b'*' => Star,
            b'/' => Slash,
            b'%' => Percent,
            b'^' => Caret,
            b'-' => {
                if self.peek() == b'>' {
                    self.pos += 1;
                    Arrow
                } else {
                    Minus
                }
            }
            b'=' => {
                if self.peek() == b'=' {
                    self.pos += 1;
                    Eq
                } else {
                    Assign
                }
            }
            b'!' => {
                if self.peek() == b'=' {
                    self.pos += 1;
                    Ne
                } else {
                    Bang
                }
            }
            b'<' => match self.peek() {
                b'=' => {
                    self.pos += 1;
                    Le
                }
                b'<' => {
                    self.pos += 1;
                    Shl
                }
                _ => Lt,
            },
            b'>' => match self.peek() {
                b'=' => {
                    self.pos += 1;
                    Ge
                }
                b'>' => {
                    self.pos += 1;
                    Shr
                }
                _ => Gt,
            },
            b'&' => {
                if self.peek() == b'&' {
                    self.pos += 1;
                    AndAnd
                } else {
                    Amp
                }
            }
            b'|' => {
                if self.peek() == b'|' {
                    self.pos += 1;
                    OrOr
                } else {
                    Pipe
                }
            }
            b'\'' => self.scan_byte_lit(start),
            b'"' => self.scan_string_lit(start),
            b'0'..=b'9' => self.scan_number(),
            c if is_ident_start(c) => {
                while is_ident_continue(self.peek()) {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap_or("");
                TokenKind::keyword(text).unwrap_or(Ident)
            }
            _ => {
                self.diags.error(
                    Span::new(start as u32, self.pos as u32),
                    format!("unexpected character '{}'", c as char),
                );
                Error
            }
        }
    }

    fn scan_number(&mut self) -> TokenKind {
        // The first digit was already consumed.
        if self.src[self.pos - 1] == b'0' && (self.peek() == b'x' || self.peek() == b'X') {
            self.pos += 1;
            while self.peek().is_ascii_hexdigit() {
                self.pos += 1;
            }
        } else {
            while self.peek().is_ascii_digit() {
                self.pos += 1;
            }
        }
        TokenKind::IntLit
    }

    fn scan_escape(&mut self) -> bool {
        // Called after a backslash has been consumed; consumes the escape char.
        matches!(self.bump(), b'n' | b'r' | b't' | b'\\' | b'\'' | b'"' | b'0')
    }

    fn scan_byte_lit(&mut self, start: usize) -> TokenKind {
        let ok = match self.bump() {
            b'\\' => self.scan_escape(),
            0 => false,
            b'\'' => false, // empty literal ''
            _ => true,
        };
        if !ok || self.bump() != b'\'' {
            self.diags.error(
                Span::new(start as u32, self.pos as u32),
                "malformed byte literal",
            );
            return TokenKind::Error;
        }
        TokenKind::ByteLit
    }

    fn scan_string_lit(&mut self, start: usize) -> TokenKind {
        loop {
            match self.bump() {
                b'"' => return TokenKind::StringLit,
                b'\\' if !self.scan_escape() => {
                    self.diags.error(
                        Span::new(start as u32, self.pos as u32),
                        "invalid escape in string literal",
                    );
                    return TokenKind::Error;
                }
                b'\\' => {}
                0 if self.pos > self.src.len() => {
                    self.diags.error(
                        Span::new(start as u32, self.src.len() as u32),
                        "unterminated string literal",
                    );
                    return TokenKind::Error;
                }
                b'\n' => {
                    self.diags.error(
                        Span::new(start as u32, self.pos as u32),
                        "unterminated string literal",
                    );
                    return TokenKind::Error;
                }
                _ => {}
            }
        }
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Decodes the text of a byte literal token (including quotes) to its value.
pub fn decode_byte_lit(text: &str) -> Option<u8> {
    let inner = text.strip_prefix('\'')?.strip_suffix('\'')?;
    decode_one_escape(inner)
}

/// Decodes the text of a string literal token (including quotes) to its bytes.
pub fn decode_string_lit(text: &str) -> Option<Vec<u8>> {
    let inner = text.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = Vec::with_capacity(inner.len());
    let mut bytes = inner.bytes();
    while let Some(b) = bytes.next() {
        if b == b'\\' {
            let e = bytes.next()?;
            out.push(unescape(e)?);
        } else {
            out.push(b);
        }
    }
    Some(out)
}

fn decode_one_escape(inner: &str) -> Option<u8> {
    let mut bytes = inner.bytes();
    let b = bytes.next()?;
    let v = if b == b'\\' { unescape(bytes.next()?)? } else { b };
    if bytes.next().is_some() {
        return None;
    }
    Some(v)
}

fn unescape(e: u8) -> Option<u8> {
    Some(match e {
        b'n' => b'\n',
        b'r' => b'\r',
        b't' => b'\t',
        b'\\' => b'\\',
        b'\'' => b'\'',
        b'"' => b'"',
        b'0' => 0,
        _ => return None,
    })
}

/// Decodes an integer literal (decimal or `0x...`) to an `i64`; the caller
/// range-checks against the target type. Returns `None` (out of range) for
/// decimal literals above `i64::MAX`; hex literals wrap through `u64` so
/// `0xFFFFFFFFFFFFFFFF` is `-1`.
pub fn decode_int_lit(text: &str) -> Option<i64> {
    if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok().or_else(|| u64::from_str_radix(hex, 16).ok().map(|v| v as i64))
    } else {
        text.parse::<i64>().ok()
    }
}

/// Decodes a *negated* decimal integer literal: the value of `-text`. This
/// exists for `-9223372036854775808` (`i64::MIN`), whose positive half does
/// not fit in an `i64` on its own; the parser folds a leading `-` into the
/// literal before decoding. Hex literals already wrap and are rejected here.
pub fn decode_neg_int_lit(text: &str) -> Option<i64> {
    if text.starts_with("0x") || text.starts_with("0X") {
        return None;
    }
    format!("-{text}").parse::<i64>().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use TokenKind::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        let mut d = Diagnostics::new();
        let toks = lex(src, &mut d);
        assert!(!d.has_errors(), "unexpected lex errors: {d:?}");
        toks.iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lex_punctuation() {
        assert_eq!(
            kinds("( ) { } [ ] , ; : . -> ? !"),
            vec![LParen, RParen, LBrace, RBrace, LBracket, RBracket, Comma, Semi, Colon, Dot, Arrow, Question, Bang, Eof]
        );
    }

    #[test]
    fn lex_operators() {
        assert_eq!(
            kinds("= == != < <= > >= << >> + - * / % & | ^ && ||"),
            vec![Assign, Eq, Ne, Lt, Le, Gt, Ge, Shl, Shr, Plus, Minus, Star, Slash, Percent, Amp, Pipe, Caret, AndAnd, OrOr, Eof]
        );
    }

    #[test]
    fn lex_keywords_and_idents() {
        assert_eq!(
            kinds("class Foo extends def var new if x"),
            vec![KwClass, Ident, KwExtends, KwDef, KwVar, KwNew, KwIf, Ident, Eof]
        );
    }

    #[test]
    fn lex_literals() {
        assert_eq!(kinds("42 0xFF 'a' \"hi\" true false null"),
            vec![IntLit, IntLit, ByteLit, StringLit, KwTrue, KwFalse, KwNull, Eof]);
    }

    #[test]
    fn lex_comments_skipped() {
        assert_eq!(kinds("a // comment\n b"), vec![Ident, Ident, Eof]);
    }

    #[test]
    fn lex_arrow_vs_minus() {
        assert_eq!(kinds("a -> b - c"), vec![Ident, Arrow, Ident, Minus, Ident, Eof]);
    }

    #[test]
    fn lex_error_reports_diag() {
        let mut d = Diagnostics::new();
        let toks = lex("a @ b", &mut d);
        assert!(d.has_errors());
        assert!(toks.iter().any(|t| t.kind == Error));
    }

    #[test]
    fn unterminated_string_is_error() {
        let mut d = Diagnostics::new();
        lex("\"abc", &mut d);
        assert!(d.has_errors());
    }

    #[test]
    fn decode_byte_literals() {
        assert_eq!(decode_byte_lit("'a'"), Some(b'a'));
        assert_eq!(decode_byte_lit("'\\n'"), Some(b'\n'));
        assert_eq!(decode_byte_lit("'\\0'"), Some(0));
        assert_eq!(decode_byte_lit("''"), None);
    }

    #[test]
    fn decode_string_literals() {
        assert_eq!(decode_string_lit("\"hi\\n\""), Some(b"hi\n".to_vec()));
        assert_eq!(decode_string_lit("\"\""), Some(vec![]));
    }

    #[test]
    fn decode_int_literals() {
        assert_eq!(decode_int_lit("42"), Some(42));
        assert_eq!(decode_int_lit("0x10"), Some(16));
        assert_eq!(decode_int_lit("0xFFFFFFFF"), Some(0xFFFF_FFFF));
    }

    #[test]
    fn decode_int_literal_range_edges() {
        assert_eq!(decode_int_lit("9223372036854775807"), Some(i64::MAX));
        assert_eq!(decode_int_lit("9223372036854775808"), None);
        // i64::MIN only exists through the negation path.
        assert_eq!(decode_neg_int_lit("9223372036854775808"), Some(i64::MIN));
        assert_eq!(decode_neg_int_lit("9223372036854775809"), None);
        assert_eq!(decode_neg_int_lit("42"), Some(-42));
        assert_eq!(decode_neg_int_lit("0x10"), None);
    }

    #[test]
    fn spans_are_accurate() {
        let mut d = Diagnostics::new();
        let src = "var xy = 12;";
        let toks = lex(src, &mut d);
        assert_eq!(toks[1].text(src), "xy");
        assert_eq!(toks[3].text(src), "12");
    }
}
